//! Quickstart: run one convolution layer in SnaPEA's exact mode.
//!
//! Demonstrates the paper's core mechanism end to end: sign-based weight
//! reordering, the single-bit sign check, early termination — and that the
//! post-ReLU output is bit-for-bit unchanged while a large fraction of MAC
//! operations disappears.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use snapea_suite::core::exec::{execute_conv, LayerConfig};
use snapea_suite::core::params::KernelParams;
use snapea_suite::nn::ops::Conv2d;
use snapea_suite::tensor::{im2col::ConvGeom, init, Shape4};

fn main() {
    // A 3x3 convolution, 16 input channels, 32 kernels, on a 16x16 input —
    // weights are zero-centred (He init), inputs non-negative as they would
    // be coming out of an upstream ReLU.
    let mut rng = init::rng(42);
    let conv = Conv2d::new(16, 32, ConvGeom::square(3, 1, 1), &mut rng);
    let input = init::uniform4(Shape4::new(1, 16, 16, 16), 1.0, &mut rng).map(f32::abs);

    // --- Exact mode -------------------------------------------------------
    let exact = execute_conv(&conv, &input, &LayerConfig::exact(&conv));
    let dense = conv.forward(&input);

    let mut max_err = 0.0f32;
    for (a, b) in exact.output.iter().zip(dense.iter()) {
        max_err = max_err.max((a.max(0.0) - b.max(0.0)).abs());
    }
    println!("exact mode:");
    println!("  dense MACs      : {}", exact.profile.full_macs());
    println!("  executed MACs   : {}", exact.profile.total_ops());
    println!(
        "  MACs eliminated : {:.1}%",
        exact.profile.savings() * 100.0
    );
    println!("  post-ReLU error : {max_err:.2e} (exactness)");

    // --- Predictive mode ---------------------------------------------------
    // Every kernel speculates with N = 4 group representatives and a mild
    // threshold: more savings, small controlled error.
    let cfg = LayerConfig::predictive_uniform(&conv, KernelParams::new(0.05, 4));
    let pred = execute_conv(&conv, &input, &cfg);
    let squashed = pred
        .output
        .iter()
        .zip(dense.iter())
        .filter(|(p, d)| **p == 0.0 && **d > 0.0)
        .count();
    println!("predictive mode (Th=0.05, N=4):");
    println!("  executed MACs   : {}", pred.profile.total_ops());
    println!("  MACs eliminated : {:.1}%", pred.profile.savings() * 100.0);
    println!(
        "  positives squashed: {squashed} of {} outputs",
        dense.shape().len()
    );
}
