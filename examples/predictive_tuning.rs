//! Run the paper's Algorithm 1 end to end on a small trained network:
//! train on SynthShapes, then search per-kernel `(Th, N)` speculation
//! parameters under an accuracy budget and report the computation saved.
//!
//! ```text
//! cargo run --release --example predictive_tuning
//! ```

use snapea_suite::core::optimizer::{Optimizer, OptimizerConfig};
use snapea_suite::nn::data::SynthShapes;
use snapea_suite::nn::train::{evaluate, TrainConfig, Trainer};
use snapea_suite::nn::zoo;
use snapea_suite::tensor::init;

fn main() {
    // Train MiniAlexNet briefly on SynthShapes.
    let gen = SynthShapes::new(zoo::INPUT_SIZE, 6);
    let train = gen.generate(180, 11);
    let opt_set = gen.generate(36, 12);
    let eval = gen.generate(90, 13);

    let mut net = zoo::mini_alexnet(6);
    let mut trainer = Trainer::new(TrainConfig {
        lr: 0.01,
        ..TrainConfig::default()
    });
    let mut rng = init::rng(99);
    println!("training MiniAlexNet...");
    for epoch in 0..10 {
        let s = trainer.epoch(&mut net, &train, &mut rng);
        println!(
            "  epoch {epoch:2}: loss {:.3}, train acc {:.1}%",
            s.loss,
            s.accuracy * 100.0
        );
    }
    println!("eval accuracy: {:.1}%\n", evaluate(&net, &eval, 32) * 100.0);

    // Algorithm 1 with a 5% accuracy budget.
    let cfg = OptimizerConfig::with_epsilon(0.05);
    let out = Optimizer::new(&net, &opt_set, cfg).run();

    println!("Algorithm 1 results (epsilon = 5%):");
    println!(
        "  accuracy: {:.1}% -> {:.1}% (loss {:.1} pp)",
        out.baseline_accuracy * 100.0,
        out.final_accuracy * 100.0,
        out.accuracy_loss() * 100.0
    );
    println!("  dense conv MACs : {}", out.full_macs);
    println!("  exact-mode MACs : {}", out.exact_ops);
    println!("  predictive MACs : {}", out.final_ops);
    println!(
        "  predictive layers: {}/{} ({:.0}%)",
        out.per_layer.iter().filter(|l| l.predictive).count(),
        out.per_layer.len(),
        out.predictive_layer_fraction() * 100.0
    );
    println!("\nper-layer breakdown:");
    for l in &out.per_layer {
        println!(
            "  {:<8} {}  ops {:>9} (exact {:>9}, dense {:>9})",
            l.name,
            if l.predictive {
                "predictive"
            } else {
                "exact     "
            },
            l.ops,
            l.exact_ops,
            l.full_macs
        );
    }
}
