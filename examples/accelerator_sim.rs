//! Simulate a whole CNN on the SnaPEA accelerator vs the EYERISS-style
//! baseline (the paper's Figure 8 flow on one network).
//!
//! ```text
//! cargo run --release --example accelerator_sim
//! ```

use snapea_suite::accel::area::area_of;
use snapea_suite::accel::sim::simulate;
use snapea_suite::accel::workload::network_workload;
use snapea_suite::accel::{AccelConfig, EnergyModel};
use snapea_suite::core::params::NetworkParams;
use snapea_suite::core::spec_net::profile_network;
use snapea_suite::nn::data::SynthShapes;
use snapea_suite::nn::zoo;

fn main() {
    // MiniSqueezeNet (26 conv layers, Fire modules) over a small batch of
    // SynthShapes images. He-initialised weights already show the paper's
    // key property: roughly half of all convolution outputs are negative.
    let net = zoo::mini_squeezenet(10);
    let data = SynthShapes::new(zoo::INPUT_SIZE, 10).generate(4, 7);
    let batch = SynthShapes::batch(&data);

    // Exact-mode op counts for every conv layer.
    let profile = profile_network(&net, &NetworkParams::new(), &batch, false);
    println!(
        "SqueezeNet: {} conv layers, {:.1}% of conv MACs eliminated in exact mode",
        profile.layers.len(),
        profile.savings() * 100.0
    );

    // Map onto both machines.
    let model = EnergyModel::default();
    let wl = network_workload("SqueezeNet", &net, &batch, &profile);
    let snapea = simulate(&AccelConfig::snapea(), &model, &wl);
    let eyeriss = simulate(&AccelConfig::eyeriss(), &model, &wl.to_dense());

    println!(
        "\n{:<12} {:>12} {:>14} {:>10}",
        "machine", "cycles", "energy (uJ)", "util"
    );
    for (name, r) in [("SnaPEA", &snapea), ("EYERISS", &eyeriss)] {
        println!(
            "{:<12} {:>12} {:>14.3} {:>9.1}%",
            name,
            r.cycles,
            r.total_pj() / 1e6,
            r.utilization() * 100.0
        );
    }
    println!(
        "\nspeedup {:.2}x, energy reduction {:.2}x",
        snapea.speedup_over(&eyeriss),
        snapea.energy_reduction_over(&eyeriss)
    );

    println!("\narea (Table II model):");
    for cfg in [AccelConfig::snapea(), AccelConfig::eyeriss()] {
        let a = area_of(&cfg);
        println!(
            "  {:3} PEs x {} lanes: {:.1} mm^2",
            cfg.pe_count(),
            cfg.lanes_per_pe,
            a.total_mm2
        );
    }
}
