//! The accuracy–computation knob (the paper's Figure 11 flow, miniature):
//! sweep the acceptable accuracy loss and watch the MAC count fall.
//!
//! ```text
//! cargo run --release --example tradeoff_knob
//! ```

use snapea_suite::core::optimizer::{Optimizer, OptimizerConfig};
use snapea_suite::nn::data::SynthShapes;
use snapea_suite::nn::train::{TrainConfig, Trainer};
use snapea_suite::nn::zoo;
use snapea_suite::tensor::init;

fn main() {
    let gen = SynthShapes::new(zoo::INPUT_SIZE, 6);
    let train = gen.generate(150, 21);
    let opt_set = gen.generate(30, 22);

    let mut net = zoo::mini_squeezenet(6);
    let mut trainer = Trainer::new(TrainConfig {
        lr: 0.01,
        ..TrainConfig::default()
    });
    let mut rng = init::rng(5);
    println!("training MiniSqueezeNet (10 epochs)...");
    for _ in 0..10 {
        let _ = trainer.epoch(&mut net, &train, &mut rng);
    }

    println!(
        "\n{:>8} {:>12} {:>12} {:>10} {:>12}",
        "epsilon", "MACs", "vs dense", "loss (pp)", "pred layers"
    );
    for eps in [0.0, 0.02, 0.05, 0.10] {
        let cfg = OptimizerConfig {
            group_candidates: vec![1, 2, 4, 8],
            ..OptimizerConfig::with_epsilon(eps)
        };
        let out = Optimizer::new(&net, &opt_set, cfg).run();
        println!(
            "{:>7.0}% {:>12} {:>11.1}% {:>10.1} {:>11.0}%",
            eps * 100.0,
            out.final_ops,
            out.final_ops as f64 / out.full_macs as f64 * 100.0,
            out.accuracy_loss() * 100.0,
            out.predictive_layer_fraction() * 100.0
        );
    }
    println!("\nLooser budgets monotonically buy more computation reduction —");
    println!("the knob the paper exposes to navigate accuracy vs efficiency.");
}
