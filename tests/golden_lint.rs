//! Golden-file test pinning `snapea-tool lint --graph` output — the JSON
//! schema for graph findings (rule, chain with per-edge file:line spans,
//! hint) and the human-readable evidence-chain rendering.
//!
//! The fixture tree lives in `tests/golden/lint_fixture/`: a fake
//! workspace planting one violation per graph rule (an env read reachable
//! from a result-path fn, a panic chain from a pub API, a mutating
//! capture in a par closure), one allow-suppressed chain, and one rotting
//! allow. The expected outputs:
//!
//! * `lint_graph.txt` — byte-exact human report;
//! * `lint_graph.json` — byte-exact `--json` report.
//!
//! To regenerate after an intentional format change (the trailing `sed`
//! strips the CLI's `error: ` failure prefix; drop the final blank line):
//!
//! ```text
//! snapea-tool lint --root tests/golden/lint_fixture --graph 2>&1 \
//!   | sed 's/^error: //' > tests/golden/lint_graph.txt
//! snapea-tool lint --root tests/golden/lint_fixture --graph --json 2>&1 \
//!   | sed 's/^error: //' > tests/golden/lint_graph.json
//! ```

use snapea_cli::args::Args;
use snapea_cli::commands;

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing fixture {path}: {e}"))
}

fn fixture_root() -> String {
    format!("{}/tests/golden/lint_fixture", env!("CARGO_MANIFEST_DIR"))
}

fn run_lint(extra: &[&str]) -> String {
    let mut argv = vec!["lint", "--root"];
    let root = fixture_root();
    argv.push(&root);
    argv.extend_from_slice(extra);
    let args = Args::parse_with_flags(argv, &["json", "graph"]).unwrap();
    commands::run(&args)
        .expect_err("the planted fixture must fail the lint")
        .to_string()
}

#[test]
fn lint_graph_text_matches_golden_file() {
    let got = run_lint(&["--graph"]);
    let want = golden("lint_graph.txt");
    assert_eq!(
        got, want,
        "`snapea-tool lint --graph` text output changed; if intentional, regenerate \
         tests/golden/lint_graph.txt (see module docs)"
    );
}

#[test]
fn lint_graph_json_matches_golden_file() {
    let got = run_lint(&["--graph", "--json"]);
    let want = golden("lint_graph.json");
    assert_eq!(
        got, want,
        "`snapea-tool lint --graph --json` output changed; if intentional, regenerate \
         tests/golden/lint_graph.json (see module docs)"
    );
}

/// The R2 acceptance shape: the finding's chain is complete — every edge
/// from the public API to the panic sink carries a file:line span — and
/// the `--rule` filter narrows the JSON payload exactly like the text.
#[test]
fn r2_chain_is_complete_with_spans_per_edge() {
    let text = run_lint(&["--graph", "--rule", "R2"]);
    assert!(text.contains("[R2/panic-reachability]"), "{text}");
    assert!(!text.contains("[R1/"), "{text}");
    assert!(!text.contains("[R3/"), "{text}");
    assert!(
        text.contains("chain: api() \u{2192} inner() \u{2192} .unwrap()"),
        "{text}"
    );
    assert!(
        text.contains("crates/core/src/exec.rs:14 core::api \u{2192} core::inner"),
        "{text}"
    );
    assert!(
        text.contains("crates/core/src/exec.rs:18 core::inner \u{2192} .unwrap()"),
        "{text}"
    );

    let json = run_lint(&["--graph", "--rule", "R2", "--json"]);
    assert!(json.contains("\"rule\":\"R2\""), "{json}");
    assert!(!json.contains("\"rule\":\"R1\""), "{json}");
    assert!(
        json.contains(
            "\"chain\":[{\"from\":\"core::api\",\"to\":\"core::inner\",\
             \"file\":\"crates/core/src/exec.rs\",\"line\":14},\
             {\"from\":\"core::inner\",\"to\":\".unwrap()\",\
             \"file\":\"crates/core/src/exec.rs\",\"line\":18}]"
        ),
        "{json}"
    );
}
