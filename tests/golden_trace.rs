//! Golden-file tests pinning the Chrome trace-event export of
//! `snapea-tool trace`.
//!
//! The fixtures live in `tests/golden/`:
//!
//! * `events.jsonl` — the structured run-event log (shared with the report
//!   golden test);
//! * `chrome.json` — the expected byte-exact full trace (`trace` on stdout);
//! * `pe-trace.json` — the expected byte-exact virtual-PE sub-trace
//!   (`trace --pe-trace`).
//!
//! To regenerate after an intentional format change:
//!
//! ```text
//! snapea-tool trace tests/golden/events.jsonl > tests/golden/chrome.json
//! snapea-tool trace tests/golden/events.jsonl --pe-trace tests/golden/pe-trace.json
//! ```

use snapea_cli::args::Args;
use snapea_cli::commands;
use snapea_suite::obs::{chrome_trace, validate_chrome_trace, Json, Selection};

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing fixture {path}: {e}"))
}

#[test]
fn trace_stdout_matches_golden_chrome_file() {
    let events = format!("{}/tests/golden/events.jsonl", env!("CARGO_MANIFEST_DIR"));
    let args = Args::parse(["trace", events.as_str()]).unwrap();
    let got = commands::run(&args).expect("trace succeeds on the fixture log");
    assert_eq!(
        got,
        golden("chrome.json"),
        "`snapea-tool trace` output changed; if intentional, regenerate \
         tests/golden/chrome.json (see module docs)"
    );
}

#[test]
fn golden_chrome_trace_is_schema_valid_with_both_timebases() {
    let doc = golden("chrome.json");
    let n = validate_chrome_trace(&doc).expect("schema-valid");
    assert_eq!(n, 10, "every fixture event renders");
    let parsed = snapea_suite::obs::parse(&doc).unwrap();
    let events = parsed.get("traceEvents").and_then(Json::as_array).unwrap();
    let pids: Vec<u64> = events
        .iter()
        .filter_map(|e| e.get("pid").and_then(Json::as_u64))
        .collect();
    assert!(pids.contains(&1), "wall-clock process present");
    assert!(pids.contains(&2), "virtual-PE process present");
    // Spans become complete slices carrying their tree links.
    let span = events
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("repro/train"))
        .expect("span slice");
    assert_eq!(span.get("ph").and_then(Json::as_str), Some("X"));
    assert_eq!(
        span.get("args")
            .and_then(|a| a.get("parent_id"))
            .and_then(Json::as_u64),
        Some(1)
    );
    // Worker lanes keep their own thread track.
    let lane = events
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("par/worker"))
        .expect("worker lane slice");
    assert_eq!(lane.get("tid").and_then(Json::as_u64), Some(2));
}

#[test]
fn pe_trace_matches_golden_and_ignores_input_line_order() {
    let log = golden("events.jsonl");
    let want = golden("pe-trace.json");
    let got = chrome_trace(&log, Selection::VirtualPe).expect("renders");
    assert_eq!(
        got, want,
        "virtual-PE trace changed; if intentional, regenerate \
         tests/golden/pe-trace.json (see module docs)"
    );
    // The virtual sub-trace is sorted by virtual time, not file order: a
    // shuffled log renders byte-identically.
    let mut lines: Vec<&str> = log.lines().collect();
    lines.reverse();
    let shuffled = chrome_trace(&lines.join("\n"), Selection::VirtualPe).unwrap();
    assert_eq!(got, shuffled);
    // And it contains only virtual-time content: no wall-clock process.
    let parsed = snapea_suite::obs::parse(&want).unwrap();
    let events = parsed.get("traceEvents").and_then(Json::as_array).unwrap();
    assert!(events
        .iter()
        .all(|e| e.get("pid").and_then(Json::as_u64) == Some(2)));
}
