//! Thread-count invariance: every parallelised path must produce
//! bit-identical results whether the worker pool runs 1, 2, 4, or 8
//! threads.
//!
//! The guarantees under test are the two rules of the threading model
//! (DESIGN.md): workers only write ownership-partitioned disjoint slices,
//! and floating-point reductions merge in an order fixed independently of
//! the thread count. `SNAPEA_THREADS=1` is additionally the exact serial
//! loop, so these tests pin every parallel run to serial results
//! bit-for-bit — including counts above the persistent pool's previously
//! seen size, which exercises lazy pool growth mid-process.

use snapea_suite::core::exec::{execute_conv_q16, execute_conv_stats, LayerConfig};
use snapea_suite::core::optimizer::profiling::profile_layer_kernels;
use snapea_suite::core::params::KernelParams;
use snapea_suite::nn::ops::Conv2d;
use snapea_suite::tensor::im2col::ConvGeom;
use snapea_suite::tensor::{init, par, q16, Shape4, Tensor4};

/// Thread counts every path is pinned at, against the 1-thread serial run.
const THREAD_GRID: [usize; 3] = [2, 4, 8];

/// Seeded mini-net layer: enough images/kernels/windows that 8 workers all
/// get work, small enough to run in the tier-1 gate.
fn mini_layer() -> (Conv2d, Tensor4) {
    let mut rng = init::rng(42);
    let conv = Conv2d::new(3, 6, ConvGeom::square(3, 1, 1), &mut rng);
    let input = init::uniform4(Shape4::new(4, 3, 9, 9), 1.0, &mut rng).map(f32::abs);
    (conv, input)
}

/// Runs `f` serially (1 thread), then at each grid count, handing
/// `(serial, parallel, threads)` to `check` per grid point.
fn against_serial<R>(mut f: impl FnMut() -> R, mut check: impl FnMut(&R, &R, usize)) {
    // Real worker concurrency even on a single-core runner: without this
    // the pool clamps participants to the machine and the grid runs would
    // pass vacuously.
    par::set_oversubscribe(true);
    let prev = par::threads();
    par::set_threads(1);
    let serial = f();
    for &t in &THREAD_GRID {
        par::set_threads(t);
        let parallel = f();
        check(&serial, &parallel, t);
    }
    par::set_threads(prev);
}

#[test]
fn conv_forward_is_bit_identical_across_thread_counts() {
    let (conv, input) = mini_layer();
    against_serial(
        || conv.forward(&input),
        |serial, parallel, t| {
            assert_eq!(serial.as_slice(), parallel.as_slice(), "{t} threads");
        },
    );
}

#[test]
fn conv_backward_is_bit_identical_across_thread_counts() {
    let (conv, input) = mini_layer();
    let grad_out = init::uniform4(conv.out_shape(input.shape()), 1.0, &mut init::rng(7));
    against_serial(
        || conv.backward(&input, &grad_out),
        |(gi1, gw1, gb1), (gin, gwn, gbn), t| {
            assert_eq!(gi1.as_slice(), gin.as_slice(), "grad_input at {t}");
            assert_eq!(gw1.as_slice(), gwn.as_slice(), "grad_weight at {t}");
            assert_eq!(gb1, gbn, "grad_bias at {t}");
        },
    );
}

#[test]
fn executor_stats_are_bit_identical_across_thread_counts() {
    let (conv, input) = mini_layer();
    for cfg in [
        LayerConfig::exact(&conv),
        LayerConfig::predictive_uniform(&conv, KernelParams::new(0.05, 4)),
    ] {
        against_serial(
            || execute_conv_stats(&conv, &input, &cfg),
            |serial, parallel, t| {
                assert_eq!(
                    serial.output.as_slice(),
                    parallel.output.as_slice(),
                    "{t} threads"
                );
                assert_eq!(serial.profile, parallel.profile, "{t} threads");
                // PredictionStats carries f64 masses: per-pair accumulation
                // merged in pair order makes even those bit-identical, for
                // any pair-block size the chunk floor picks.
                assert_eq!(serial.stats, parallel.stats, "{t} threads");
            },
        );
    }
}

#[test]
fn executor_q16_is_bit_identical_across_thread_counts() {
    let (conv, input) = mini_layer();
    let cfg = LayerConfig::predictive_uniform(&conv, KernelParams::new(0.05, 4));
    let fmt = q16::Q16Format::default();
    against_serial(
        || execute_conv_q16(&conv, &input, &cfg, fmt),
        |serial, parallel, t| {
            assert_eq!(
                serial.output.as_slice(),
                parallel.output.as_slice(),
                "{t} threads"
            );
            assert_eq!(serial.profile, parallel.profile, "{t} threads");
        },
    );
}

#[test]
fn artifact_round_trip_is_bit_identical_across_thread_counts() {
    // The compiled-artifact contract: an executor fed a loaded artifact
    // produces byte-for-byte the outputs of one fed the freshly-compiled
    // model, at any thread count. Seeded random models (geometry ×
    // speculation parameters × weights) come from the oracle's generator.
    use snapea_suite::core::artifact::CompiledModel;
    use snapea_suite::core::params::NetworkParams;
    use snapea_suite::nn::graph::GraphBuilder;
    use snapea_suite::oracle::CaseConfig;

    for seed in [0x5EED_0001u64, 0x5EED_0002, 0x5EED_0003] {
        let cfg = CaseConfig::generate(seed);
        let (conv, input) = cfg.build();
        let mut b = GraphBuilder::new();
        let x = b.input();
        let _ = b.conv_layer("conv", x, conv);
        let graph = b.build();
        let mut params = NetworkParams::new();
        params.set(1, cfg.params());
        let compiled = CompiledModel::compile(
            &graph,
            &params,
            (cfg.c_in, cfg.h, cfg.w),
            q16::Q16Format::default(),
        );
        let loaded = CompiledModel::from_bytes(&compiled.to_bytes())
            .unwrap_or_else(|e| panic!("seed {seed:#x}: valid artifact rejected: {e}"));
        against_serial(
            || (compiled.forward(&input), loaded.forward(&input)),
            |(serial_fresh, serial_loaded), (par_fresh, par_loaded), t| {
                for (label, serial, parallel) in [
                    ("fresh", serial_fresh, par_fresh),
                    ("loaded", serial_loaded, par_loaded),
                ] {
                    assert_eq!(serial.len(), parallel.len());
                    for (a, b) in serial.iter().zip(parallel) {
                        assert_eq!(
                            a.as_slice(),
                            b.as_slice(),
                            "seed {seed:#x} {label} at {t} threads"
                        );
                    }
                }
                // And loaded tracks fresh bit-for-bit at this thread count.
                for (a, b) in par_fresh.iter().zip(par_loaded) {
                    assert_eq!(a.as_slice(), b.as_slice(), "seed {seed:#x} at {t} threads");
                }
            },
        );
    }
}

#[test]
fn optimizer_profiling_is_bit_identical_across_thread_counts() {
    let (conv, input) = mini_layer();
    against_serial(
        || profile_layer_kernels(&conv, &input, &[1, 2, 4], &[0.25, 0.5, 0.9], 1.0),
        |serial, parallel, t| {
            assert_eq!(serial, parallel, "{t} threads");
        },
    );
}
