//! Thread-count invariance: every parallelised path must produce
//! bit-identical results whether the worker pool runs 1 thread or 4.
//!
//! The guarantees under test are the two rules of the threading model
//! (DESIGN.md): workers only write ownership-partitioned disjoint slices,
//! and floating-point reductions merge in an order fixed independently of
//! the thread count. `SNAPEA_THREADS=1` is additionally the exact serial
//! loop, so these tests pin parallel runs to serial results bit-for-bit.

use snapea_suite::core::exec::{execute_conv_stats, LayerConfig};
use snapea_suite::core::optimizer::profiling::profile_layer_kernels;
use snapea_suite::core::params::KernelParams;
use snapea_suite::nn::ops::Conv2d;
use snapea_suite::tensor::im2col::ConvGeom;
use snapea_suite::tensor::{init, par, Shape4, Tensor4};

/// Seeded mini-net layer: enough images/kernels/windows that 4 workers all
/// get work, small enough to run in the tier-1 gate.
fn mini_layer() -> (Conv2d, Tensor4) {
    let mut rng = init::rng(42);
    let conv = Conv2d::new(3, 6, ConvGeom::square(3, 1, 1), &mut rng);
    let input = init::uniform4(Shape4::new(4, 3, 9, 9), 1.0, &mut rng).map(f32::abs);
    (conv, input)
}

/// Runs `f` at 1 and 4 threads and hands both results to `check`.
fn at_both_threads<R>(mut f: impl FnMut() -> R) -> (R, R) {
    let prev = par::threads();
    par::set_threads(1);
    let serial = f();
    par::set_threads(4);
    let parallel = f();
    par::set_threads(prev);
    (serial, parallel)
}

#[test]
fn conv_forward_is_bit_identical_across_thread_counts() {
    let (conv, input) = mini_layer();
    let (serial, parallel) = at_both_threads(|| conv.forward(&input));
    assert_eq!(serial.as_slice(), parallel.as_slice());
}

#[test]
fn conv_backward_is_bit_identical_across_thread_counts() {
    let (conv, input) = mini_layer();
    let grad_out = init::uniform4(conv.out_shape(input.shape()), 1.0, &mut init::rng(7));
    let ((gi1, gw1, gb1), (gi4, gw4, gb4)) = at_both_threads(|| conv.backward(&input, &grad_out));
    assert_eq!(gi1.as_slice(), gi4.as_slice(), "grad_input");
    assert_eq!(gw1.as_slice(), gw4.as_slice(), "grad_weight");
    assert_eq!(gb1, gb4, "grad_bias");
}

#[test]
fn executor_stats_are_bit_identical_across_thread_counts() {
    let (conv, input) = mini_layer();
    for cfg in [
        LayerConfig::exact(&conv),
        LayerConfig::predictive_uniform(&conv, KernelParams::new(0.05, 4)),
    ] {
        let (serial, parallel) = at_both_threads(|| execute_conv_stats(&conv, &input, &cfg));
        assert_eq!(serial.output.as_slice(), parallel.output.as_slice());
        assert_eq!(serial.profile, parallel.profile);
        // PredictionStats carries f64 masses: per-pair accumulation merged
        // in pair order makes even those bit-identical.
        assert_eq!(serial.stats, parallel.stats);
    }
}

#[test]
fn optimizer_profiling_is_bit_identical_across_thread_counts() {
    let (conv, input) = mini_layer();
    let (serial, parallel) = at_both_threads(|| {
        profile_layer_kernels(&conv, &input, &[1, 2, 4], &[0.25, 0.5, 0.9], 1.0)
    });
    assert_eq!(serial, parallel);
}
