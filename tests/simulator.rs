//! Cross-crate simulator invariants: timing monotonicity, MAC conservation,
//! and the SnaPEA-vs-baseline relationships the paper's evaluation rests on.

use proptest::prelude::*;
use snapea_suite::accel::sim::simulate;
use snapea_suite::accel::workload::{LayerWorkload, NetworkWorkload};
use snapea_suite::accel::{AccelConfig, EnergyModel};
use snapea_suite::core::exec::LayerProfile;

fn workload_from(
    ops: Vec<u32>,
    kernels: usize,
    windows: usize,
    window_len: usize,
) -> NetworkWorkload {
    let profile = LayerProfile::from_ops(1, kernels, windows, window_len, ops);
    NetworkWorkload {
        name: "prop".into(),
        layers: vec![LayerWorkload::new("l", profile, 64)],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pointwise-smaller op counts never cost more cycles or energy.
    #[test]
    fn fewer_ops_never_slower(
        ops in prop::collection::vec(1u32..28, 64),
        cuts in prop::collection::vec(0u32..28, 64),
    ) {
        let kernels = 4;
        let windows = 16;
        let wl = 28;
        let reduced: Vec<u32> = ops
            .iter()
            .zip(&cuts)
            .map(|(&o, &c)| o.saturating_sub(c).max(1))
            .collect();
        let cfg = AccelConfig::snapea();
        let m = EnergyModel::default();
        let full = simulate(&cfg, &m, &workload_from(ops, kernels, windows, wl));
        let less = simulate(&cfg, &m, &workload_from(reduced, kernels, windows, wl));
        prop_assert!(less.cycles <= full.cycles);
        prop_assert!(less.total_pj() <= full.total_pj() + 1e-6);
    }

    /// Simulated MACs equal the workload's op counts on any machine.
    #[test]
    fn macs_are_conserved(ops in prop::collection::vec(0u32..36, 128)) {
        let net = workload_from(ops.clone(), 8, 16, 36);
        let m = EnergyModel::default();
        for cfg in [AccelConfig::snapea(), AccelConfig::eyeriss()] {
            let r = simulate(&cfg, &m, &net);
            prop_assert_eq!(r.events.macs, ops.iter().map(|&o| o as u64).sum::<u64>());
        }
    }

    /// The dense workload upper-bounds any early-terminated variant on both
    /// machines.
    #[test]
    fn dense_is_an_upper_bound(ops in prop::collection::vec(1u32..36, 128)) {
        let net = workload_from(ops, 8, 16, 36);
        let dense = net.to_dense();
        let m = EnergyModel::default();
        for cfg in [AccelConfig::snapea(), AccelConfig::eyeriss()] {
            let early = simulate(&cfg, &m, &net);
            let full = simulate(&cfg, &m, &dense);
            prop_assert!(early.cycles <= full.cycles);
        }
    }
}

/// Whole-pipeline smoke: profile a real network in exact mode, simulate both
/// machines, and check the headline relationships.
#[test]
fn network_level_speedup_holds() {
    use snapea_suite::accel::workload::network_workload;
    use snapea_suite::core::params::NetworkParams;
    use snapea_suite::core::spec_net::profile_network;
    use snapea_suite::nn::data::SynthShapes;
    use snapea_suite::nn::zoo;

    let net = zoo::mini_alexnet(10);
    let data = SynthShapes::new(zoo::INPUT_SIZE, 10).generate(2, 17);
    let batch = SynthShapes::batch(&data);
    let prof = profile_network(&net, &NetworkParams::new(), &batch, false);
    let m = EnergyModel::default();
    let wl = network_workload("alex", &net, &batch, &prof);
    let sn = simulate(&AccelConfig::snapea(), &m, &wl);
    let ey = simulate(&AccelConfig::eyeriss(), &m, &wl.to_dense());
    assert!(
        sn.speedup_over(&ey) > 0.9,
        "exact-mode SnaPEA should be at least near baseline parity, got {:.2}",
        sn.speedup_over(&ey)
    );
    // On an *untrained* net exact-mode savings are small, so energy may sit
    // near parity (SnaPEA pays index traffic and reuses inputs less); it
    // must not collapse.
    assert!(
        sn.energy_reduction_over(&ey) > 0.85,
        "exact-mode energy should stay near parity, got {:.2}",
        sn.energy_reduction_over(&ey)
    );
    // With aggressive speculation the MAC savings dominate and energy must
    // genuinely drop.
    let mut params = snapea_suite::core::params::NetworkParams::new();
    for id in net.conv_ids() {
        if let snapea_suite::nn::graph::Op::Conv(c) = &net.node(id).op {
            params.set(
                id,
                snapea_suite::core::params::LayerParams::uniform(
                    c.c_out(),
                    snapea_suite::core::params::KernelParams::new(f32::INFINITY, 1),
                ),
            );
        }
    }
    let prof_pred = profile_network(&net, &params, &batch, false);
    let wl_pred = network_workload("alex-pred", &net, &batch, &prof_pred);
    let sn_pred = simulate(&AccelConfig::snapea(), &m, &wl_pred);
    assert!(
        sn_pred.energy_reduction_over(&ey) > 1.5,
        "aggressive speculation must cut energy, got {:.2}",
        sn_pred.energy_reduction_over(&ey)
    );
    assert!(sn_pred.speedup_over(&ey) > 1.5);
    // Per-layer cycle totals add up.
    assert_eq!(
        sn.cycles,
        sn.per_layer.iter().map(|l| l.cycles).sum::<u64>()
    );
}
