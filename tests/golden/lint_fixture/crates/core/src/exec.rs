//! Planted violations for the lint golden test: one chain per graph rule,
//! one allow-suppressed chain, one rotting allow. Never compiled.

pub fn walk() {
    config()
}

fn config() {
    let v = std::env::var("SNAPEA_FIXTURE");
    let _ = v;
}

pub fn api(x: Option<u32>) -> u32 {
    inner(x)
}

fn inner(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn fanout(tasks: Vec<u32>, mut log: Vec<u32>) {
    snapea_tensor::par::run_tasks(tasks, |i, _t| {
        log.push(i);
    });
}

// lint:allow(R1) fixture: a reasoned allow above the fn suppresses its chain
pub fn allowed_walk() {
    let v = std::env::var("SNAPEA_FIXTURE");
    let _ = v;
}

// lint:allow(R3) fixture: suppresses nothing, rots to A1 under --graph
pub fn quiet() {}
