//! Golden-fixture crate root (scanned by tests/golden_lint.rs).
#![forbid(unsafe_code)]
