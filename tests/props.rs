//! Property-based tests of the core invariants (proptest).

use proptest::prelude::*;
use snapea_suite::core::exec::{run_window, KernelExec, LayerConfig};
use snapea_suite::core::params::KernelParams;
use snapea_suite::core::pau::{Pau, TerminationKind};
use snapea_suite::core::reorder::{magnitude_reorder, predictive_reorder, sign_reorder};
use snapea_suite::nn::ops::Conv2d;
use snapea_suite::oracle::OracleRng;
use snapea_suite::tensor::im2col::ConvGeom;
use snapea_suite::tensor::im2col::{col2im, im2col};
use snapea_suite::tensor::q16::{Q16Format, QAcc};
use snapea_suite::tensor::{Shape2, Tensor2};
use snapea_suite::tensor::{Shape4, Tensor4};

fn weights_strategy(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-2.0f32..2.0, 2..max_len)
}

fn is_permutation(order: &[u32], len: usize) -> bool {
    let mut seen = vec![false; len];
    for &i in order {
        if (i as usize) >= len || seen[i as usize] {
            return false;
        }
        seen[i as usize] = true;
    }
    order.len() == len
}

proptest! {
    /// Every reordering is a permutation with the documented region
    /// structure.
    #[test]
    fn reorderings_are_structured_permutations(w in weights_strategy(40)) {
        let r = sign_reorder(&w);
        prop_assert!(is_permutation(r.order(), w.len()));
        prop_assert!(r.weights()[..r.neg_start()].iter().all(|&v| v >= 0.0));
        prop_assert!(r.weights()[r.neg_start()..].iter().all(|&v| v < 0.0));
        // Negative region is sorted by descending magnitude.
        for pair in r.weights()[r.neg_start()..].windows(2) {
            prop_assert!(pair[0] <= pair[1], "negatives not descending in |w|");
        }

        for groups in [1usize, 2, w.len() / 2, w.len()] {
            if groups == 0 || groups > w.len() {
                continue;
            }
            let p = predictive_reorder(&w, groups);
            prop_assert!(is_permutation(p.order(), w.len()));
            prop_assert_eq!(p.spec_len(), groups);
            prop_assert!(p.neg_start() >= groups);
            let mid = &p.weights()[groups..p.neg_start()];
            let tail = &p.weights()[p.neg_start()..];
            prop_assert!(mid.iter().all(|&v| v >= 0.0));
            prop_assert!(tail.iter().all(|&v| v < 0.0));

            let m = magnitude_reorder(&w, groups);
            prop_assert!(is_permutation(m.order(), w.len()));
        }
    }

    /// The `Op` function of Eq. (1): op counts are bounded, prediction costs
    /// exactly `N`, and a window that never terminates costs the full window.
    #[test]
    fn op_counts_obey_equation_1(
        w in weights_strategy(30),
        xs in prop::collection::vec(0.0f32..2.0, 30),
        th in -1.0f32..1.0,
        groups_raw in 1usize..8,
        bias in -0.5f32..0.5,
    ) {
        let groups = groups_raw.min(w.len());
        let taps: Vec<i32> = (0..w.len() as i32).collect();
        let item = &xs[..w.len().min(xs.len())];
        prop_assume!(item.len() == w.len());

        let r = predictive_reorder(&w, groups);
        let pau = Pau::predictive(&r, KernelParams::new(th, groups));
        let k = KernelExec::new(r, pau);
        let res = run_window(&k, &taps, item, bias);
        prop_assert!(res.ops as usize <= w.len());
        match res.termination {
            Some(TerminationKind::Predicted) => {
                prop_assert_eq!(res.ops as usize, groups);
                prop_assert_eq!(res.output, 0.0);
            }
            Some(TerminationKind::SignCheck) => {
                prop_assert!(res.output < 0.0);
                prop_assert!((res.ops as usize) >= k.reordered.neg_start());
            }
            None => prop_assert_eq!(res.ops as usize, w.len()),
        }
    }

    /// Exact-mode window walks reproduce the dense dot product after ReLU.
    #[test]
    fn exact_window_walk_matches_dot_product(
        w in weights_strategy(24),
        xs in prop::collection::vec(0.0f32..2.0, 24),
        bias in -0.5f32..0.5,
    ) {
        prop_assume!(xs.len() >= w.len());
        let item = &xs[..w.len()];
        let taps: Vec<i32> = (0..w.len() as i32).collect();
        let r = sign_reorder(&w);
        let pau = Pau::exact(&r);
        let k = KernelExec::new(r, pau);
        let res = run_window(&k, &taps, item, bias);
        let dense: f32 = bias + w.iter().zip(item).map(|(a, b)| a * b).sum::<f32>();
        prop_assert!(
            (res.output.max(0.0) - dense.max(0.0)).abs() < 1e-3,
            "post-ReLU mismatch: {} vs {}",
            res.output,
            dense
        );
    }

    /// Fixed-point round trip stays within half an LSB (for values inside
    /// the representable range — ±2^(15−frac)); MAC chains stay close to
    /// float.
    #[test]
    fn q16_round_trip_and_mac(v in -25.0f32..25.0, frac in 4u32..10) {
        let fmt = Q16Format::new(frac);
        let q = fmt.quantize(v);
        prop_assert!((fmt.dequantize(q) - v).abs() <= fmt.lsb() / 2.0 + 1e-5);

        let mut acc = QAcc::new();
        acc.mac(fmt.quantize(v / 10.0), fmt.quantize(0.5));
        let expect = (v / 10.0) * 0.5;
        prop_assert!((acc.to_f32(fmt) - expect).abs() < fmt.lsb() * 2.0 + 0.01);
    }

    /// `col2im(im2col(x))` scales every input position by the number of
    /// windows that tap it (its multiplicity, obtained by scattering an
    /// all-ones patch matrix) — the adjoint-consistency law the backward
    /// pass relies on. Shapes come from the oracle PRNG so the same seed
    /// replays the same geometry.
    #[test]
    fn im2col_col2im_roundtrip_is_multiplicity_scaling(seed in 0u64..150) {
        let mut r = OracleRng::new(seed);
        let (c, h, w) = (r.range(1, 3), r.range(2, 7), r.range(2, 7));
        let geom = ConvGeom::square(r.range(1, 3), r.range(1, 2), r.range(0, 1));
        let shape = Shape4::new(1, c, h, w);
        let x_vals: Vec<f32> = (0..shape.len()).map(|_| r.uniform(-2.0, 2.0)).collect();
        let x = Tensor4::from_vec(shape, x_vals).unwrap();

        let cols = im2col(&x, 0, geom);
        let mut back = Tensor4::zeros(shape);
        col2im(&cols, &mut back, 0, geom);

        let ones = Tensor2::from_vec(
            Shape2::new(c * geom.kh * geom.kw, geom.out_h(h) * geom.out_w(w)),
            vec![1.0; cols.shape().len()],
        )
        .unwrap();
        let mut mult = Tensor4::zeros(shape);
        col2im(&ones, &mut mult, 0, geom);

        for ((&roundtrip, &orig), &m) in
            back.as_slice().iter().zip(x.as_slice()).zip(mult.as_slice())
        {
            let want = orig * m;
            prop_assert!(
                (roundtrip - want).abs() <= 1e-4 * want.abs().max(1.0),
                "seed {}: col2im∘im2col gave {} for value {} with multiplicity {}",
                seed, roundtrip, orig, m
            );
        }
    }

    /// Quantise→dequantise error bounds over oracle-PRNG-driven formats:
    /// half an LSB inside the representable range, clean saturation at the
    /// rails outside it, and sign preservation everywhere.
    #[test]
    fn q16_round_trip_error_is_bounded_everywhere(seed in 0u64..300) {
        let mut r = OracleRng::new(seed);
        let fmt = Q16Format::new(r.range(2, 12) as u32);
        let limit_hi = fmt.dequantize(snapea_suite::tensor::q16::Q16(i16::MAX));
        let limit_lo = fmt.dequantize(snapea_suite::tensor::q16::Q16(i16::MIN));

        for _ in 0..32 {
            let v = r.uniform(-1.5, 1.5) * limit_hi.max(1.0) * 1.5;
            let d = fmt.dequantize(fmt.quantize(v));
            if v >= limit_lo && v <= limit_hi {
                prop_assert!(
                    (d - v).abs() <= fmt.lsb() / 2.0 + 1e-5,
                    "in-range {} came back as {} (lsb {})", v, d, fmt.lsb()
                );
            } else if v > limit_hi {
                prop_assert_eq!(d, limit_hi, "positive overflow must saturate at the rail");
            } else {
                prop_assert_eq!(d, limit_lo, "negative overflow must saturate at the rail");
            }
            prop_assert!(v.abs() <= fmt.lsb() / 2.0 || d == 0.0 || (d >= 0.0) == (v >= 0.0));
        }
    }

    /// Exact-mode layer execution preserves post-ReLU outputs for arbitrary
    /// (seeded) convolutions — the library-level statement of soundness.
    #[test]
    fn exact_layer_execution_is_sound(seed in 0u64..50) {
        use snapea_suite::tensor::init;
        let mut rng = init::rng(seed);
        let conv = Conv2d::new(3, 4, ConvGeom::square(3, 1, 1), &mut rng);
        let input: Tensor4 =
            init::uniform4(Shape4::new(1, 3, 6, 6), 1.5, &mut rng).map(f32::abs);
        let r = snapea_suite::core::exec::execute_conv(
            &conv,
            &input,
            &LayerConfig::exact(&conv),
        );
        let dense = conv.forward(&input);
        for (a, b) in r.output.iter().zip(dense.iter()) {
            prop_assert!((a.max(0.0) - b.max(0.0)).abs() < 1e-3);
        }
    }

    /// Log-histogram quantiles land in exactly the bucket the naive sorted
    /// nearest-rank reference picks — the histogram loses resolution within
    /// a bucket (~9%), never across buckets.
    #[test]
    fn log_histogram_quantiles_match_naive_reference(
        samples in prop::collection::vec(1e-6f64..1e6, 1..200),
    ) {
        use snapea_suite::obs::LogHistogramSnapshot;
        let snap = LogHistogramSnapshot::from_samples(&samples);
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            // Nearest-rank: the ceil(q*n)-th order statistic (1-based).
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let naive = sorted[rank - 1];
            prop_assert_eq!(
                snap.quantile_bucket(q),
                LogHistogramSnapshot::bucket_of(naive),
                "q={} naive={}", q, naive
            );
            // And the midpoint estimate is within one sub-bucket (~±9%).
            let est = snap.quantile(q);
            prop_assert!(
                est >= naive / 1.19 && est <= naive * 1.19,
                "q={} est={} naive={}", q, est, naive
            );
        }
    }

    /// Histogram merge is exact: commutative, associative, and identical to
    /// bucketing the concatenated sample set directly.
    #[test]
    fn log_histogram_merge_is_commutative_and_associative(
        a in prop::collection::vec(1e-6f64..1e6, 0..60),
        b in prop::collection::vec(1e-6f64..1e6, 0..60),
        c in prop::collection::vec(1e-6f64..1e6, 0..60),
    ) {
        use snapea_suite::obs::LogHistogramSnapshot;
        let (sa, sb, sc) = (
            LogHistogramSnapshot::from_samples(&a),
            LogHistogramSnapshot::from_samples(&b),
            LogHistogramSnapshot::from_samples(&c),
        );
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba, "merge must be commutative");

        let mut ab_c = ab.clone();
        ab_c.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut a_bc = sa.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc, "merge must be associative");

        let concat: Vec<f64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(
            &ab_c,
            &LogHistogramSnapshot::from_samples(&concat),
            "merging snapshots must equal bucketing the concatenation"
        );
        prop_assert_eq!(ab_c.count(), (a.len() + b.len() + c.len()) as u64);

        let mut with_empty = ab_c.clone();
        with_empty.merge(&LogHistogramSnapshot::empty());
        prop_assert_eq!(&with_empty, &ab_c, "empty is the merge identity");
    }
}
