//! Property-based tests of the core invariants (proptest).

use proptest::prelude::*;
use snapea_suite::core::exec::{run_window, KernelExec, LayerConfig};
use snapea_suite::core::params::KernelParams;
use snapea_suite::core::pau::{Pau, TerminationKind};
use snapea_suite::core::reorder::{magnitude_reorder, predictive_reorder, sign_reorder};
use snapea_suite::nn::ops::Conv2d;
use snapea_suite::tensor::im2col::ConvGeom;
use snapea_suite::tensor::q16::{Q16Format, QAcc};
use snapea_suite::tensor::{Shape4, Tensor4};

fn weights_strategy(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-2.0f32..2.0, 2..max_len)
}

fn is_permutation(order: &[u32], len: usize) -> bool {
    let mut seen = vec![false; len];
    for &i in order {
        if (i as usize) >= len || seen[i as usize] {
            return false;
        }
        seen[i as usize] = true;
    }
    order.len() == len
}

proptest! {
    /// Every reordering is a permutation with the documented region
    /// structure.
    #[test]
    fn reorderings_are_structured_permutations(w in weights_strategy(40)) {
        let r = sign_reorder(&w);
        prop_assert!(is_permutation(r.order(), w.len()));
        prop_assert!(r.weights()[..r.neg_start()].iter().all(|&v| v >= 0.0));
        prop_assert!(r.weights()[r.neg_start()..].iter().all(|&v| v < 0.0));
        // Negative region is sorted by descending magnitude.
        for pair in r.weights()[r.neg_start()..].windows(2) {
            prop_assert!(pair[0] <= pair[1], "negatives not descending in |w|");
        }

        for groups in [1usize, 2, w.len() / 2, w.len()] {
            if groups == 0 || groups > w.len() {
                continue;
            }
            let p = predictive_reorder(&w, groups);
            prop_assert!(is_permutation(p.order(), w.len()));
            prop_assert_eq!(p.spec_len(), groups);
            prop_assert!(p.neg_start() >= groups);
            let mid = &p.weights()[groups..p.neg_start()];
            let tail = &p.weights()[p.neg_start()..];
            prop_assert!(mid.iter().all(|&v| v >= 0.0));
            prop_assert!(tail.iter().all(|&v| v < 0.0));

            let m = magnitude_reorder(&w, groups);
            prop_assert!(is_permutation(m.order(), w.len()));
        }
    }

    /// The `Op` function of Eq. (1): op counts are bounded, prediction costs
    /// exactly `N`, and a window that never terminates costs the full window.
    #[test]
    fn op_counts_obey_equation_1(
        w in weights_strategy(30),
        xs in prop::collection::vec(0.0f32..2.0, 30),
        th in -1.0f32..1.0,
        groups_raw in 1usize..8,
        bias in -0.5f32..0.5,
    ) {
        let groups = groups_raw.min(w.len());
        let taps: Vec<i32> = (0..w.len() as i32).collect();
        let item = &xs[..w.len().min(xs.len())];
        prop_assume!(item.len() == w.len());

        let r = predictive_reorder(&w, groups);
        let pau = Pau::predictive(&r, KernelParams::new(th, groups));
        let k = KernelExec { reordered: r, pau };
        let res = run_window(&k, &taps, item, bias);
        prop_assert!(res.ops as usize <= w.len());
        match res.termination {
            Some(TerminationKind::Predicted) => {
                prop_assert_eq!(res.ops as usize, groups);
                prop_assert_eq!(res.output, 0.0);
            }
            Some(TerminationKind::SignCheck) => {
                prop_assert!(res.output < 0.0);
                prop_assert!((res.ops as usize) >= k.reordered.neg_start());
            }
            None => prop_assert_eq!(res.ops as usize, w.len()),
        }
    }

    /// Exact-mode window walks reproduce the dense dot product after ReLU.
    #[test]
    fn exact_window_walk_matches_dot_product(
        w in weights_strategy(24),
        xs in prop::collection::vec(0.0f32..2.0, 24),
        bias in -0.5f32..0.5,
    ) {
        prop_assume!(xs.len() >= w.len());
        let item = &xs[..w.len()];
        let taps: Vec<i32> = (0..w.len() as i32).collect();
        let r = sign_reorder(&w);
        let pau = Pau::exact(&r);
        let k = KernelExec { reordered: r, pau };
        let res = run_window(&k, &taps, item, bias);
        let dense: f32 = bias + w.iter().zip(item).map(|(a, b)| a * b).sum::<f32>();
        prop_assert!(
            (res.output.max(0.0) - dense.max(0.0)).abs() < 1e-3,
            "post-ReLU mismatch: {} vs {}",
            res.output,
            dense
        );
    }

    /// Fixed-point round trip stays within half an LSB (for values inside
    /// the representable range — ±2^(15−frac)); MAC chains stay close to
    /// float.
    #[test]
    fn q16_round_trip_and_mac(v in -25.0f32..25.0, frac in 4u32..10) {
        let fmt = Q16Format::new(frac);
        let q = fmt.quantize(v);
        prop_assert!((fmt.dequantize(q) - v).abs() <= fmt.lsb() / 2.0 + 1e-5);

        let mut acc = QAcc::new();
        acc.mac(fmt.quantize(v / 10.0), fmt.quantize(0.5));
        let expect = (v / 10.0) * 0.5;
        prop_assert!((acc.to_f32(fmt) - expect).abs() < fmt.lsb() * 2.0 + 0.01);
    }

    /// Exact-mode layer execution preserves post-ReLU outputs for arbitrary
    /// (seeded) convolutions — the library-level statement of soundness.
    #[test]
    fn exact_layer_execution_is_sound(seed in 0u64..50) {
        use snapea_suite::tensor::init;
        let mut rng = init::rng(seed);
        let conv = Conv2d::new(3, 4, ConvGeom::square(3, 1, 1), &mut rng);
        let input: Tensor4 =
            init::uniform4(Shape4::new(1, 3, 6, 6), 1.5, &mut rng).map(f32::abs);
        let r = snapea_suite::core::exec::execute_conv(
            &conv,
            &input,
            &LayerConfig::exact(&conv),
        );
        let dense = conv.forward(&input);
        for (a, b) in r.output.iter().zip(dense.iter()) {
            prop_assert!((a.max(0.0) - b.max(0.0)).abs() < 1e-3);
        }
    }
}
