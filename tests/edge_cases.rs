//! Convolution edge-case matrix, differentially checked against the oracle
//! references: degenerate kernels, degenerate strides, empty channel axes,
//! and sign patterns that force 0% or 100% early termination.

use snapea_suite::core::exec::{execute_conv, LayerConfig};
use snapea_suite::core::params::KernelMode;
use snapea_suite::core::reorder::sign_reorder;
use snapea_suite::nn::ops::Conv2d;
use snapea_suite::oracle::reference;
use snapea_suite::oracle::OracleRng;
use snapea_suite::tensor::{ConvGeom, Shape4, Tensor4};

fn conv_from(seed: u64, c_out: usize, c_in: usize, geom: ConvGeom) -> Conv2d {
    let mut r = OracleRng::new(seed);
    let shape = Shape4::new(c_out, c_in, geom.kh, geom.kw);
    let w: Vec<f32> = (0..shape.len()).map(|_| r.uniform(-1.0, 1.0)).collect();
    let bias: Vec<f32> = (0..c_out).map(|_| r.uniform(-0.2, 0.2)).collect();
    Conv2d::from_parts(Tensor4::from_vec(shape, w).unwrap(), bias, geom)
}

fn input_from(seed: u64, shape: Shape4, lo: f32, hi: f32) -> Tensor4 {
    let mut r = OracleRng::new(seed);
    let v: Vec<f32> = (0..shape.len()).map(|_| r.uniform(lo, hi)).collect();
    Tensor4::from_vec(shape, v).unwrap()
}

/// Exact-mode executor output must be bit-identical to the oracle's
/// independent walk. The dense post-ReLU comparison additionally holds when
/// inputs are non-negative (the paper's premise); for signed inputs the
/// sign-check termination is not output-preserving, so only the walk check
/// applies.
fn assert_exact_walk_matches(conv: &Conv2d, input: &Tensor4) {
    let geom = conv.geom();
    let r = execute_conv(conv, input, &LayerConfig::exact(conv));
    let walk = reference::execute_layer(
        conv.weight(),
        conv.bias(),
        geom,
        input,
        &snapea_suite::core::params::LayerParams::Exact,
    );
    assert_eq!(r.output.as_slice().len(), walk.output.as_slice().len());
    for (i, (a, b)) in r
        .output
        .as_slice()
        .iter()
        .zip(walk.output.as_slice())
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "element {i}: executor {a} vs oracle {b}"
        );
    }
    assert_eq!(r.profile.ops_slice(), &walk.ops[..]);
}

/// The walk check plus ReLU-equality against the dense 7-loop reference
/// (valid for non-negative inputs).
fn assert_exact_matches_oracle(conv: &Conv2d, input: &Tensor4) {
    assert_exact_walk_matches(conv, input);
    let r = execute_conv(conv, input, &LayerConfig::exact(conv));
    let dense = reference::conv_dense(conv.weight(), conv.bias(), conv.geom(), input);
    for (a, b) in r.output.as_slice().iter().zip(dense.as_slice()) {
        assert!(
            (a.max(0.0) - b.max(0.0)).abs() < 1e-3,
            "post-ReLU mismatch {a} vs {b}"
        );
    }
}

#[test]
fn one_by_one_kernels() {
    let geom = ConvGeom::square(1, 1, 0);
    let conv = conv_from(11, 4, 3, geom);
    let input = input_from(12, Shape4::new(2, 3, 5, 5), 0.0, 1.5);
    assert_exact_matches_oracle(&conv, &input);
}

#[test]
fn kernel_equal_to_input_size_yields_one_window() {
    let geom = ConvGeom::square(4, 1, 0);
    let conv = conv_from(21, 3, 2, geom);
    let input = input_from(22, Shape4::new(1, 2, 4, 4), 0.0, 1.0);
    let r = execute_conv(&conv, &input, &LayerConfig::exact(&conv));
    assert_eq!(r.output.shape(), Shape4::new(1, 3, 1, 1));
    assert_exact_matches_oracle(&conv, &input);
}

#[test]
fn stride_larger_than_kernel_skips_pixels() {
    let geom = ConvGeom::square(2, 3, 0);
    let conv = conv_from(31, 2, 2, geom);
    let input = input_from(32, Shape4::new(1, 2, 8, 8), 0.0, 1.0);
    let r = execute_conv(&conv, &input, &LayerConfig::exact(&conv));
    assert_eq!(r.output.shape(), Shape4::new(1, 2, 3, 3));
    assert_exact_matches_oracle(&conv, &input);
}

#[test]
fn kernel_larger_than_padded_input_is_all_padding() {
    // k exceeds h + 2·pad: the single window is entirely padding except for
    // the input's overlap, and out-dims clamp to 1×1.
    let geom = ConvGeom::square(6, 1, 1);
    let conv = conv_from(41, 2, 1, geom);
    let input = input_from(42, Shape4::new(1, 1, 3, 3), 0.0, 1.0);
    let r = execute_conv(&conv, &input, &LayerConfig::exact(&conv));
    assert_eq!(r.output.shape(), Shape4::new(1, 2, 1, 1));
    assert_exact_matches_oracle(&conv, &input);
}

#[test]
fn zero_channel_input_degenerates_to_bias() {
    // c_in = 0: the window is empty, every walk performs zero MACs and
    // returns the bias. Exact mode only — speculation over an empty window
    // is meaningless (groups ≥ 1 cannot be formed).
    let geom = ConvGeom::square(3, 1, 1);
    let weight = Tensor4::from_vec(Shape4::new(2, 0, 3, 3), Vec::new()).unwrap();
    let conv = Conv2d::from_parts(weight, vec![0.25, -0.75], geom);
    let input = Tensor4::zeros(Shape4::new(1, 0, 4, 4));
    let r = execute_conv(&conv, &input, &LayerConfig::exact(&conv));
    assert_eq!(r.output.shape(), Shape4::new(1, 2, 4, 4));
    assert_eq!(r.profile.total_ops(), 0, "no channels means no MACs");
    for k in 0..2 {
        let bias = conv.bias()[k];
        for w in 0..16 {
            assert_eq!(r.output.as_slice()[k * 16 + w], bias);
        }
    }
}

#[test]
fn all_negative_weights_terminate_every_window_after_one_mac() {
    // Every weight negative and inputs strictly positive: the sign-ordered
    // walk enters the negative region immediately, the partial sum drops
    // below zero after the first MAC, and the PAU terminates every window at
    // ops = 1 — the 100%-early-termination extreme of the paper's exact mode.
    let geom = ConvGeom::square(3, 1, 0);
    let mut r = OracleRng::new(51);
    let shape = Shape4::new(2, 2, 3, 3);
    let w: Vec<f32> = (0..shape.len()).map(|_| -r.uniform(0.1, 1.0)).collect();
    let conv = Conv2d::from_parts(Tensor4::from_vec(shape, w).unwrap(), vec![0.0; 2], geom);
    let input = input_from(52, Shape4::new(1, 2, 6, 6), 0.1, 1.5);

    let res = execute_conv(&conv, &input, &LayerConfig::exact(&conv));
    let windows = res.profile.windows() * res.profile.images() * res.profile.kernels();
    assert_eq!(
        res.profile.total_ops(),
        windows as u64,
        "exactly one MAC per window"
    );
    assert!(res.output.as_slice().iter().all(|&v| v < 0.0));
    assert_exact_matches_oracle(&conv, &input);
}

#[test]
fn all_negative_inputs_terminate_at_the_negative_region_boundary() {
    // Strictly negative inputs with mixed-sign weights: the non-negative
    // weight prefix accumulates a strictly negative sum, so the first probe
    // inside the negative region terminates — every window stops at exactly
    // `neg_start` ops and every output is squashed to zero by ReLU.
    let geom = ConvGeom::square(2, 1, 0);
    let mut r = OracleRng::new(61);
    let shape = Shape4::new(1, 2, 2, 2);
    let w: Vec<f32> = (0..shape.len())
        .map(|i| {
            if i % 2 == 0 {
                r.uniform(0.1, 1.0)
            } else {
                -r.uniform(0.1, 1.0)
            }
        })
        .collect();
    let conv = Conv2d::from_parts(Tensor4::from_vec(shape, w).unwrap(), vec![0.0], geom);
    let neg_start = sign_reorder(conv.weight().item(0)).neg_start();
    let input = input_from(62, Shape4::new(1, 2, 5, 5), -1.5, -0.1);

    let res = execute_conv(&conv, &input, &LayerConfig::exact(&conv));
    for &ops in res.profile.ops_slice() {
        assert_eq!(
            ops as usize, neg_start,
            "every window stops entering the negative region"
        );
    }
    assert!(res.output.as_slice().iter().all(|&v| v.max(0.0) == 0.0));
    // Signed inputs: only the walk-vs-walk check applies (sign-check
    // termination is output-preserving only for non-negative inputs).
    assert_exact_walk_matches(&conv, &input);
}

#[test]
fn fully_predictive_threshold_squashes_every_window() {
    // threshold = +∞ predicts every window after `groups` MACs.
    let geom = ConvGeom::square(3, 1, 1);
    let conv = conv_from(71, 3, 2, geom);
    let input = input_from(72, Shape4::new(1, 2, 6, 6), 0.0, 1.0);
    let modes = vec![KernelMode::spec(f32::INFINITY, 4); 3];
    let cfg = LayerConfig::predictive(&conv, &modes);
    let res = execute_conv(&conv, &input, &cfg);
    assert!(res.output.as_slice().iter().all(|&v| v == 0.0));
    for &ops in res.profile.ops_slice() {
        assert_eq!(ops, 4, "prediction costs exactly `groups` MACs");
    }
}
