//! Compiled-model artifact integration tests.
//!
//! Three layers of defence around the `.snapea` format:
//!
//! * **Zoo bit-identity** — for every workload in the zoo, executing a
//!   compiled-then-loaded artifact is bit-identical to `SpecNet`'s
//!   fresh-reorder path on the same inputs (the `run --artifact` contract);
//! * **Golden fixture** — `tests/golden/tiny.snapea` is committed; the
//!   deterministic fixture model must re-serialize to exactly those bytes
//!   with a frozen digest, so any format drift fails loudly. To regenerate
//!   after an intentional format change (bump [`VERSION`] first!):
//!
//!   ```text
//!   SNAPEA_REGEN_GOLDEN=1 cargo test --test artifact golden
//!   ```
//!
//!   then update `GOLDEN_DIGEST` with the value the failure prints;
//! * **Corruption battery** — the oracle's mutation fuzzer over seeded
//!   random models: every byte-level corruption must be rejected with a
//!   typed error, and the round trip must hold bit-exactly.

use snapea_suite::core::artifact::{fnv64, ArtifactError, CompiledModel, ENDIAN_TAG, VERSION};
use snapea_suite::core::params::{KernelParams, LayerParams, NetworkParams};
use snapea_suite::core::spec_net::SpecNet;
use snapea_suite::nn::data::SynthShapes;
use snapea_suite::nn::graph::{Graph, GraphBuilder, Op};
use snapea_suite::nn::zoo::{Workload, INPUT_SIZE};
use snapea_suite::oracle::{run_artifact_check, ArtifactCheckOptions};
use snapea_suite::tensor::im2col::ConvGeom;
use snapea_suite::tensor::init;
use snapea_suite::tensor::q16::Q16Format;

/// Frozen FNV-1a-64 digest of `tests/golden/tiny.snapea`.
const GOLDEN_DIGEST: u64 = 0xbb3f_74df_3371_3cc1;

fn golden_path() -> String {
    format!("{}/tests/golden/tiny.snapea", env!("CARGO_MANIFEST_DIR"))
}

/// The committed fixture's source model: fully deterministic (seeded
/// generators only), small enough to keep the fixture a few kilobytes.
fn fixture_model() -> (Graph, NetworkParams) {
    let mut rng = init::rng(0x601D);
    let mut b = GraphBuilder::new();
    let x = b.input();
    let c1 = b.conv("conv1", x, 3, 4, ConvGeom::square(3, 1, 1), &mut rng);
    let r1 = b.relu("relu1", c1);
    let p1 = b.max_pool("pool1", r1, 2, 2);
    let c2 = b.conv("conv2", p1, 4, 6, ConvGeom::square(3, 1, 0), &mut rng);
    let r2 = b.relu("relu2", c2);
    let f = b.flatten("flat", r2);
    let _ = b.linear("fc", f, 6 * 2 * 2, 5, &mut rng);
    let g = b.build();
    let mut p = NetworkParams::new();
    p.set(1, LayerParams::uniform(4, KernelParams::new(0.1, 4)));
    p.set(
        4,
        LayerParams::Predictive(vec![
            snapea_suite::core::params::KernelMode::Exact,
            snapea_suite::core::params::KernelMode::spec(0.25, 6),
            snapea_suite::core::params::KernelMode::spec(-0.1, 2),
            snapea_suite::core::params::KernelMode::spec(f32::INFINITY, 3),
            snapea_suite::core::params::KernelMode::spec(0.0, 8),
            snapea_suite::core::params::KernelMode::Exact,
        ]),
    );
    (g, p)
}

fn compile_fixture() -> CompiledModel {
    let (g, p) = fixture_model();
    CompiledModel::compile(&g, &p, (3, 8, 8), Q16Format::default())
}

#[test]
fn zoo_networks_execute_bit_identically_from_artifacts() {
    let data = SynthShapes::new(INPUT_SIZE, 10).generate(2, 0xA771FAC7);
    let batch = SynthShapes::batch(&data);
    for w in Workload::ALL {
        let net = w.build(10);
        // Uniform speculation on every conv (groups clamped to the window).
        let mut params = NetworkParams::new();
        for &id in &net.conv_ids() {
            let Op::Conv(c) = &net.node(id).op else {
                continue;
            };
            params.set(
                id,
                LayerParams::uniform(c.c_out(), KernelParams::new(0.05, 4.min(c.window_len()))),
            );
        }
        let compiled = CompiledModel::compile(
            &net,
            &params,
            (3, INPUT_SIZE, INPUT_SIZE),
            Q16Format::default(),
        );
        let loaded = CompiledModel::from_bytes(&compiled.to_bytes())
            .unwrap_or_else(|e| panic!("{}: artifact rejected: {e}", w.name()));
        let fresh = SpecNet::new(&net, &params).forward(&batch);
        let from_artifact = loaded.forward(&batch);
        assert_eq!(fresh.len(), from_artifact.len(), "{}", w.name());
        for (i, (a, b)) in fresh.iter().zip(&from_artifact).enumerate() {
            let identical = a
                .as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(
                identical,
                "{}: activation {i} differs between fresh and artifact-loaded execution",
                w.name()
            );
        }
    }
}

#[test]
fn golden_artifact_is_byte_stable_with_frozen_digest() {
    let bytes = compile_fixture().to_bytes();
    let path = golden_path();
    #[allow(clippy::disallowed_methods)] // regen knob, test-only
    if std::env::var_os("SNAPEA_REGEN_GOLDEN").is_some() {
        std::fs::write(&path, &bytes).expect("write golden fixture");
        panic!(
            "regenerated {path} ({} bytes, digest {:#018x}); update GOLDEN_DIGEST and re-run \
             without SNAPEA_REGEN_GOLDEN",
            bytes.len(),
            fnv64(&bytes)
        );
    }
    let want = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("missing fixture {path}: {e}; regenerate per the module docs"));
    assert_eq!(
        bytes, want,
        "fixture model no longer serializes to the committed artifact; an artifact \
         format change must bump VERSION and regenerate the fixture (module docs)"
    );
    assert_eq!(
        fnv64(&want),
        GOLDEN_DIGEST,
        "committed fixture digest drifted (got {:#018x})",
        fnv64(&want)
    );
    // The committed bytes load and re-serialize canonically.
    let loaded = CompiledModel::from_bytes(&want).expect("golden artifact loads");
    assert_eq!(loaded.to_bytes(), want, "canonical re-serialization");
}

#[test]
fn header_errors_carry_their_typed_variants() {
    let bytes = compile_fixture().to_bytes();

    let mut b = bytes.clone();
    b[..4].copy_from_slice(b"NOPE");
    assert!(matches!(
        CompiledModel::from_bytes(&b),
        Err(ArtifactError::BadMagic(m)) if &m == b"NOPE"
    ));

    let mut b = bytes.clone();
    b[4..8].copy_from_slice(&(VERSION + 1).to_le_bytes());
    match CompiledModel::from_bytes(&b) {
        Err(ArtifactError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, VERSION + 1);
            assert_eq!(supported, VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }

    let mut b = bytes.clone();
    b[8..12].copy_from_slice(&ENDIAN_TAG.swap_bytes().to_le_bytes());
    assert!(matches!(
        CompiledModel::from_bytes(&b),
        Err(ArtifactError::BadEndianTag(_))
    ));

    // Section-count corruption is caught by the header checksum.
    let mut b = bytes.clone();
    b[12] ^= 0xFF;
    match CompiledModel::from_bytes(&b) {
        Err(
            e @ ArtifactError::Checksum {
                region: "header", ..
            },
        ) => {
            assert_eq!(e.kind(), "checksum");
        }
        other => panic!("expected header checksum error, got {other:?}"),
    }

    assert!(matches!(
        CompiledModel::from_bytes(&bytes[..bytes.len() - 3]),
        Err(ArtifactError::Truncated { .. })
    ));

    let mut b = bytes.clone();
    b.extend_from_slice(&[0, 0]);
    assert!(matches!(
        CompiledModel::from_bytes(&b),
        Err(ArtifactError::TrailingBytes { extra: 2 })
    ));
}

/// A PACKED payload whose framing checksum is *valid* but whose values
/// disagree with the walk-order weights must still be rejected — the
/// semantic cross-check, not the checksum, is what stops a well-formed file
/// from smuggling in a packed layout the scalar paths would contradict.
#[test]
fn reframed_packed_section_corruption_is_caught_semantically() {
    let bytes = compile_fixture().to_bytes();
    // Walk the section framing (header is 24 bytes; each section is
    // tag u32 · len u64 · payload · fnv u64) to the PACKED section, tag 5.
    let mut pos = 24usize;
    let (payload_start, payload_len) = loop {
        let tag = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
        if tag == 5 {
            break (pos + 12, len);
        }
        pos += 12 + len + 8;
    };
    // Flip the sign bit of the section's last f32 (a lane-padding slot or a
    // weight; either way the stored bits now disagree), then repair the
    // section checksum so only the semantic validation can object.
    let mut b = bytes.clone();
    b[payload_start + payload_len - 1] ^= 0x80;
    let mut framed = Vec::new();
    framed.extend_from_slice(&5u32.to_le_bytes());
    framed.extend_from_slice(&(payload_len as u64).to_le_bytes());
    framed.extend_from_slice(&b[payload_start..payload_start + payload_len]);
    let fixed = fnv64(&framed);
    b[payload_start + payload_len..payload_start + payload_len + 8]
        .copy_from_slice(&fixed.to_le_bytes());
    match CompiledModel::from_bytes(&b) {
        Err(ArtifactError::Invalid { region, detail }) => {
            assert_eq!(region, "PACKED");
            assert!(
                detail.contains("padding") || detail.contains("walk-order"),
                "unexpected detail: {detail}"
            );
        }
        other => panic!("expected semantic PACKED rejection, got {other:?}"),
    }
}

#[test]
fn corruption_battery_over_seeded_models_rejects_everything() {
    let report = run_artifact_check(60, 0xBA77E21, &ArtifactCheckOptions::default());
    assert!(report.passed(), "{}", report.render_text());
    assert_eq!(
        report.rejections.values().sum::<u64>(),
        report.mutations,
        "every mutation must land in a typed-rejection bucket: {:?}",
        report.rejections
    );
}
