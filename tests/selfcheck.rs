//! Integration tier of the differential-testing subsystem: a moderate fuzz
//! budget through the public facade, the injected-bug smoke test, and
//! thread-count invariance of the whole selfcheck report.

use snapea_suite::oracle::{run_case, run_selfcheck, HarnessOptions};
use snapea_suite::tensor::par;

#[test]
fn selfcheck_budget_passes_clean() {
    let report = run_selfcheck(60, 0xC0FFEE, &HarnessOptions::default());
    assert!(report.passed(), "{}", report.render_text());
    assert_eq!(report.cases, 60);
    // The fuzz space must actually exercise speculation: across this budget
    // the executor performs strictly fewer MACs than the dense oracle.
    assert!(
        report.exec_macs < report.dense_macs,
        "no early termination happened across {} cases",
        report.cases
    );
}

#[test]
fn injected_bug_reports_seed_and_config() {
    let opts = HarnessOptions {
        inject_exact_bug: true,
    };
    let report = run_selfcheck(4, 0xC0FFEE, &HarnessOptions::default());
    assert!(report.passed());
    let broken = run_selfcheck(4, 0xC0FFEE, &opts);
    assert_eq!(broken.failures.len(), 4);
    for f in &broken.failures {
        assert!(
            f.config.contains("seed="),
            "config line must carry the seed"
        );
        assert!(!f.messages.is_empty());
        assert!(
            f.minimized.is_some(),
            "conv failures must come with a minimized sub-case"
        );
        // The printed seed replays the exact failing case, standalone.
        assert!(run_case(f.seed, &opts).failure.is_some());
        assert!(run_case(f.seed, &HarnessOptions::default())
            .failure
            .is_none());
    }
    let text = broken.render_text();
    assert!(text.contains("replay: snapea-tool selfcheck --replay 0x"));
}

#[test]
fn selfcheck_report_is_thread_count_invariant() {
    // The executor parallelises across (image, kernel) pairs; the oracle is
    // strictly sequential. Bit-for-bit agreement must therefore hold at any
    // worker count, and the aggregate report must serialize identically.
    let texts: Vec<String> = [1usize, 4]
        .into_iter()
        .map(|n| {
            par::set_threads(n);
            let report = run_selfcheck(30, 42, &HarnessOptions::default());
            assert!(report.passed(), "threads={n}: {}", report.render_text());
            let mut s = String::new();
            report.to_json().write(&mut s);
            s
        })
        .collect();
    par::set_threads(1);
    assert_eq!(
        texts[0], texts[1],
        "selfcheck must not depend on SNAPEA_THREADS"
    );
}
