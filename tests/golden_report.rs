//! Golden-file test pinning the shape of `snapea-tool report --json`.
//!
//! The JSON report is machine-readable output that downstream tooling (and
//! `scripts/check.sh`) consumes, so its exact rendering is part of the CLI
//! contract. The fixture pair lives in `tests/golden/`:
//!
//! * `events.jsonl` — a small structured run-event log;
//! * `report.json` — the expected byte-exact `report --json` output.
//!
//! To regenerate after an intentional format change:
//!
//! ```text
//! snapea-tool report tests/golden/events.jsonl --json > tests/golden/report.json
//! ```

use snapea_cli::args::Args;
use snapea_cli::commands;
use snapea_suite::obs::Json;

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing fixture {path}: {e}"))
}

fn run_report_json() -> String {
    let events = format!("{}/tests/golden/events.jsonl", env!("CARGO_MANIFEST_DIR"));
    let args = Args::parse_with_flags(["report", events.as_str(), "--json"], &["json"]).unwrap();
    commands::run(&args).expect("report succeeds on the fixture log")
}

#[test]
fn report_json_output_matches_golden_file() {
    let got = run_report_json();
    let want = golden("report.json");
    assert_eq!(
        got, want,
        "`snapea-tool report --json` output changed; if intentional, regenerate \
         tests/golden/report.json (see module docs)"
    );
}

#[test]
fn report_json_output_is_parsable_with_expected_fields() {
    // Belt and braces beyond the byte comparison: the document must parse
    // and carry the fields scripts key on.
    let doc = snapea_suite::obs::parse(&run_report_json()).expect("valid json");
    assert_eq!(doc.get("events").and_then(Json::as_u64), Some(10));
    let exec = doc.get("exec").expect("exec section");
    assert_eq!(exec.get("full_macs").and_then(Json::as_u64), Some(1500));
    assert_eq!(exec.get("performed_macs").and_then(Json::as_u64), Some(700));
    let phases = doc
        .get("phases")
        .and_then(Json::as_array)
        .expect("phases array");
    assert_eq!(phases.len(), 3);
    // Rows are ordered by self (exclusive) time: the leaf `repro/train` span
    // outranks its parent `repro`, whose 6 ms are mostly spent in children.
    assert_eq!(
        phases[0].get("path").and_then(Json::as_str),
        Some("repro > repro/train")
    );
    assert_eq!(phases[0].get("self_ms").and_then(Json::as_f64), Some(3.5));
    assert_eq!(phases[1].get("path").and_then(Json::as_str), Some("repro"));
    assert_eq!(phases[1].get("total_ms").and_then(Json::as_f64), Some(6.0));
    assert_eq!(phases[1].get("self_ms").and_then(Json::as_f64), Some(1.25));
}

#[test]
fn shuffled_event_log_resorts_to_the_unique_seq_order() {
    // The sink allocates `seq` under the same lock that writes the file, so
    // a JSONL log shuffled by post-processing (sort, parallel grep, …)
    // re-sorts to exactly one gap-free order.
    let original = golden("events.jsonl");
    let lines: Vec<&str> = original.lines().collect();
    let seq_of = |line: &str| {
        snapea_suite::obs::parse(line)
            .ok()
            .and_then(|e| e.get("seq").and_then(Json::as_u64))
            .expect("every event carries seq")
    };
    let seqs: Vec<u64> = lines.iter().map(|l| seq_of(l)).collect();
    let mut sorted = seqs.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), lines.len(), "seq values are unique");
    assert_eq!(
        sorted,
        (0..lines.len() as u64).collect::<Vec<_>>(),
        "gap-free"
    );

    let mut shuffled: Vec<&str> = lines.clone();
    shuffled.reverse();
    shuffled.swap(0, lines.len() / 2);
    shuffled.sort_by_key(|l| seq_of(l));
    assert_eq!(shuffled, lines, "re-sorting by seq restores the file order");
}
