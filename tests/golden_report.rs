//! Golden-file test pinning the shape of `snapea-tool report --json`.
//!
//! The JSON report is machine-readable output that downstream tooling (and
//! `scripts/check.sh`) consumes, so its exact rendering is part of the CLI
//! contract. The fixture pair lives in `tests/golden/`:
//!
//! * `events.jsonl` — a small structured run-event log;
//! * `report.json` — the expected byte-exact `report --json` output.
//!
//! To regenerate after an intentional format change:
//!
//! ```text
//! snapea-tool report tests/golden/events.jsonl --json > tests/golden/report.json
//! ```

use snapea_cli::args::Args;
use snapea_cli::commands;
use snapea_suite::obs::Json;

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing fixture {path}: {e}"))
}

fn run_report_json() -> String {
    let events = format!("{}/tests/golden/events.jsonl", env!("CARGO_MANIFEST_DIR"));
    let args = Args::parse_with_flags(["report", events.as_str(), "--json"], &["json"]).unwrap();
    commands::run(&args).expect("report succeeds on the fixture log")
}

#[test]
fn report_json_output_matches_golden_file() {
    let got = run_report_json();
    let want = golden("report.json");
    assert_eq!(
        got, want,
        "`snapea-tool report --json` output changed; if intentional, regenerate \
         tests/golden/report.json (see module docs)"
    );
}

#[test]
fn report_json_output_is_parsable_with_expected_fields() {
    // Belt and braces beyond the byte comparison: the document must parse
    // and carry the fields scripts key on.
    let doc = snapea_suite::obs::parse(&run_report_json()).expect("valid json");
    assert_eq!(doc.get("events").and_then(Json::as_u64), Some(5));
    let exec = doc.get("exec").expect("exec section");
    assert_eq!(exec.get("full_macs").and_then(Json::as_u64), Some(1500));
    assert_eq!(exec.get("performed_macs").and_then(Json::as_u64), Some(700));
    assert!(doc
        .get("phases")
        .and_then(Json::as_array)
        .is_some_and(|p| p.len() == 2));
}
