//! End-to-end integration: train → optimize (Algorithm 1) → execute with
//! speculation → simulate on both machines. The whole paper pipeline on a
//! small network.

use snapea_suite::accel::sim::simulate;
use snapea_suite::accel::workload::network_workload;
use snapea_suite::accel::{AccelConfig, EnergyModel};
use snapea_suite::core::optimizer::{Optimizer, OptimizerConfig};
use snapea_suite::core::params::NetworkParams;
use snapea_suite::core::spec_net::{profile_network, SpecNet};
use snapea_suite::nn::data::SynthShapes;
use snapea_suite::nn::train::{evaluate, TrainConfig, Trainer};
use snapea_suite::nn::zoo;
use snapea_suite::tensor::init;

#[test]
fn full_pipeline_train_optimize_simulate() {
    // 1. Train a small network to above-chance accuracy.
    let gen = SynthShapes::new(zoo::INPUT_SIZE, 4);
    let train = gen.generate(96, 1);
    let opt_set = gen.generate(24, 2);
    let eval = gen.generate(48, 3);
    let mut net = zoo::mini_alexnet(4);
    let mut trainer = Trainer::new(TrainConfig {
        lr: 0.01,
        ..TrainConfig::default()
    });
    let mut rng = init::rng(4);
    for _ in 0..8 {
        let _ = trainer.epoch(&mut net, &train, &mut rng);
    }
    let base_acc = evaluate(&net, &eval, 24);
    assert!(base_acc > 0.3, "training failed: {base_acc}");

    // 2. Optimize speculation parameters under a 10% budget.
    let cfg = OptimizerConfig {
        group_candidates: vec![1, 4],
        threshold_quantiles: vec![0.5, 0.9],
        local_configs: 3,
        ..OptimizerConfig::with_epsilon(0.10)
    };
    let out = Optimizer::new(&net, &opt_set, cfg).run();
    assert!(out.accuracy_loss() <= 0.10 + 1e-9);
    assert!(out.final_ops <= out.exact_ops);

    // 3. The speculating network still classifies the held-out set sanely.
    let spec = SpecNet::new(&net, &out.params);
    let spec_acc = spec.accuracy(&eval);
    assert!(
        spec_acc >= base_acc - 0.25,
        "speculation destroyed generalisation: {base_acc} -> {spec_acc}"
    );

    // 4. Simulate: SnaPEA with the optimized parameters must beat the dense
    //    baseline in energy, and exact mode must lower-bound predictive ops.
    let refs: Vec<_> = eval.iter().take(4).collect();
    let batch = SynthShapes::batch_refs(&refs);
    let prof_pred = profile_network(&net, &out.params, &batch, false);
    let prof_exact = profile_network(&net, &NetworkParams::new(), &batch, false);
    assert!(prof_pred.total_ops() <= prof_exact.total_ops());

    let m = EnergyModel::default();
    let wl = network_workload("e2e", &net, &batch, &prof_pred);
    let sn = simulate(&AccelConfig::snapea(), &m, &wl);
    let ey = simulate(&AccelConfig::eyeriss(), &m, &wl.to_dense());
    assert!(
        sn.energy_reduction_over(&ey) > 1.0,
        "predictive SnaPEA must save energy over the dense baseline"
    );
    assert!(sn.speedup_over(&ey) > 1.0, "and cycles");
}

#[test]
fn prediction_stats_track_accuracy_budget() {
    // Tighter budgets must not squash more positive mass than looser ones.
    let gen = SynthShapes::new(zoo::INPUT_SIZE, 4);
    let train = gen.generate(64, 7);
    let opt_set = gen.generate(16, 8);
    let mut net = zoo::mini_squeezenet(4);
    let mut trainer = Trainer::new(TrainConfig {
        lr: 0.01,
        ..TrainConfig::default()
    });
    let mut rng = init::rng(9);
    for _ in 0..6 {
        let _ = trainer.epoch(&mut net, &train, &mut rng);
    }
    let run = |eps: f64| {
        let cfg = OptimizerConfig {
            group_candidates: vec![2, 8],
            threshold_quantiles: vec![0.5, 1.0],
            local_configs: 3,
            ..OptimizerConfig::with_epsilon(eps)
        };
        let out = Optimizer::new(&net, &opt_set, cfg).run();
        let refs: Vec<_> = opt_set.iter().collect();
        let batch = SynthShapes::batch_refs(&refs);
        profile_network(&net, &out.params, &batch, true)
    };
    let tight = run(0.0);
    let loose = run(0.2);
    // A tight budget yields no more false-negative squashing than a loose one.
    assert!(
        tight.stats.false_negative_rate() <= loose.stats.false_negative_rate() + 1e-9,
        "tight {} vs loose {}",
        tight.stats.false_negative_rate(),
        loose.stats.false_negative_rate()
    );
    assert!(tight.total_ops() >= loose.total_ops());
}
