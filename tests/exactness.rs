//! Cross-crate exactness guarantees: SnaPEA's exact mode must never change a
//! network's post-ReLU outputs, on any of the paper's four topologies.

use snapea_suite::core::exec::{execute_conv, LayerConfig};
use snapea_suite::core::params::NetworkParams;
use snapea_suite::core::spec_net::{profile_network, SpecNet};
use snapea_suite::nn::data::SynthShapes;
use snapea_suite::nn::graph::Op;
use snapea_suite::nn::zoo::{self, Workload};

/// Exact-mode execution of every conv layer of every zoo network matches the
/// dense reference after ReLU.
#[test]
fn exact_mode_matches_dense_on_all_workloads() {
    let data = SynthShapes::new(zoo::INPUT_SIZE, 10).generate(2, 99);
    let batch = SynthShapes::batch(&data);
    for w in Workload::ALL {
        let net = w.build(10);
        let acts = net.forward(&batch);
        for id in net.conv_ids() {
            let Op::Conv(conv) = &net.node(id).op else {
                unreachable!()
            };
            let input = &acts[net.node(id).inputs[0]];
            let r = execute_conv(conv, input, &LayerConfig::exact(conv));
            for (a, b) in r.output.iter().zip(acts[id].iter()) {
                assert!(
                    (a.max(0.0) - b.max(0.0)).abs() < 1e-2,
                    "{w}: layer {} diverged ({} vs {})",
                    net.node(id).name,
                    a,
                    b
                );
            }
            assert!(r.profile.total_ops() <= r.profile.full_macs());
        }
    }
}

/// An all-exact `NetworkParams` leaves end-to-end classification untouched.
#[test]
fn exact_spec_net_classifies_identically() {
    let data = SynthShapes::new(zoo::INPUT_SIZE, 10).generate(6, 7);
    for w in [Workload::AlexNet, Workload::SqueezeNet] {
        let net = w.build(10);
        let params = NetworkParams::new();
        let spec = SpecNet::new(&net, &params);
        let batch = SynthShapes::batch(&data);
        let dense_logits = net.logits(&batch);
        let spec_acts = spec.forward(&batch);
        let spec_logits = spec_acts.last().unwrap().to_matrix();
        for (a, b) in spec_logits.iter().zip(dense_logits.iter()) {
            assert!((a - b).abs() < 1e-3, "{w}: logits diverged");
        }
    }
}

/// Exact-mode profiles eliminate MACs on every zoo network (the Figure 1
/// premise turned into an invariant: zero-centred kernels + non-negative
/// inputs ⇒ some windows terminate early).
#[test]
fn exact_mode_saves_macs_on_every_workload() {
    let data = SynthShapes::new(zoo::INPUT_SIZE, 10).generate(2, 3);
    let batch = SynthShapes::batch(&data);
    for w in Workload::ALL {
        let net = w.build(10);
        let prof = profile_network(&net, &NetworkParams::new(), &batch, false);
        assert!(
            prof.savings() > 0.02,
            "{w}: exact mode saved only {:.2}%",
            prof.savings() * 100.0
        );
    }
}
