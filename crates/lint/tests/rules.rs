//! Per-rule fixture tests: every rule must fire on a minimal positive
//! snippet, be suppressed by a reasoned `lint:allow`, and report A1 when
//! the allow is reason-less. Plus the self-application gate: the workspace
//! this crate lives in must lint clean.

use snapea_lint::{lint_source, lint_workspace, FileCtx, FileKind, Finding, RuleId};
use std::path::Path;

fn lib_ctx<'a>(path: &'a str, crate_name: &'a str) -> FileCtx<'a> {
    FileCtx {
        path,
        crate_name,
        kind: FileKind::Lib,
        is_crate_root: false,
    }
}

fn rules_of(findings: &[Finding]) -> Vec<RuleId> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn d1_fires_on_hash_collections_in_result_crates() {
    let ctx = lib_ctx("crates/core/src/x.rs", "core");
    let f = lint_source(&ctx, "use std::collections::HashMap;\n");
    assert_eq!(rules_of(&f), vec![RuleId::D1]);
    assert_eq!(f[0].line, 1);
    assert!(f[0].excerpt.contains("HashMap"));

    // Same source in a non-result crate is fine.
    let ctx = lib_ctx("crates/cli/src/x.rs", "cli");
    assert!(lint_source(&ctx, "use std::collections::HashMap;\n").is_empty());
}

#[test]
fn d1_ignores_strings_comments_and_test_code() {
    let ctx = lib_ctx("crates/tensor/src/x.rs", "tensor");
    let src = "\
// HashMap in a comment\n\
const NAME: &str = \"HashMap\";\n\
#[cfg(test)]\n\
mod tests {\n\
    use std::collections::HashSet;\n\
}\n";
    assert!(lint_source(&ctx, src).is_empty());
}

#[test]
fn d2_fires_on_wall_clock_outside_obs_and_bench() {
    let src = "fn t() -> std::time::Instant { Instant::now() }\n";
    let f = lint_source(&lib_ctx("crates/nn/src/x.rs", "nn"), src);
    assert_eq!(rules_of(&f), vec![RuleId::D2, RuleId::D2]);
    // obs and bench own the wall clock.
    assert!(lint_source(&lib_ctx("crates/obs/src/x.rs", "obs"), src).is_empty());
    assert!(lint_source(&lib_ctx("crates/bench/src/x.rs", "bench"), src).is_empty());
    // Ambient RNG is also nondeterministic state.
    let f = lint_source(
        &lib_ctx("crates/core/src/x.rs", "core"),
        "let mut r = thread_rng();\n",
    );
    assert_eq!(rules_of(&f), vec![RuleId::D2]);
}

#[test]
fn d2_sanctions_the_obs_stopwatch_in_result_crates() {
    // The tracing instrumentation reads the wall clock from result crates
    // (executor layer timing, pool worker lanes, trainer epochs) — but only
    // through `snapea_obs::Stopwatch`/`sink::now_ms`, the one audited
    // entry point. That pattern must stay clean while a raw `Instant` in
    // the same position keeps firing, otherwise the instrumentation could
    // silently regress into unsanctioned clock reads.
    let sanctioned = "fn layer() -> f64 {\n\
                          let clock = snapea_obs::Stopwatch::start();\n\
                          let start_ms = snapea_obs::sink::now_ms();\n\
                          clock.elapsed_ms() + start_ms\n\
                      }\n";
    for (path, name) in [
        ("crates/core/src/exec.rs", "core"),
        ("crates/tensor/src/par.rs", "tensor"),
        ("crates/nn/src/train.rs", "nn"),
    ] {
        assert!(
            lint_source(&lib_ctx(path, name), sanctioned).is_empty(),
            "obs stopwatch flagged in {path}"
        );
    }
    let raw = "fn layer() -> f64 {\n\
                   let clock = std::time::Instant::now();\n\
                   clock.elapsed().as_secs_f64()\n\
               }\n";
    let f = lint_source(&lib_ctx("crates/core/src/exec.rs", "core"), raw);
    assert_eq!(rules_of(&f), vec![RuleId::D2]);
}

#[test]
fn p1_fires_on_panic_paths_in_lib_code_only() {
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
               fn g(x: Option<u8>) -> u8 { x.expect(\"present\") }\n\
               fn h() { panic!(\"boom\") }\n\
               fn t() { todo!() }\n";
    let f = lint_source(&lib_ctx("crates/obs/src/x.rs", "obs"), src);
    assert_eq!(
        rules_of(&f),
        vec![RuleId::P1, RuleId::P1, RuleId::P1, RuleId::P1]
    );
    // Binaries may print-and-exit; P1 is a library rule.
    let bin = FileCtx {
        path: "crates/cli/src/bin/x.rs",
        crate_name: "cli",
        kind: FileKind::Bin,
        is_crate_root: false,
    };
    assert!(lint_source(&bin, src).is_empty());
}

#[test]
fn p1_does_not_fire_on_unwrap_or_family_or_test_code() {
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n\
               fn g(x: Option<u8>) -> u8 { x.unwrap_or_else(|| 1) }\n\
               #[test]\n\
               fn t() { Some(1u8).unwrap(); }\n";
    assert!(lint_source(&lib_ctx("crates/core/src/x.rs", "core"), src).is_empty());
}

#[test]
fn p2_fires_on_indexing_in_hot_loops_only() {
    let hot = lib_ctx("crates/tensor/src/matrix.rs", "tensor");
    let src = "fn k(out: &mut [f32], b: &[f32]) {\n\
                   for j in 0..out.len() {\n\
                       out[j] += b[j];\n\
                   }\n\
                   let first = b[0];\n\
               }\n";
    let f = lint_source(&hot, src);
    // Two index sites inside the loop; the one outside any loop is free.
    assert_eq!(rules_of(&f), vec![RuleId::P2, RuleId::P2]);
    assert_eq!(f[0].line, 3);
    // The same code outside the hot set is fine.
    assert!(lint_source(&lib_ctx("crates/tensor/src/other.rs", "tensor"), src).is_empty());
}

#[test]
fn p2_fn_scoped_allow_covers_the_whole_body() {
    let hot = lib_ctx("crates/tensor/src/matrix.rs", "tensor");
    let src = "// lint:allow(P2) j < out.len() by the loop bound; b pinned same length\n\
               fn k(out: &mut [f32], b: &[f32]) {\n\
                   for j in 0..out.len() {\n\
                       out[j] += b[j];\n\
                   }\n\
               }\n";
    assert!(lint_source(&hot, src).is_empty());
}

#[test]
fn allow_binds_through_attribute_lines() {
    // A `#[allow(clippy::...)]` stacked between the lint:allow comment and
    // the statement (the clippy.toml mirror sites do exactly this) must not
    // steal the binding: the allow covers the annotated statement, and on a
    // fn item still widens over the whole body.
    let ctx = lib_ctx("crates/nn/src/x.rs", "nn");
    let stmt = "fn f(v: &[f32]) -> f32 {\n\
                \x20   // lint:allow(P1) v is non-empty by construction\n\
                \x20   #[allow(clippy::disallowed_methods)]\n\
                \x20   let last = *v.last().expect(\"non-empty\");\n\
                \x20   last\n\
                }\n";
    assert!(
        lint_source(&ctx, stmt).is_empty(),
        "{:?}",
        lint_source(&ctx, stmt)
    );

    let item = "// lint:allow(P1) both unwraps guarded by the is_empty check above\n\
                #[inline]\n\
                fn g(v: &[f32]) -> f32 {\n\
                \x20   *v.first().unwrap() + *v.last().unwrap()\n\
                }\n";
    assert!(
        lint_source(&ctx, item).is_empty(),
        "{:?}",
        lint_source(&ctx, item)
    );
}

#[test]
fn allow_on_tail_expression_does_not_leak_into_next_fn() {
    // An allow bound to a tail expression (no trailing `;`) must stay
    // line-scoped: the forward scan must stop at the block's closing `}`
    // rather than run on into the next `fn` item and widen over its body.
    let ctx = lib_ctx("crates/nn/src/x.rs", "nn");
    let src = "fn first(v: &[f32]) -> f32 {\n\
               \x20   // lint:allow(P1) v is non-empty by construction\n\
               \x20   *v.last().expect(\"non-empty\")\n\
               }\n\
               fn second(v: &[f32]) -> f32 {\n\
               \x20   *v.first().expect(\"non-empty\")\n\
               }\n";
    let f = lint_source(&ctx, src);
    assert_eq!(rules_of(&f), vec![RuleId::P1]);
    assert_eq!(f[0].line, 6, "second's expect must not be suppressed");
}

#[test]
fn p2_ignores_slice_types_and_impl_for() {
    let hot = lib_ctx("crates/tensor/src/matrix.rs", "tensor");
    let src = "struct W;\n\
               impl Default for W {\n\
                   fn default() -> W {\n\
                       let _v: &[f32] = &[];\n\
                       W\n\
                   }\n\
               }\n";
    assert!(lint_source(&hot, src).is_empty());
}

#[test]
fn n1_fires_on_narrow_casts_in_hot_files() {
    let hot = lib_ctx("crates/core/src/exec.rs", "core");
    let f = lint_source(&hot, "fn c(x: usize) -> u32 { x as u32 }\n");
    assert_eq!(rules_of(&f), vec![RuleId::N1]);
    // Widening and float casts are not silent-truncation hazards.
    assert!(lint_source(&hot, "fn c(x: u32) -> u64 { x as u64 }\n").is_empty());
    assert!(lint_source(&hot, "fn c(x: usize) -> f64 { x as f64 }\n").is_empty());
    // Cold files may cast (clippy covers general cast hygiene).
    let cold = lib_ctx("crates/core/src/params.rs", "core");
    assert!(lint_source(&cold, "fn c(x: usize) -> u32 { x as u32 }\n").is_empty());
}

#[test]
fn s1_requires_forbid_unsafe_on_crate_roots() {
    let root = FileCtx {
        path: "crates/core/src/lib.rs",
        crate_name: "core",
        kind: FileKind::Lib,
        is_crate_root: true,
    };
    let f = lint_source(&root, "pub mod exec;\n");
    assert_eq!(rules_of(&f), vec![RuleId::S1]);
    assert!(lint_source(&root, "#![forbid(unsafe_code)]\npub mod exec;\n").is_empty());
    // A crate with an audited unsafe core may downgrade to `deny` (so
    // per-site `#[allow(unsafe_code)]` is possible); the root gate is
    // still satisfied.
    assert!(lint_source(&root, "#![deny(unsafe_code)]\npub mod exec;\n").is_empty());
}

#[test]
fn s1_flags_every_unsafe_token_unless_justified() {
    let ctx = lib_ctx("crates/tensor/src/par.rs", "tensor");
    // A bare unsafe block is a finding at its line even though the crate
    // root gate lives in another file.
    let f = lint_source(&ctx, "fn f(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n");
    assert_eq!(rules_of(&f), vec![RuleId::S1]);
    assert_eq!(f[0].line, 2);
    // A reasoned allow above the fn covers the whole body (fn scoping),
    // and the soundness argument is mandatory — that is the audit trail.
    let justified = "// lint:allow(S1) caller guarantees p is valid for reads\n\
                     fn f(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n";
    assert!(lint_source(&ctx, justified).is_empty());
    // `unsafe impl` wants the allow directly above the impl line.
    let imp = "struct B(*const ());\n\
               // lint:allow(S1) field only dereferenced under the pool's join bracket\n\
               unsafe impl Send for B {}\n";
    assert!(lint_source(&imp_ctx(), imp).is_empty());
    // Unsafe confined to #[cfg(test)] regions is outside S1's remit (the
    // shipping library is what the audit covers).
    let test_only = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
                     let x = 1u32;\n        let p = &x as *const u32;\n        \
                     assert_eq!(unsafe { *p }, 1);\n    }\n}\n";
    assert!(lint_source(&ctx, test_only).is_empty());
}

fn imp_ctx() -> FileCtx<'static> {
    lib_ctx("crates/tensor/src/par.rs", "tensor")
}

#[test]
fn reasoned_allow_suppresses_and_is_consumed() {
    let ctx = lib_ctx("crates/core/src/x.rs", "core");
    let src = "// lint:allow(D1) membership-only set, never iterated into results\n\
               use std::collections::HashSet;\n";
    assert!(lint_source(&ctx, src).is_empty());
}

#[test]
fn reasonless_allow_is_itself_a_finding_and_suppresses_nothing() {
    let ctx = lib_ctx("crates/core/src/x.rs", "core");
    let src = "// lint:allow(D1)\nuse std::collections::HashSet;\n";
    let f = lint_source(&ctx, src);
    // Findings sort by line: the A1 on the comment line precedes the D1.
    assert_eq!(rules_of(&f), vec![RuleId::A1, RuleId::D1]);
    let a1 = &f[0];
    assert_eq!(a1.line, 1);
    assert!(a1.excerpt.contains("without a reason"), "{}", a1.excerpt);
}

#[test]
fn unknown_rule_and_unused_allow_are_findings() {
    let ctx = lib_ctx("crates/core/src/x.rs", "core");
    let f = lint_source(&ctx, "// lint:allow(Z9) because\nlet x = 1;\n");
    assert_eq!(rules_of(&f), vec![RuleId::A1]);
    assert!(f[0].excerpt.contains("unknown rule"), "{}", f[0].excerpt);

    let f = lint_source(&ctx, "// lint:allow(D1) stale justification\nlet x = 1;\n");
    assert_eq!(rules_of(&f), vec![RuleId::A1]);
    assert!(
        f[0].excerpt.contains("suppresses no finding"),
        "{}",
        f[0].excerpt
    );
}

#[test]
fn allow_only_covers_its_own_rule() {
    let ctx = lib_ctx("crates/core/src/x.rs", "core");
    let src = "// lint:allow(D2) wrong rule for this line\n\
               use std::collections::HashSet;\n";
    let f = lint_source(&ctx, src);
    // D1 still fires, and the D2 allow is unused (A1 sorts first by line).
    assert_eq!(rules_of(&f), vec![RuleId::A1, RuleId::D1]);
}

#[test]
fn stacked_allows_share_one_target_line() {
    let hot = lib_ctx("crates/core/src/exec.rs", "core");
    let src = "fn f(xs: &[u32]) -> u32 {\n\
                   let mut s = 0u32;\n\
                   for i in 0..xs.len() {\n\
                       // lint:allow(P2) i < xs.len() by the loop bound\n\
                       // lint:allow(N1) sum bounded by window count < 2^32\n\
                       s += xs[i] as u32;\n\
                   }\n\
                   s\n\
               }\n";
    assert!(lint_source(&hot, src).is_empty());
}

#[test]
fn finding_json_shape_is_stable() {
    let ctx = lib_ctx("crates/core/src/x.rs", "core");
    let f = lint_source(&ctx, "use std::collections::HashMap;\n");
    let json = f[0].to_json_string();
    assert!(json.contains("\"rule\":\"D1\""), "{json}");
    assert!(json.contains("\"file\":\"crates/core/src/x.rs\""), "{json}");
    assert!(json.contains("\"line\":1"), "{json}");
    assert!(json.contains("\"excerpt\":"), "{json}");
    assert!(json.contains("\"hint\":"), "{json}");
}

/// The self-application gate: the workspace this crate is part of must
/// lint clean. Any future violation anywhere in the tree fails this test
/// before check.sh even reaches the CLI stage.
#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = lint_workspace(&root).expect("workspace walk succeeds");
    assert!(
        report.files_scanned > 40,
        "scanned {}",
        report.files_scanned
    );
    assert!(
        report.passed(),
        "workspace must lint clean, got {} finding(s):\n{}",
        report.findings.len(),
        report.render_text()
    );
}
