//! Fixture tests for the call-graph rules (R1/R2/R3): every finding the
//! graph pass can emit is demonstrated here, plus the allow grammar at
//! chain links and the workspace self-application gate.

use snapea_lint::{
    find_workspace_root, lint_sources, lint_workspace_opts, FileKind, LintOptions, RuleId,
    SourceSpec,
};
use std::path::Path;

fn spec(path: &str, crate_name: &str, source: &str) -> SourceSpec {
    SourceSpec {
        path: path.to_string(),
        crate_name: crate_name.to_string(),
        kind: FileKind::Lib,
        is_crate_root: false,
        source: source.to_string(),
    }
}

fn graph() -> LintOptions {
    LintOptions { graph: true }
}

// ---------------------------------------------------------------- R1 --

#[test]
fn r1_wall_clock_reachable_from_result_path_fn() {
    // The root lives in a result-path file and reaches Instant::now()
    // two calls away, through a sibling crate.
    let a = spec(
        "crates/core/src/exec.rs",
        "core",
        "pub fn walk() -> u64 {\n    helper()\n}\n\
         fn helper() -> u64 {\n    snapea_nn::sample()\n}\n",
    );
    let b = spec(
        "crates/nn/src/lib.rs",
        "nn",
        "pub fn sample() -> u64 {\n    let t = std::time::Instant::now();\n    0\n}\n",
    );
    let findings = lint_sources(&[a, b], &graph());
    let r1: Vec<_> = findings.iter().filter(|f| f.rule == RuleId::R1).collect();
    assert_eq!(r1.len(), 1, "findings: {findings:?}");
    let f = r1[0];
    assert_eq!(f.file, "crates/nn/src/lib.rs");
    assert_eq!(f.line, 2);
    let summary = f.chain_summary();
    assert_eq!(
        summary,
        "walk() \u{2192} helper() \u{2192} sample() \u{2192} std::time::Instant"
    );
    // Every edge carries a file:line span.
    assert_eq!(f.chain.len(), 3);
    assert_eq!(f.chain[0].file, "crates/core/src/exec.rs");
    assert_eq!(f.chain[0].line, 2);
    assert_eq!(f.chain[2].to, "std::time::Instant");
}

#[test]
fn r1_env_read_reachable() {
    let a = spec(
        "crates/tensor/src/matrix.rs",
        "tensor",
        "pub fn matmul() {\n    config()\n}\n\
         fn config() {\n    let v = std::env::var(\"X\");\n}\n",
    );
    let findings = lint_sources(&[a], &graph());
    let r1: Vec<_> = findings.iter().filter(|f| f.rule == RuleId::R1).collect();
    assert_eq!(r1.len(), 1, "findings: {findings:?}");
    assert!(r1[0].chain_summary().ends_with("std::env::var"));
}

#[test]
fn r1_chain_stops_at_obs_boundary() {
    // Calling into obs is sanctioned: what obs does with the clock is
    // its charter. No finding.
    let a = spec(
        "crates/core/src/exec.rs",
        "core",
        "pub fn walk() {\n    snapea_obs::stamp()\n}\n",
    );
    let b = spec(
        "crates/obs/src/lib.rs",
        "obs",
        "pub fn stamp() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
    );
    let findings = lint_sources(&[a, b], &graph());
    assert!(
        findings.iter().all(|f| f.rule != RuleId::R1),
        "findings: {findings:?}"
    );
}

#[test]
fn r1_allow_at_sink_link_suppresses() {
    let a = spec(
        "crates/core/src/exec.rs",
        "core",
        "pub fn walk() {\n    config()\n}\n\
         fn config() {\n    // lint:allow(R1) sanctioned config read at pool construction\n    \
         let v = std::env::var(\"X\");\n}\n",
    );
    let findings = lint_sources(&[a], &graph());
    assert!(
        findings.is_empty(),
        "allow at the sink link must suppress: {findings:?}"
    );
}

#[test]
fn r1_allow_at_root_fn_suppresses_whole_chain() {
    let a = spec(
        "crates/core/src/exec.rs",
        "core",
        "// lint:allow(R1) this walk is diagnostics-only, not result-affecting\n\
         pub fn walk() {\n    config()\n}\n\
         fn config() {\n    let v = std::env::var(\"X\");\n}\n",
    );
    let findings = lint_sources(&[a], &graph());
    assert!(
        findings.is_empty(),
        "fn-scoped allow above the root must cover the call link: {findings:?}"
    );
}

#[test]
fn r1_not_run_without_graph_option() {
    let a = spec(
        "crates/core/src/exec.rs",
        "core",
        "pub fn walk() {\n    config()\n}\n\
         fn config() {\n    let v = std::env::var(\"X\");\n}\n",
    );
    let findings = lint_sources(&[a], &LintOptions::default());
    assert!(findings.is_empty(), "findings: {findings:?}");
}

// ---------------------------------------------------------------- R2 --

#[test]
fn r2_panic_chain_from_pub_api() {
    let a = spec(
        "crates/nn/src/lib.rs",
        "nn",
        "pub fn api(x: Option<u32>) -> u32 {\n    helper(x)\n}\n\
         fn helper(x: Option<u32>) -> u32 {\n    inner(x)\n}\n\
         fn inner(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    );
    let findings = lint_sources(&[a], &graph());
    let r2: Vec<_> = findings.iter().filter(|f| f.rule == RuleId::R2).collect();
    assert_eq!(r2.len(), 1, "findings: {findings:?}");
    let f = r2[0];
    assert_eq!(
        f.chain_summary(),
        "api() \u{2192} helper() \u{2192} inner() \u{2192} .unwrap()"
    );
    // Complete chain with a span per edge.
    assert_eq!(f.chain.len(), 3);
    for link in &f.chain {
        assert_eq!(link.file, "crates/nn/src/lib.rs");
        assert!(link.line > 0);
    }
    // Note: the direct `.unwrap()` also fires per-file P1 — by design,
    // the graph pass adds the chain evidence on top.
    assert!(findings.iter().any(|f| f.rule == RuleId::P1));
}

#[test]
fn r2_audited_sink_is_not_a_source() {
    // A valid P1 allow at the sink audits every path to it.
    let a = spec(
        "crates/nn/src/lib.rs",
        "nn",
        "pub fn api(x: Option<u32>) -> u32 {\n    helper(x)\n}\n\
         fn helper(x: Option<u32>) -> u32 {\n    // lint:allow(P1) x is checked Some by api's caller contract\n    \
         x.unwrap()\n}\n",
    );
    let findings = lint_sources(&[a], &graph());
    assert!(findings.is_empty(), "findings: {findings:?}");
}

#[test]
fn r2_restricted_pub_is_not_a_root() {
    let a = spec(
        "crates/nn/src/lib.rs",
        "nn",
        "pub(crate) fn api(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    );
    let findings = lint_sources(&[a], &graph());
    // P1 still fires per-file, but no R2 chain: pub(crate) is not API.
    assert!(
        findings.iter().all(|f| f.rule != RuleId::R2),
        "findings: {findings:?}"
    );
}

#[test]
fn r2_allow_at_intermediate_link_suppresses() {
    // The sink is *not* P1-audited (so the per-file P1 finding stays),
    // but the R2 chain is suppressed at the call link.
    let a = spec(
        "crates/nn/src/lib.rs",
        "nn",
        "pub fn api(x: Option<u32>) -> u32 {\n    // lint:allow(R2) helper's contract guarantees Some here\n    \
         helper(x)\n}\n\
         fn helper(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    );
    let findings = lint_sources(&[a], &graph());
    assert!(
        findings.iter().all(|f| f.rule != RuleId::R2),
        "R2 must be suppressed at the intermediate link: {findings:?}"
    );
    assert!(
        findings.iter().all(|f| f.rule != RuleId::A1),
        "the R2 allow was used and must not rot: {findings:?}"
    );
    // The direct P1 finding at the sink is independent and remains.
    assert_eq!(
        findings.iter().filter(|f| f.rule == RuleId::P1).count(),
        1,
        "findings: {findings:?}"
    );
}

// ---------------------------------------------------------------- R3 --

#[test]
fn r3_mut_capture_in_par_closure() {
    let a = spec(
        "crates/nn/src/lib.rs",
        "nn",
        "pub fn fanout(tasks: Vec<u32>, totals: Vec<u32>) {\n    \
         snapea_tensor::par::run_tasks(tasks, |i, t| {\n        \
         let sink = &mut totals;\n    });\n}\n",
    );
    let findings = lint_sources(&[a], &graph());
    let r3: Vec<_> = findings.iter().filter(|f| f.rule == RuleId::R3).collect();
    assert_eq!(r3.len(), 1, "findings: {findings:?}");
    let f = r3[0];
    assert!(f.chain_summary().contains("run_tasks"));
    assert!(f.chain_summary().ends_with("captures `&mut totals`"));
}

#[test]
fn r3_assignment_to_captured_state() {
    let a = spec(
        "crates/nn/src/lib.rs",
        "nn",
        "pub fn fanout(tasks: Vec<u32>, mut total: u32) {\n    \
         snapea_tensor::par::parallel_for(8, 1, |lo, hi| {\n        \
         total = lo as u32;\n    });\n}\n",
    );
    let findings = lint_sources(&[a], &graph());
    let r3: Vec<_> = findings.iter().filter(|f| f.rule == RuleId::R3).collect();
    assert_eq!(r3.len(), 1, "findings: {findings:?}");
    assert!(r3[0]
        .chain_summary()
        .ends_with("assigns to captured `total`"));
}

#[test]
fn r3_mutator_method_on_captured_collection() {
    let a = spec(
        "crates/nn/src/lib.rs",
        "nn",
        "pub fn fanout(tasks: Vec<u32>, mut log: Vec<u32>) {\n    \
         snapea_tensor::par::run_tasks(tasks, |i, t| {\n        \
         log.push(i as u32);\n    });\n}\n",
    );
    let findings = lint_sources(&[a], &graph());
    let r3: Vec<_> = findings.iter().filter(|f| f.rule == RuleId::R3).collect();
    assert_eq!(r3.len(), 1, "findings: {findings:?}");
    assert!(r3[0]
        .chain_summary()
        .ends_with("mutates captured `log` (.push())"));
}

#[test]
fn r3_locals_and_params_are_fine() {
    // Mutating closure params and closure-local state is the pool's
    // whole design (each worker owns its task slab): no finding.
    let a = spec(
        "crates/nn/src/lib.rs",
        "nn",
        "pub fn fanout(tasks: Vec<(usize, Vec<f32>)>) {\n    \
         snapea_tensor::par::run_tasks(tasks, |_, (row0, slab)| {\n        \
         let mut acc = Vec::new();\n        acc.push(1u32);\n        \
         for v in slab.iter_mut() {\n            *v = 0.0;\n        }\n        \
         slab.fill(0.0);\n    });\n}\n",
    );
    let findings = lint_sources(&[a], &graph());
    assert!(findings.is_empty(), "findings: {findings:?}");
}

#[test]
fn r3_allow_at_dispatch_suppresses() {
    let a = spec(
        "crates/nn/src/lib.rs",
        "nn",
        "pub fn fanout(tasks: Vec<u32>, mut log: Vec<u32>) {\n    \
         snapea_tensor::par::run_tasks(tasks, |i, t| {\n        \
         // lint:allow(R3) log is task-partitioned; workers touch disjoint ranges\n        \
         log.push(i as u32);\n    });\n}\n",
    );
    let findings = lint_sources(&[a], &graph());
    assert!(findings.is_empty(), "findings: {findings:?}");
}

// ------------------------------------------------- allow hygiene (A1) --

#[test]
fn unused_graph_allow_fires_a1_only_under_graph() {
    let src = "// lint:allow(R1) nothing here actually reaches a sink\n\
               pub fn quiet() {}\n";
    let a = spec("crates/core/src/exec.rs", "core", src);
    // Without the graph pass the allow is exempt (only the graph pass
    // could observe what it suppresses)…
    let findings = lint_sources(std::slice::from_ref(&a), &LintOptions::default());
    assert!(findings.is_empty(), "findings: {findings:?}");
    // …with the graph pass on, an allow that suppresses nothing rots.
    let findings = lint_sources(&[a], &graph());
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    assert_eq!(findings[0].rule, RuleId::A1);
    assert!(findings[0].excerpt.contains("suppresses no finding"));
}

// ------------------------------------------------- self-application --

#[test]
fn workspace_graph_lints_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root findable from the lint crate");
    let report = lint_workspace_opts(&root, &graph()).expect("walk succeeds");
    assert!(report.graph);
    assert!(
        report.findings.is_empty(),
        "graph lint must be clean on our own workspace:\n{}",
        report.render_text()
    );
}
