//! Property/fuzz tests for the lexer: the lint must never panic on the
//! code it inspects, whatever that code looks like. Inputs are generated
//! from the oracle's deterministic SplitMix64 generator, so any failure
//! replays from the printed seed.
//!
//! Two properties hold for *every* input:
//!
//! 1. **Totality** — `lex` returns (no panic, no hang) even on malformed
//!    input: unterminated strings, stray quotes, invalid UTF-8-adjacent
//!    byte soup (we stay in `&str` land, but arbitrary chars).
//! 2. **Span monotonicity** — token line numbers are non-decreasing and
//!    never exceed the input's line count.

use snapea_lint::lexer::{lex, TokKind};
use snapea_oracle::rng::{mix, OracleRng};

/// Checks both fuzz properties on one input, with the seed in failures.
fn check(src: &str, seed: u64) {
    let tokens = lex(src);
    let line_count = src.lines().count().max(1);
    let mut prev = 1usize;
    for t in &tokens {
        assert!(
            t.line >= prev,
            "seed {seed}: line numbers must be non-decreasing \
             ({} after {prev})\ninput: {src:?}",
            t.line
        );
        assert!(
            t.line <= line_count,
            "seed {seed}: token line {} exceeds input line count {line_count}\ninput: {src:?}",
            t.line
        );
        prev = t.line;
    }
}

/// Random token soup: identifiers, punctuation, quotes, digits, and
/// newlines thrown together with no grammatical structure.
#[test]
fn random_token_soup_never_panics() {
    const PIECES: [&str; 24] = [
        "fn",
        "ident",
        "0x1f",
        "1_000u64",
        "1.5e-3",
        "'a'",
        "'a",
        "b'\\n'",
        "\"str\"",
        "r#\"raw\"#",
        "r\"half",
        "\"unterminated",
        "/*",
        "*/",
        "//",
        "///",
        "::",
        ".",
        "[",
        "]",
        "{",
        "#",
        "$",
        "\\",
    ];
    for case in 0..512u64 {
        let seed = mix(0x5EED_1E8A, case);
        let mut rng = OracleRng::new(seed);
        let mut src = String::new();
        for _ in 0..rng.range(0, 80) {
            src.push_str(PIECES[rng.range(0, PIECES.len() - 1)]);
            match rng.range(0, 4) {
                0 => src.push('\n'),
                1 => src.push(' '),
                _ => {}
            }
        }
        check(&src, seed);
    }
}

/// Random raw chars, including control characters and non-ASCII.
#[test]
fn random_chars_never_panic() {
    for case in 0..256u64 {
        let seed = mix(0xC0DE_500F, case);
        let mut rng = OracleRng::new(seed);
        let mut src = String::new();
        for _ in 0..rng.range(0, 200) {
            let c = match rng.range(0, 6) {
                0 => char::from(rng.range(0x20, 0x7f) as u8),
                1 => char::from(rng.range(0, 0x20) as u8), // control chars
                2 => '\n',
                3 => '"',
                4 => '\'',
                _ => char::from_u32(rng.range(0x80, 0x2200) as u32).unwrap_or('\u{fffd}'),
            };
            src.push(c);
        }
        check(&src, seed);
    }
}

/// Nested block comments to random depth, optionally left unterminated.
#[test]
fn nested_block_comments() {
    for case in 0..128u64 {
        let seed = mix(0x00B1_0CC0, case);
        let mut rng = OracleRng::new(seed);
        let depth = rng.range(1, 12);
        let mut src = String::new();
        for _ in 0..depth {
            src.push_str("/* open\n");
        }
        src.push_str("core text /* and */ more\n");
        let closes = if rng.chance(0.5) {
            depth
        } else {
            rng.range(0, depth)
        };
        for _ in 0..closes {
            src.push_str("*/\n");
        }
        src.push_str("fn after() {}\n");
        check(&src, seed);
        // Fully-closed comments must lex to exactly one BlockComment.
        if closes == depth {
            let tokens = lex(&src);
            let comments = tokens
                .iter()
                .filter(|t| matches!(t.kind, TokKind::BlockComment))
                .count();
            assert_eq!(
                comments, 1,
                "seed {seed}: nested comment collapses to one token"
            );
            assert!(
                tokens.iter().any(|t| t.kind.ident() == Some("after")),
                "seed {seed}: code after the comment must still lex"
            );
        }
    }
}

/// Raw strings with every hash depth 0–8, with tricky interiors: quotes,
/// lesser hash runs, and newlines must all stay inside the literal.
#[test]
fn raw_strings_with_hash_depths() {
    for case in 0..128u64 {
        let seed = mix(0x4A57_0123, case);
        let mut rng = OracleRng::new(seed);
        let depth = rng.range(0, 9);
        let hashes = "#".repeat(depth);
        let mut interior = match rng.range(0, 4) {
            0 => "plain".to_string(),
            1 => format!(
                "quote \" inside and {} short",
                "#".repeat(depth.saturating_sub(1))
            ),
            2 => "multi\nline\ncontent".to_string(),
            _ => "trailing hash run #####".to_string(),
        };
        if depth == 0 {
            // A hashless raw string terminates at any quote.
            interior = interior.replace('"', "");
        }
        let src = format!("let x = r{hashes}\"{interior}\"{hashes};\nfn after() {{}}\n");
        check(&src, seed);
        let tokens = lex(&src);
        assert!(
            tokens.iter().any(|t| t.kind == TokKind::Str),
            "seed {seed}: raw string must lex as one Str token: {src:?}"
        );
        assert!(
            tokens.iter().any(|t| t.kind.ident() == Some("after")),
            "seed {seed}: code after the raw string must still lex: {src:?}"
        );
        // Nothing in the interior may leak out as an identifier.
        assert!(
            tokens.iter().all(|t| t.kind.ident() != Some("quote")),
            "seed {seed}: raw-string interior leaked into the token stream: {src:?}"
        );
    }
}

/// Byte and char literals, including escapes, against the char/lifetime
/// ambiguity (`'a'` vs `'a`).
#[test]
fn byte_and_char_literals() {
    const CASES: [(&str, &str); 8] = [
        ("'a'", "char"),
        ("'\\n'", "char"),
        ("'\\''", "char"),
        ("'\\u{1f600}'", "char"),
        ("b'a'", "char"),
        ("b'\\xff'", "char"),
        ("'static", "lifetime"),
        ("'_", "lifetime"),
    ];
    for (lit, want) in CASES {
        let src = format!("let x = {lit};\nfn after() {{}}\n");
        check(&src, 0);
        let tokens = lex(&src);
        let got_char = tokens.iter().any(|t| t.kind == TokKind::Char);
        let got_lifetime = tokens.iter().any(|t| t.kind == TokKind::Lifetime);
        match want {
            "char" => assert!(
                got_char && !got_lifetime,
                "{lit}: want Char, got {tokens:?}"
            ),
            _ => assert!(
                got_lifetime && !got_char,
                "{lit}: want Lifetime, got {tokens:?}"
            ),
        }
        assert!(
            tokens.iter().any(|t| t.kind.ident() == Some("after")),
            "{lit}: code after the literal must still lex"
        );
    }
}

/// Truncating valid code at every byte boundary must never panic — the
/// half-written state of an editor save is a lint input too.
#[test]
fn truncated_real_code_never_panics() {
    let src = "/// doc\npub fn f(x: &[f32; 4]) -> f32 {\n    let s = r#\"raw \"q\" \"#;\n    \
               x.iter().sum::<f32>() /* t */ + b'\\n' as f32\n}\n";
    for cut in 0..src.len() {
        if src.is_char_boundary(cut) {
            check(&src[..cut], cut as u64);
        }
    }
}
