//! The workspace lint engine: runs the per-file rules over every source,
//! optionally layers the call-graph pass (R1/R2/R3) on top, applies the
//! reasoned-allow grammar to both, and runs the A1 hygiene pass last.

use crate::graph::CallGraph;
use crate::parse::{parse_source, FileItems};
use crate::rules::{analyze, FileAnalysis, FileCtx, FileKind, Finding, RuleId};
use std::collections::BTreeMap;

/// One source file handed to [`lint_sources`]: the workspace walker
/// builds these, and tests can fabricate them in memory.
#[derive(Debug, Clone)]
pub struct SourceSpec {
    /// Workspace-relative path, used in findings.
    pub path: String,
    /// Crate directory name (`tensor`, `core`, …; `suite` for the
    /// facade crate at the workspace root).
    pub crate_name: String,
    /// Library or binary source.
    pub kind: FileKind,
    /// Whether this is a crate root (`lib.rs`), which S1 checks.
    pub is_crate_root: bool,
    /// Full file text.
    pub source: String,
}

/// Engine options.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Run the transitive call-graph rules (R1/R2/R3) in addition to the
    /// per-file rules.
    pub graph: bool,
}

/// Lints a set of sources as one workspace. Findings come back sorted by
/// `(file, line, rule)`.
pub fn lint_sources(files: &[SourceSpec], opts: &LintOptions) -> Vec<Finding> {
    let mut analyses: Vec<FileAnalysis> = Vec::new();
    let mut parsed: Vec<FileItems> = Vec::new();
    let mut findings: Vec<Finding> = Vec::new();

    for spec in files {
        let ctx = FileCtx {
            path: &spec.path,
            crate_name: &spec.crate_name,
            kind: spec.kind,
            is_crate_root: spec.is_crate_root,
        };
        let mut fa = analyze(&ctx, &spec.source);
        findings.extend(fa.apply_allows());
        analyses.push(fa);
        if opts.graph {
            parsed.push(parse_source(&spec.source));
        }
    }

    if opts.graph {
        let ctx_items: Vec<(FileCtx<'_>, FileItems)> = files
            .iter()
            .zip(parsed)
            .map(|(spec, items)| {
                (
                    FileCtx {
                        path: &spec.path,
                        crate_name: &spec.crate_name,
                        kind: spec.kind,
                        is_crate_root: spec.is_crate_root,
                    },
                    items,
                )
            })
            .collect();
        let graph = CallGraph::build(&ctx_items);

        let by_path: BTreeMap<&str, &FileAnalysis> =
            analyses.iter().map(|fa| (fa.path.as_str(), fa)).collect();
        let excerpt = |path: &str, line: usize| -> String {
            by_path
                .get(path)
                .map(|fa| fa.excerpt(line))
                .unwrap_or_default()
        };
        // An R2 panic sink already audited by a valid per-file P1 allow is
        // not a source: the audit at the sink covers every path to it.
        let audited = |path: &str, line: usize| -> bool {
            by_path
                .get(path)
                .is_some_and(|fa| fa.allows.iter().any(|a| a.covers(RuleId::P1, line)))
        };

        let mut graph_findings = graph.r1_findings(&excerpt);
        graph_findings.extend(graph.r2_findings(&excerpt, &audited));
        graph_findings.extend(graph.r3_findings(&excerpt));
        drop(by_path);

        // Allow application for chain findings: a reasoned
        // `lint:allow(<rule>)` covering *any* link of the chain — the
        // call site or the sink, in that link's file — suppresses the
        // finding and marks the allow used. An allow above the fn that
        // opens a chain covers it too (fn-scoped allows span the body,
        // hence the call line).
        for f in graph_findings {
            let mut suppressed = false;
            'links: for link in &f.chain {
                if let Some(fa) = analyses.iter_mut().find(|fa| fa.path == link.file) {
                    if let Some(a) = fa.allows.iter_mut().find(|a| a.covers(f.rule, link.line)) {
                        a.used = true;
                        suppressed = true;
                        break 'links;
                    }
                }
            }
            if !suppressed {
                findings.push(f);
            }
        }
    }

    for fa in &analyses {
        findings.extend(fa.a1_findings(opts.graph));
    }

    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    findings
}
