//! A lightweight item parser over the token stream — just enough
//! structure for the call-graph rules.
//!
//! This is deliberately *not* a Rust grammar. It recovers, per file:
//!
//! * `fn` items with their owning `impl` type (when any), visibility,
//!   declaration line, and body token span;
//! * call expressions inside each body (free calls with their `::` path,
//!   and `.method()` calls by name);
//! * nondeterminism sinks (R1) and panic sites (R2) attributed to the
//!   innermost enclosing function;
//! * dispatches into the `snapea-tensor::par` pool, with a capture
//!   analysis of the closure argument (R3).
//!
//! Soundness caveats (documented in DESIGN.md §8): calls through trait
//! objects / fn pointers are invisible, macro *bodies* are opaque (only
//! the tokens the macro call itself spells out are seen), turbofish
//! calls (`f::<T>()`) are missed, and `match`-arm bindings are not
//! tracked as closure locals (a bound arm variable can look like a
//! capture; annotate such sites).

use crate::lexer::{lex, TokKind, Token};
use crate::rules::test_regions;

/// A call expression inside a function body.
#[derive(Debug, Clone)]
pub(crate) struct CallSite {
    /// Path segments as written (`["std", "time", "Instant", "now"]`,
    /// or just `["helper"]`). For method calls, the single method name.
    pub(crate) path: Vec<String>,
    /// True for `.name(...)` receiver calls.
    pub(crate) method: bool,
    /// 1-based line of the call.
    pub(crate) line: usize,
}

/// A nondeterminism source (R1 sink) inside a function body.
#[derive(Debug, Clone)]
pub(crate) struct SinkSite {
    pub(crate) line: usize,
    /// Canonical label printed as the chain terminal
    /// (`std::time::Instant`, `std::env::var`, …).
    pub(crate) label: String,
}

/// A panic site (R2 source) inside a function body. Matches the P1
/// token set exactly, so a site P1 already audits stays audited here.
#[derive(Debug, Clone)]
pub(crate) struct PanicSite {
    pub(crate) line: usize,
    /// `.unwrap()`, `panic!`, … as written.
    pub(crate) label: String,
}

/// One capture-safety violation inside a dispatched closure.
#[derive(Debug, Clone)]
pub(crate) struct CaptureViolation {
    pub(crate) line: usize,
    /// Human label, e.g. ``captures `&mut totals` ``.
    pub(crate) label: String,
}

/// A call that hands a closure to the `snapea-tensor::par` pool.
#[derive(Debug, Clone)]
pub(crate) struct Dispatch {
    /// The pool entry point (`run_tasks`, `parallel_for`, …).
    pub(crate) callee: String,
    pub(crate) line: usize,
    pub(crate) violations: Vec<CaptureViolation>,
}

/// One `fn` item (free function or inherent/trait method with a body).
#[derive(Debug, Clone)]
pub(crate) struct FnItem {
    /// Bare function name.
    pub(crate) name: String,
    /// `impl` type name when the fn is a method.
    pub(crate) owner: Option<String>,
    /// True only for unrestricted `pub` (not `pub(crate)`/`pub(super)`).
    pub(crate) is_pub: bool,
    /// Inside a `#[cfg(test)]` / `#[test]` region.
    pub(crate) in_test: bool,
    pub(crate) calls: Vec<CallSite>,
    pub(crate) sinks: Vec<SinkSite>,
    pub(crate) panics: Vec<PanicSite>,
    pub(crate) dispatches: Vec<Dispatch>,
}

/// Everything the graph pass needs from one file.
#[derive(Debug)]
pub(crate) struct FileItems {
    pub(crate) fns: Vec<FnItem>,
}

/// The `snapea-tensor::par` entry points that take a closure and fan it
/// out across worker threads (the R3 dispatch set).
pub(crate) const PAR_DISPATCHERS: [&str; 4] = [
    "run_tasks",
    "parallel_map",
    "parallel_map_chunks",
    "parallel_for",
];

/// Collection-mutating method names the R3 capture pass treats as
/// writes when invoked on captured (non-local) state.
const MUTATOR_METHODS: [&str; 20] = [
    "push",
    "insert",
    "remove",
    "clear",
    "extend",
    "extend_from_slice",
    "truncate",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "swap",
    "resize",
    "fill",
    "drain",
    "retain",
    "append",
    "pop",
    "push_str",
    "copy_from_slice",
];

/// Keywords that look like `ident(` but are never calls.
const NON_CALL_KEYWORDS: [&str; 16] = [
    "if", "while", "for", "match", "return", "in", "as", "let", "else", "move", "loop", "unsafe",
    "ref", "box", "where", "fn",
];

/// Parses one file. Never fails: unparseable stretches simply contribute
/// no items (the lexer is total, and the scan is a linear pass).
pub(crate) fn parse_source(source: &str) -> FileItems {
    let tokens = lex(source);
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.kind.is_comment()).collect();
    let test_ranges = test_regions(&code);
    let in_test = |idx: usize| test_ranges.iter().any(|&(lo, hi)| idx >= lo && idx <= hi);
    let impls = impl_spans(&code);

    let mut fns: Vec<FnItem> = Vec::new();
    // Stack of (brace_depth_at_open, index into fns) for nested fn items.
    let mut fn_stack: Vec<(usize, usize)> = Vec::new();
    // Pending fn header seen but body `{` not yet reached:
    // (fns index, token index of `fn`).
    let mut pending_fn: Option<usize> = None;
    let mut depth = 0usize;
    // Paren/bracket depth inside a pending fn signature, so the `;` of an
    // array type (`[f32; 4]`) is not mistaken for a bodiless declaration.
    let mut sig_depth = 0usize;

    let mut i = 0usize;
    while i < code.len() {
        let t = code[i];
        match &t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') if pending_fn.is_some() => {
                sig_depth += 1;
            }
            TokKind::Punct(')') | TokKind::Punct(']') if pending_fn.is_some() => {
                sig_depth = sig_depth.saturating_sub(1);
            }
            TokKind::Punct('{') => {
                if sig_depth == 0 {
                    if let Some(fi) = pending_fn.take() {
                        fn_stack.push((depth, fi));
                    }
                }
                depth += 1;
            }
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                if let Some(&(d, _)) = fn_stack.last() {
                    if depth == d {
                        fn_stack.pop();
                    }
                }
            }
            TokKind::Punct(';') if sig_depth == 0 => {
                // A bodiless trait declaration: discard the pending header.
                pending_fn = None;
            }
            TokKind::Ident(kw) if kw == "fn" => {
                if let Some(TokKind::Ident(name)) = code.get(i + 1).map(|t| &t.kind) {
                    let owner = impls
                        .iter()
                        .find(|s| i > s.start && i < s.end)
                        .map(|s| s.type_name.clone());
                    fns.push(FnItem {
                        name: name.clone(),
                        owner,
                        is_pub: is_pub_at(&code, i),
                        in_test: in_test(i),
                        calls: Vec::new(),
                        sinks: Vec::new(),
                        panics: Vec::new(),
                        dispatches: Vec::new(),
                    });
                    pending_fn = Some(fns.len() - 1);
                    sig_depth = 0;
                    i += 2;
                    continue;
                }
            }
            _ => {}
        }

        // Body-token classification, attributed to the innermost open fn.
        if let Some(&(_, fi)) = fn_stack.last() {
            if !fns[fi].in_test {
                classify_token(&code, i, &mut fns[fi]);
            }
        }
        i += 1;
    }

    FileItems { fns }
}

/// An `impl` block's token span and the implemented type's name.
struct ImplSpan {
    start: usize,
    end: usize,
    type_name: String,
}

/// Finds every `impl` block: `impl [<…>] [Trait for] Type [where …] { … }`.
fn impl_spans(code: &[&Token]) -> Vec<ImplSpan> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if code[i].kind.ident() == Some("impl") {
            // Header runs up to the opening brace (or a `;` for the rare
            // bodiless form, which we skip).
            let mut j = i + 1;
            let mut saw_for: Option<usize> = None;
            let mut first_ident: Option<usize> = None;
            let mut adepth = 0usize;
            while j < code.len() {
                match &code[j].kind {
                    TokKind::Punct('<') => adepth += 1,
                    TokKind::Punct('>') => adepth = adepth.saturating_sub(1),
                    TokKind::Punct('{') if adepth == 0 => break,
                    TokKind::Punct(';') if adepth == 0 => break,
                    TokKind::Ident(id) if adepth == 0 => {
                        if id == "for" {
                            saw_for = Some(j);
                            first_ident = None; // type follows `for`
                        } else if id == "where" {
                            break;
                        } else if first_ident.is_none() && id != "dyn" {
                            first_ident = Some(j);
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let _ = saw_for;
            if j < code.len() && code[j].kind == TokKind::Punct('{') {
                let end = matching_brace(code, j);
                if let Some(ti) = first_ident {
                    if let Some(name) = code[ti].kind.ident() {
                        spans.push(ImplSpan {
                            start: j,
                            end,
                            type_name: name.to_string(),
                        });
                    }
                }
                // Do not skip to `end`: nested impls don't occur, but the
                // fn scan needs every token anyway; just move past `impl`.
            }
            i = j.saturating_add(1);
            continue;
        }
        i += 1;
    }
    spans
}

/// Token index of the `}` matching the `{` at `open` (or the last token).
fn matching_brace(code: &[&Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in code.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    code.len().saturating_sub(1)
}

/// Whether the `fn` at token index `fn_idx` is unrestricted-`pub`.
/// Walks back over qualifiers (`const`, `unsafe`, `extern "C"`) and a
/// `pub(...)` restriction group.
fn is_pub_at(code: &[&Token], fn_idx: usize) -> bool {
    let mut j = fn_idx;
    while j > 0 {
        j -= 1;
        match &code[j].kind {
            TokKind::Ident(q) if matches!(q.as_str(), "const" | "unsafe" | "async" | "extern") => {}
            TokKind::Str => {} // extern "C" ABI string
            TokKind::Punct(')') => {
                // A `pub(crate)`/`pub(super)` restriction: rewind to `(`.
                let mut depth = 1usize;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match code[j].kind {
                        TokKind::Punct(')') => depth += 1,
                        TokKind::Punct('(') => depth -= 1,
                        _ => {}
                    }
                }
                // `pub(...)` is restricted visibility: not public API.
                return false;
            }
            TokKind::Ident(q) if q == "pub" => return true,
            _ => return false,
        }
    }
    false
}

/// Classifies the token at `i` as a call / sink / panic / dispatch for
/// the enclosing fn. Mirrors the P1 token predicate for panic sites.
fn classify_token(code: &[&Token], i: usize, item: &mut FnItem) {
    let t = code[i];
    let line = t.line;
    let id = match t.kind.ident() {
        Some(s) => s,
        None => return,
    };
    let next_is =
        |p: char| matches!(code.get(i + 1).map(|t| &t.kind), Some(TokKind::Punct(c)) if *c == p);
    let prev_is = |p: char| i >= 1 && code[i - 1].kind == TokKind::Punct(p);

    // Panic sites — same token set as the per-file P1 rule.
    if matches!(id, "panic" | "todo" | "unimplemented" | "unreachable") && next_is('!') {
        item.panics.push(PanicSite {
            line,
            label: format!("{id}!"),
        });
        return;
    }
    if (id == "unwrap" || id == "expect")
        && prev_is('.')
        && next_is('(')
        && (id == "expect" || matches!(code.get(i + 2).map(|t| &t.kind), Some(TokKind::Punct(')'))))
    {
        item.panics.push(PanicSite {
            line,
            label: format!(".{id}()"),
        });
        return;
    }

    // Identifier-shaped nondeterminism sinks.
    match id {
        "Instant" | "SystemTime" => {
            item.sinks.push(SinkSite {
                line,
                label: format!("std::time::{id}"),
            });
            return;
        }
        "thread_rng" | "from_entropy" | "OsRng" => {
            item.sinks.push(SinkSite {
                line,
                label: format!("ambient RNG ({id})"),
            });
            return;
        }
        "HashMap" | "HashSet" => {
            item.sinks.push(SinkSite {
                line,
                label: format!("hash-order iteration ({id})"),
            });
            return;
        }
        "ThreadId" => {
            item.sinks.push(SinkSite {
                line,
                label: "std::thread::ThreadId".to_string(),
            });
            return;
        }
        _ => {}
    }

    // Call expressions: `ident(` not preceded by `.` (method calls are
    // recorded separately) and not a keyword; macros are `ident!(`, which
    // the `next_is('(')` check already excludes.
    if next_is('(') && !NON_CALL_KEYWORDS.contains(&id) {
        if prev_is('.') {
            record_call(code, i, vec![id.to_string()], true, line, item);
        } else {
            let path = path_of(code, i);
            record_call(code, i, path, false, line, item);
        }
    }
}

/// Records a resolved call site, classifying env/thread sinks and pool
/// dispatches along the way.
fn record_call(
    code: &[&Token],
    i: usize,
    path: Vec<String>,
    method: bool,
    line: usize,
    item: &mut FnItem,
) {
    let last = path.last().map(String::as_str).unwrap_or("");
    let penult = path
        .len()
        .checked_sub(2)
        .and_then(|k| path.get(k))
        .map(String::as_str);

    // `env::var`-family and `thread::current` are path-shaped sinks.
    if penult == Some("env") && matches!(last, "var" | "var_os" | "vars") {
        item.sinks.push(SinkSite {
            line,
            label: format!("std::env::{last}"),
        });
        return;
    }
    if penult == Some("thread") && last == "current" {
        item.sinks.push(SinkSite {
            line,
            label: "std::thread::current".to_string(),
        });
        return;
    }

    if PAR_DISPATCHERS.contains(&last) {
        let violations = closure_captures(code, i);
        item.dispatches.push(Dispatch {
            callee: last.to_string(),
            line,
            violations,
        });
        // Fall through: the dispatch is also a call edge, so chains may
        // continue *through* the pool entry point.
    }

    item.calls.push(CallSite { path, method, line });
}

/// Reconstructs the `::`-separated path ending at the ident at `i`
/// (`std :: time :: Instant :: now` → all four segments). The lexer emits
/// `::` as two `:` puncts.
fn path_of(code: &[&Token], i: usize) -> Vec<String> {
    let mut segs = vec![code[i].kind.ident().unwrap_or_default().to_string()];
    let mut j = i;
    while j >= 3
        && code[j - 1].kind == TokKind::Punct(':')
        && code[j - 2].kind == TokKind::Punct(':')
    {
        match code[j - 3].kind.ident() {
            Some(seg) => {
                segs.insert(0, seg.to_string());
                j -= 3;
            }
            None => break,
        }
    }
    segs
}

/// Analyzes the closure argument of the pool-dispatch call whose callee
/// ident sits at `call_idx`. Returns the capture violations found.
fn closure_captures(code: &[&Token], call_idx: usize) -> Vec<CaptureViolation> {
    let mut out = Vec::new();
    // The call's argument list: `(` after the callee ident.
    let open = call_idx + 1;
    if !matches!(code.get(open).map(|t| &t.kind), Some(TokKind::Punct('('))) {
        return out;
    }
    let close = matching_paren(code, open);

    // Find the closure head `|` at paren-depth 1 (possibly after `move`).
    let mut j = open + 1;
    let mut depth = 1usize;
    let mut bar: Option<usize> = None;
    while j < close {
        match code[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                depth = depth.saturating_sub(1)
            }
            TokKind::Punct('|') if depth == 1 => {
                bar = Some(j);
                break;
            }
            _ => {}
        }
        j += 1;
    }
    let Some(bar) = bar else { return out };

    // Params: tokens between the two `|` bars. Pattern idents bind; type
    // ascriptions (`: T`) are skipped until the next `,` at depth 0.
    let mut locals: Vec<String> = vec!["self".to_string()];
    let mut j = bar + 1;
    let mut depth = 0usize;
    let mut in_type = false;
    let mut params_end = bar; // `||` (no params) leaves it at the head bar
    while j < close {
        match &code[j].kind {
            TokKind::Punct('|') if depth == 0 => {
                params_end = j;
                break;
            }
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('<') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('>') => {
                depth = depth.saturating_sub(1)
            }
            TokKind::Punct(':') if depth == 0 => in_type = true,
            TokKind::Punct(',') if depth == 0 => in_type = false,
            TokKind::Ident(id) if !in_type && !matches!(id.as_str(), "mut" | "ref" | "_") => {
                locals.push(id.clone());
            }
            _ => {}
        }
        j += 1;
    }

    // Body span: a `{ … }` block, or an expression running to the call's
    // closing paren.
    let (body_lo, body_hi) = match code.get(params_end + 1).map(|t| &t.kind) {
        Some(TokKind::Punct('{')) => {
            let end = matching_brace(code, params_end + 1);
            (params_end + 2, end)
        }
        _ => (params_end + 1, close),
    };

    // First sweep: collect `let` / `for … in` / nested-closure bindings
    // as locals (flow-insensitive: a later binding whitelists an earlier
    // use, which under-reports; acceptable for a lint).
    let mut k = body_lo;
    while k < body_hi {
        match code[k].kind.ident() {
            Some("let") => {
                // Collect pattern idents until `:` or `=` at depth 0.
                let mut d = 0usize;
                let mut m = k + 1;
                while m < body_hi {
                    match &code[m].kind {
                        TokKind::Punct('(') | TokKind::Punct('[') => d += 1,
                        TokKind::Punct(')') | TokKind::Punct(']') => d = d.saturating_sub(1),
                        TokKind::Punct(':') | TokKind::Punct('=') if d == 0 => break,
                        TokKind::Ident(id)
                            if !matches!(id.as_str(), "mut" | "ref" | "_")
                                && id
                                    .chars()
                                    .next()
                                    .is_some_and(|c| c.is_lowercase() || c == '_') =>
                        {
                            locals.push(id.clone());
                        }
                        _ => {}
                    }
                    m += 1;
                }
                k = m;
                continue;
            }
            Some("for") => {
                // `for <pat> in …`: idents before `in` bind.
                let mut m = k + 1;
                while m < body_hi {
                    match code[m].kind.ident() {
                        Some("in") => break,
                        Some(id) if !matches!(id, "mut" | "ref" | "_") => {
                            locals.push(id.to_string());
                        }
                        _ => {}
                    }
                    m += 1;
                }
                k = m;
                continue;
            }
            _ => {}
        }
        // Nested closure params also bind.
        if code[k].kind == TokKind::Punct('|') {
            let mut m = k + 1;
            let mut d = 0usize;
            while m < body_hi {
                match &code[m].kind {
                    TokKind::Punct('|') if d == 0 => break,
                    TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('<') => d += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('>') => {
                        d = d.saturating_sub(1)
                    }
                    TokKind::Ident(id) if !matches!(id.as_str(), "mut" | "ref" | "_") => {
                        locals.push(id.clone())
                    }
                    _ => {}
                }
                m += 1;
            }
            k = m + 1;
            continue;
        }
        k += 1;
    }

    let is_local = |name: &str| locals.iter().any(|l| l == name);
    let is_var = |name: &str| {
        name.chars()
            .next()
            .is_some_and(|c| c.is_lowercase() || c == '_')
    };

    // Second sweep: the three violation shapes.
    let mut k = body_lo;
    while k < body_hi {
        // (1) `&mut <ident>` on a non-local: a mutable capture of outer
        // state — aliased across workers once the closure is cloned/shared.
        if code[k].kind == TokKind::Punct('&')
            && code.get(k + 1).and_then(|t| t.kind.ident()) == Some("mut")
        {
            if let Some(name) = code.get(k + 2).and_then(|t| t.kind.ident()) {
                if is_var(name) && !is_local(name) {
                    out.push(CaptureViolation {
                        line: code[k].line,
                        label: format!("captures `&mut {name}`"),
                    });
                }
            }
        }

        // (2) Assignment whose place expression is rooted at a non-local.
        if code[k].kind == TokKind::Punct('=') {
            let next = code.get(k + 1).map(|t| &t.kind);
            let prev = if k > 0 { Some(&code[k - 1].kind) } else { None };
            let next_eq_or_gt =
                matches!(next, Some(TokKind::Punct('=')) | Some(TokKind::Punct('>')));
            let prev_cmp = matches!(
                prev,
                Some(TokKind::Punct('='))
                    | Some(TokKind::Punct('<'))
                    | Some(TokKind::Punct('>'))
                    | Some(TokKind::Punct('!'))
                    | Some(TokKind::Punct('.'))
            );
            let compound = matches!(
                prev,
                Some(TokKind::Punct('+'))
                    | Some(TokKind::Punct('-'))
                    | Some(TokKind::Punct('*'))
                    | Some(TokKind::Punct('/'))
                    | Some(TokKind::Punct('%'))
                    | Some(TokKind::Punct('&'))
                    | Some(TokKind::Punct('|'))
                    | Some(TokKind::Punct('^'))
            );
            if !next_eq_or_gt && !prev_cmp {
                let start = if compound { k - 1 } else { k };
                if let Some((base, bound)) = place_base(code, start, body_lo) {
                    if !bound && is_var(&base) && !is_local(&base) {
                        out.push(CaptureViolation {
                            line: code[k].line,
                            label: format!("assigns to captured `{base}`"),
                        });
                    }
                }
            }
        }

        // (3) A collection-mutating method on a non-local receiver.
        if let Some(m) = code[k].kind.ident() {
            if MUTATOR_METHODS.contains(&m)
                && k >= 1
                && code[k - 1].kind == TokKind::Punct('.')
                && matches!(code.get(k + 1).map(|t| &t.kind), Some(TokKind::Punct('(')))
            {
                if let Some((base, _)) = receiver_base(code, k - 1, body_lo) {
                    if is_var(&base) && !is_local(&base) {
                        out.push(CaptureViolation {
                            line: code[k].line,
                            label: format!("mutates captured `{base}` (.{m}())"),
                        });
                    }
                }
            }
        }
        k += 1;
    }

    out
}

/// Walks back from the token *before* the `=` at `eq_idx` to the root
/// identifier of the place expression (`totals[i].count = …` → `totals`).
/// Returns `(base, is_let_binding)`; `None` for shapes we don't model.
fn place_base(code: &[&Token], eq_idx: usize, lo: usize) -> Option<(String, bool)> {
    let mut j = eq_idx.checked_sub(1)?;
    loop {
        match &code[j].kind {
            TokKind::Punct(']') => {
                // Rewind over the index group.
                let mut depth = 1usize;
                while j > lo && depth > 0 {
                    j -= 1;
                    match code[j].kind {
                        TokKind::Punct(']') => depth += 1,
                        TokKind::Punct('[') => depth -= 1,
                        _ => {}
                    }
                }
                if j <= lo {
                    return None;
                }
                j -= 1;
            }
            TokKind::Punct(')') => return None, // call result: not a capture write
            TokKind::Ident(id) => {
                let id = id.clone();
                if j > lo && code[j - 1].kind == TokKind::Punct('.') {
                    // field/receiver chain: keep walking left
                    if j - 1 <= lo {
                        return None;
                    }
                    j -= 2;
                    continue;
                }
                if j > lo && code[j - 1].kind == TokKind::Punct(':') {
                    return None; // path-qualified place (`Self::X`): skip
                }
                let bound = j > lo && matches!(code[j - 1].kind.ident(), Some("let") | Some("mut"));
                return Some((id, bound));
            }
            TokKind::Punct('*') => {
                if j <= lo {
                    return None;
                }
                j -= 1;
            }
            _ => return None,
        }
        if j < lo {
            return None;
        }
    }
}

/// Walks back from the `.` before a method name to the receiver's root
/// identifier (`out[i].push(x)` → `out`).
fn receiver_base(code: &[&Token], dot_idx: usize, lo: usize) -> Option<(String, bool)> {
    place_base(code, dot_idx, lo)
}

/// Token index of the `)` matching the `(` at `open`.
fn matching_paren(code: &[&Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in code.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    code.len().saturating_sub(1)
}
