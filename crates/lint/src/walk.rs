//! Workspace traversal: finds the source files the rules apply to and
//! aggregates per-file findings into a [`LintReport`].
//!
//! Scope: every `crates/<name>/src/**/*.rs` plus the facade crate's
//! `src/**/*.rs` at the workspace root. Integration tests (`tests/`),
//! examples, and benches are deliberately out of scope — they neither
//! affect results nor run in library context — while `#[cfg(test)]`
//! regions *inside* scanned files are excluded by the rule engine itself.
//! Directory iteration is sorted so reports are byte-stable run to run.

use crate::engine::{lint_sources, LintOptions, SourceSpec};
use crate::rules::{FileKind, Finding};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Aggregate result of linting a workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// Workspace root the walk started from.
    pub root: String,
    /// Unsuppressed findings, in (file, line) order.
    pub findings: Vec<Finding>,
    /// How many files were scanned.
    pub files_scanned: usize,
    /// Whether the call-graph pass (R1/R2/R3) ran.
    pub graph: bool,
}

impl LintReport {
    /// True when the tree is clean.
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the whole report as one JSON object (`findings` is an array
    /// of [`Finding::to_json_string`] objects).
    pub fn to_json_string(&self) -> String {
        let items: Vec<String> = self.findings.iter().map(Finding::to_json_string).collect();
        format!(
            "{{\"files_scanned\":{},\"graph\":{},\"findings\":[{}],\"passed\":{}}}",
            self.files_scanned,
            self.graph,
            items.join(","),
            self.passed()
        )
    }

    /// Renders the human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.render_text());
            out.push('\n');
        }
        out.push_str(&format!(
            "lint: {} file(s) scanned, {} finding(s)\n",
            self.files_scanned,
            self.findings.len()
        ));
        out
    }
}

/// Errors from the filesystem walk (rule analysis itself is total).
#[derive(Debug)]
pub struct WalkError {
    path: PathBuf,
    err: io::Error,
}

impl std::fmt::Display for WalkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint walk: {}: {}", self.path.display(), self.err)
    }
}

impl std::error::Error for WalkError {}

fn walk_err(path: &Path) -> impl FnOnce(io::Error) -> WalkError + '_ {
    move |err| WalkError {
        path: path.to_path_buf(),
        err,
    }
}

/// Lints every in-scope source file under `root` (a workspace checkout).
///
/// # Errors
///
/// Returns a [`WalkError`] when the filesystem cannot be read; findings —
/// including parse oddities — are never errors.
pub fn lint_workspace(root: &Path) -> Result<LintReport, WalkError> {
    lint_workspace_opts(root, &LintOptions::default())
}

/// Like [`lint_workspace`], with engine options (the CLI's `--graph` mode
/// enables the transitive rules this way).
///
/// # Errors
///
/// Returns a [`WalkError`] when the filesystem cannot be read.
pub fn lint_workspace_opts(root: &Path, opts: &LintOptions) -> Result<LintReport, WalkError> {
    let mut specs: Vec<SourceSpec> = Vec::new();

    // Crate sources: crates/<name>/src, sorted by crate name.
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir).map_err(walk_err(&crates_dir))? {
            let entry = entry.map_err(walk_err(&crates_dir))?;
            if entry.path().join("src").is_dir() {
                crate_dirs.push(entry.path());
            }
        }
    }
    crate_dirs.sort();
    // The facade crate at the workspace root.
    if root.join("src").is_dir() {
        crate_dirs.push(root.to_path_buf());
    }

    for dir in crate_dirs {
        let crate_name = if dir == *root {
            "suite".to_string()
        } else {
            dir.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default()
        };
        let src = dir.join("src");
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for file in files {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let kind = if rel.contains("/bin/") {
                FileKind::Bin
            } else {
                FileKind::Lib
            };
            let is_crate_root = file == src.join("lib.rs");
            let source = fs::read_to_string(&file).map_err(walk_err(&file))?;
            specs.push(SourceSpec {
                path: rel,
                crate_name: crate_name.clone(),
                kind,
                is_crate_root,
                source,
            });
        }
    }

    let findings = lint_sources(&specs, opts);
    Ok(LintReport {
        root: root.to_string_lossy().into_owned(),
        findings,
        files_scanned: specs.len(),
        graph: opts.graph,
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), WalkError> {
    for entry in fs::read_dir(dir).map_err(walk_err(dir))? {
        let entry = entry.map_err(walk_err(dir))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Searches upward from `start` for a workspace root: a directory holding
/// both `Cargo.toml` and `crates/`. Used by the CLI when `--root` is not
/// given.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir.to_path_buf());
        }
        cur = dir.parent();
    }
    None
}
