//! A lightweight, comment- and string-aware Rust tokenizer.
//!
//! The lint rules only need a faithful *token stream with line numbers*:
//! identifiers, punctuation, literals, and comments — enough to tell
//! `HashMap` the identifier from `"HashMap"` the string literal, and to
//! find `// lint:allow(...)` annotations. Full parsing (`syn`) is
//! deliberately avoided: the CI registry cache is offline and the rules
//! below are expressible over tokens plus a little brace-depth state.
//!
//! Handled: line comments (incl. doc `///` and `//!`), nested block
//! comments, string literals with escapes, raw strings `r#"…"#`, byte and
//! raw-byte strings, char literals vs lifetimes, raw identifiers `r#ident`,
//! and numeric literals with suffixes.

/// One lexical token with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based line number of the token's first character.
    pub line: usize,
    /// What the token is.
    pub kind: TokKind,
}

/// Token kinds. Literal *contents* are only retained where a rule needs
/// them (identifiers and line comments); everything else is shape-only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `HashMap`, `as`, …).
    Ident(String),
    /// A single punctuation character (`.`, `[`, `!`, …).
    Punct(char),
    /// A string, byte-string, or raw-string literal.
    Str,
    /// A character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`) or the loop-label form (`'outer:`).
    Lifetime,
    /// A numeric literal, including any type suffix (`1_000u64`, `1.5e-3`).
    Num,
    /// A `//` comment; `text` is everything after the slashes, `doc` marks
    /// `///` and `//!` forms (rule annotations are never doc comments).
    LineComment {
        /// Comment body, excluding the leading slashes.
        text: String,
        /// Whether this is a `///` or `//!` doc comment.
        doc: bool,
    },
    /// A `/* … */` comment (possibly nested, possibly multi-line).
    BlockComment,
}

impl TokKind {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True for comment tokens (excluded from the code-token stream).
    pub fn is_comment(&self) -> bool {
        matches!(self, TokKind::LineComment { .. } | TokKind::BlockComment)
    }
}

/// Tokenizes `src`. The lexer is total: malformed input (an unterminated
/// string, say) consumes to end-of-file rather than failing, because a lint
/// must never panic on the code it is inspecting — `rustc` reports syntax
/// errors, not us.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, line: usize, kind: TokKind) {
        self.out.push(Token { line, kind });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string(line);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_literal(line);
                }
                'b' if self.peek(1) == Some('r') && self.raw_string_follows(2) => {
                    self.bump();
                    self.bump();
                    self.raw_string(line);
                }
                'r' if self.raw_string_follows(1) => {
                    self.bump();
                    self.raw_string(line);
                }
                'r' if self.peek(1) == Some('#') && self.peek(2).is_some_and(is_ident_start) => {
                    // Raw identifier r#type.
                    self.bump();
                    self.bump();
                    self.ident(line);
                }
                '\'' => self.char_or_lifetime(line),
                c if is_ident_start(c) => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(line, TokKind::Punct(c));
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: usize) {
        self.bump();
        self.bump();
        let doc = matches!(self.peek(0), Some('/') | Some('!'));
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(line, TokKind::LineComment { text, doc });
    }

    fn block_comment(&mut self, line: usize) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.push(line, TokKind::BlockComment);
    }

    fn string(&mut self, line: usize) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(line, TokKind::Str);
    }

    /// True when the characters from offset `start` spell a raw-string
    /// opener: zero or more `#` then `"`. Any hash depth is accepted —
    /// matching only `r"`/`r#"` would mis-lex `r##"…"##` as an identifier
    /// plus a plain string whose closing quote swallows following code
    /// (found by the lexer fuzz tests).
    fn raw_string_follows(&self, start: usize) -> bool {
        let mut k = start;
        while self.peek(k) == Some('#') {
            k += 1;
        }
        self.peek(k) == Some('"')
    }

    /// Raw string, positioned at the `#…#"` or `"` after the `r`.
    fn raw_string(&mut self, line: usize) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(line, TokKind::Str);
    }

    fn char_literal(&mut self, line: usize) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(line, TokKind::Char);
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime): a lifetime is a
    /// quote followed by an identifier *not* closed by another quote.
    fn char_or_lifetime(&mut self, line: usize) {
        let next = self.peek(1);
        let is_lifetime = match next {
            Some('\\') => false,
            Some(c) if is_ident_start(c) => {
                // Scan the identifier run; a closing quote right after a
                // one-char run means a char literal like 'a'.
                let mut k = 2;
                while self.peek(k).is_some_and(is_ident_continue) {
                    k += 1;
                }
                self.peek(k) != Some('\'')
            }
            _ => false,
        };
        if is_lifetime {
            self.bump(); // quote
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
            self.push(line, TokKind::Lifetime);
        } else {
            self.char_literal(line);
        }
    }

    fn ident(&mut self, line: usize) {
        let mut s = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            s.push(c);
            self.bump();
        }
        self.push(line, TokKind::Ident(s));
    }

    fn number(&mut self, line: usize) {
        while self
            .peek(0)
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            self.bump();
        }
        // A fractional part: consume `.` only when a digit follows, so the
        // range in `0..n` stays two separate punct tokens.
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            while self
                .peek(0)
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                self.bump();
            }
        }
        self.push(line, TokKind::Num);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_vs_strings_and_comments() {
        let toks = kinds("let x = \"HashMap\"; // HashMap here\n/* HashMap */ HashMap");
        let idents: Vec<_> = toks.iter().filter_map(TokKind::ident).collect();
        assert_eq!(idents, vec!["let", "x", "HashMap"]);
        assert!(toks.iter().any(|t| matches!(t, TokKind::Str)));
        assert!(toks.iter().any(|t| matches!(t, TokKind::BlockComment)));
    }

    #[test]
    fn line_numbers_track_newlines_inside_tokens() {
        let toks = lex("a\n\"two\nline\"\nb");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2); // string starts on line 2
        assert_eq!(toks[2].line, 4); // and spans line 3
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let toks = kinds("x<'a>('b', b'\\n', 'c')");
        assert_eq!(
            toks.iter()
                .filter(|t| matches!(t, TokKind::Lifetime))
                .count(),
            1
        );
        assert_eq!(
            toks.iter().filter(|t| matches!(t, TokKind::Char)).count(),
            3
        );
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let toks = kinds("r#\"panic!() \"quoted\" unwrap()\"# ident");
        assert_eq!(toks.len(), 2);
        assert!(matches!(toks[0], TokKind::Str));
        assert_eq!(toks[1].ident(), Some("ident"));
    }

    #[test]
    fn multi_hash_raw_strings_terminate() {
        // Regression: `r##"…"##` used to lex as ident `r` + puncts + a
        // plain string whose closing quote swallowed following code.
        let toks = kinds("r##\"has \"# inside\"## after br###\"bytes\"### tail");
        assert_eq!(toks[0], TokKind::Str);
        assert_eq!(toks[1].ident(), Some("after"));
        assert_eq!(toks[2], TokKind::Str);
        assert_eq!(toks[3].ident(), Some("tail"));
    }

    #[test]
    fn raw_identifiers_still_lex() {
        let toks = kinds("r#type r#fn x");
        assert_eq!(toks[0].ident(), Some("type"));
        assert_eq!(toks[1].ident(), Some("fn"));
        assert_eq!(toks[2].ident(), Some("x"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].ident(), Some("x"));
    }

    #[test]
    fn doc_comments_are_marked() {
        let toks = kinds("/// doc\n//! inner\n// plain lint:allow(P1) r");
        let docs: Vec<bool> = toks
            .iter()
            .filter_map(|t| match t {
                TokKind::LineComment { doc, .. } => Some(*doc),
                _ => None,
            })
            .collect();
        assert_eq!(docs, vec![true, true, false]);
    }

    #[test]
    fn numbers_with_suffixes_and_ranges() {
        let toks = kinds("1_000u64 1.5e-3 0..n a[0]");
        assert!(matches!(toks[0], TokKind::Num));
        // `0..n` lexes as Num, '.', '.', Ident.
        let dots = toks
            .iter()
            .filter(|t| matches!(t, TokKind::Punct('.')))
            .count();
        assert!(dots >= 2);
    }
}
