//! Cross-crate call graph and the three transitive rules (R1/R2/R3).
//!
//! Nodes are `fn` items keyed by qualified name
//! (`<crate>::[<Type>::]<name>`); edges are the call sites the parser
//! recovered. Name resolution is intentionally approximate (DESIGN.md §8
//! spells out the caveats):
//!
//! * a leading workspace-crate alias (`snapea_tensor::…`, `crate::…`)
//!   pins the target crate; module segments in between are ignored;
//! * a CamelCase penultimate segment resolves through the
//!   `(Type, method)` owner index;
//! * bare calls resolve within the caller's crate first, then anywhere;
//! * `.method()` calls resolve to *every* fn of that name — minus a
//!   std-method stoplist — which over-approximates (sound for
//!   reachability, may need a reasoned allow at a false link);
//! * `std::`/`core::`/`alloc::` paths are external: no edge (the sink
//!   classifier has already seen the ones we care about).

use crate::parse::FnItem;
use crate::rules::{ChainLink, FileCtx, FileKind, Finding, RuleId};
use std::collections::{BTreeMap, VecDeque};

/// Method names that resolve to std/core inherent or trait impls far
/// more often than to workspace fns; `.name()` calls to these create no
/// edge. Free and path-qualified calls are unaffected.
const STD_METHODS: [&str; 78] = [
    "abs",
    "all",
    "and_then",
    "any",
    "append",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "chain",
    "chars",
    "clamp",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "copied",
    "count",
    "dedup",
    "drain",
    "ends_with",
    "enumerate",
    "eq",
    "extend",
    "filter",
    "filter_map",
    "find",
    "flat_map",
    "flatten",
    "flush",
    "fold",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "last",
    "len",
    "lines",
    "map",
    "max",
    "min",
    "next",
    "ok",
    "ok_or",
    "parse",
    "partial_cmp",
    "position",
    "pow",
    "push",
    "read",
    "remove",
    "rev",
    "reserve",
    "resize",
    "retain",
    "skip",
    "sort",
    "split",
    "sqrt",
    "starts_with",
    "step_by",
    "sum",
    "take",
    "to_owned",
    "to_string",
    "trim",
    "truncate",
    "windows",
    "write",
    "zip",
];

/// Files whose functions are result-path roots for R1: the executor
/// walks, the kernels, the oracle references, and artifact load. Matched
/// by suffix against the workspace-relative path.
const RESULT_PATH_FILES: [&str; 10] = [
    "crates/core/src/exec.rs",
    "crates/core/src/pau.rs",
    "crates/core/src/artifact.rs",
    "crates/core/src/reorder.rs",
    "crates/tensor/src/matrix.rs",
    "crates/tensor/src/lane.rs",
    "crates/tensor/src/q16.rs",
    "crates/tensor/src/im2col.rs",
    "crates/oracle/src/reference.rs",
    "crates/oracle/src/cycle_model.rs",
];

/// Crates whose interiors are sanctioned for wall-clock and env access:
/// R1 chains stop at their boundary (calling *into* obs is fine; what
/// obs does with the clock is its charter).
const SANCTIONED_CRATES: [&str; 2] = ["obs", "bench"];

/// One fn node with its provenance.
pub(crate) struct Node {
    pub(crate) item: FnItem,
    /// Crate directory name (`tensor`, `core`, …).
    pub(crate) krate: String,
    /// Workspace-relative file path.
    pub(crate) file: String,
    pub(crate) kind: FileKind,
}

impl Node {
    /// `<crate>::[<Type>::]<name>`, the display form used in chains.
    pub(crate) fn qualified(&self) -> String {
        match &self.item.owner {
            Some(t) => format!("{}::{}::{}", self.krate, t, self.item.name),
            None => format!("{}::{}", self.krate, self.item.name),
        }
    }
}

/// The workspace call graph.
pub(crate) struct CallGraph {
    pub(crate) nodes: Vec<Node>,
    /// node → outgoing edges as (callee node, call line).
    edges: Vec<Vec<(usize, usize)>>,
}

/// Maps a path's first segment to a workspace crate directory, if it is
/// a crate alias.
fn crate_alias(seg: &str) -> Option<&'static str> {
    Some(match seg {
        "snapea_tensor" => "tensor",
        "snapea" => "core",
        "snapea_nn" => "nn",
        "snapea_accel" => "accel",
        "snapea_obs" => "obs",
        "snapea_oracle" => "oracle",
        "snapea_bench" => "bench",
        "snapea_lint" => "lint",
        "snapea_cli" => "cli",
        _ => return None,
    })
}

fn is_external_root(seg: &str) -> bool {
    matches!(seg, "std" | "core" | "alloc")
}

fn is_type_like(seg: &str) -> bool {
    seg.chars().next().is_some_and(|c| c.is_uppercase())
}

impl CallGraph {
    /// Builds the graph from every file's parsed items. `files` pairs a
    /// per-file context with its items.
    pub(crate) fn build(files: &[(FileCtx<'_>, crate::parse::FileItems)]) -> CallGraph {
        let mut nodes = Vec::new();
        for (ctx, items) in files {
            for f in &items.fns {
                nodes.push(Node {
                    item: f.clone(),
                    krate: ctx.crate_name.to_string(),
                    file: ctx.path.to_string(),
                    kind: ctx.kind,
                });
            }
        }

        // Indexes: by bare name, by (crate, name), by (owner type, name).
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_crate_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut by_owner: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (idx, n) in nodes.iter().enumerate() {
            by_name.entry(&n.item.name).or_default().push(idx);
            by_crate_name
                .entry((&n.krate, &n.item.name))
                .or_default()
                .push(idx);
            if let Some(owner) = &n.item.owner {
                by_owner
                    .entry((owner.as_str(), &n.item.name))
                    .or_default()
                    .push(idx);
            }
        }

        let mut edges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nodes.len()];
        for (idx, n) in nodes.iter().enumerate() {
            for call in &n.item.calls {
                let targets = resolve(call, &n.krate, &by_name, &by_crate_name, &by_owner);
                for t in targets {
                    if t != idx {
                        edges[idx].push((t, call.line));
                    }
                }
            }
        }

        CallGraph { nodes, edges }
    }

    /// Runs R1: from every non-test fn in a result-path file, search for
    /// a reachable nondeterminism sink. Chains stop at the obs/bench
    /// boundary. One finding per reached sink site, shortest chain wins.
    pub(crate) fn r1_findings(&self, excerpt: &dyn Fn(&str, usize) -> String) -> Vec<Finding> {
        let mut findings = Vec::new();
        let mut reported: BTreeMap<(String, usize), ()> = BTreeMap::new();
        for (root, n) in self.nodes.iter().enumerate() {
            if n.item.in_test || !RESULT_PATH_FILES.iter().any(|f| n.file.ends_with(f)) {
                continue;
            }
            let reach = self.bfs(root, |t| {
                !SANCTIONED_CRATES.contains(&self.nodes[t].krate.as_str())
            });
            for (node, parent) in &reach {
                let nn = &self.nodes[*node];
                for sink in &nn.item.sinks {
                    let key = (nn.file.clone(), sink.line);
                    if reported.contains_key(&key) {
                        continue;
                    }
                    let mut chain = self.chain_to(&reach, *node, parent);
                    chain.push(ChainLink {
                        from: nn.qualified(),
                        to: sink.label.clone(),
                        file: nn.file.clone(),
                        line: sink.line,
                    });
                    reported.insert(key, ());
                    findings.push(Finding {
                        rule: RuleId::R1,
                        file: nn.file.clone(),
                        line: sink.line,
                        excerpt: excerpt(&nn.file, sink.line),
                        hint: RuleId::R1.hint().to_string(),
                        chain,
                    });
                }
            }
        }
        findings
    }

    /// Runs R2: multi-source BFS from every truly-`pub` library fn; any
    /// reached unaudited panic site yields one finding carrying the
    /// shortest chain from the nearest public root. `audited` says
    /// whether a valid `lint:allow(P1)` already covers a sink line.
    pub(crate) fn r2_findings(
        &self,
        excerpt: &dyn Fn(&str, usize) -> String,
        audited: &dyn Fn(&str, usize) -> bool,
    ) -> Vec<Finding> {
        let roots: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.item.is_pub && !n.item.in_test && n.kind == FileKind::Lib)
            .map(|(i, _)| i)
            .collect();
        let reach = self.multi_bfs(&roots, |_| true);
        let mut findings = Vec::new();
        let mut reported: BTreeMap<(String, usize), ()> = BTreeMap::new();
        for (node, parent) in &reach {
            let nn = &self.nodes[*node];
            if nn.item.in_test {
                continue;
            }
            for p in &nn.item.panics {
                if audited(&nn.file, p.line) {
                    continue;
                }
                let key = (nn.file.clone(), p.line);
                if reported.contains_key(&key) {
                    continue;
                }
                let mut chain = self.chain_to(&reach, *node, parent);
                chain.push(ChainLink {
                    from: nn.qualified(),
                    to: p.label.clone(),
                    file: nn.file.clone(),
                    line: p.line,
                });
                reported.insert(key, ());
                findings.push(Finding {
                    rule: RuleId::R2,
                    file: nn.file.clone(),
                    line: p.line,
                    excerpt: excerpt(&nn.file, p.line),
                    hint: RuleId::R2.hint().to_string(),
                    chain,
                });
            }
        }
        findings
    }

    /// Runs R3: every capture violation inside a pool-dispatched closure
    /// is a finding; the chain is `enclosing_fn → par::<entry> → label`.
    pub(crate) fn r3_findings(&self, excerpt: &dyn Fn(&str, usize) -> String) -> Vec<Finding> {
        let mut findings = Vec::new();
        for n in &self.nodes {
            if n.item.in_test {
                continue;
            }
            for d in &n.item.dispatches {
                for v in &d.violations {
                    let chain = vec![
                        ChainLink {
                            from: n.qualified(),
                            to: format!("tensor::par::{}", d.callee),
                            file: n.file.clone(),
                            line: d.line,
                        },
                        ChainLink {
                            from: format!("closure@{}", d.line),
                            to: v.label.clone(),
                            file: n.file.clone(),
                            line: v.line,
                        },
                    ];
                    findings.push(Finding {
                        rule: RuleId::R3,
                        file: n.file.clone(),
                        line: v.line,
                        excerpt: excerpt(&n.file, v.line),
                        hint: RuleId::R3.hint().to_string(),
                        chain,
                    });
                }
            }
        }
        findings
    }

    /// BFS from `root`; `enter` gates whether an edge target's subtree is
    /// explored. Returns `(node, parent)` pairs in visit order; `parent`
    /// is `(caller node, call line)`, absent for the root.
    fn bfs(
        &self,
        root: usize,
        enter: impl Fn(usize) -> bool,
    ) -> BTreeMap<usize, Option<(usize, usize)>> {
        self.multi_bfs(&[root], enter)
    }

    fn multi_bfs(
        &self,
        roots: &[usize],
        enter: impl Fn(usize) -> bool,
    ) -> BTreeMap<usize, Option<(usize, usize)>> {
        let mut seen: BTreeMap<usize, Option<(usize, usize)>> = BTreeMap::new();
        let mut q = VecDeque::new();
        for &r in roots {
            if let std::collections::btree_map::Entry::Vacant(e) = seen.entry(r) {
                e.insert(None);
                q.push_back(r);
            }
        }
        while let Some(u) = q.pop_front() {
            for &(v, line) in &self.edges[u] {
                if seen.contains_key(&v) || !enter(v) {
                    continue;
                }
                seen.insert(v, Some((u, line)));
                q.push_back(v);
            }
        }
        seen
    }

    /// Reconstructs the call chain root → … → `node` from BFS parents.
    fn chain_to(
        &self,
        reach: &BTreeMap<usize, Option<(usize, usize)>>,
        node: usize,
        parent: &Option<(usize, usize)>,
    ) -> Vec<ChainLink> {
        let mut links = Vec::new();
        let mut cur = node;
        let mut par = *parent;
        while let Some((p, line)) = par {
            links.push(ChainLink {
                from: self.nodes[p].qualified(),
                to: self.nodes[cur].qualified(),
                file: self.nodes[p].file.clone(),
                line,
            });
            cur = p;
            par = reach.get(&p).copied().flatten();
        }
        links.reverse();
        links
    }
}

/// Resolves one call site to candidate node indexes.
fn resolve(
    call: &crate::parse::CallSite,
    caller_crate: &str,
    by_name: &BTreeMap<&str, Vec<usize>>,
    by_crate_name: &BTreeMap<(&str, &str), Vec<usize>>,
    by_owner: &BTreeMap<(&str, &str), Vec<usize>>,
) -> Vec<usize> {
    let last = match call.path.last() {
        Some(l) => l.as_str(),
        None => return Vec::new(),
    };

    if call.method {
        if STD_METHODS.contains(&last) {
            return Vec::new();
        }
        // Receiver type unknown: every method of that name is a candidate.
        return by_name.get(last).cloned().unwrap_or_default();
    }

    let first = call.path.first().map(String::as_str).unwrap_or("");
    if is_external_root(first) && call.path.len() > 1 {
        return Vec::new();
    }

    // `Type::method` / `snapea_x::…::Type::method`: the owner index.
    let penult = call
        .path
        .len()
        .checked_sub(2)
        .and_then(|k| call.path.get(k))
        .map(String::as_str);
    if let Some(p) = penult {
        if is_type_like(p) {
            return by_owner.get(&(p, last)).cloned().unwrap_or_default();
        }
    }

    // A crate-qualified free fn: `snapea_tensor::par::run_tasks`,
    // `crate::helper`.
    let target_crate = match first {
        "crate" | "self" | "super" => Some(caller_crate),
        f => crate_alias(f),
    };
    if call.path.len() > 1 {
        if let Some(tc) = target_crate {
            return by_crate_name.get(&(tc, last)).cloned().unwrap_or_default();
        }
        // Module-qualified within the current crate (`par::run_tasks`):
        // same crate first, then anywhere.
        if let Some(hits) = by_crate_name.get(&(caller_crate, last)) {
            return hits.clone();
        }
        return by_name.get(last).cloned().unwrap_or_default();
    }

    // Bare call: caller's crate first, then any crate (a `use`-imported
    // free fn).
    if let Some(hits) = by_crate_name.get(&(caller_crate, last)) {
        return hits.clone();
    }
    by_name.get(last).cloned().unwrap_or_default()
}
