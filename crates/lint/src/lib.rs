//! `snapea-lint` — domain-specific static analysis for the SnaPEA
//! reproduction.
//!
//! The workspace's headline guarantees are *determinism* claims: the same
//! inputs produce bit-identical outputs at any `SNAPEA_THREADS`, the
//! optimised kernels reproduce the frozen baselines `.to_bits`-exactly,
//! and the oracle harness replays any case from a seed. Those guarantees
//! are enforced dynamically by tests — which must happen to exercise the
//! offending path. This crate enforces the *preconditions* statically, at
//! `check.sh` time: no hash-order iteration where floats accumulate (D1),
//! no wall-clock or ambient RNG in result-affecting code (D2), no panic
//! paths in library code (P1), no unaudited indexing in hot kernel loops
//! (P2), no silently-wrapping narrow casts in kernel/simulator arithmetic
//! (N1), `#![forbid(unsafe_code)]` on every crate root (S1), and honest
//! suppression annotations (A1). See [`rules`] for the rule table and
//! DESIGN.md §8 for the invariants each rule guards.
//!
//! The analysis is a comment/string-aware tokenizer ([`lexer`]) plus a
//! small state machine — deliberately not a full parser: the rules need
//! token shape and brace structure only, and the crate must stay std-only
//! (the CI registry cache is offline, so `syn` is not an option).
//!
//! Entry points: [`lint_workspace`] walks a checkout; [`lint_source`]
//! lints one file from memory (how the fixture tests drive each rule);
//! [`Finding`] is the machine-readable result the CLI's `--json` mode
//! round-trips.
//!
//! ```
//! use snapea_lint::{lint_source, FileCtx, FileKind, RuleId};
//! let ctx = FileCtx {
//!     path: "crates/core/src/demo.rs",
//!     crate_name: "core",
//!     kind: FileKind::Lib,
//!     is_crate_root: false,
//! };
//! let findings = lint_source(&ctx, "use std::collections::HashMap;\n");
//! assert_eq!(findings[0].rule, RuleId::D1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
mod graph;
pub mod lexer;
mod parse;
pub mod rules;
pub mod walk;

pub use engine::{lint_sources, LintOptions, SourceSpec};
pub use rules::{lint_source, ChainLink, FileCtx, FileKind, Finding, RuleId};
pub use walk::{find_workspace_root, lint_workspace, lint_workspace_opts, LintReport, WalkError};
