//! The lint rules and the per-file analysis engine.
//!
//! Every rule guards an invariant the reproduction's correctness claims
//! rest on (see DESIGN.md §8 for the full table):
//!
//! * **D1** `hash-collections` — no `HashMap`/`HashSet` in result-affecting
//!   crates (`tensor`, `core`, `accel`, `nn`). Hash iteration order is
//!   nondeterministic per process; if it leaks into float accumulation
//!   order it silently breaks the 1-vs-N-thread bit-identity contract.
//! * **D2** `wall-clock` — no `Instant`/`SystemTime`/ambient-RNG use
//!   outside `obs` and `bench`. Result-affecting code must be a pure
//!   function of its inputs and the seed.
//! * **P1** `panic-path` — no `unwrap`/`expect`/`panic!`/`todo!`/
//!   `unimplemented!`/`unreachable!` in library code. A panic inside a
//!   worker tears down the pool mid-merge; error paths must propagate.
//! * **P2** `hot-index` — no slice indexing inside loops in the designated
//!   hot kernel files (each index is a bounds-check branch and a panic
//!   path in the innermost MAC loops).
//! * **N1** `narrow-cast` — no bare `as` casts to narrow integer types in
//!   kernel/simulator arithmetic; `as` silently wraps, which is exactly
//!   how quantisation and cycle-count bugs slip in. Use the checked or
//!   saturating helpers in `snapea_tensor::num`.
//! * **S1** `forbid-unsafe` — every crate root carries
//!   `#![forbid(unsafe_code)]` (or `#![deny(unsafe_code)]` where an audited
//!   exception exists, e.g. the tensor crate's persistent-pool core), and
//!   every `unsafe` token outside tests needs a reasoned
//!   `// lint:allow(S1) <soundness argument>`.
//! * **A1** `allow-grammar` — every `// lint:allow(<rule>) <reason>`
//!   annotation must name a known rule, carry a non-empty reason, and
//!   actually suppress something.
//!
//! Suppression grammar: a finding on line *L* is allowed by a comment
//! `// lint:allow(<RULE>) <reason>` on the line(s) immediately above *L*.
//! When the annotated line opens a `fn` item, the allow covers the whole
//! function body — hot kernels annotate once per function, not per index.

use crate::lexer::{lex, TokKind, Token};

/// Rule identifiers. `A1` is the meta-rule for malformed annotations;
/// `R1`–`R3` are the call-graph (transitive) rules, only run by the
/// workspace-level graph pass (`--graph`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Hash collections in result-affecting crates.
    D1,
    /// Wall-clock / ambient RNG outside obs and bench.
    D2,
    /// Panic paths in library code.
    P1,
    /// Slice indexing in hot kernel loops.
    P2,
    /// Bare narrowing `as` casts in kernel/simulator arithmetic.
    N1,
    /// Missing `#![forbid/deny(unsafe_code)]` on a crate root, or an
    /// `unsafe` token without a reasoned justification.
    S1,
    /// Malformed, unknown, or unused `lint:allow` annotation.
    A1,
    /// Result-path function transitively reaches a nondeterminism source.
    R1,
    /// Public library API transitively reaches a panic site.
    R2,
    /// Closure dispatched into the `snapea-tensor::par` pool captures or
    /// mutates aliased outer state.
    R3,
}

impl RuleId {
    /// All rules, in report order.
    pub const ALL: [RuleId; 10] = [
        RuleId::D1,
        RuleId::D2,
        RuleId::P1,
        RuleId::P2,
        RuleId::N1,
        RuleId::S1,
        RuleId::A1,
        RuleId::R1,
        RuleId::R2,
        RuleId::R3,
    ];

    /// The short id used in reports and `lint:allow(...)` annotations.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::P1 => "P1",
            RuleId::P2 => "P2",
            RuleId::N1 => "N1",
            RuleId::S1 => "S1",
            RuleId::A1 => "A1",
            RuleId::R1 => "R1",
            RuleId::R2 => "R2",
            RuleId::R3 => "R3",
        }
    }

    /// Parses a rule id as written in an annotation or `--rule` filter.
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.as_str() == s)
    }

    /// True for the transitive call-graph rules, which only run under the
    /// workspace graph pass (`LintOptions::graph` / `lint --graph`).
    pub fn is_graph(self) -> bool {
        matches!(self, RuleId::R1 | RuleId::R2 | RuleId::R3)
    }

    /// Human name of the rule.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::D1 => "hash-collections",
            RuleId::D2 => "wall-clock",
            RuleId::P1 => "panic-path",
            RuleId::P2 => "hot-index",
            RuleId::N1 => "narrow-cast",
            RuleId::S1 => "forbid-unsafe",
            RuleId::A1 => "allow-grammar",
            RuleId::R1 => "determinism-reachability",
            RuleId::R2 => "panic-reachability",
            RuleId::R3 => "parallel-capture",
        }
    }

    /// One-line fix hint attached to findings.
    pub fn hint(self) -> &'static str {
        match self {
            RuleId::D1 => {
                "hash iteration order is nondeterministic and leaks into accumulation \
                 order; use BTreeMap/BTreeSet or a sorted Vec"
            }
            RuleId::D2 => {
                "result-affecting code must be a pure function of inputs and seed; route \
                 timing through snapea-obs (Stopwatch/now_ms) and RNG through a seeded \
                 generator"
            }
            RuleId::P1 => {
                "library code must propagate errors, not panic; return Result, restructure, \
                 or justify with `// lint:allow(P1) <reason>` on the line above"
            }
            RuleId::P2 => {
                "indexing in a hot kernel loop is a bounds-check branch and a panic path; \
                 use iterators/zip, or annotate the enclosing fn with \
                 `// lint:allow(P2) <reason>` stating why every index is in range"
            }
            RuleId::N1 => {
                "a bare `as` cast to a narrow integer silently wraps; use the checked/\
                 saturating helpers in snapea_tensor::num or justify with \
                 `// lint:allow(N1) <reason>`"
            }
            RuleId::S1 => {
                "crate roots must carry `#![forbid(unsafe_code)]` (or `#![deny(unsafe_code)]` \
                 for a crate with an audited exception), and every `unsafe` site needs \
                 `// lint:allow(S1) <soundness argument>` on the line above (or above its fn)"
            }
            RuleId::A1 => {
                "every `// lint:allow(<rule>) <reason>` must name a known rule, give a \
                 non-empty reason, and suppress at least one finding"
            }
            RuleId::R1 => {
                "a result-path function (executor walks, kernels, oracle references, \
                 artifact load) transitively reaches a nondeterminism source; break the \
                 chain, or justify the sanctioned site with `// lint:allow(R1) <reason>` \
                 at any link"
            }
            RuleId::R2 => {
                "a public library API transitively reaches an unaudited panic site; \
                 propagate the error, audit the sink with `// lint:allow(P1) <reason>`, \
                 or justify a link with `// lint:allow(R2) <reason>`"
            }
            RuleId::R3 => {
                "a closure dispatched into the snapea-tensor::par pool captures &mut \
                 state or mutates a captured binding; pass per-task data as task items \
                 (disjoint &mut slabs via chunks_mut) or justify with \
                 `// lint:allow(R3) <reason>`"
            }
        }
    }

    /// Long-form documentation for `snapea-tool lint --explain <rule>`: the
    /// invariant, the scope, and what a fix looks like.
    pub fn explain(self) -> &'static str {
        match self {
            RuleId::D1 => {
                "D1 hash-collections — scope: result-affecting crates (tensor, core, \
                 accel, nn, oracle).\n\
                 HashMap/HashSet iteration order varies per process (SipHash keys are \
                 randomized), so any float accumulation or output ordering derived from \
                 it silently breaks the bit-identity contracts. Use BTreeMap/BTreeSet \
                 or a sorted Vec; a membership-only set that is provably never iterated \
                 into results may carry `// lint:allow(D1) <reason>`."
            }
            RuleId::D2 => {
                "D2 wall-clock — scope: everywhere except the obs and bench crates.\n\
                 Instant/SystemTime/ambient RNG (thread_rng, from_entropy, OsRng) make \
                 result-affecting code a function of more than its inputs and seed. \
                 Route timing through snapea_obs::Stopwatch/spans and randomness \
                 through seeded generators."
            }
            RuleId::P1 => {
                "P1 panic-path — scope: library (non-test, non-bin) code.\n\
                 unwrap/expect/panic!/todo!/unimplemented!/unreachable! tear down a \
                 pool worker mid-merge. Return Result, restructure, or annotate the \
                 invariant with `// lint:allow(P1) <reason>` — the reason is the audit \
                 trail arguing the panic is unreachable."
            }
            RuleId::P2 => {
                "P2 hot-index — scope: the designated hot kernel files.\n\
                 Each slice index inside a loop is a bounds-check branch and a panic \
                 path in the innermost MAC loops. Use iterators/zip, or annotate the \
                 enclosing fn stating why every index is in range."
            }
            RuleId::N1 => {
                "N1 narrow-cast — scope: the hot kernel files.\n\
                 A bare `as` cast to i8/u8/i16/u16/i32/u32 silently wraps; use the \
                 checked/saturating helpers in snapea_tensor::num."
            }
            RuleId::S1 => {
                "S1 forbid-unsafe — scope: every crate root and every unsafe token.\n\
                 Crate roots carry #![forbid(unsafe_code)] (or #![deny(unsafe_code)] \
                 for the audited tensor pool core), and each unsafe token outside \
                 tests needs `// lint:allow(S1) <soundness argument>`."
            }
            RuleId::A1 => {
                "A1 allow-grammar — scope: all `lint:allow` annotations.\n\
                 Every suppression must name a known rule, carry a non-empty reason, \
                 and actually suppress a finding. Graph-rule allows (R1/R2/R3) are \
                 usage-checked only when the graph pass runs, since only it can \
                 observe the chains they suppress."
            }
            RuleId::R1 => {
                "R1 determinism-reachability — scope: functions defined in the \
                 result-path files (executor walks, kernels, oracle references, \
                 artifact load), analyzed over the whole workspace call graph.\n\
                 A result-path function must not transitively reach a nondeterminism \
                 source: wall-clock constructors, ambient RNG, hash-order iteration, \
                 std::env reads, or thread-identity reads. Calls into the obs and \
                 bench crates do not propagate (the sanctioned observability \
                 boundary: timing flows into events, never back into results). The \
                 finding prints the evidence chain, e.g.\n\
                 \x20   execute_conv() \u{2192} run_tasks() \u{2192} threads() \u{2192} std::env::var\n\
                 and a reasoned `// lint:allow(R1) <reason>` at any link (typically \
                 the sanctioned config-read site) suppresses every chain through it."
            }
            RuleId::R2 => {
                "R2 panic-reachability — scope: public functions in library code, \
                 analyzed over the whole workspace call graph.\n\
                 Where P1 flags a panic token at its site, R2 proves the negative \
                 transitively: no public API may reach a panic site that lacks a \
                 reasoned audit. A panic site under a valid `lint:allow(P1)` is \
                 audited (its reason argues unreachability) and terminates the \
                 search; an unaudited site yields one finding carrying the complete \
                 shortest call chain from the nearest public API, with file:line \
                 spans for every edge. `// lint:allow(R2) <reason>` at any chain \
                 link also suppresses."
            }
            RuleId::R3 => {
                "R3 parallel-capture — scope: closure arguments at every \
                 snapea_tensor::par dispatch site (run_tasks, parallel_map, \
                 parallel_map_chunks, parallel_for), workspace-wide.\n\
                 The pool's bit-identity contract requires tasks to write only \
                 per-task state: a dispatched closure must not capture `&mut` \
                 aliased outer state, assign to captured bindings, or call mutating \
                 methods on captured collections. Per-task outputs belong in the \
                 task items themselves (disjoint &mut slabs via chunks_mut). This is \
                 the static shadow of the contract the determinism suite checks \
                 dynamically."
            }
        }
    }
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One edge of a call-graph evidence chain: `from` calls (or contains)
/// `to`, at `file:line`. The final link's `to` is the sink itself (a
/// nondeterminism source, panic token, or capture violation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainLink {
    /// Qualified caller, `<crate>::[<Type>::]<fn>`.
    pub from: String,
    /// Qualified callee, or the sink label for the terminal link.
    pub to: String,
    /// Workspace-relative file of the call (or sink) site.
    pub file: String,
    /// 1-based line of the call (or sink) site.
    pub line: usize,
}

impl ChainLink {
    /// Renders the link as a JSON object.
    pub fn to_json_string(&self) -> String {
        format!(
            "{{\"from\":{},\"to\":{},\"file\":{},\"line\":{}}}",
            json_str(&self.from),
            json_str(&self.to),
            json_str(&self.file),
            self.line
        )
    }
}

/// One lint finding. This is the machine-readable unit the CLI's `--json`
/// mode emits and round-trips.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the offending token (or annotation, for A1).
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// [`RuleId::hint`] for the rule, carried so JSON consumers need no
    /// rule table.
    pub hint: String,
    /// Evidence chain for graph-rule findings (root → … → sink), with the
    /// call-site span of every edge. Empty for the per-file rules.
    pub chain: Vec<ChainLink>,
}

impl Finding {
    /// Renders the finding as a single JSON object (hand-rolled: this crate
    /// is std-only by design).
    pub fn to_json_string(&self) -> String {
        let chain: Vec<String> = self.chain.iter().map(ChainLink::to_json_string).collect();
        format!(
            "{{\"rule\":{},\"file\":{},\"line\":{},\"excerpt\":{},\"hint\":{},\"chain\":[{}]}}",
            json_str(self.rule.as_str()),
            json_str(&self.file),
            self.line,
            json_str(&self.excerpt),
            json_str(&self.hint),
            chain.join(",")
        )
    }

    /// The one-line evidence form, `root() → callee() → sink` (short fn
    /// names; the terminal sink label is printed verbatim).
    pub fn chain_summary(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        for (i, link) in self.chain.iter().enumerate() {
            if i == 0 {
                parts.push(format!("{}()", short_name(&link.from)));
            }
            if i + 1 == self.chain.len() {
                parts.push(link.to.clone());
            } else {
                parts.push(format!("{}()", short_name(&link.to)));
            }
        }
        parts.join(" \u{2192} ")
    }

    /// Renders the human-readable report form: the two-line site + hint,
    /// plus — for graph findings — the evidence chain with a file:line
    /// span per edge.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "{}:{} [{}/{}] {}",
            self.file,
            self.line,
            self.rule,
            self.rule.name(),
            self.excerpt
        );
        if !self.chain.is_empty() {
            out.push_str(&format!("\n    chain: {}", self.chain_summary()));
            for link in &self.chain {
                out.push_str(&format!(
                    "\n      {}:{} {} \u{2192} {}",
                    link.file, link.line, link.from, link.to
                ));
            }
        }
        out.push_str(&format!("\n    hint: {}", self.hint));
        out
    }
}

/// The last `::` segment of a qualified name.
fn short_name(qualified: &str) -> &str {
    qualified.rsplit("::").next().unwrap_or(qualified)
}

/// Minimal JSON string escaping (the only JSON this crate emits).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// What kind of source a file is; decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code (`src/**` except `src/bin/`): all rules.
    Lib,
    /// Binary targets (`src/bin/**`): determinism rules only — a CLI may
    /// print and exit on bad input, but it must not read clocks or hash
    /// order into anything result-affecting.
    Bin,
}

/// Per-file lint context: where the file sits in the workspace.
#[derive(Debug, Clone)]
pub struct FileCtx<'a> {
    /// Workspace-relative path, used in findings.
    pub path: &'a str,
    /// The crate directory name (`tensor`, `core`, `obs`, …; the facade
    /// crate at the workspace root is `suite`).
    pub crate_name: &'a str,
    /// Library or binary source.
    pub kind: FileKind,
    /// Whether this file is a crate root (`lib.rs`), which S1 checks.
    pub is_crate_root: bool,
}

/// Crates whose outputs feed results; D1 applies here.
const RESULT_CRATES: [&str; 5] = ["tensor", "core", "accel", "nn", "oracle"];

/// Crates exempt from D2: observability owns the wall clock, the bench
/// harness times things by definition.
const TIME_CRATES: [&str; 2] = ["obs", "bench"];

/// Hot kernel/simulator files: P2 and N1 apply here. Paths are matched by
/// suffix against the workspace-relative path.
const HOT_FILES: [&str; 7] = [
    "crates/tensor/src/matrix.rs",
    "crates/tensor/src/q16.rs",
    "crates/tensor/src/im2col.rs",
    "crates/core/src/exec.rs",
    "crates/core/src/pau.rs",
    "crates/accel/src/sim.rs",
    "crates/accel/src/engine.rs",
];

/// Identifiers that never form the base of an index expression even though
/// they precede `[` (e.g. `&mut [f32]`).
const NON_INDEX_KEYWORDS: [&str; 24] = [
    "mut", "ref", "dyn", "as", "in", "return", "if", "else", "match", "move", "where", "impl",
    "fn", "let", "pub", "use", "crate", "super", "static", "const", "break", "continue", "type",
    "box",
];

const NARROW_INTS: [&str; 6] = ["i8", "u8", "i16", "u16", "i32", "u32"];

/// A parsed `// lint:allow(<rule>) <reason>` annotation.
#[derive(Debug)]
pub(crate) struct Allow {
    /// Line of the comment itself.
    pub(crate) comment_line: usize,
    /// The rule text inside the parens (may be unknown — A1 reports it).
    pub(crate) rule_text: String,
    /// Parsed rule, when known.
    pub(crate) rule: Option<RuleId>,
    /// Free-text justification after the closing paren.
    pub(crate) reason: String,
    /// Inclusive line range the allow covers (one line, or a fn body).
    pub(crate) scope: (usize, usize),
    /// Whether any finding was suppressed by this allow.
    pub(crate) used: bool,
}

impl Allow {
    /// True when the allow is well-formed for `rule` and its scope covers
    /// `line` — the condition under which it may suppress a finding.
    pub(crate) fn covers(&self, rule: RuleId, line: usize) -> bool {
        self.rule == Some(rule)
            && !self.reason.is_empty()
            && line >= self.scope.0
            && line <= self.scope.1
    }
}

/// The per-file analysis state: raw (pre-suppression) findings from the
/// file rules plus the collected allow annotations. The workspace engine
/// holds one per file so the graph pass can consume allows before the A1
/// hygiene pass runs.
#[derive(Debug)]
pub(crate) struct FileAnalysis {
    pub(crate) path: String,
    pub(crate) lines: Vec<String>,
    pub(crate) raw: Vec<Finding>,
    pub(crate) allows: Vec<Allow>,
}

impl FileAnalysis {
    /// The trimmed source line at 1-based `line`.
    pub(crate) fn excerpt(&self, line: usize) -> String {
        self.lines
            .get(line.saturating_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// Applies the allows to the raw file-rule findings: a valid, reasoned
    /// allow for the matching rule and line suppresses the finding (and is
    /// marked used); invalid allows suppress nothing.
    pub(crate) fn apply_allows(&mut self) -> Vec<Finding> {
        let mut findings = Vec::new();
        for f in std::mem::take(&mut self.raw) {
            match self.allows.iter_mut().find(|a| a.covers(f.rule, f.line)) {
                Some(a) => a.used = true,
                None => findings.push(f),
            }
        }
        findings
    }

    /// The A1 hygiene pass: malformed allows always fire; unused allows
    /// fire except graph-rule allows when the graph pass did not run
    /// (`check_unused_graph == false`) — only the graph pass can observe
    /// the chains those suppress.
    pub(crate) fn a1_findings(&self, check_unused_graph: bool) -> Vec<Finding> {
        let mut findings = Vec::new();
        for a in &self.allows {
            let problem = if a.rule.is_none() {
                Some(format!("unknown rule {:?} in lint:allow", a.rule_text))
            } else if a.reason.is_empty() {
                Some("lint:allow without a reason".to_string())
            } else if !a.used && (check_unused_graph || !a.rule.is_some_and(RuleId::is_graph)) {
                Some("lint:allow suppresses no finding".to_string())
            } else {
                None
            };
            if let Some(p) = problem {
                findings.push(Finding {
                    rule: RuleId::A1,
                    file: self.path.clone(),
                    line: a.comment_line,
                    excerpt: format!("{} ({})", self.excerpt(a.comment_line), p),
                    hint: RuleId::A1.hint().to_string(),
                    chain: Vec::new(),
                });
            }
        }
        findings
    }
}

/// Lints one file. `source` is the full file text; findings come back in
/// line order. This is the unit the fixture tests drive directly. Only the
/// per-file rules run here; the transitive R-rules need the workspace
/// engine ([`crate::lint_sources`] with `graph` on).
pub fn lint_source(ctx: &FileCtx<'_>, source: &str) -> Vec<Finding> {
    let mut fa = analyze(ctx, source);
    let mut findings = fa.apply_allows();
    findings.extend(fa.a1_findings(false));
    findings.sort_by_key(|a| (a.line, a.rule));
    findings
}

/// Runs the file rules over `source`, returning the raw findings and the
/// allow annotations without applying them.
pub(crate) fn analyze(ctx: &FileCtx<'_>, source: &str) -> FileAnalysis {
    let lines: Vec<&str> = source.lines().collect();
    let excerpt = |line: usize| -> String {
        lines
            .get(line.saturating_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };
    let tokens = lex(source);
    // The code view: the token stream with comments stripped.
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.kind.is_comment()).collect();
    let test_ranges = test_regions(&code);
    let in_test = |idx: usize| test_ranges.iter().any(|&(lo, hi)| idx >= lo && idx <= hi);
    let allows = collect_allows(&tokens, &code);

    let mut raw: Vec<Finding> = Vec::new();
    let mut push = |rule: RuleId, line: usize| {
        raw.push(Finding {
            rule,
            file: ctx.path.to_string(),
            line,
            excerpt: excerpt(line),
            hint: rule.hint().to_string(),
            chain: Vec::new(),
        });
    };

    let is_result_crate = RESULT_CRATES.contains(&ctx.crate_name);
    let is_time_crate = TIME_CRATES.contains(&ctx.crate_name);
    let is_hot = HOT_FILES.iter().any(|h| ctx.path.ends_with(h));

    // S1 (crate-root half): every crate root must carry a lint-level gate
    // against unsafe code — `forbid` normally, `deny` for the one crate
    // with an audited exception (the tensor crate's persistent-pool core,
    // whose individual `unsafe` tokens the per-token half below still
    // flags). Checked over the whole token stream (the attribute sits
    // above any cfg region).
    if ctx.is_crate_root {
        let has_guard = code.windows(3).any(|w| {
            matches!(w[0].kind.ident(), Some("forbid") | Some("deny"))
                && w[1].kind == TokKind::Punct('(')
                && w[2].kind.ident() == Some("unsafe_code")
        });
        if !has_guard {
            push(RuleId::S1, 1);
        }
    }

    // Loop tracking for P2: a stack of `is_loop` per open brace.
    let mut brace_stack: Vec<bool> = Vec::new();
    let mut pending_loop = false;

    for i in 0..code.len() {
        let t = code[i];
        let line = t.line;
        let tested = in_test(i);

        match &t.kind {
            TokKind::Punct('{') => {
                brace_stack.push(pending_loop);
                pending_loop = false;
            }
            TokKind::Punct('}') => {
                brace_stack.pop();
            }
            TokKind::Ident(id) if matches!(id.as_str(), "while" | "loop") => {
                pending_loop = true;
            }
            // `for` is a loop head only in its `for <pat> in <expr>` form;
            // `impl Trait for Type` and HRTB `for<'a>` have no `in` before
            // the brace.
            TokKind::Ident(id) if id == "for" => {
                let mut j = i + 1;
                while let Some(t2) = code.get(j) {
                    match &t2.kind {
                        TokKind::Ident(id2) if id2 == "in" => {
                            pending_loop = true;
                            break;
                        }
                        TokKind::Punct('{') | TokKind::Punct(';') => break,
                        _ => j += 1,
                    }
                }
            }
            _ => {}
        }
        if tested {
            continue;
        }

        match &t.kind {
            // D1 — hash collections in result-affecting crates.
            TokKind::Ident(id) if is_result_crate && (id == "HashMap" || id == "HashSet") => {
                push(RuleId::D1, line);
            }
            // D2 — wall clock / ambient RNG outside obs and bench.
            TokKind::Ident(id)
                if !is_time_crate
                    && matches!(
                        id.as_str(),
                        "Instant" | "SystemTime" | "thread_rng" | "from_entropy" | "OsRng"
                    ) =>
            {
                push(RuleId::D2, line);
            }
            // P1 — panic paths in library code.
            TokKind::Ident(id)
                if ctx.kind == FileKind::Lib
                    && matches!(
                        id.as_str(),
                        "panic" | "todo" | "unimplemented" | "unreachable"
                    )
                    && matches!(code.get(i + 1).map(|t| &t.kind), Some(TokKind::Punct('!'))) =>
            {
                push(RuleId::P1, line);
            }
            TokKind::Ident(id)
                if ctx.kind == FileKind::Lib
                    && (id == "unwrap" || id == "expect")
                    && i >= 1
                    && code[i - 1].kind == TokKind::Punct('.')
                    && matches!(code.get(i + 1).map(|t| &t.kind), Some(TokKind::Punct('(')))
                // `.unwrap()` needs the exact empty-paren form so
                // `.unwrap_or(..)` (a different identifier) and method
                // *definitions* never match; `.expect(` flags any argument.
                && (id == "expect"
                    || matches!(code.get(i + 2).map(|t| &t.kind), Some(TokKind::Punct(')')))) =>
            {
                push(RuleId::P1, line);
            }
            // S1 (per-token half) — every `unsafe` keyword (blocks, fns,
            // impls) must carry a reasoned allow stating the soundness
            // argument; the crate-root gate alone only proves the crate
            // opted in, not that each site was audited.
            TokKind::Ident(id) if id == "unsafe" => {
                push(RuleId::S1, line);
            }
            // P2 — indexing inside a loop in a hot file.
            TokKind::Punct('[')
                if is_hot
                    && brace_stack.iter().any(|&l| l)
                    && i >= 1
                    && is_index_base(&code[i - 1].kind) =>
            {
                push(RuleId::P2, line);
            }
            // N1 — narrowing `as` cast in a hot file.
            TokKind::Ident(id)
                if is_hot
                    && id == "as"
                    && code
                        .get(i + 1)
                        .and_then(|t| t.kind.ident())
                        .is_some_and(|n| NARROW_INTS.contains(&n)) =>
            {
                push(RuleId::N1, line);
            }
            _ => {}
        }
    }

    FileAnalysis {
        path: ctx.path.to_string(),
        lines: lines.iter().map(|l| l.to_string()).collect(),
        raw,
        allows,
    }
}

/// True when `kind` can be the base expression of an index (`x[`, `)[`,
/// `][`), as opposed to a type position (`&mut [f32]`) or attribute.
fn is_index_base(kind: &TokKind) -> bool {
    match kind {
        TokKind::Punct(')') | TokKind::Punct(']') => true,
        TokKind::Ident(id) => !NON_INDEX_KEYWORDS.contains(&id.as_str()),
        _ => false,
    }
}

/// Code-token index ranges covered by `#[cfg(test)]` / `#[test]` items.
pub(crate) fn test_regions(code: &[&Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if code[i].kind == TokKind::Punct('#')
            && matches!(code.get(i + 1).map(|t| &t.kind), Some(TokKind::Punct('[')))
        {
            // Scan the attribute's bracket span.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut saw_test = false;
            let mut saw_not = false;
            let mut idents = 0usize;
            while j < code.len() && depth > 0 {
                match &code[j].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => depth -= 1,
                    TokKind::Ident(id) => {
                        idents += 1;
                        if id == "test" {
                            saw_test = true;
                        }
                        if id == "not" {
                            saw_not = true;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            // `#[test]` alone, or a cfg containing `test` (but not
            // `cfg(not(test))`) marks the following item as test-only.
            let marks_test = saw_test && !saw_not && idents <= 4;
            if marks_test {
                // The region runs to the end of the next item: its `{…}`
                // body, or the terminating `;` for bodiless items.
                let mut k = j;
                let mut body_depth = 0usize;
                let end = loop {
                    match code.get(k).map(|t| &t.kind) {
                        None => break code.len().saturating_sub(1),
                        Some(TokKind::Punct('{')) => {
                            body_depth += 1;
                            k += 1;
                        }
                        Some(TokKind::Punct('}')) => {
                            body_depth -= 1;
                            if body_depth == 0 {
                                break k;
                            }
                            k += 1;
                        }
                        Some(TokKind::Punct(';')) if body_depth == 0 => break k,
                        Some(_) => k += 1,
                    }
                };
                regions.push((i, end));
                i = end + 1;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    regions
}

/// Extracts `lint:allow` annotations from line comments and computes each
/// one's scope: the next code line, widened to the whole body when that
/// line opens a `fn`.
fn collect_allows(tokens: &[Token], code: &[&Token]) -> Vec<Allow> {
    let mut out = Vec::new();
    for t in tokens {
        let TokKind::LineComment { text, doc: false } = &t.kind else {
            continue;
        };
        let trimmed = text.trim_start();
        let Some(rest) = trimmed.strip_prefix("lint:allow") else {
            continue;
        };
        let (rule_text, reason) = match rest.trim_start().strip_prefix('(') {
            Some(inner) => match inner.split_once(')') {
                Some((r, why)) => (r.trim().to_string(), why.trim().to_string()),
                None => (inner.trim().to_string(), String::new()),
            },
            None => (String::new(), rest.trim().to_string()),
        };
        // Binding line: the first code token on a later line. Other allow
        // comments may sit between (stacked annotations share a target), and
        // `#[...]` attribute lines are bound through — a rustc-side
        // `#[allow(clippy::...)]` stacked with a lint:allow annotates the
        // same statement.
        let bind = code
            .iter()
            .position(|c| c.line > t.line)
            .map(|idx| skip_attrs(code, idx))
            .filter(|&idx| idx < code.len());
        let scope = match bind {
            None => (t.line + 1, t.line + 1),
            Some(idx) => fn_scope(code, idx),
        };
        out.push(Allow {
            comment_line: t.line,
            rule: RuleId::parse(&rule_text),
            rule_text,
            reason,
            scope,
            used: false,
        });
    }
    out
}

/// Advances `idx` past any `#[...]` / `#![...]` attributes so an allow
/// comment binds to the statement or item the attributes annotate.
fn skip_attrs(code: &[&Token], mut idx: usize) -> usize {
    while idx < code.len() && matches!(code[idx].kind, TokKind::Punct('#')) {
        let mut j = idx + 1;
        if matches!(code.get(j).map(|t| &t.kind), Some(TokKind::Punct('!'))) {
            j += 1;
        }
        if !matches!(code.get(j).map(|t| &t.kind), Some(TokKind::Punct('['))) {
            break;
        }
        let mut depth = 0usize;
        while let Some(t) = code.get(j) {
            match t.kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        idx = j + 1;
    }
    idx
}

/// The line span an allow bound at code token `idx` covers: normally just
/// that token's line, but the whole body when the statement starting there
/// is a `fn` item.
pub(crate) fn fn_scope(code: &[&Token], idx: usize) -> (usize, usize) {
    let line = code[idx].line;
    // Scan the item header: if an `fn` keyword appears before the first
    // `{` or item-level `;`, the allow covers the function body. Semicolons
    // nested in brackets/parens (array types like `[f32; 8]` in the
    // signature) are not item terminators.
    let mut saw_fn = false;
    let mut nesting = 0usize;
    let mut j = idx;
    while let Some(t) = code.get(j) {
        match &t.kind {
            TokKind::Ident(id) if id == "fn" => saw_fn = true,
            TokKind::Punct('[' | '(') => nesting += 1,
            TokKind::Punct(']' | ')') => nesting = nesting.saturating_sub(1),
            TokKind::Punct('{') => break,
            TokKind::Punct(';') if nesting == 0 => return (line, line),
            // A `}` cannot appear in a fn header before its body `{`;
            // hitting one means the target was an expression (e.g. a tail
            // call closing its block) and the scan must not run on into the
            // next item and mistake it for the allow's fn.
            TokKind::Punct('}') => return (line, line),
            _ => {}
        }
        j += 1;
    }
    if !saw_fn {
        return (line, line);
    }
    // `j` sits on the body `{`; find its matching close.
    let mut depth = 0usize;
    let mut k = j;
    while let Some(t) = code.get(k) {
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return (line, t.line);
                }
            }
            _ => {}
        }
        k += 1;
    }
    (line, code.last().map_or(line, |t| t.line))
}
