//! Activation statistics behind the paper's Figures 1 and 2.
//!
//! Figure 1 reports the fraction of activation-layer inputs (i.e. convolution
//! outputs feeding a ReLU) that are negative — 42–68% across the paper's
//! networks. Figure 2 shows that the *spatial location* of zeros varies from
//! input image to input image, which is why a static (pruning-style) approach
//! cannot capture them and a runtime mechanism is needed.

use crate::graph::{Graph, NodeId, Op};
use snapea_tensor::Tensor4;

/// Per-conv-layer negative-input statistics for one network/batch.
#[derive(Debug, Clone, PartialEq)]
pub struct NegativeStats {
    /// `(conv node id, layer name, negative fraction)` per conv layer.
    pub per_layer: Vec<(NodeId, String, f64)>,
    /// Element-weighted overall negative fraction.
    pub overall: f64,
}

/// Measures, for every convolution layer that feeds a ReLU, the fraction of
/// its outputs that are negative (Figure 1).
pub fn negative_fraction(net: &Graph, batch: &Tensor4) -> NegativeStats {
    let acts = net.forward(batch);
    let mut per_layer = Vec::new();
    let mut neg = 0usize;
    let mut total = 0usize;
    for id in net.conv_ids() {
        if !net.feeds_only_relu(id) {
            continue;
        }
        let a = &acts[id];
        let n = a.iter().filter(|v| **v < 0.0).count();
        per_layer.push((
            id,
            net.node(id).name.clone(),
            n as f64 / a.shape().len() as f64,
        ));
        neg += n;
        total += a.shape().len();
    }
    NegativeStats {
        per_layer,
        overall: if total == 0 {
            0.0
        } else {
            neg as f64 / total as f64
        },
    }
}

/// A boolean zero-mask of one activation tensor (true where the
/// post-ReLU value is zero).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZeroMap {
    /// Channel count of the mapped activation.
    pub channels: usize,
    /// Spatial extent (h, w).
    pub spatial: (usize, usize),
    /// Flattened mask, true = zero activation.
    pub mask: Vec<bool>,
}

impl ZeroMap {
    /// Fraction of zero entries.
    pub fn zero_fraction(&self) -> f64 {
        if self.mask.is_empty() {
            return 0.0;
        }
        self.mask.iter().filter(|z| **z).count() as f64 / self.mask.len() as f64
    }

    /// Jaccard similarity of the zero sets of two maps.
    ///
    /// # Panics
    ///
    /// Panics if the maps have different extents.
    pub fn jaccard(&self, other: &ZeroMap) -> f64 {
        assert_eq!(self.mask.len(), other.mask.len(), "zero map extents differ");
        let mut inter = 0usize;
        let mut union = 0usize;
        for (&a, &b) in self.mask.iter().zip(other.mask.iter()) {
            if a && b {
                inter += 1;
            }
            if a || b {
                union += 1;
            }
        }
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    }
}

/// Computes the post-ReLU zero map of conv node `conv_id`'s activation for
/// batch item `item` (Figure 2's intermediate feature maps).
///
/// # Panics
///
/// Panics if `conv_id` is not a conv node of `net`.
pub fn zero_map(net: &Graph, batch: &Tensor4, conv_id: NodeId, item: usize) -> ZeroMap {
    assert!(
        matches!(net.node(conv_id).op, Op::Conv(_)),
        "node {conv_id} is not a convolution"
    );
    let acts = net.forward(batch);
    let a = &acts[conv_id];
    let s = a.shape();
    let mut mask = Vec::with_capacity(s.item_len());
    for &v in a.item(item) {
        mask.push(v <= 0.0); // ReLU squashes non-positive values to zero
    }
    ZeroMap {
        channels: s.c,
        spatial: (s.h, s.w),
        mask,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SynthShapes;
    use crate::zoo;
    use snapea_tensor::Shape4;

    #[test]
    fn negative_fraction_on_untrained_net_is_substantial() {
        // He-initialized conv layers upstream of ReLU produce roughly
        // zero-centred pre-activations: the negative fraction should be far
        // from both 0 and 1 — the same band the paper's Figure 1 reports.
        let net = zoo::mini_alexnet(10);
        let data = SynthShapes::new(zoo::INPUT_SIZE, 10).generate(8, 3);
        let batch = SynthShapes::batch(&data);
        let stats = negative_fraction(&net, &batch);
        assert!(!stats.per_layer.is_empty());
        assert!(
            stats.overall > 0.2 && stats.overall < 0.9,
            "overall negative fraction {}",
            stats.overall
        );
    }

    #[test]
    fn zero_maps_vary_across_images() {
        // The paper's Figure 2 insight: the spatial distribution of zeros
        // depends on the input image.
        let net = zoo::mini_squeezenet(10);
        let data = SynthShapes::new(zoo::INPUT_SIZE, 10).generate(2, 9);
        let batch = SynthShapes::batch(&data);
        let conv = net.conv_ids()[1];
        let m0 = zero_map(&net, &batch, conv, 0);
        let m1 = zero_map(&net, &batch, conv, 1);
        assert!(m0.zero_fraction() > 0.05);
        let j = m0.jaccard(&m1);
        assert!(j < 0.999, "zero maps identical across images (jaccard {j})");
    }

    #[test]
    fn jaccard_properties() {
        let a = ZeroMap {
            channels: 1,
            spatial: (2, 2),
            mask: vec![true, false, true, false],
        };
        let b = ZeroMap {
            channels: 1,
            spatial: (2, 2),
            mask: vec![true, true, false, false],
        };
        assert_eq!(a.jaccard(&a), 1.0);
        assert!((a.jaccard(&b) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(a.zero_fraction(), 0.5);
        let empty = ZeroMap {
            channels: 1,
            spatial: (2, 2),
            mask: vec![false; 4],
        };
        assert_eq!(empty.jaccard(&empty), 1.0);
    }

    #[test]
    fn negative_fraction_all_positive_weights_is_zero() {
        // A conv with all-positive weights and biases over non-negative
        // inputs can never be negative.
        use crate::GraphBuilder;
        use snapea_tensor::im2col::ConvGeom;
        use snapea_tensor::init;
        let mut rng = init::rng(0);
        let mut b = GraphBuilder::new();
        let x = b.input();
        let c = b.conv("c", x, 1, 2, ConvGeom::square(3, 1, 1), &mut rng);
        let _ = b.relu("r", c);
        let mut g = b.build();
        if let Op::Conv(conv) = &mut g.node_mut(1).op {
            conv.weight_mut().map_inplace(f32::abs);
        }
        let batch = Tensor4::full(Shape4::new(1, 1, 8, 8), 1.0);
        let stats = negative_fraction(&g, &batch);
        assert_eq!(stats.overall, 0.0);
    }
}
