//! Softmax cross-entropy loss and classification accuracy.

use snapea_tensor::{Shape4, Tensor2, Tensor4};

/// Numerically-stable softmax over the columns of each row of `logits`.
pub fn softmax(logits: &Tensor2) -> Tensor2 {
    let mut out = logits.clone();
    for r in 0..out.shape().rows {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Mean softmax cross-entropy loss and its gradient with respect to the
/// logits, packed as a `[n, classes, 1, 1]` tensor ready for
/// [`crate::Graph::backward`].
///
/// # Panics
///
/// Panics if any label is out of range or `labels.len()` disagrees with the
/// batch size.
pub fn cross_entropy(logits: &Tensor2, labels: &[usize]) -> (f32, Tensor4) {
    let s = logits.shape();
    assert_eq!(labels.len(), s.rows, "one label per batch item");
    let probs = softmax(logits);
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    let inv_n = 1.0 / s.rows as f32;
    for (r, &label) in labels.iter().enumerate() {
        assert!(label < s.cols, "label {label} out of range {}", s.cols);
        loss -= probs[(r, label)].max(1e-12).ln();
        grad[(r, label)] -= 1.0;
    }
    grad.scale(inv_n);
    let g4 = Tensor4::from_vec(Shape4::new(s.rows, s.cols, 1, 1), grad.into_vec())
        // lint:allow(P1) rows × cols × 1 × 1 is exactly the gradient matrix's element count
        .expect("element count preserved");
    (loss * inv_n, g4)
}

/// Index of the maximum logit per row.
pub fn argmax_rows(logits: &Tensor2) -> Vec<usize> {
    (0..logits.shape().rows)
        .map(|r| {
            logits
                .row(r)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                // lint:allow(P1) logits matrices always have at least one class column
                .expect("non-empty row")
        })
        .collect()
}

/// Fraction of rows whose argmax equals the label.
pub fn accuracy(logits: &Tensor2, labels: &[usize]) -> f64 {
    assert_eq!(labels.len(), logits.shape().rows);
    if labels.is_empty() {
        return 0.0;
    }
    let correct = argmax_rows(logits)
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapea_tensor::Shape2;

    #[test]
    fn softmax_rows_sum_to_one() {
        let l = Tensor2::from_vec(Shape2::new(2, 3), vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let p = softmax(&l);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(p.row(r).iter().all(|&v| v > 0.0));
        }
        // Larger logit → larger probability.
        assert!(p[(0, 2)] > p[(0, 1)] && p[(0, 1)] > p[(0, 0)]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let l = Tensor2::from_vec(Shape2::new(1, 3), vec![1000.0, 1001.0, 999.0]).unwrap();
        let p = softmax(&l);
        assert!(p.iter().all(|v| v.is_finite()));
        let l2 = Tensor2::from_vec(Shape2::new(1, 3), vec![0.0, 1.0, -1.0]).unwrap();
        let p2 = softmax(&l2);
        for (a, b) in p.iter().zip(p2.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_differences() {
        let l = Tensor2::from_vec(Shape2::new(2, 3), vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0]).unwrap();
        let labels = [2usize, 0usize];
        let (_, g) = cross_entropy(&l, &labels);
        let eps = 1e-3;
        for r in 0..2 {
            for c in 0..3 {
                let mut lp = l.clone();
                lp[(r, c)] += eps;
                let mut lm = l.clone();
                lm[(r, c)] -= eps;
                let num =
                    (cross_entropy(&lp, &labels).0 - cross_entropy(&lm, &labels).0) / (2.0 * eps);
                assert!(
                    (num - g[(r, c, 0, 0)]).abs() < 1e-3,
                    "({r},{c}): fd {num} vs {}",
                    g[(r, c, 0, 0)]
                );
            }
        }
    }

    #[test]
    fn perfect_prediction_has_low_loss() {
        let l = Tensor2::from_vec(Shape2::new(1, 3), vec![10.0, -10.0, -10.0]).unwrap();
        let (loss, _) = cross_entropy(&l, &[0]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let l = Tensor2::from_vec(Shape2::new(3, 2), vec![1.0, 0.0, 0.0, 1.0, 0.3, 0.7]).unwrap();
        assert_eq!(accuracy(&l, &[0, 1, 1]), 1.0);
        assert!((accuracy(&l, &[0, 0, 0]) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(argmax_rows(&l), vec![0, 1, 1]);
    }
}
