//! SynthShapes: a deterministic procedural image-classification dataset.
//!
//! Stands in for ImageNet ILSVRC-2012 (unavailable offline; see DESIGN.md §1).
//! Each class is a parametric generator — shapes and textures with randomised
//! position, scale, colour and pixel noise — so that (a) networks must learn
//! genuinely spatial features, (b) classification accuracy is a real,
//! measurable quantity for the paper's accuracy-constrained optimizer, and
//! (c) zero/non-zero activation patterns vary spatially from image to image,
//! the phenomenon the paper's Figure 2 highlights.
//!
//! Pixel values lie in `[0, 1]`: convolution-layer inputs are non-negative
//! at every layer (the first layer included), which is the precondition for
//! SnaPEA's exact-mode reasoning ("performing MACs with the positive subset
//! of weights keeps the partial sum maximal").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use snapea_tensor::{Shape4, Tensor4};

/// Number of distinct class generators available.
pub const MAX_CLASSES: usize = 10;

/// One labelled image: a `[1, 3, size, size]` tensor plus its class id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledImage {
    /// The image, shape `[1, 3, size, size]`, values in `[0, 1]`.
    pub image: Tensor4,
    /// Ground-truth class index.
    pub label: usize,
}

/// Dataset generator configuration: image side length and number of classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SynthShapes {
    size: usize,
    classes: usize,
}

impl SynthShapes {
    /// Creates a generator for `size × size` RGB images over `classes`
    /// classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is 0 or exceeds [`MAX_CLASSES`], or `size < 8`.
    pub fn new(size: usize, classes: usize) -> Self {
        assert!(
            (1..=MAX_CLASSES).contains(&classes),
            "1..={MAX_CLASSES} classes"
        );
        assert!(size >= 8, "images must be at least 8x8");
        Self { size, classes }
    }

    /// Image side length.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Generates `count` images, classes balanced round-robin, deterministic
    /// in `seed`.
    pub fn generate(&self, count: usize, seed: u64) -> Vec<LabeledImage> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|i| self.sample(i % self.classes, &mut rng))
            .collect()
    }

    /// Generates a single image of class `label`.
    ///
    /// # Panics
    ///
    /// Panics if `label >= self.classes()`.
    pub fn sample(&self, label: usize, rng: &mut StdRng) -> LabeledImage {
        assert!(label < self.classes, "label out of range");
        let sz = self.size;
        let bg: f32 = rng.gen_range(0.0..0.25);
        let fg: [f32; 3] = [
            rng.gen_range(0.55..1.0),
            rng.gen_range(0.55..1.0),
            rng.gen_range(0.55..1.0),
        ];
        let cx = rng.gen_range(sz as f32 * 0.3..sz as f32 * 0.7);
        let cy = rng.gen_range(sz as f32 * 0.3..sz as f32 * 0.7);
        let r = rng.gen_range(sz as f32 * 0.18..sz as f32 * 0.38);
        let period = rng.gen_range(2..=4) as f32;
        let phase = rng.gen_range(0.0..period);

        let mut img = Tensor4::from_fn(Shape4::new(1, 3, sz, sz), |_, c, y, x| {
            let (xf, yf) = (x as f32, y as f32);
            let inside = match label {
                // 0: filled circle
                0 => ((xf - cx).powi(2) + (yf - cy).powi(2)).sqrt() <= r,
                // 1: filled square
                1 => (xf - cx).abs() <= r * 0.8 && (yf - cy).abs() <= r * 0.8,
                // 2: triangle (upward)
                2 => {
                    let dy = yf - (cy - r * 0.8);
                    dy >= 0.0 && dy <= 1.6 * r && (xf - cx).abs() <= dy * 0.55
                }
                // 3: horizontal stripes
                3 => ((yf + phase) / period).floor() as i64 % 2 == 0,
                // 4: vertical stripes
                4 => ((xf + phase) / period).floor() as i64 % 2 == 0,
                // 5: diagonal stripes
                5 => ((xf + yf + phase) / period).floor() as i64 % 2 == 0,
                // 6: checkerboard
                6 => {
                    (((xf + phase) / period).floor() as i64
                        + ((yf + phase) / period).floor() as i64)
                        % 2
                        == 0
                }
                // 7: radial gradient disc (soft circle)
                7 => {
                    let d = ((xf - cx).powi(2) + (yf - cy).powi(2)).sqrt();
                    d <= r * 1.3 && (d / (r * 1.3) * 2.0).fract() < 0.75
                }
                // 8: ring (annulus)
                8 => {
                    let d = ((xf - cx).powi(2) + (yf - cy).powi(2)).sqrt();
                    d <= r && d >= r * 0.55
                }
                // 9: plus / cross
                9 => {
                    ((xf - cx).abs() <= r * 0.3 && (yf - cy).abs() <= r)
                        || ((yf - cy).abs() <= r * 0.3 && (xf - cx).abs() <= r)
                }
                // lint:allow(P1) the constructor asserts label < NUM_CLASSES, covering every arm above
                _ => unreachable!("label validated above"),
            };
            if inside {
                fg[c]
            } else {
                bg
            }
        });
        // Additive pixel noise, clamped to [0, 1].
        for v in img.iter_mut() {
            *v = (*v + rng.gen_range(-0.06..0.06)).clamp(0.0, 1.0);
        }
        LabeledImage { image: img, label }
    }

    /// Stacks labelled images into one `[n, 3, size, size]` batch tensor.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or image shapes disagree.
    pub fn batch(items: &[LabeledImage]) -> Tensor4 {
        let refs: Vec<&LabeledImage> = items.iter().collect();
        Self::batch_refs(&refs)
    }

    /// Like [`SynthShapes::batch`] but over references.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or image shapes disagree.
    pub fn batch_refs(items: &[&LabeledImage]) -> Tensor4 {
        assert!(!items.is_empty(), "empty batch");
        let s = items[0].image.shape();
        let os = Shape4::new(items.len(), s.c, s.h, s.w);
        let mut out = Tensor4::zeros(os);
        for (n, item) in items.iter().enumerate() {
            assert_eq!(item.image.shape(), s, "inconsistent image shapes");
            out.item_mut(n).copy_from_slice(item.image.as_slice());
        }
        out
    }

    /// Labels of a slice of images, in order.
    pub fn labels(items: &[LabeledImage]) -> Vec<usize> {
        items.iter().map(|d| d.label).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let g = SynthShapes::new(16, 10);
        let a = g.generate(20, 7);
        let b = g.generate(20, 7);
        assert_eq!(a, b);
        let c = g.generate(20, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn labels_are_balanced_round_robin() {
        let g = SynthShapes::new(16, 4);
        let d = g.generate(12, 0);
        for (i, item) in d.iter().enumerate() {
            assert_eq!(item.label, i % 4);
        }
    }

    #[test]
    fn pixels_in_unit_range() {
        let g = SynthShapes::new(16, 10);
        for item in g.generate(30, 3) {
            assert!(item.image.iter().all(|&v| (0.0..=1.0).contains(&v)));
            assert_eq!(item.image.shape(), Shape4::new(1, 3, 16, 16));
        }
    }

    #[test]
    fn classes_are_visually_distinct_on_average() {
        // Mean images of different classes should differ substantially.
        let g = SynthShapes::new(16, 3);
        let d = g.generate(60, 1);
        let mut means = vec![vec![0.0f32; 16 * 16 * 3]; 3];
        let mut counts = [0usize; 3];
        for item in &d {
            counts[item.label] += 1;
            for (m, &v) in means[item.label].iter_mut().zip(item.image.iter()) {
                *m += v;
            }
        }
        for (m, &c) in means.iter_mut().zip(counts.iter()) {
            for v in m.iter_mut() {
                *v /= c as f32;
            }
        }
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y).powi(2))
                .sum::<f32>()
                .sqrt()
        };
        assert!(dist(&means[0], &means[1]) > 0.5);
        assert!(dist(&means[1], &means[2]) > 0.5);
    }

    #[test]
    fn batch_stacks_in_order() {
        let g = SynthShapes::new(16, 2);
        let d = g.generate(3, 2);
        let b = SynthShapes::batch(&d);
        assert_eq!(b.shape(), Shape4::new(3, 3, 16, 16));
        assert_eq!(b.item(1), d[1].image.as_slice());
        assert_eq!(SynthShapes::labels(&d), vec![0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn sample_rejects_bad_label() {
        let g = SynthShapes::new(16, 2);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = g.sample(5, &mut rng);
    }
}
