//! CNN substrate for the SnaPEA reproduction.
//!
//! The SnaPEA paper evaluates on Caffe-hosted, ImageNet-pretrained CNNs.
//! Neither Caffe nor pretrained ImageNet models exist in the offline Rust
//! ecosystem, so this crate rebuilds the substrate from scratch:
//!
//! * [`ops`] — convolution, ReLU, pooling, fully-connected, concatenation,
//!   local-response-norm layers, each with forward **and** backward passes;
//! * [`graph`] — a DAG network executor (branching is required by
//!   GoogLeNet's Inception and SqueezeNet's Fire modules);
//! * [`train`] — SGD-with-momentum training against softmax cross-entropy;
//! * [`data`] — SynthShapes, a deterministic procedural image-classification
//!   dataset standing in for ImageNet (see DESIGN.md §1 for the substitution
//!   argument);
//! * [`zoo`] — mini variants of the paper's four workloads (AlexNet,
//!   GoogLeNet, SqueezeNet, VGGNet) with the same conv/FC layer counts as
//!   Table I of the paper;
//! * [`stats`] — the activation statistics behind the paper's Figures 1 and 2.
//!
//! # Examples
//!
//! ```
//! use snapea_nn::{data::SynthShapes, zoo};
//!
//! let net = zoo::mini_alexnet(4);
//! let data = SynthShapes::new(zoo::INPUT_SIZE, 4).generate(8, 42);
//! let batch = SynthShapes::batch(&data[..4]);
//! let acts = net.forward(&batch);
//! assert_eq!(acts.last().unwrap().shape().c, 4); // 4 class logits
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod augment;
pub mod data;
pub mod graph;
pub mod loss;
pub mod ops;
pub mod stats;
pub mod train;
pub mod zoo;

pub use graph::{Graph, GraphBuilder, Node, NodeId, Op};
