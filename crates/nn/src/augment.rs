//! Lightweight data augmentation for SynthShapes training.
//!
//! ImageNet training pipelines (which produced the paper's pretrained
//! models) rely on random crops and flips; the mini substrate mirrors that
//! with integer shifts and horizontal flips, improving the margin (and thus
//! speculation tolerance) of the trained mini networks.

use crate::data::LabeledImage;
use rand::rngs::StdRng;
use rand::Rng;
use snapea_tensor::Tensor4;

/// Augmentation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Augment {
    /// Maximum absolute shift, in pixels, along each axis.
    pub max_shift: usize,
    /// Whether to flip horizontally with probability ½.
    pub flip: bool,
}

impl Default for Augment {
    fn default() -> Self {
        Self {
            max_shift: 2,
            flip: true,
        }
    }
}

impl Augment {
    /// Applies a random shift/flip to one image (labels are untouched —
    /// SynthShapes classes are invariant under both).
    pub fn apply(&self, item: &LabeledImage, rng: &mut StdRng) -> LabeledImage {
        let s = item.image.shape();
        let m = self.max_shift as isize;
        let dy = if m > 0 { rng.gen_range(-m..=m) } else { 0 };
        let dx = if m > 0 { rng.gen_range(-m..=m) } else { 0 };
        let flip = self.flip && rng.gen_bool(0.5);
        let image = Tensor4::from_fn(s, |n, c, y, x| {
            let sx = if flip { s.w - 1 - x } else { x };
            let (yy, xx) = (y as isize - dy, sx as isize - dx);
            if yy < 0 || xx < 0 || yy >= s.h as isize || xx >= s.w as isize {
                0.0 // shifted-in border is background
            } else {
                item.image[(n, c, yy as usize, xx as usize)]
            }
        });
        LabeledImage {
            image,
            label: item.label,
        }
    }

    /// Augments a whole dataset (one randomised copy per item).
    pub fn apply_all(&self, items: &[LabeledImage], rng: &mut StdRng) -> Vec<LabeledImage> {
        items.iter().map(|i| self.apply(i, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SynthShapes;
    use snapea_tensor::init;

    #[test]
    fn augmentation_preserves_labels_shape_and_range() {
        let data = SynthShapes::new(16, 4).generate(8, 3);
        let aug = Augment::default();
        let mut rng = init::rng(9);
        let out = aug.apply_all(&data, &mut rng);
        assert_eq!(out.len(), data.len());
        for (a, b) in out.iter().zip(&data) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.image.shape(), b.image.shape());
            assert!(a.image.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn zero_config_is_identity_or_flip_only() {
        let data = SynthShapes::new(16, 4).generate(2, 5);
        let aug = Augment {
            max_shift: 0,
            flip: false,
        };
        let mut rng = init::rng(1);
        let out = aug.apply_all(&data, &mut rng);
        for (a, b) in out.iter().zip(&data) {
            assert_eq!(a.image, b.image);
        }
    }

    #[test]
    fn flip_is_an_involution() {
        let data = SynthShapes::new(16, 4).generate(1, 7);
        // Force a flip by re-drawing until the RNG says flip; easier: apply
        // a deterministic double flip via from_fn equivalence.
        let img = &data[0].image;
        let s = img.shape();
        let flipped = Tensor4::from_fn(s, |n, c, y, x| img[(n, c, y, s.w - 1 - x)]);
        let back = Tensor4::from_fn(s, |n, c, y, x| flipped[(n, c, y, s.w - 1 - x)]);
        assert_eq!(&back, img);
    }

    #[test]
    fn augmentation_is_deterministic_in_the_seed() {
        let data = SynthShapes::new(16, 4).generate(4, 11);
        let aug = Augment::default();
        let a = aug.apply_all(&data, &mut init::rng(42));
        let b = aug.apply_all(&data, &mut init::rng(42));
        assert_eq!(a, b);
    }
}
