//! Model zoo: mini variants of the paper's four workloads.
//!
//! The paper (Table I) evaluates AlexNet (5 conv, 3 FC), GoogLeNet (57 conv,
//! 1 FC), SqueezeNet (26 conv, 1 FC) and VGGNet (13 conv, 3 FC) pretrained on
//! ImageNet. Pretrained ImageNet models do not exist in the offline Rust
//! ecosystem, so this module builds *mini* variants with the same topology
//! family and the same conv/FC layer counts, sized to train in seconds on
//! the SynthShapes dataset (see DESIGN.md §1 for the substitution argument).
//!
//! All models consume `[n, 3, INPUT_SIZE, INPUT_SIZE]` images.

use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::ops::Lrn;
use snapea_tensor::im2col::ConvGeom;
use snapea_tensor::init;

/// Image side length all zoo models consume.
pub const INPUT_SIZE: usize = 32;

/// The four paper workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Workload {
    /// AlexNet-family plain stack (5 conv, 3 FC).
    AlexNet,
    /// GoogLeNet-family Inception network (57 conv, 1 FC).
    GoogLeNet,
    /// SqueezeNet-family Fire network (26 conv, 1 FC).
    SqueezeNet,
    /// VGGNet-family deep stack (13 conv, 3 FC).
    VggNet,
}

impl Workload {
    /// All four workloads, in the paper's presentation order.
    pub const ALL: [Workload; 4] = [
        Workload::AlexNet,
        Workload::GoogLeNet,
        Workload::SqueezeNet,
        Workload::VggNet,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Workload::AlexNet => "AlexNet",
            Workload::GoogLeNet => "GoogLeNet",
            Workload::SqueezeNet => "SqueezeNet",
            Workload::VggNet => "VGGNet",
        }
    }

    /// Release year (paper Table I).
    pub fn year(self) -> u16 {
        match self {
            Workload::AlexNet => 2012,
            Workload::GoogLeNet => 2015,
            Workload::SqueezeNet => 2016,
            Workload::VggNet => 2014,
        }
    }

    /// The paper's reported full-scale model size in MB (Table I).
    pub fn paper_model_size_mb(self) -> f64 {
        match self {
            Workload::AlexNet => 224.0,
            Workload::GoogLeNet => 54.0,
            Workload::SqueezeNet => 6.0,
            Workload::VggNet => 554.0,
        }
    }

    /// The paper's reported baseline classification accuracy (Table I).
    pub fn paper_accuracy(self) -> f64 {
        match self {
            Workload::AlexNet => 0.726,
            Workload::GoogLeNet => 0.844,
            Workload::SqueezeNet => 0.741,
            Workload::VggNet => 0.830,
        }
    }

    /// Expected conv/FC layer counts (paper Table I).
    pub fn paper_layer_counts(self) -> (usize, usize) {
        match self {
            Workload::AlexNet => (5, 3),
            Workload::GoogLeNet => (57, 1),
            Workload::SqueezeNet => (26, 1),
            Workload::VggNet => (13, 3),
        }
    }

    /// Builds the mini variant of this workload for `classes` output classes.
    pub fn build(self, classes: usize) -> Graph {
        match self {
            Workload::AlexNet => mini_alexnet(classes),
            Workload::GoogLeNet => mini_googlenet(classes),
            Workload::SqueezeNet => mini_squeezenet(classes),
            Workload::VggNet => mini_vgg(classes),
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Mini AlexNet: 5 convolution and 3 fully-connected layers, with LRN and
/// overlapping max pooling as in the original.
pub fn mini_alexnet(classes: usize) -> Graph {
    let mut rng = init::rng(0xA1EC);
    let mut b = GraphBuilder::new();
    let x = b.input();
    let c1 = b.conv("conv1", x, 3, 12, ConvGeom::square(3, 1, 1), &mut rng);
    let r1 = b.relu("relu1", c1);
    let n1 = b.lrn("norm1", r1, Lrn::default());
    let p1 = b.max_pool("pool1", n1, 2, 2); // 32 -> 16
    let c2 = b.conv("conv2", p1, 12, 24, ConvGeom::square(3, 1, 1), &mut rng);
    let r2 = b.relu("relu2", c2);
    let n2 = b.lrn("norm2", r2, Lrn::default());
    let p2 = b.max_pool("pool2", n2, 2, 2); // 16 -> 8
    let c3 = b.conv("conv3", p2, 24, 32, ConvGeom::square(3, 1, 1), &mut rng);
    let r3 = b.relu("relu3", c3);
    let c4 = b.conv("conv4", r3, 32, 32, ConvGeom::square(3, 1, 1), &mut rng);
    let r4 = b.relu("relu4", c4);
    let c5 = b.conv("conv5", r4, 32, 24, ConvGeom::square(3, 1, 1), &mut rng);
    let r5 = b.relu("relu5", c5);
    let p5 = b.max_pool("pool5", r5, 2, 2); // 8 -> 4
    let f = b.flatten("flatten", p5);
    let f6 = b.linear("fc6", f, 24 * 4 * 4, 64, &mut rng);
    let r6 = b.relu("relu6", f6);
    let f7 = b.linear("fc7", r6, 64, 48, &mut rng);
    let r7 = b.relu("relu7", f7);
    let _ = b.linear("fc8", r7, 48, classes, &mut rng);
    b.build()
}

/// Mini VGGNet: 13 convolution and 3 fully-connected layers in the VGG-16
/// block structure.
pub fn mini_vgg(classes: usize) -> Graph {
    let mut rng = init::rng(0x5996);
    let mut b = GraphBuilder::new();
    let x = b.input();
    let g = ConvGeom::square(3, 1, 1);
    let mut cur = x;
    let mut c_in = 3;
    let blocks: [(usize, usize); 5] = [(12, 2), (24, 2), (32, 3), (48, 3), (48, 3)];
    for (bi, (width, convs)) in blocks.iter().enumerate() {
        for ci in 0..*convs {
            let name = format!("conv{}_{}", bi + 1, ci + 1);
            cur = b.conv(&name, cur, c_in, *width, g, &mut rng);
            cur = b.relu(&format!("relu{}_{}", bi + 1, ci + 1), cur);
            c_in = *width;
        }
        // Pools after every block: 32 -> 16 -> 8 -> 4 -> 2 -> 1.
        cur = b.max_pool(&format!("pool{}", bi + 1), cur, 2, 2);
    }
    let f = b.flatten("flatten", cur);
    let f6 = b.linear("fc6", f, 48, 64, &mut rng);
    let r6 = b.relu("relu6", f6);
    let f7 = b.linear("fc7", r6, 64, 48, &mut rng);
    let r7 = b.relu("relu7", f7);
    let _ = b.linear("fc8", r7, 48, classes, &mut rng);
    b.build()
}

/// Channel plan for one Inception module:
/// `(c1, c3r, c3, c5r, c5, pool_proj)`.
type InceptionSpec = (usize, usize, usize, usize, usize, usize);

/// Appends an Inception module (6 convolutions) and returns
/// `(concat_node, out_channels)`.
fn inception(
    b: &mut GraphBuilder,
    name: &str,
    from: NodeId,
    c_in: usize,
    spec: InceptionSpec,
    rng: &mut rand::rngs::StdRng,
) -> (NodeId, usize) {
    let (c1, c3r, c3, c5r, c5, pp) = spec;
    let g1 = ConvGeom::square(1, 1, 0);
    let g3 = ConvGeom::square(3, 1, 1);
    let g5 = ConvGeom::square(5, 1, 2);
    // 1x1 branch
    let b1 = b.conv(&format!("{name}/1x1"), from, c_in, c1, g1, rng);
    let b1r = b.relu(&format!("{name}/relu_1x1"), b1);
    // 3x3 branch
    let b3a = b.conv(&format!("{name}/3x3_reduce"), from, c_in, c3r, g1, rng);
    let b3ar = b.relu(&format!("{name}/relu_3x3_reduce"), b3a);
    let b3 = b.conv(&format!("{name}/3x3"), b3ar, c3r, c3, g3, rng);
    let b3r = b.relu(&format!("{name}/relu_3x3"), b3);
    // 5x5 branch
    let b5a = b.conv(&format!("{name}/5x5_reduce"), from, c_in, c5r, g1, rng);
    let b5ar = b.relu(&format!("{name}/relu_5x5_reduce"), b5a);
    let b5 = b.conv(&format!("{name}/5x5"), b5ar, c5r, c5, g5, rng);
    let b5r = b.relu(&format!("{name}/relu_5x5"), b5);
    // pool branch
    let bp = b.max_pool_padded(&format!("{name}/pool"), from, 3, 1, 1);
    let bpp = b.conv(&format!("{name}/pool_proj"), bp, c_in, pp, g1, rng);
    let bppr = b.relu(&format!("{name}/relu_pool_proj"), bpp);
    let cat = b.concat(&format!("{name}/output"), vec![b1r, b3r, b5r, bppr]);
    (cat, c1 + c3 + c5 + pp)
}

/// Mini GoogLeNet: a 3-conv stem plus nine Inception modules (6 convs each)
/// = 57 convolution layers, one fully-connected classifier.
pub fn mini_googlenet(classes: usize) -> Graph {
    let mut rng = init::rng(0x6006);
    let mut b = GraphBuilder::new();
    let x = b.input();
    // Stem (3 convs, as in GoogLeNet's conv1 / conv2_reduce / conv2).
    let c1 = b.conv("conv1/3x3", x, 3, 16, ConvGeom::square(3, 1, 1), &mut rng);
    let r1 = b.relu("conv1/relu", c1);
    let p1 = b.max_pool("pool1/2x2", r1, 2, 2); // 32 -> 16
    let n1 = b.lrn("pool1/norm1", p1, Lrn::default());
    let c2r = b.conv(
        "conv2/3x3_reduce",
        n1,
        16,
        16,
        ConvGeom::square(1, 1, 0),
        &mut rng,
    );
    let r2r = b.relu("conv2/relu_reduce", c2r);
    let c2 = b.conv(
        "conv2/3x3",
        r2r,
        16,
        24,
        ConvGeom::square(3, 1, 1),
        &mut rng,
    );
    let r2 = b.relu("conv2/relu", c2);
    let n2 = b.lrn("conv2/norm2", r2, Lrn::default());
    let p2 = b.max_pool("pool2/2x2", n2, 2, 2); // 16 -> 8

    // Inception 3a, 3b at 8×8.
    let (i3a, c3a) = inception(
        &mut b,
        "inception_3a",
        p2,
        24,
        (8, 6, 12, 2, 4, 4),
        &mut rng,
    );
    let (i3b, c3b) = inception(
        &mut b,
        "inception_3b",
        i3a,
        c3a,
        (10, 8, 14, 3, 6, 4),
        &mut rng,
    );
    let p3 = b.max_pool("pool3/2x2", i3b, 2, 2); // 8 -> 4

    // Inception 4a..4e at 4×4.
    let (i4a, c4a) = inception(
        &mut b,
        "inception_4a",
        p3,
        c3b,
        (12, 8, 14, 2, 4, 4),
        &mut rng,
    );
    let (i4b, c4b) = inception(
        &mut b,
        "inception_4b",
        i4a,
        c4a,
        (10, 8, 14, 3, 6, 4),
        &mut rng,
    );
    let (i4c, c4c) = inception(
        &mut b,
        "inception_4c",
        i4b,
        c4b,
        (8, 8, 16, 3, 6, 4),
        &mut rng,
    );
    let (i4d, c4d) = inception(
        &mut b,
        "inception_4d",
        i4c,
        c4c,
        (8, 9, 18, 4, 8, 4),
        &mut rng,
    );
    let (i4e, c4e) = inception(
        &mut b,
        "inception_4e",
        i4d,
        c4d,
        (16, 10, 20, 4, 8, 8),
        &mut rng,
    );
    let p4 = b.max_pool("pool4/2x2", i4e, 2, 2); // 4 -> 2

    // Inception 5a, 5b at 2×2.
    let (i5a, c5a) = inception(
        &mut b,
        "inception_5a",
        p4,
        c4e,
        (16, 10, 20, 4, 8, 8),
        &mut rng,
    );
    let (i5b, c5b) = inception(
        &mut b,
        "inception_5b",
        i5a,
        c5a,
        (24, 12, 24, 4, 8, 8),
        &mut rng,
    );

    let gap = b.avg_pool("pool5/gap", i5b, 2, 2); // 2 -> 1
    let f = b.flatten("flatten", gap);
    let _ = b.linear("loss3/classifier", f, c5b, classes, &mut rng);
    b.build()
}

/// Appends a Fire module (squeeze 1×1, expand 1×1 + expand 3×3; 3 convs) and
/// returns `(concat_node, out_channels)`.
fn fire(
    b: &mut GraphBuilder,
    name: &str,
    from: NodeId,
    c_in: usize,
    squeeze: usize,
    expand: usize,
    rng: &mut rand::rngs::StdRng,
) -> (NodeId, usize) {
    let g1 = ConvGeom::square(1, 1, 0);
    let g3 = ConvGeom::square(3, 1, 1);
    let s = b.conv(&format!("{name}/squeeze1x1"), from, c_in, squeeze, g1, rng);
    let sr = b.relu(&format!("{name}/relu_squeeze1x1"), s);
    let e1 = b.conv(&format!("{name}/expand1x1"), sr, squeeze, expand, g1, rng);
    let e1r = b.relu(&format!("{name}/relu_expand1x1"), e1);
    let e3 = b.conv(&format!("{name}/expand3x3"), sr, squeeze, expand, g3, rng);
    let e3r = b.relu(&format!("{name}/relu_expand3x3"), e3);
    let cat = b.concat(&format!("{name}/concat"), vec![e1r, e3r]);
    (cat, 2 * expand)
}

/// Mini SqueezeNet: conv1 + eight Fire modules (3 convs each) + conv10
/// = 26 convolution layers, one fully-connected classifier.
pub fn mini_squeezenet(classes: usize) -> Graph {
    let mut rng = init::rng(0x50E3);
    let mut b = GraphBuilder::new();
    let x = b.input();
    let c1 = b.conv("conv1", x, 3, 16, ConvGeom::square(3, 1, 1), &mut rng);
    let r1 = b.relu("relu_conv1", c1);
    let p1 = b.max_pool("pool1", r1, 2, 2); // 32 -> 16

    let (f2, c2) = fire(&mut b, "fire2", p1, 16, 4, 8, &mut rng);
    let (f3, c3) = fire(&mut b, "fire3", f2, c2, 4, 8, &mut rng);
    let (f4, c4) = fire(&mut b, "fire4", f3, c3, 6, 12, &mut rng);
    let p4 = b.max_pool("pool4", f4, 2, 2); // 16 -> 8
    let (f5, c5) = fire(&mut b, "fire5", p4, c4, 6, 12, &mut rng);
    let (f6, c6) = fire(&mut b, "fire6", f5, c5, 8, 16, &mut rng);
    let (f7, c7) = fire(&mut b, "fire7", f6, c6, 8, 16, &mut rng);
    let p7 = b.max_pool("pool7", f7, 2, 2); // 8 -> 4
    let (f8, c8) = fire(&mut b, "fire8", p7, c7, 8, 16, &mut rng);
    let (f9, c9) = fire(&mut b, "fire9", f8, c8, 8, 16, &mut rng);

    let c10 = b.conv("conv10", f9, c9, 16, ConvGeom::square(1, 1, 0), &mut rng);
    let r10 = b.relu("relu_conv10", c10);
    let gap = b.avg_pool("pool10/gap", r10, 4, 4); // 4 -> 1
    let f = b.flatten("flatten", gap);
    let _ = b.linear("classifier", f, 16, classes, &mut rng);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapea_tensor::{Shape4, Tensor4};

    fn probe(net: &Graph, classes: usize) {
        let x = Tensor4::full(Shape4::new(1, 3, INPUT_SIZE, INPUT_SIZE), 0.5);
        let logits = net.logits(&x);
        assert_eq!(logits.shape().rows, 1);
        assert_eq!(logits.shape().cols, classes);
        assert!(logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn layer_counts_match_paper_table1() {
        for w in Workload::ALL {
            let net = w.build(10);
            let (conv, fc) = w.paper_layer_counts();
            assert_eq!(net.conv_ids().len(), conv, "{w} conv count");
            assert_eq!(net.linear_ids().len(), fc, "{w} fc count");
        }
    }

    #[test]
    fn all_models_forward_cleanly() {
        for w in Workload::ALL {
            probe(&w.build(7), 7);
        }
    }

    #[test]
    fn every_conv_feeds_only_relu() {
        // The SnaPEA applicability condition: each conv's output goes
        // straight into a ReLU.
        for w in Workload::ALL {
            let net = w.build(10);
            for id in net.conv_ids() {
                assert!(
                    net.feeds_only_relu(id),
                    "{w}: conv node {} ({}) not followed by ReLU",
                    id,
                    net.node(id).name
                );
            }
        }
    }

    #[test]
    fn workload_metadata() {
        assert_eq!(Workload::AlexNet.year(), 2012);
        assert_eq!(Workload::VggNet.paper_model_size_mb(), 554.0);
        assert!(Workload::GoogLeNet.paper_accuracy() > 0.8);
        assert_eq!(Workload::SqueezeNet.to_string(), "SqueezeNet");
    }

    #[test]
    fn models_are_deterministic() {
        let a = mini_googlenet(10);
        let b = mini_googlenet(10);
        let x = Tensor4::full(Shape4::new(1, 3, INPUT_SIZE, INPUT_SIZE), 0.3);
        assert_eq!(a.logits(&x), b.logits(&x));
    }

    #[test]
    fn spatial_pyramids_shrink_as_designed() {
        // Each model's conv activations shrink monotonically with depth and
        // the classifier sees a 1x1 spatial extent.
        let x = Tensor4::full(Shape4::new(1, 3, INPUT_SIZE, INPUT_SIZE), 0.5);
        for w in Workload::ALL {
            let net = w.build(10);
            let acts = net.forward(&x);
            let mut last_h = INPUT_SIZE;
            for id in net.conv_ids() {
                let h = acts[id].shape().h;
                assert!(
                    h <= last_h,
                    "{w}: conv {} grew spatially",
                    net.node(id).name
                );
                last_h = last_h.min(h);
            }
            for id in net.linear_ids() {
                assert_eq!(acts[id].shape().h, 1, "{w}: fc output is 1x1");
                assert_eq!(acts[id].shape().w, 1);
            }
        }
    }

    #[test]
    fn inception_and_fire_concats_have_expected_widths() {
        let g = mini_googlenet(10);
        let x = Tensor4::full(Shape4::new(1, 3, INPUT_SIZE, INPUT_SIZE), 0.5);
        let acts = g.forward(&x);
        // inception_3a output = 8 + 12 + 4 + 4 = 28 channels.
        let id = g
            .nodes()
            .iter()
            .position(|n| n.name == "inception_3a/output")
            .expect("inception_3a exists");
        assert_eq!(acts[id].shape().c, 28);

        let s = mini_squeezenet(10);
        let acts = s.forward(&x);
        let id = s
            .nodes()
            .iter()
            .position(|n| n.name == "fire2/concat")
            .expect("fire2 exists");
        assert_eq!(acts[id].shape().c, 16); // expand1x1(8) + expand3x3(8)
    }

    #[test]
    fn vgg_relative_model_size_ordering_matches_paper() {
        // The paper's Table I ordering: VGG > AlexNet > GoogLeNet > SqueezeNet.
        // Mini variants preserve GoogLeNet/SqueezeNet compactness relative to
        // VGG.
        let vgg = mini_vgg(10).model_size_bytes();
        let squeeze = mini_squeezenet(10).model_size_bytes();
        assert!(
            vgg > squeeze,
            "VGG {vgg} should exceed SqueezeNet {squeeze}"
        );
    }
}
