//! DAG network executor.
//!
//! Networks are directed acyclic graphs of [`Node`]s in topological order
//! (guaranteed by construction through [`GraphBuilder`]). Branching is
//! required by GoogLeNet's Inception modules and SqueezeNet's Fire modules;
//! plain sequential networks are the degenerate single-path case.

use crate::ops::{
    concat_channels, relu, relu_backward, split_channels, AvgPool, Conv2d, Linear, Lrn, MaxPool,
};
use serde::{Deserialize, Serialize};
use snapea_tensor::{Shape4, Tensor2, Tensor4};

/// Identifier of a node within its [`Graph`] (its index in topological
/// order).
pub type NodeId = usize;

/// A network operation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Op {
    /// The graph input placeholder (always node 0).
    Input,
    /// 2-D convolution.
    Conv(Conv2d),
    /// ReLU activation.
    Relu,
    /// Max pooling.
    MaxPool(MaxPool),
    /// Average pooling.
    AvgPool(AvgPool),
    /// Channel concatenation of all inputs.
    Concat,
    /// Reshape `[n,c,h,w]` → `[n, c*h*w, 1, 1]`.
    Flatten,
    /// Fully-connected layer.
    Linear(Linear),
    /// Local response normalization.
    Lrn(Lrn),
}

impl Op {
    /// Short kind name for display.
    pub fn kind(&self) -> &'static str {
        match self {
            Op::Input => "input",
            Op::Conv(_) => "conv",
            Op::Relu => "relu",
            Op::MaxPool(_) => "maxpool",
            Op::AvgPool(_) => "avgpool",
            Op::Concat => "concat",
            Op::Flatten => "flatten",
            Op::Linear(_) => "linear",
            Op::Lrn(_) => "lrn",
        }
    }
}

/// A named graph node: an operation plus the ids of its producers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Human-readable layer name (e.g. `inception_4e/1x1`).
    pub name: String,
    /// The operation.
    pub op: Op,
    /// Producer node ids (topologically earlier).
    pub inputs: Vec<NodeId>,
}

/// Per-node auxiliary state captured during a training forward pass
/// (currently max-pool argmax maps).
#[derive(Debug, Clone)]
pub enum Aux {
    /// No auxiliary state.
    None,
    /// Argmax map of a max-pool node.
    MaxPool(Vec<u32>),
}

/// Parameter gradients of one node.
#[derive(Debug, Clone)]
pub enum ParamGrad {
    /// Convolution gradients: kernel and bias.
    Conv(Tensor4, Vec<f32>),
    /// Linear gradients: weight matrix and bias.
    Linear(Tensor2, Vec<f32>),
}

/// Hook allowing a caller to substitute its own execution of a convolution
/// node (the SnaPEA executor uses this to run reordered, early-terminating
/// convolutions). Returning `None` falls back to the built-in dense path.
pub type ConvOverride<'a> = dyn FnMut(NodeId, &Conv2d, &Tensor4) -> Option<Tensor4> + 'a;

/// A feed-forward CNN as a topologically-ordered DAG.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Builds a graph directly from a node list (the compiled-model artifact
    /// loader's entry point — [`GraphBuilder`] is the ergonomic front door).
    /// Validates the invariants the builder establishes by construction:
    /// a non-empty list whose first node is the input, every producer id
    /// topologically earlier than its consumer, and `Op::Input` appearing
    /// nowhere else.
    pub fn from_nodes(nodes: Vec<Node>) -> Result<Self, String> {
        let first = nodes.first().ok_or("graph must have at least one node")?;
        if !matches!(first.op, Op::Input) {
            return Err("node 0 must be the input placeholder".to_string());
        }
        for (id, node) in nodes.iter().enumerate() {
            if id > 0 && matches!(node.op, Op::Input) {
                return Err(format!("node {id} duplicates the input placeholder"));
            }
            for &i in &node.inputs {
                if i >= id {
                    return Err(format!(
                        "node {id} ({}) consumes node {i}, which is not topologically earlier",
                        node.name
                    ));
                }
            }
        }
        Ok(Self { nodes })
    }

    /// The nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// A single node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Mutable access to a node (used by the trainer to apply updates).
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ids of all convolution nodes, in topological order.
    pub fn conv_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.op, Op::Conv(_)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Ids of all fully-connected nodes, in topological order.
    pub fn linear_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.op, Op::Linear(_)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Consumers of node `id`.
    pub fn consumers(&self, id: NodeId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.inputs.contains(&id))
            .map(|(i, _)| i)
            .collect()
    }

    /// True if every consumer of `id` is a ReLU node (so zeroing negative
    /// outputs of `id` cannot change the network function) — the SnaPEA
    /// applicability condition.
    pub fn feeds_only_relu(&self, id: NodeId) -> bool {
        let cons = self.consumers(id);
        !cons.is_empty() && cons.iter().all(|&c| matches!(self.nodes[c].op, Op::Relu))
    }

    /// Total number of learnable parameters.
    pub fn param_count(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match &n.op {
                Op::Conv(c) => c.weight().shape().len() + c.bias().len(),
                Op::Linear(l) => l.weight().shape().len() + l.bias().len(),
                _ => 0,
            })
            .sum()
    }

    /// Model size in bytes at 32-bit precision (the unit of the paper's
    /// Table I "Model Size" column).
    pub fn model_size_bytes(&self) -> usize {
        self.param_count() * 4
    }

    /// Runs the forward pass, returning every node's activation
    /// (`result[id]` is node `id`'s output; `result[0]` is the input itself).
    pub fn forward(&self, input: &Tensor4) -> Vec<Tensor4> {
        self.forward_with(input, &mut |_, _, _| None)
    }

    /// Forward pass with a convolution override hook (see [`ConvOverride`]).
    pub fn forward_with(
        &self,
        input: &Tensor4,
        conv_override: &mut ConvOverride<'_>,
    ) -> Vec<Tensor4> {
        let mut acts: Vec<Tensor4> = Vec::with_capacity(self.nodes.len());
        for (id, node) in self.nodes.iter().enumerate() {
            let out = self.eval_node(id, node, input, &acts, conv_override);
            acts.push(out);
        }
        acts
    }

    /// Recomputes only the part of the graph affected by a change at node
    /// `root`, starting from cached activations of a previous full forward.
    ///
    /// `cached` must come from a forward pass over the same input. The
    /// activation of `root` itself is recomputed (through the override hook
    /// if it is a conv node), as is everything reachable from it.
    pub fn forward_from(
        &self,
        input: &Tensor4,
        cached: &[Tensor4],
        root: NodeId,
        conv_override: &mut ConvOverride<'_>,
    ) -> Vec<Tensor4> {
        assert_eq!(cached.len(), self.nodes.len(), "cache length");
        let mut dirty = vec![false; self.nodes.len()];
        dirty[root] = true;
        for id in root + 1..self.nodes.len() {
            if self.nodes[id].inputs.iter().any(|&i| dirty[i]) {
                dirty[id] = true;
            }
        }
        let mut acts: Vec<Tensor4> = Vec::with_capacity(self.nodes.len());
        for (id, node) in self.nodes.iter().enumerate() {
            let out = if dirty[id] {
                self.eval_node(id, node, input, &acts, conv_override)
            } else {
                cached[id].clone()
            };
            acts.push(out);
        }
        acts
    }

    fn eval_node(
        &self,
        id: NodeId,
        node: &Node,
        input: &Tensor4,
        acts: &[Tensor4],
        conv_override: &mut ConvOverride<'_>,
    ) -> Tensor4 {
        let arg = |k: usize| -> &Tensor4 { &acts[node.inputs[k]] };
        match &node.op {
            Op::Input => input.clone(),
            Op::Conv(c) => conv_override(id, c, arg(0)).unwrap_or_else(|| c.forward(arg(0))),
            Op::Relu => relu(arg(0)),
            Op::MaxPool(p) => p.forward(arg(0)).0,
            Op::AvgPool(p) => p.forward(arg(0)),
            Op::Concat => {
                let refs: Vec<&Tensor4> = node.inputs.iter().map(|&i| &acts[i]).collect();
                concat_channels(&refs)
            }
            Op::Flatten => {
                let x = arg(0);
                let s = x.shape();
                Tensor4::from_vec(Shape4::new(s.n, s.item_len(), 1, 1), x.as_slice().to_vec())
                    // lint:allow(P1) n × item_len × 1 × 1 is exactly the source tensor's element count
                    .expect("element count preserved")
            }
            Op::Linear(l) => l.forward(arg(0)),
            Op::Lrn(l) => l.forward(arg(0)),
        }
    }

    /// Training forward pass: like [`Graph::forward`] but also captures the
    /// per-node auxiliary state needed by [`Graph::backward`].
    pub fn forward_train(&self, input: &Tensor4) -> (Vec<Tensor4>, Vec<Aux>) {
        let mut acts: Vec<Tensor4> = Vec::with_capacity(self.nodes.len());
        let mut aux: Vec<Aux> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let arg = |k: usize| -> &Tensor4 { &acts[node.inputs[k]] };
            let (out, a) = match &node.op {
                Op::MaxPool(p) => {
                    let (o, arg_map) = p.forward(arg(0));
                    (o, Aux::MaxPool(arg_map))
                }
                _ => {
                    let o = match &node.op {
                        Op::Input => input.clone(),
                        Op::Conv(c) => c.forward(arg(0)),
                        Op::Relu => relu(arg(0)),
                        Op::AvgPool(p) => p.forward(arg(0)),
                        Op::Concat => {
                            let refs: Vec<&Tensor4> =
                                node.inputs.iter().map(|&i| &acts[i]).collect();
                            concat_channels(&refs)
                        }
                        Op::Flatten => {
                            let x = arg(0);
                            let s = x.shape();
                            Tensor4::from_vec(
                                Shape4::new(s.n, s.item_len(), 1, 1),
                                x.as_slice().to_vec(),
                            )
                            // lint:allow(P1) n × item_len × 1 × 1 is exactly the source tensor's element count
                            .expect("element count preserved")
                        }
                        Op::Linear(l) => l.forward(arg(0)),
                        Op::Lrn(l) => l.forward(arg(0)),
                        // lint:allow(P1) the outer match already peeled off Op::MaxPool
                        Op::MaxPool(_) => unreachable!("handled above"),
                    };
                    (o, Aux::None)
                }
            };
            acts.push(out);
            aux.push(a);
        }
        (acts, aux)
    }

    /// Backward pass. `grad_output` is the loss gradient with respect to the
    /// final node's activation. Returns per-node parameter gradients
    /// (`None` for parameterless nodes).
    ///
    /// # Panics
    ///
    /// Panics if `acts`/`aux` do not match this graph.
    pub fn backward(
        &self,
        acts: &[Tensor4],
        aux: &[Aux],
        grad_output: &Tensor4,
    ) -> Vec<Option<ParamGrad>> {
        assert_eq!(acts.len(), self.nodes.len(), "activation cache length");
        let mut grads: Vec<Option<Tensor4>> = vec![None; self.nodes.len()];
        let mut param_grads: Vec<Option<ParamGrad>> = vec![None; self.nodes.len()];
        let last = self.nodes.len() - 1;
        grads[last] = Some(grad_output.clone());

        for id in (0..self.nodes.len()).rev() {
            let g = match grads[id].take() {
                Some(g) => g,
                None => continue, // node does not influence the loss
            };
            let node = &self.nodes[id];
            match &node.op {
                Op::Input => {}
                Op::Conv(c) => {
                    let x = &acts[node.inputs[0]];
                    let (gi, gw, gb) = c.backward(x, &g);
                    param_grads[id] = Some(ParamGrad::Conv(gw, gb));
                    accumulate(&mut grads, node.inputs[0], gi);
                }
                Op::Relu => {
                    let x = &acts[node.inputs[0]];
                    accumulate(&mut grads, node.inputs[0], relu_backward(x, &g));
                }
                Op::MaxPool(p) => {
                    let x_shape = acts[node.inputs[0]].shape();
                    let arg_map = match &aux[id] {
                        Aux::MaxPool(m) => m,
                        // lint:allow(P1) forward_train stores Aux::MaxPool for every max-pool node
                        Aux::None => panic!("missing argmax for max-pool node {id}"),
                    };
                    accumulate(&mut grads, node.inputs[0], p.backward(x_shape, arg_map, &g));
                }
                Op::AvgPool(p) => {
                    let x_shape = acts[node.inputs[0]].shape();
                    accumulate(&mut grads, node.inputs[0], p.backward(x_shape, &g));
                }
                Op::Concat => {
                    let channels: Vec<usize> =
                        node.inputs.iter().map(|&i| acts[i].shape().c).collect();
                    for (inp, gpart) in node.inputs.iter().zip(split_channels(&g, &channels)) {
                        accumulate(&mut grads, *inp, gpart);
                    }
                }
                Op::Flatten => {
                    let x_shape = acts[node.inputs[0]].shape();
                    let gi = Tensor4::from_vec(x_shape, g.as_slice().to_vec())
                        // lint:allow(P1) flatten's gradient has the input's element count by construction
                        .expect("element count preserved");
                    accumulate(&mut grads, node.inputs[0], gi);
                }
                Op::Linear(l) => {
                    let x = &acts[node.inputs[0]];
                    let (gi, gw, gb) = l.backward(x, &g);
                    param_grads[id] = Some(ParamGrad::Linear(gw, gb));
                    accumulate(&mut grads, node.inputs[0], gi);
                }
                Op::Lrn(l) => {
                    let x = &acts[node.inputs[0]];
                    accumulate(&mut grads, node.inputs[0], l.backward(x, &g));
                }
            }
        }
        param_grads
    }

    /// Convenience: forward pass returning only the final logits as a
    /// `[n, classes]` matrix.
    pub fn logits(&self, input: &Tensor4) -> Tensor2 {
        let acts = self.forward(input);
        // lint:allow(P1) forward returns one activation per node and the graph is non-empty by construction
        acts.last().expect("non-empty graph").to_matrix()
    }
}

fn accumulate(grads: &mut [Option<Tensor4>], id: NodeId, g: Tensor4) {
    match &mut grads[id] {
        // lint:allow(P1) all gradients accumulated into a node share that node's activation shape
        Some(existing) => existing.add_assign(&g).expect("gradient shapes agree"),
        slot @ None => *slot = Some(g),
    }
}

/// Incremental builder producing a topologically-ordered [`Graph`].
///
/// ```
/// use snapea_nn::GraphBuilder;
/// use snapea_tensor::{im2col::ConvGeom, init};
///
/// let mut rng = init::rng(0);
/// let mut b = GraphBuilder::new();
/// let x = b.input();
/// let c = b.conv("conv1", x, 3, 8, ConvGeom::square(3, 1, 1), &mut rng);
/// let r = b.relu("relu1", c);
/// let f = b.flatten("flat", r);
/// let _ = b.linear("fc", f, 8 * 8 * 8, 10, &mut rng);
/// let g = b.build();
/// assert_eq!(g.conv_ids(), vec![1]);
/// ```
#[derive(Debug, Default)]
pub struct GraphBuilder {
    nodes: Vec<Node>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, name: &str, op: Op, inputs: Vec<NodeId>) -> NodeId {
        for &i in &inputs {
            assert!(i < self.nodes.len(), "input {i} not yet defined");
        }
        self.nodes.push(Node {
            name: name.to_string(),
            op,
            inputs,
        });
        self.nodes.len() - 1
    }

    /// Adds the graph input node (must be called first, exactly once).
    ///
    /// # Panics
    ///
    /// Panics if called on a non-empty builder.
    pub fn input(&mut self) -> NodeId {
        assert!(self.nodes.is_empty(), "input must be the first node");
        self.push("input", Op::Input, vec![])
    }

    /// Adds a He-initialized convolution node.
    pub fn conv(
        &mut self,
        name: &str,
        from: NodeId,
        c_in: usize,
        c_out: usize,
        geom: snapea_tensor::im2col::ConvGeom,
        rng: &mut rand::rngs::StdRng,
    ) -> NodeId {
        self.push(
            name,
            Op::Conv(Conv2d::new(c_in, c_out, geom, rng)),
            vec![from],
        )
    }

    /// Adds a convolution node from an existing layer.
    pub fn conv_layer(&mut self, name: &str, from: NodeId, conv: Conv2d) -> NodeId {
        self.push(name, Op::Conv(conv), vec![from])
    }

    /// Adds a ReLU node.
    pub fn relu(&mut self, name: &str, from: NodeId) -> NodeId {
        self.push(name, Op::Relu, vec![from])
    }

    /// Adds a max-pool node.
    pub fn max_pool(&mut self, name: &str, from: NodeId, k: usize, stride: usize) -> NodeId {
        self.push(name, Op::MaxPool(MaxPool::new(k, stride)), vec![from])
    }

    /// Adds a padded max-pool node (e.g. the 3×3/s1/p1 Inception pool
    /// branch).
    pub fn max_pool_padded(
        &mut self,
        name: &str,
        from: NodeId,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> NodeId {
        self.push(
            name,
            Op::MaxPool(MaxPool::with_pad(k, stride, pad)),
            vec![from],
        )
    }

    /// Adds an average-pool node.
    pub fn avg_pool(&mut self, name: &str, from: NodeId, k: usize, stride: usize) -> NodeId {
        self.push(name, Op::AvgPool(AvgPool::new(k, stride)), vec![from])
    }

    /// Adds a channel-concatenation node.
    pub fn concat(&mut self, name: &str, from: Vec<NodeId>) -> NodeId {
        assert!(!from.is_empty(), "concat needs at least one input");
        self.push(name, Op::Concat, from)
    }

    /// Adds a flatten node.
    pub fn flatten(&mut self, name: &str, from: NodeId) -> NodeId {
        self.push(name, Op::Flatten, vec![from])
    }

    /// Adds a He-initialized fully-connected node.
    pub fn linear(
        &mut self,
        name: &str,
        from: NodeId,
        c_in: usize,
        c_out: usize,
        rng: &mut rand::rngs::StdRng,
    ) -> NodeId {
        self.push(name, Op::Linear(Linear::new(c_in, c_out, rng)), vec![from])
    }

    /// Adds an LRN node.
    pub fn lrn(&mut self, name: &str, from: NodeId, lrn: Lrn) -> NodeId {
        self.push(name, Op::Lrn(lrn), vec![from])
    }

    /// Finishes the graph.
    ///
    /// # Panics
    ///
    /// Panics if the builder is empty.
    pub fn build(self) -> Graph {
        assert!(!self.nodes.is_empty(), "graph must have at least one node");
        Graph { nodes: self.nodes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapea_tensor::im2col::ConvGeom;
    use snapea_tensor::init;

    fn tiny_graph(seed: u64) -> Graph {
        let mut rng = init::rng(seed);
        let mut b = GraphBuilder::new();
        let x = b.input();
        let c1 = b.conv("c1", x, 1, 4, ConvGeom::square(3, 1, 1), &mut rng);
        let r1 = b.relu("r1", c1);
        let p1 = b.max_pool("p1", r1, 2, 2);
        let f = b.flatten("f", p1);
        let _ = b.linear("fc", f, 4 * 2 * 2, 3, &mut rng);
        b.build()
    }

    #[test]
    fn forward_shapes_flow() {
        let g = tiny_graph(0);
        let x = Tensor4::full(Shape4::new(2, 1, 4, 4), 0.3);
        let acts = g.forward(&x);
        assert_eq!(acts.len(), 6);
        assert_eq!(acts[1].shape(), Shape4::new(2, 4, 4, 4));
        assert_eq!(acts[3].shape(), Shape4::new(2, 4, 2, 2));
        assert_eq!(acts[5].shape(), Shape4::new(2, 3, 1, 1));
        let logits = g.logits(&x);
        assert_eq!(logits.shape().rows, 2);
        assert_eq!(logits.shape().cols, 3);
    }

    #[test]
    fn conv_override_hook_is_used() {
        let g = tiny_graph(1);
        let x = Tensor4::full(Shape4::new(1, 1, 4, 4), 1.0);
        let mut called = 0;
        let acts = g.forward_with(&x, &mut |_, c, inp| {
            called += 1;
            Some(Tensor4::zeros(c.out_shape(inp.shape())))
        });
        assert_eq!(called, 1);
        assert!(acts[1].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn forward_from_recomputes_only_downstream() {
        let g = tiny_graph(2);
        let x = Tensor4::full(Shape4::new(1, 1, 4, 4), 0.5);
        let cached = g.forward(&x);
        // Override conv (node 1) with zeros and recompute from it.
        let acts = g.forward_from(&x, &cached, 1, &mut |_, c, inp| {
            Some(Tensor4::zeros(c.out_shape(inp.shape())))
        });
        assert!(acts[1].iter().all(|&v| v == 0.0));
        // Final logits must equal a full forward with the same override.
        let full = g.forward_with(&x, &mut |_, c, inp| {
            Some(Tensor4::zeros(c.out_shape(inp.shape())))
        });
        assert_eq!(acts[5], full[5]);
        // And differ from the unmodified network (with overwhelming probability).
        assert_ne!(acts[5], cached[5]);
    }

    #[test]
    fn branching_concat_graph() {
        let mut rng = init::rng(3);
        let mut b = GraphBuilder::new();
        let x = b.input();
        let a = b.conv("a", x, 1, 2, ConvGeom::square(1, 1, 0), &mut rng);
        let ra = b.relu("ra", a);
        let c = b.conv("b", x, 1, 3, ConvGeom::square(3, 1, 1), &mut rng);
        let rc = b.relu("rb", c);
        let cat = b.concat("cat", vec![ra, rc]);
        let g = b.build();
        let x = Tensor4::full(Shape4::new(1, 1, 4, 4), 1.0);
        let acts = g.forward(&x);
        assert_eq!(acts[cat].shape(), Shape4::new(1, 5, 4, 4));
        assert_eq!(g.conv_ids(), vec![1, 3]);
        assert!(g.feeds_only_relu(1));
        assert!(!g.feeds_only_relu(cat));
    }

    #[test]
    fn backward_produces_grads_for_all_params() {
        let g = tiny_graph(4);
        let x = Tensor4::full(Shape4::new(2, 1, 4, 4), 0.7);
        let (acts, aux) = g.forward_train(&x);
        let go = Tensor4::full(acts.last().unwrap().shape(), 1.0);
        let grads = g.backward(&acts, &aux, &go);
        assert!(matches!(grads[1], Some(ParamGrad::Conv(_, _))));
        assert!(matches!(grads[5], Some(ParamGrad::Linear(_, _))));
        assert!(grads[2].is_none());
    }

    #[test]
    fn whole_graph_gradient_matches_finite_differences() {
        let g = tiny_graph(5);
        let mut rng = init::rng(6);
        let x = init::uniform4(Shape4::new(1, 1, 4, 4), 1.0, &mut rng);
        let (acts, aux) = g.forward_train(&x);
        let go = Tensor4::full(acts.last().unwrap().shape(), 1.0);
        let grads = g.backward(&acts, &aux, &go);
        let (gw, _) = match &grads[1] {
            Some(ParamGrad::Conv(w, b)) => (w.clone(), b.clone()),
            _ => panic!("conv grad missing"),
        };
        // Perturb one conv weight, check d(sum logits)/dw numerically.
        let eps = 1e-3;
        let probe = (2usize, 0usize, 1usize, 1usize);
        let mut gp = g.clone();
        if let Op::Conv(c) = &mut gp.node_mut(1).op {
            c.weight_mut()[probe] += eps;
        }
        let mut gm = g.clone();
        if let Op::Conv(c) = &mut gm.node_mut(1).op {
            c.weight_mut()[probe] -= eps;
        }
        let num = (gp.logits(&x).sum() - gm.logits(&x).sum()) / (2.0 * eps);
        assert!(
            (num - gw[probe]).abs() < 1e-2,
            "fd {num} vs analytic {}",
            gw[probe]
        );
    }

    #[test]
    fn param_count_and_size() {
        let g = tiny_graph(7);
        // conv: 4*1*3*3 + 4 = 40; fc: 3*16 + 3 = 51
        assert_eq!(g.param_count(), 91);
        assert_eq!(g.model_size_bytes(), 364);
    }

    #[test]
    fn serde_round_trip_preserves_function() {
        let g = tiny_graph(8);
        let x = Tensor4::full(Shape4::new(1, 1, 4, 4), 0.2);
        let json = serde_json::to_string(&g).unwrap();
        let g2: Graph = serde_json::from_str(&json).unwrap();
        assert_eq!(g.logits(&x), g2.logits(&x));
    }
}
