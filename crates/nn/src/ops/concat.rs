//! Channel-wise concatenation (Inception / Fire module joins).

use snapea_tensor::{Shape4, Tensor4};

/// Concatenates tensors along the channel dimension.
///
/// All inputs must share `n`, `h` and `w`.
///
/// # Panics
///
/// Panics if `inputs` is empty or the non-channel dimensions disagree.
pub fn concat_channels(inputs: &[&Tensor4]) -> Tensor4 {
    assert!(!inputs.is_empty(), "concat of zero tensors");
    let first = inputs[0].shape();
    let c_total: usize = inputs
        .iter()
        .map(|t| {
            let s = t.shape();
            assert_eq!(
                (s.n, s.h, s.w),
                (first.n, first.h, first.w),
                "concat inputs must share batch and spatial dims"
            );
            s.c
        })
        .sum();
    let os = Shape4::new(first.n, c_total, first.h, first.w);
    let mut out = Tensor4::zeros(os);
    for n in 0..os.n {
        let mut c_base = 0usize;
        for t in inputs {
            let s = t.shape();
            for c in 0..s.c {
                let src = t.plane(n, c);
                let start = os.offset(n, c_base + c, 0, 0);
                out.as_mut_slice()[start..start + os.plane_len()].copy_from_slice(src);
            }
            c_base += s.c;
        }
    }
    out
}

/// Splits a channel-concatenated gradient back into per-input gradients with
/// the given channel counts (the adjoint of [`concat_channels`]).
///
/// # Panics
///
/// Panics if the channel counts do not sum to `grad.shape().c`.
pub fn split_channels(grad: &Tensor4, channels: &[usize]) -> Vec<Tensor4> {
    let s = grad.shape();
    assert_eq!(
        channels.iter().sum::<usize>(),
        s.c,
        "split channel counts must sum to input channels"
    );
    let mut outs = Vec::with_capacity(channels.len());
    let mut c_base = 0usize;
    for &c_cnt in channels {
        let os = Shape4::new(s.n, c_cnt, s.h, s.w);
        let mut t = Tensor4::zeros(os);
        for n in 0..s.n {
            for c in 0..c_cnt {
                let src = grad.plane(n, c_base + c);
                let start = os.offset(n, c, 0, 0);
                t.as_mut_slice()[start..start + os.plane_len()].copy_from_slice(src);
            }
        }
        outs.push(t);
        c_base += c_cnt;
    }
    outs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_then_split_round_trips() {
        let a = Tensor4::from_fn(Shape4::new(2, 2, 3, 3), |n, c, h, w| {
            (n * 100 + c * 10 + h + w) as f32
        });
        let b = Tensor4::from_fn(Shape4::new(2, 3, 3, 3), |n, c, h, w| {
            -((n * 100 + c * 10 + h + w) as f32)
        });
        let cat = concat_channels(&[&a, &b]);
        assert_eq!(cat.shape(), Shape4::new(2, 5, 3, 3));
        assert_eq!(cat[(1, 0, 0, 0)], a[(1, 0, 0, 0)]);
        assert_eq!(cat[(1, 2, 1, 1)], b[(1, 0, 1, 1)]);
        let parts = split_channels(&cat, &[2, 3]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    #[should_panic(expected = "share batch and spatial")]
    fn concat_rejects_mismatched_spatial() {
        let a = Tensor4::zeros(Shape4::new(1, 1, 2, 2));
        let b = Tensor4::zeros(Shape4::new(1, 1, 3, 3));
        let _ = concat_channels(&[&a, &b]);
    }

    #[test]
    fn concat_single_is_identity() {
        let a = Tensor4::full(Shape4::new(1, 2, 2, 2), 3.0);
        assert_eq!(concat_channels(&[&a]), a);
    }
}
