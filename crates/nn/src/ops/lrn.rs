//! Cross-channel Local Response Normalization (AlexNet / GoogLeNet style).

use serde::{Deserialize, Serialize};
use snapea_tensor::Tensor4;

/// Local Response Normalization across channels:
///
/// `y[c] = x[c] / (k + (alpha/size) * Σ_{c' ∈ window(c)} x[c']²)^beta`
///
/// where the window spans `size` channels centred on `c` (clamped at the
/// edges), matching Caffe's `ACROSS_CHANNELS` LRN used by the paper's
/// AlexNet and GoogLeNet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lrn {
    /// Channel window size.
    pub size: usize,
    /// Scaling coefficient.
    pub alpha: f32,
    /// Exponent.
    pub beta: f32,
    /// Additive constant.
    pub k: f32,
}

impl Default for Lrn {
    /// AlexNet's published constants (`size=5, alpha=1e-4, beta=0.75, k=2`).
    fn default() -> Self {
        Self {
            size: 5,
            alpha: 1e-4,
            beta: 0.75,
            k: 2.0,
        }
    }
}

impl Lrn {
    /// Creates an LRN layer.
    pub fn new(size: usize, alpha: f32, beta: f32, k: f32) -> Self {
        Self {
            size,
            alpha,
            beta,
            k,
        }
    }

    fn window(&self, c: usize, channels: usize) -> (usize, usize) {
        let half = self.size / 2;
        let lo = c.saturating_sub(half);
        let hi = (c + half + 1).min(channels);
        (lo, hi)
    }

    /// Computes the per-element scale `S = k + (alpha/size) * Σ x²`.
    fn scales(&self, input: &Tensor4) -> Tensor4 {
        let s = input.shape();
        Tensor4::from_fn(s, |n, c, h, w| {
            let (lo, hi) = self.window(c, s.c);
            let mut acc = 0.0f32;
            for cc in lo..hi {
                let v = input[(n, cc, h, w)];
                acc += v * v;
            }
            self.k + self.alpha / self.size as f32 * acc
        })
    }

    /// Forward pass.
    pub fn forward(&self, input: &Tensor4) -> Tensor4 {
        let scales = self.scales(input);
        let mut out = input.clone();
        for (o, &sc) in out.iter_mut().zip(scales.iter()) {
            *o /= sc.powf(self.beta);
        }
        out
    }

    /// Backward pass.
    pub fn backward(&self, input: &Tensor4, grad_out: &Tensor4) -> Tensor4 {
        let s = input.shape();
        let scales = self.scales(input);
        // Precompute t[n,c,h,w] = g * x * S^{-beta-1}; then
        // grad_x[j] = g[j] * S[j]^{-beta} - (2*alpha*beta/size) * x[j] * Σ_{c ∈ window(j)} t[c]
        let mut t = Tensor4::zeros(s);
        for (((tv, &g), &x), &sc) in t
            .iter_mut()
            .zip(grad_out.iter())
            .zip(input.iter())
            .zip(scales.iter())
        {
            *tv = g * x * sc.powf(-self.beta - 1.0);
        }
        let coeff = 2.0 * self.alpha * self.beta / self.size as f32;
        Tensor4::from_fn(s, |n, c, h, w| {
            let (lo, hi) = self.window(c, s.c);
            let mut acc = 0.0f32;
            for cc in lo..hi {
                acc += t[(n, cc, h, w)];
            }
            grad_out[(n, c, h, w)] * scales[(n, c, h, w)].powf(-self.beta)
                - coeff * input[(n, c, h, w)] * acc
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapea_tensor::{init, Shape4};

    #[test]
    fn forward_preserves_sign_and_shrinks() {
        let lrn = Lrn::new(3, 0.5, 0.75, 2.0);
        let x = Tensor4::from_vec(Shape4::new(1, 4, 1, 1), vec![3.0, -2.0, 1.0, 0.0]).unwrap();
        let y = lrn.forward(&x);
        for (&yy, &xx) in y.iter().zip(x.iter()) {
            assert!(yy.abs() <= xx.abs() + 1e-6);
            assert!(yy.signum() * xx.signum() >= 0.0);
        }
    }

    #[test]
    fn identity_when_alpha_zero_and_k_one() {
        let lrn = Lrn::new(5, 0.0, 0.75, 1.0);
        let x = Tensor4::from_fn(Shape4::new(1, 3, 2, 2), |_, c, h, w| {
            (c + h + w) as f32 - 2.0
        });
        let y = lrn.forward(&x);
        for (a, b) in y.iter().zip(x.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_matches_finite_differences() {
        let lrn = Lrn::new(3, 0.3, 0.75, 2.0);
        let mut r = init::rng(11);
        let x = init::uniform4(Shape4::new(1, 5, 2, 2), 1.0, &mut r);
        let go = Tensor4::full(x.shape(), 1.0);
        let gi = lrn.backward(&x, &go);
        let eps = 1e-3;
        for &(c, h, w) in &[(0usize, 0usize, 0usize), (2, 1, 1), (4, 0, 1)] {
            let mut xp = x.clone();
            xp[(0, c, h, w)] += eps;
            let mut xm = x.clone();
            xm[(0, c, h, w)] -= eps;
            let num = (lrn.forward(&xp).sum() - lrn.forward(&xm).sum()) / (2.0 * eps);
            assert!(
                (num - gi[(0, c, h, w)]).abs() < 1e-2,
                "({c},{h},{w}): fd {num} vs {}",
                gi[(0, c, h, w)]
            );
        }
    }

    #[test]
    fn window_clamps_at_edges() {
        let lrn = Lrn::new(5, 1.0, 1.0, 0.0);
        assert_eq!(lrn.window(0, 8), (0, 3));
        assert_eq!(lrn.window(4, 8), (2, 7));
        assert_eq!(lrn.window(7, 8), (5, 8));
    }
}
