//! Fully-connected (linear) layer.

use serde::{Deserialize, Serialize};
use snapea_tensor::{init, Shape2, Shape4, Tensor2, Tensor4};

/// A fully-connected layer `y = W x + b` with weight shape `[out, in]`.
///
/// In the graph executor, activations flow as [`Tensor4`]; a linear layer
/// consumes `[n, features, 1, 1]` tensors (a `Flatten` node reshapes conv
/// activations first) and produces `[n, out, 1, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    weight: Tensor2,
    bias: Vec<f32>,
}

impl Linear {
    /// Creates a linear layer with He-initialized weights and zero bias.
    pub fn new(c_in: usize, c_out: usize, rng: &mut rand::rngs::StdRng) -> Self {
        Self {
            weight: init::he_fc(Shape2::new(c_out, c_in), rng),
            bias: vec![0.0; c_out],
        }
    }

    /// Creates a linear layer from explicit weights and bias.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != weight.shape().rows`.
    pub fn from_parts(weight: Tensor2, bias: Vec<f32>) -> Self {
        assert_eq!(bias.len(), weight.shape().rows, "bias per output feature");
        Self { weight, bias }
    }

    /// The `[out, in]` weight matrix.
    pub fn weight(&self) -> &Tensor2 {
        &self.weight
    }

    /// Mutable access to the weight matrix.
    pub fn weight_mut(&mut self) -> &mut Tensor2 {
        &mut self.weight
    }

    /// Per-output bias.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutable access to the bias.
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    /// Input feature count.
    pub fn c_in(&self) -> usize {
        self.weight.shape().cols
    }

    /// Output feature count.
    pub fn c_out(&self) -> usize {
        self.weight.shape().rows
    }

    /// Forward pass over a `[n, c_in, 1, 1]` activation.
    ///
    /// # Panics
    ///
    /// Panics if the input feature count disagrees.
    pub fn forward(&self, input: &Tensor4) -> Tensor4 {
        let s = input.shape();
        assert_eq!(s.item_len(), self.c_in(), "linear input features");
        let x = input.to_matrix(); // [n, c_in]
                                   // lint:allow(P1) the input feature count is asserted against c_in above
        let y = x.matmul_t(&self.weight).expect("shapes agree"); // [n, c_out]
        let mut out = Tensor4::zeros(Shape4::new(s.n, self.c_out(), 1, 1));
        for n in 0..s.n {
            let row = y.row(n);
            let dst = out.item_mut(n);
            for (d, (&v, &b)) in dst.iter_mut().zip(row.iter().zip(self.bias.iter())) {
                *d = v + b;
            }
        }
        out
    }

    /// Backward pass: returns `(grad_input, grad_weight, grad_bias)`.
    pub fn backward(&self, input: &Tensor4, grad_out: &Tensor4) -> (Tensor4, Tensor2, Vec<f32>) {
        let s = input.shape();
        let x = input.to_matrix(); // [n, c_in]
        let go = grad_out.to_matrix(); // [n, c_out]
                                       // dW = goᵀ × x  → [c_out, c_in]
                                       // lint:allow(P1) go and x share the batch dimension of the same forward pass
        let gw = go.t_matmul(&x).expect("shapes agree");
        // db = column sums of go
        let mut gb = vec![0.0f32; self.c_out()];
        for n in 0..s.n {
            for (g, &v) in gb.iter_mut().zip(go.row(n)) {
                *g += v;
            }
        }
        // dX = go × W → [n, c_in]
        // lint:allow(P1) go has c_out columns, matching the weight matrix's row count
        let gx = go.matmul(&self.weight).expect("shapes agree");
        // lint:allow(P1) gx is [n, c_in], exactly the input shape's element count
        let grad_in = Tensor4::from_vec(s, gx.into_vec()).expect("element count preserved");
        (grad_in, gw, gb)
    }

    /// Reinterprets the layer as a 1×1 convolution over a `[n, c_in, 1, 1]`
    /// activation — how the SnaPEA hardware executes fully-connected layers
    /// on the same PEs it uses for convolutions (paper §V: "To perform the
    /// computations of the fully-connected layers, the same hardware unit
    /// designed for the convolution layers is employed").
    pub fn to_conv(&self) -> crate::ops::Conv2d {
        let shape = snapea_tensor::Shape4::new(self.c_out(), self.c_in(), 1, 1);
        let weight = snapea_tensor::Tensor4::from_vec(shape, self.weight.as_slice().to_vec())
            // lint:allow(P1) c_out × c_in × 1 × 1 is exactly the weight matrix's element count
            .expect("weight layout is contiguous");
        crate::ops::Conv2d::from_parts(
            weight,
            self.bias.clone(),
            snapea_tensor::im2col::ConvGeom::square(1, 1, 0),
        )
    }

    /// Applies a gradient step (used by the trainer through velocity buffers).
    pub fn apply_step(&mut self, gw: &Tensor2, gb: &[f32], lr: f32) {
        for (w, g) in self.weight.as_mut_slice().iter_mut().zip(gw.iter()) {
            *w -= lr * g;
        }
        for (b, g) in self.bias.iter_mut().zip(gb.iter()) {
            *b -= lr * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapea_tensor::init::rng;

    #[test]
    fn forward_is_affine() {
        let mut l = Linear::new(3, 2, &mut rng(0));
        *l.weight_mut() =
            Tensor2::from_vec(Shape2::new(2, 3), vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5]).unwrap();
        l.bias_mut().copy_from_slice(&[1.0, -1.0]);
        let x = Tensor4::from_vec(Shape4::new(1, 3, 1, 1), vec![2.0, 4.0, 6.0]).unwrap();
        let y = l.forward(&x);
        assert_eq!(y.as_slice(), &[2.0 - 6.0 + 1.0, 6.0 - 1.0]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut r = rng(7);
        let l = Linear::new(4, 3, &mut r);
        let x = init::uniform4(Shape4::new(2, 4, 1, 1), 1.0, &mut r);
        let go = Tensor4::full(Shape4::new(2, 3, 1, 1), 1.0);
        let (gi, gw, gb) = l.backward(&x, &go);
        let eps = 1e-3;
        for &(n, c) in &[(0usize, 0usize), (1, 3), (0, 2)] {
            let mut xp = x.clone();
            xp[(n, c, 0, 0)] += eps;
            let mut xm = x.clone();
            xm[(n, c, 0, 0)] -= eps;
            let num = (l.forward(&xp).sum() - l.forward(&xm).sum()) / (2.0 * eps);
            assert!((num - gi[(n, c, 0, 0)]).abs() < 1e-2);
        }
        for &(o, i) in &[(0usize, 0usize), (2, 3)] {
            let mut lp = l.clone();
            lp.weight_mut()[(o, i)] += eps;
            let mut lm = l.clone();
            lm.weight_mut()[(o, i)] -= eps;
            let num = (lp.forward(&x).sum() - lm.forward(&x).sum()) / (2.0 * eps);
            assert!((num - gw[(o, i)]).abs() < 1e-2);
        }
        for &g in &gb {
            assert!((g - 2.0).abs() < 1e-4); // two batch items, grad_out = 1
        }
    }

    #[test]
    fn accepts_flattened_spatial_input() {
        let l = Linear::new(8, 2, &mut rng(1));
        let x = Tensor4::full(Shape4::new(1, 2, 2, 2), 0.5);
        let y = l.forward(&x);
        assert_eq!(y.shape(), Shape4::new(1, 2, 1, 1));
    }

    #[test]
    fn to_conv_computes_the_same_function() {
        let mut r = rng(5);
        let l = Linear::new(6, 4, &mut r);
        let conv = l.to_conv();
        let x = init::uniform4(Shape4::new(3, 6, 1, 1), 1.0, &mut r);
        let via_fc = l.forward(&x);
        let via_conv = conv.forward(&x);
        assert_eq!(via_conv.shape(), via_fc.shape());
        for (a, b) in via_conv.iter().zip(via_fc.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
        assert_eq!(conv.window_len(), 6);
    }
}
