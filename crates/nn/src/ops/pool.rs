//! Max and average pooling layers.

use serde::{Deserialize, Serialize};
use snapea_tensor::{Shape4, Tensor4};

/// Pooling geometry: square window, stride, zero padding.
///
/// Padding semantics follow Caffe (which hosted the paper's networks):
/// max-pool treats padded positions as absent (−∞), average-pool treats them
/// as zeros and always divides by the full window area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoolGeom {
    /// Window side length.
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Padding on every side.
    pub pad: usize,
}

impl PoolGeom {
    /// Creates a pooling geometry without padding.
    pub fn new(k: usize, stride: usize) -> Self {
        Self { k, stride, pad: 0 }
    }

    /// Creates a pooling geometry with padding.
    pub fn with_pad(k: usize, stride: usize, pad: usize) -> Self {
        Self { k, stride, pad }
    }

    /// Output extent for an input extent `d`.
    pub fn out_dim(&self, d: usize) -> usize {
        let padded = d + 2 * self.pad;
        if padded < self.k {
            0
        } else {
            (padded - self.k) / self.stride + 1
        }
    }

    /// Output shape for an input shape.
    pub fn out_shape(&self, s: Shape4) -> Shape4 {
        Shape4::new(s.n, s.c, self.out_dim(s.h), self.out_dim(s.w))
    }

    /// Iterates the valid (in-bounds) input coordinates of output window
    /// `(oy, ox)` for an input of spatial extent `(h, w)`.
    fn window_coords(
        &self,
        oy: usize,
        ox: usize,
        h: usize,
        w: usize,
    ) -> impl Iterator<Item = (usize, usize)> + '_ {
        let y0 = (oy * self.stride) as isize - self.pad as isize;
        let x0 = (ox * self.stride) as isize - self.pad as isize;
        let k = self.k as isize;
        (0..k).flat_map(move |ky| {
            (0..k).filter_map(move |kx| {
                let iy = y0 + ky;
                let ix = x0 + kx;
                if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                    Some((iy as usize, ix as usize))
                } else {
                    None
                }
            })
        })
    }
}

/// Max pooling. The forward pass additionally returns the argmax map needed
/// by the backward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MaxPool {
    /// Pooling geometry.
    pub geom: PoolGeom,
}

impl MaxPool {
    /// Creates an unpadded max-pool layer.
    pub fn new(k: usize, stride: usize) -> Self {
        Self {
            geom: PoolGeom::new(k, stride),
        }
    }

    /// Creates a padded max-pool layer (e.g. the 3×3/s1/p1 pool branch of an
    /// Inception module).
    pub fn with_pad(k: usize, stride: usize, pad: usize) -> Self {
        Self {
            geom: PoolGeom::with_pad(k, stride, pad),
        }
    }

    /// Forward pass returning `(output, argmax)` where `argmax` holds, for
    /// every output element, the linear offset into the input of the winning
    /// element (`u32::MAX` for the degenerate all-padding window, which
    /// outputs 0).
    pub fn forward(&self, input: &Tensor4) -> (Tensor4, Vec<u32>) {
        let s = input.shape();
        let os = self.geom.out_shape(s);
        let mut out = Tensor4::zeros(os);
        let mut arg = vec![0u32; os.len()];
        let data = input.as_slice();
        let mut oi = 0;
        for n in 0..os.n {
            for c in 0..os.c {
                for oy in 0..os.h {
                    for ox in 0..os.w {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_off = u32::MAX;
                        for (iy, ix) in self.geom.window_coords(oy, ox, s.h, s.w) {
                            let off = s.offset(n, c, iy, ix);
                            if data[off] > best {
                                best = data[off];
                                best_off = off as u32;
                            }
                        }
                        out.as_mut_slice()[oi] = if best_off == u32::MAX { 0.0 } else { best };
                        arg[oi] = best_off;
                        oi += 1;
                    }
                }
            }
        }
        (out, arg)
    }

    /// Backward pass: routes each output gradient to its argmax position.
    pub fn backward(&self, input_shape: Shape4, argmax: &[u32], grad_out: &Tensor4) -> Tensor4 {
        let mut grad_in = Tensor4::zeros(input_shape);
        let gi = grad_in.as_mut_slice();
        for (&a, &g) in argmax.iter().zip(grad_out.as_slice()) {
            if a != u32::MAX {
                gi[a as usize] += g;
            }
        }
        grad_in
    }
}

/// Average pooling. With `k == stride == input extent` this is global average
/// pooling (used by the GoogLeNet/SqueezeNet heads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AvgPool {
    /// Pooling geometry.
    pub geom: PoolGeom,
}

impl AvgPool {
    /// Creates an unpadded average-pool layer.
    pub fn new(k: usize, stride: usize) -> Self {
        Self {
            geom: PoolGeom::new(k, stride),
        }
    }

    /// Forward pass.
    pub fn forward(&self, input: &Tensor4) -> Tensor4 {
        let s = input.shape();
        let os = self.geom.out_shape(s);
        let norm = 1.0 / (self.geom.k * self.geom.k) as f32;
        Tensor4::from_fn(os, |n, c, oy, ox| {
            let mut acc = 0.0;
            for (iy, ix) in self.geom.window_coords(oy, ox, s.h, s.w) {
                acc += input[(n, c, iy, ix)];
            }
            acc * norm
        })
    }

    /// Backward pass: distributes each output gradient evenly over its
    /// window.
    pub fn backward(&self, input_shape: Shape4, grad_out: &Tensor4) -> Tensor4 {
        let os = grad_out.shape();
        let norm = 1.0 / (self.geom.k * self.geom.k) as f32;
        let mut grad_in = Tensor4::zeros(input_shape);
        for n in 0..os.n {
            for c in 0..os.c {
                for oy in 0..os.h {
                    for ox in 0..os.w {
                        let g = grad_out[(n, c, oy, ox)] * norm;
                        for (iy, ix) in
                            self.geom
                                .window_coords(oy, ox, input_shape.h, input_shape.w)
                        {
                            grad_in[(n, c, iy, ix)] += g;
                        }
                    }
                }
            }
        }
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_max_and_routes_grad() {
        let x = Tensor4::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0, 5.0, 3.0, 2.0]).unwrap();
        let p = MaxPool::new(2, 2);
        let (y, arg) = p.forward(&x);
        assert_eq!(y.as_slice(), &[5.0]);
        assert_eq!(arg, vec![1]);
        let go = Tensor4::full(y.shape(), 2.0);
        let gi = p.backward(x.shape(), &arg, &go);
        assert_eq!(gi.as_slice(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_overlapping_windows() {
        // AlexNet-style overlapping pooling: k=3, stride=2.
        let x = Tensor4::from_fn(Shape4::new(1, 1, 5, 5), |_, _, h, w| (h * 5 + w) as f32);
        let p = MaxPool::new(3, 2);
        let (y, _) = p.forward(&x);
        assert_eq!(y.shape(), Shape4::new(1, 1, 2, 2));
        // Max of each 3x3 window is its bottom-right element.
        assert_eq!(y.as_slice(), &[12.0, 14.0, 22.0, 24.0]);
    }

    #[test]
    fn padded_maxpool_preserves_spatial_extent() {
        // Inception pool branch: 3x3, stride 1, pad 1 — same spatial size.
        let x = Tensor4::from_fn(Shape4::new(1, 1, 3, 3), |_, _, h, w| (h * 3 + w) as f32);
        let p = MaxPool::with_pad(3, 1, 1);
        let (y, arg) = p.forward(&x);
        assert_eq!(y.shape(), x.shape());
        // Corner output only sees the in-bounds 2x2 region.
        assert_eq!(y[(0, 0, 0, 0)], 4.0);
        assert_eq!(y[(0, 0, 2, 2)], 8.0);
        // Gradients still route correctly.
        let go = Tensor4::full(y.shape(), 1.0);
        let gi = p.backward(x.shape(), &arg, &go);
        // Element 8 (value 8.0) wins 4 windows.
        assert_eq!(gi[(0, 0, 2, 2)], 4.0);
        assert_eq!(gi.sum(), 9.0);
    }

    #[test]
    fn avgpool_averages_and_distributes() {
        let x = Tensor4::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 6.0]).unwrap();
        let p = AvgPool::new(2, 2);
        let y = p.forward(&x);
        assert_eq!(y.as_slice(), &[3.0]);
        let go = Tensor4::full(y.shape(), 4.0);
        let gi = p.backward(x.shape(), &go);
        assert_eq!(gi.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn global_avg_pool_shape() {
        let x = Tensor4::full(Shape4::new(2, 3, 4, 4), 2.0);
        let p = AvgPool::new(4, 4);
        let y = p.forward(&x);
        assert_eq!(y.shape(), Shape4::new(2, 3, 1, 1));
        assert!(y.iter().all(|&v| (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn pool_geom_degenerate() {
        let g = PoolGeom::new(3, 2);
        assert_eq!(g.out_dim(2), 0);
        assert_eq!(g.out_dim(3), 1);
        assert_eq!(g.out_dim(7), 3);
        let gp = PoolGeom::with_pad(3, 1, 1);
        assert_eq!(gp.out_dim(4), 4);
    }
}
