//! 2-D convolution layer (im2col fast path).

use serde::{Deserialize, Serialize};
use snapea_tensor::im2col::{col2im_item_slice, im2col_into, ConvGeom};
use snapea_tensor::{
    init, matmul_into, matmul_t_into, scratch, t_matmul_into, Shape2, Shape4, Tensor2, Tensor4,
};

/// A 2-D convolution layer with bias.
///
/// Weights are stored NCHW as `[c_out, c_in, kh, kw]`. The forward/backward
/// passes lower the convolution to matrix products through im2col; the SnaPEA
/// executor (crate `snapea`) instead walks windows weight-by-weight to model
/// early termination, and integration tests assert the two paths agree.
///
/// ```
/// use snapea_nn::ops::Conv2d;
/// use snapea_tensor::{im2col::ConvGeom, init, Shape4, Tensor4};
///
/// let conv = Conv2d::new(3, 8, ConvGeom::square(3, 1, 1), &mut init::rng(0));
/// let x = Tensor4::full(Shape4::new(2, 3, 8, 8), 1.0);
/// let y = conv.forward(&x);
/// assert_eq!(y.shape(), Shape4::new(2, 8, 8, 8));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv2d {
    weight: Tensor4,
    bias: Vec<f32>,
    geom: ConvGeom,
}

impl Conv2d {
    /// Creates a convolution with He-initialized weights and zero bias.
    pub fn new(c_in: usize, c_out: usize, geom: ConvGeom, rng: &mut rand::rngs::StdRng) -> Self {
        Self {
            weight: init::he_conv(Shape4::new(c_out, c_in, geom.kh, geom.kw), rng),
            bias: vec![0.0; c_out],
            geom,
        }
    }

    /// Creates a convolution from explicit weights and bias.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != weight.shape().n` or the kernel spatial
    /// dimensions disagree with `geom`.
    pub fn from_parts(weight: Tensor4, bias: Vec<f32>, geom: ConvGeom) -> Self {
        assert_eq!(bias.len(), weight.shape().n, "bias per output channel");
        assert_eq!(weight.shape().h, geom.kh, "kernel height");
        assert_eq!(weight.shape().w, geom.kw, "kernel width");
        Self { weight, bias, geom }
    }

    /// The kernel tensor `[c_out, c_in, kh, kw]`.
    pub fn weight(&self) -> &Tensor4 {
        &self.weight
    }

    /// Mutable access to the kernel tensor.
    pub fn weight_mut(&mut self) -> &mut Tensor4 {
        &mut self.weight
    }

    /// Per-output-channel bias.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutable access to the bias.
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    /// The convolution geometry.
    pub fn geom(&self) -> ConvGeom {
        self.geom
    }

    /// Number of input channels.
    pub fn c_in(&self) -> usize {
        self.weight.shape().c
    }

    /// Number of output channels (kernels).
    pub fn c_out(&self) -> usize {
        self.weight.shape().n
    }

    /// Number of weights in a single kernel (`c_in * kh * kw`) — the window
    /// length the paper calls `C_in × D × D`.
    pub fn window_len(&self) -> usize {
        self.weight.shape().item_len()
    }

    /// Output shape for a given input shape.
    pub fn out_shape(&self, input: Shape4) -> Shape4 {
        Shape4::new(
            input.n,
            self.c_out(),
            self.geom.out_h(input.h),
            self.geom.out_w(input.w),
        )
    }

    /// MAC count for a full (non-terminated) evaluation of this layer on an
    /// input of shape `input`: `windows × window_len`.
    pub fn full_macs(&self, input: Shape4) -> u64 {
        let out = self.out_shape(input);
        (out.n * out.c * out.h * out.w) as u64 * self.window_len() as u64
    }

    /// Kernel weights as a `[c_out, c_in*kh*kw]` matrix (rows are kernels).
    pub fn weight_matrix(&self) -> Tensor2 {
        Tensor2::from_vec(
            Shape2::new(self.c_out(), self.window_len()),
            self.weight.as_slice().to_vec(),
        )
        // lint:allow(P1) c_out × window_len is exactly the weight tensor's element count
        .expect("weight layout is contiguous")
    }

    /// Forward pass.
    ///
    /// Batch items are independent, so they are dispatched across the
    /// [`snapea_tensor::par`] pool (each worker owns one item's disjoint
    /// output slice); with a single item the inner GEMM parallelises over
    /// output rows instead. Results are bit-identical for any thread count.
    ///
    /// The im2col patch matrix and the GEMM product live in
    /// [`snapea_tensor::scratch`] buffers, so a warmed-up thread performs no
    /// heap allocation per item beyond the output tensor itself.
    ///
    /// # Panics
    ///
    /// Panics if `input.shape().c != self.c_in()`.
    pub fn forward(&self, input: &Tensor4) -> Tensor4 {
        assert_eq!(input.shape().c, self.c_in(), "conv input channels");
        let out_shape = self.out_shape(input.shape());
        let wmat = self.weight_matrix();
        let mut out = Tensor4::zeros(out_shape);
        let item_len = out_shape.item_len();
        if item_len == 0 {
            return out;
        }
        let plane = out_shape.plane_len();
        let rows = self.window_len();
        let cols_shape = Shape2::new(rows, plane);
        // One task per group of consecutive batch items: an item costs
        // c_out·plane·window_len GEMM MACs, and the floor groups items until
        // each task clears the pool's dispatch crossover. When the whole
        // batch fits under the floor (including n = 1 serving shapes) the
        // single task runs inline and the per-item `matmul_into` row-splits
        // across the pool instead.
        let item_cost = out_shape.c * plane * rows;
        let chunk = snapea_tensor::par::chunk_for(
            out_shape.n,
            item_cost,
            snapea_tensor::par::GEMM_TASK_FLOOR_MACS,
        );
        let blocks: Vec<(usize, &mut [f32])> = out
            .as_mut_slice()
            .chunks_mut(chunk * item_len)
            .enumerate()
            .map(|(bi, slab)| (bi * chunk, slab))
            .collect();
        snapea_tensor::par::run_tasks(blocks, |_, (n0, slab)| {
            for (di, dst) in slab.chunks_mut(item_len).enumerate() {
                let n = n0 + di;
                scratch::with_zeroed(rows * plane, |cols| {
                    im2col_into(input, n, self.geom, cols);
                    scratch::with_zeroed(out_shape.c * plane, |prod| {
                        matmul_into(wmat.as_slice(), wmat.shape(), cols, cols_shape, prod)
                            // lint:allow(P1) wmat, cols and prod all derive from the same conv geometry
                            .expect("im2col shape is consistent");
                        for co in 0..out_shape.c {
                            let row = &prod[co * plane..(co + 1) * plane];
                            let b = self.bias[co];
                            for (d, &v) in dst[co * plane..(co + 1) * plane].iter_mut().zip(row) {
                                *d = v + b;
                            }
                        }
                    });
                });
            }
        });
        out
    }

    /// Backward pass: given the layer input and the gradient of the loss with
    /// respect to the output, returns `(grad_input, grad_weight, grad_bias)`.
    ///
    /// Each batch item's `(dW, db, dIn)` contribution is computed on the
    /// [`snapea_tensor::par`] pool (workers own disjoint `grad_input` item
    /// slices); the weight and bias gradients are then merged on the calling
    /// thread in ascending item order, so the reduction is bit-identical for
    /// any thread count. The patch matrices live in
    /// [`snapea_tensor::scratch`] buffers and `grad_out` items are consumed
    /// in place, so only the returned gradients are allocated per item.
    pub fn backward(&self, input: &Tensor4, grad_out: &Tensor4) -> (Tensor4, Tensor4, Vec<f32>) {
        let in_shape = input.shape();
        let out_shape = self.out_shape(in_shape);
        assert_eq!(grad_out.shape(), out_shape, "conv grad_out shape");
        let wmat = self.weight_matrix();
        let plane = out_shape.plane_len();
        let rows = self.window_len();
        let go_shape = Shape2::new(out_shape.c, plane);
        let cols_shape = Shape2::new(rows, plane);
        let mut grad_in = Tensor4::zeros(in_shape);
        let mut grad_w = Tensor2::zeros(Shape2::new(self.c_out(), self.window_len()));
        let mut grad_b = vec![0.0f32; self.c_out()];
        let in_item = in_shape.item_len();
        if in_shape.n > 0 && in_item > 0 {
            // Grouped like `forward`: an item's backward costs roughly three
            // forward GEMMs (dW, db, dIn), so the floor is reached at a third
            // of the items. Each task returns its items' (dW, db) pairs in
            // ascending item order; the flattened task-order merge below is
            // therefore the same ascending-item fold as the serial loop —
            // bit-identical for any thread count.
            let item_cost = 3 * out_shape.c * plane * rows;
            let chunk = snapea_tensor::par::chunk_for(
                in_shape.n,
                item_cost,
                snapea_tensor::par::GEMM_TASK_FLOOR_MACS,
            );
            let blocks: Vec<(usize, &mut [f32])> = grad_in
                .as_mut_slice()
                .chunks_mut(chunk * in_item)
                .enumerate()
                .map(|(bi, slab)| (bi * chunk, slab))
                .collect();
            let per_block: Vec<Vec<(Tensor2, Vec<f32>)>> =
                snapea_tensor::par::run_tasks(blocks, |_, (n0, slab)| {
                    slab.chunks_mut(in_item)
                        .enumerate()
                        .map(|(di, gi_item)| {
                            let n = n0 + di;
                            scratch::with_zeroed(rows * plane, |cols| {
                                im2col_into(input, n, self.geom, cols);
                                // grad_out for this item as [c_out, oh*ow], in place
                                let go = grad_out.item(n);
                                // dW contribution: dOut × colsᵀ
                                let mut dw = Tensor2::zeros(Shape2::new(out_shape.c, rows));
                                matmul_t_into(go, go_shape, cols, cols_shape, dw.as_mut_slice())
                                    // lint:allow(P1) go, cols and dw all derive from the same conv geometry
                                    .expect("shapes agree");
                                // db contribution: row sums of dOut
                                let db: Vec<f32> = (0..out_shape.c)
                                    .map(|co| go[co * plane..(co + 1) * plane].iter().sum::<f32>())
                                    .collect();
                                // dIn = Wᵀ × dOut, scattered through col2im into this
                                // item's disjoint slice
                                scratch::with_zeroed(rows * plane, |dcols| {
                                    t_matmul_into(
                                        wmat.as_slice(),
                                        wmat.shape(),
                                        go,
                                        go_shape,
                                        dcols,
                                    )
                                    // lint:allow(P1) wmat, go and dcols all derive from the same conv geometry
                                    .expect("shapes agree");
                                    col2im_item_slice(
                                        dcols, gi_item, in_shape.c, in_shape.h, in_shape.w,
                                        self.geom,
                                    );
                                });
                                (dw, db)
                            })
                        })
                        .collect()
                });
            for (dw, db) in per_block.into_iter().flatten() {
                // lint:allow(P1) every per-item dW was allocated with grad_w's own shape
                grad_w.add_assign(&dw).expect("same shape");
                for (g, d) in grad_b.iter_mut().zip(db) {
                    *g += d;
                }
            }
        }
        let grad_w4 = Tensor4::from_vec(self.weight.shape(), grad_w.into_vec())
            // lint:allow(P1) grad_w is a [c_out, window_len] matrix matching the weight tensor's element count
            .expect("weight layout is contiguous");
        (grad_in, grad_w4, grad_b)
    }

    /// Applies a gradient step `w -= lr * gw`, `b -= lr * gb` (used by the
    /// trainer through velocity buffers).
    pub fn apply_step(&mut self, gw: &Tensor4, gb: &[f32], lr: f32) {
        for (w, g) in self.weight.iter_mut().zip(gw.iter()) {
            *w -= lr * g;
        }
        for (b, g) in self.bias.iter_mut().zip(gb.iter()) {
            *b -= lr * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapea_tensor::init::rng;

    /// Reference direct convolution, used to validate the im2col path.
    fn conv_reference(conv: &Conv2d, input: &Tensor4) -> Tensor4 {
        let s = input.shape();
        let g = conv.geom();
        let os = conv.out_shape(s);
        Tensor4::from_fn(os, |n, co, oy, ox| {
            let mut acc = conv.bias()[co];
            for ci in 0..s.c {
                for ky in 0..g.kh {
                    for kx in 0..g.kw {
                        let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        if iy < 0 || ix < 0 || iy >= s.h as isize || ix >= s.w as isize {
                            continue;
                        }
                        acc += input[(n, ci, iy as usize, ix as usize)]
                            * conv.weight()[(co, ci, ky, kx)];
                    }
                }
            }
            acc
        })
    }

    #[test]
    fn forward_matches_direct_convolution() {
        for (k, stride, pad) in [(3, 1, 1), (3, 2, 0), (1, 1, 0), (5, 1, 2), (3, 2, 1)] {
            let mut r = rng(9);
            let conv = Conv2d::new(3, 4, ConvGeom::square(k, stride, pad), &mut r);
            let x = snapea_tensor::init::uniform4(Shape4::new(2, 3, 9, 9), 1.0, &mut r);
            let fast = conv.forward(&x);
            let slow = conv_reference(&conv, &x);
            assert_eq!(fast.shape(), slow.shape());
            for (a, b) in fast.iter().zip(slow.iter()) {
                assert!(
                    (a - b).abs() < 1e-4,
                    "{a} vs {b} (k={k} s={stride} p={pad})"
                );
            }
        }
    }

    #[test]
    fn bias_is_added_per_channel() {
        let mut conv = Conv2d::new(1, 2, ConvGeom::square(1, 1, 0), &mut rng(0));
        conv.weight_mut().map_inplace(|_| 0.0);
        conv.bias_mut()[0] = 1.5;
        conv.bias_mut()[1] = -2.5;
        let x = Tensor4::zeros(Shape4::new(1, 1, 2, 2));
        let y = conv.forward(&x);
        assert!(y.plane(0, 0).iter().all(|&v| v == 1.5));
        assert!(y.plane(0, 1).iter().all(|&v| v == -2.5));
    }

    #[test]
    fn backward_gradients_match_finite_differences() {
        let mut r = rng(3);
        let conv = Conv2d::new(2, 3, ConvGeom::square(3, 1, 1), &mut r);
        let x = snapea_tensor::init::uniform4(Shape4::new(1, 2, 4, 4), 1.0, &mut r);
        // Loss = sum(forward(x)); grad_out = ones.
        let y = conv.forward(&x);
        let go = Tensor4::full(y.shape(), 1.0);
        let (gi, gw, gb) = conv.backward(&x, &go);

        let eps = 1e-3;
        // Check a few input positions.
        for &(c, h, w) in &[(0usize, 0usize, 0usize), (1, 2, 3), (0, 3, 1)] {
            let mut xp = x.clone();
            xp[(0, c, h, w)] += eps;
            let mut xm = x.clone();
            xm[(0, c, h, w)] -= eps;
            let num = (conv.forward(&xp).sum() - conv.forward(&xm).sum()) / (2.0 * eps);
            assert!(
                (num - gi[(0, c, h, w)]).abs() < 1e-2,
                "input grad at ({c},{h},{w}): fd {num} vs {}",
                gi[(0, c, h, w)]
            );
        }
        // Check a few weight positions.
        for &(co, ci, ky, kx) in &[(0usize, 0usize, 0usize, 0usize), (2, 1, 2, 2), (1, 0, 1, 1)] {
            let mut cp = conv.clone();
            cp.weight_mut()[(co, ci, ky, kx)] += eps;
            let mut cm = conv.clone();
            cm.weight_mut()[(co, ci, ky, kx)] -= eps;
            let num = (cp.forward(&x).sum() - cm.forward(&x).sum()) / (2.0 * eps);
            assert!(
                (num - gw[(co, ci, ky, kx)]).abs() < 1e-2,
                "weight grad at ({co},{ci},{ky},{kx}): fd {num} vs {}",
                gw[(co, ci, ky, kx)]
            );
        }
        // Bias gradient is just the number of output positions per channel.
        let plane = conv.out_shape(x.shape()).plane_len() as f32;
        for &g in &gb {
            assert!((g - plane).abs() < 1e-3);
        }
    }

    #[test]
    fn full_macs_counts_every_tap() {
        let conv = Conv2d::new(4, 8, ConvGeom::square(3, 1, 1), &mut rng(0));
        let s = Shape4::new(2, 4, 8, 8);
        // 2 images × 8 kernels × 8×8 windows × (4×3×3) taps
        assert_eq!(conv.full_macs(s), 2 * 8 * 64 * 36);
        assert_eq!(conv.window_len(), 36);
    }

    #[test]
    fn from_parts_validates() {
        let w = Tensor4::zeros(Shape4::new(2, 1, 3, 3));
        let c = Conv2d::from_parts(w, vec![0.0, 0.0], ConvGeom::square(3, 1, 1));
        assert_eq!(c.c_out(), 2);
    }

    #[test]
    #[should_panic(expected = "bias per output channel")]
    fn from_parts_rejects_bad_bias() {
        let w = Tensor4::zeros(Shape4::new(2, 1, 3, 3));
        let _ = Conv2d::from_parts(w, vec![0.0], ConvGeom::square(3, 1, 1));
    }
}
