//! Neural-network layer primitives with forward and backward passes.

mod concat;
mod conv;
mod fc;
mod lrn;
mod pool;
mod relu;

pub use concat::{concat_channels, split_channels};
pub use conv::Conv2d;
pub use fc::Linear;
pub use lrn::Lrn;
pub use pool::{AvgPool, MaxPool, PoolGeom};
pub use relu::{relu, relu_backward};
