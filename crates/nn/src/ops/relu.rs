//! Rectified Linear Unit.
//!
//! ReLU is the algorithmic hinge of the whole paper: it maps every negative
//! convolution output to zero, which is what makes early termination of the
//! convolution sound (exact mode) or cheap to speculate on (predictive mode).

use snapea_tensor::Tensor4;

/// Forward ReLU: `max(0, x)` elementwise.
pub fn relu(input: &Tensor4) -> Tensor4 {
    input.map(|v| if v > 0.0 { v } else { 0.0 })
}

/// Backward ReLU: passes the gradient where the *input* was positive.
pub fn relu_backward(input: &Tensor4, grad_out: &Tensor4) -> Tensor4 {
    let mut grad_in = grad_out.clone();
    for (g, &x) in grad_in.iter_mut().zip(input.iter()) {
        if x <= 0.0 {
            *g = 0.0;
        }
    }
    grad_in
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapea_tensor::Shape4;

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor4::from_vec(Shape4::new(1, 1, 2, 2), vec![-1.0, 0.0, 2.0, -0.5]).unwrap();
        let y = relu(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let x = Tensor4::from_vec(Shape4::new(1, 1, 2, 2), vec![-1.0, 0.0, 2.0, 3.0]).unwrap();
        let go = Tensor4::full(x.shape(), 5.0);
        let gi = relu_backward(&x, &go);
        assert_eq!(gi.as_slice(), &[0.0, 0.0, 5.0, 5.0]);
    }
}
