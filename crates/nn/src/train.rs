//! SGD-with-momentum training.

use crate::data::LabeledImage;
use crate::graph::{Graph, Op, ParamGrad};
use crate::loss::{accuracy, cross_entropy};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use snapea_tensor::{Tensor2, Tensor4};
use std::collections::BTreeMap;

/// Hyper-parameters for [`Trainer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Mini-batch size.
    pub batch_size: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            batch_size: 16,
        }
    }
}

/// Per-epoch training metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean training loss over the epoch.
    pub loss: f64,
    /// Training accuracy over the epoch.
    pub accuracy: f64,
}

enum Velocity {
    Conv(Tensor4, Vec<f32>),
    Linear(Tensor2, Vec<f32>),
}

/// SGD-with-momentum trainer for a [`Graph`].
///
/// Velocity buffers are held per parameterised node; the graph is updated in
/// place.
pub struct Trainer {
    config: TrainConfig,
    velocity: BTreeMap<usize, Velocity>,
}

impl Trainer {
    /// Creates a trainer with the given hyper-parameters.
    pub fn new(config: TrainConfig) -> Self {
        Self {
            config,
            velocity: BTreeMap::new(),
        }
    }

    /// The hyper-parameters in use.
    pub fn config(&self) -> TrainConfig {
        self.config
    }

    /// Adjusts the learning rate (for step-decay schedules). Velocity
    /// buffers are preserved.
    pub fn set_lr(&mut self, lr: f32) {
        self.config.lr = lr;
    }

    /// Runs one optimisation step on a batch. Returns `(loss, accuracy)`.
    pub fn step(&mut self, net: &mut Graph, batch: &Tensor4, labels: &[usize]) -> (f32, f64) {
        let (acts, aux) = net.forward_train(batch);
        // lint:allow(P1) forward returns one activation per node and the graph is non-empty by construction
        let logits = acts.last().expect("non-empty graph").to_matrix();
        let (loss, grad) = cross_entropy(&logits, labels);
        let acc = accuracy(&logits, labels);
        let grads = net.backward(&acts, &aux, &grad);
        self.apply(net, grads);
        (loss, acc)
    }

    fn apply(&mut self, net: &mut Graph, grads: Vec<Option<ParamGrad>>) {
        let cfg = self.config;
        for (id, grad) in grads.into_iter().enumerate() {
            let Some(grad) = grad else { continue };
            match (&mut net.node_mut(id).op, grad) {
                (Op::Conv(conv), ParamGrad::Conv(gw, gb)) => {
                    let vel = self.velocity.entry(id).or_insert_with(|| {
                        Velocity::Conv(
                            Tensor4::zeros(conv.weight().shape()),
                            vec![0.0; conv.bias().len()],
                        )
                    });
                    let Velocity::Conv(vw, vb) = vel else {
                        // lint:allow(P1) the entry was created two lines up with the matching variant
                        unreachable!("velocity kind matches node kind")
                    };
                    for ((v, &g), &w) in vw.iter_mut().zip(gw.iter()).zip(conv.weight().iter()) {
                        *v = cfg.momentum * *v + g + cfg.weight_decay * w;
                    }
                    for (v, &g) in vb.iter_mut().zip(gb.iter()) {
                        *v = cfg.momentum * *v + g;
                    }
                    let (vw, vb) = (vw.clone(), vb.clone());
                    conv.apply_step(&vw, &vb, cfg.lr);
                }
                (Op::Linear(lin), ParamGrad::Linear(gw, gb)) => {
                    let vel = self.velocity.entry(id).or_insert_with(|| {
                        Velocity::Linear(
                            Tensor2::zeros(lin.weight().shape()),
                            vec![0.0; lin.bias().len()],
                        )
                    });
                    let Velocity::Linear(vw, vb) = vel else {
                        // lint:allow(P1) the entry was created two lines up with the matching variant
                        unreachable!("velocity kind matches node kind")
                    };
                    for ((v, &g), &w) in vw
                        .as_mut_slice()
                        .iter_mut()
                        .zip(gw.iter())
                        .zip(lin.weight().iter())
                    {
                        *v = cfg.momentum * *v + g + cfg.weight_decay * w;
                    }
                    for (v, &g) in vb.iter_mut().zip(gb.iter()) {
                        *v = cfg.momentum * *v + g;
                    }
                    let (vw, vb) = (vw.clone(), vb.clone());
                    lin.apply_step(&vw, &vb, cfg.lr);
                }
                // lint:allow(P1) backward produces gradients of the node's own parameter kind
                _ => unreachable!("gradient kind matches node kind"),
            }
        }
    }

    /// Runs one full epoch over `data` (shuffled with `rng`), returning the
    /// epoch statistics. Each epoch charges the `train/*` metrics and emits
    /// a `train/epoch` event (loss, accuracy, throughput) when an obs sink
    /// is installed.
    pub fn epoch(
        &mut self,
        net: &mut Graph,
        data: &[LabeledImage],
        rng: &mut StdRng,
    ) -> EpochStats {
        let _span = snapea_obs::span!("train/epoch");
        let started = snapea_obs::Stopwatch::start();
        let mut order: Vec<usize> = (0..data.len()).collect();
        order.shuffle(rng);
        let mut total_loss = 0.0f64;
        let mut total_correct = 0.0f64;
        let mut seen = 0usize;
        for chunk in order.chunks(self.config.batch_size) {
            let items: Vec<&LabeledImage> = chunk.iter().map(|&i| &data[i]).collect();
            let batch = crate::data::SynthShapes::batch_refs(&items);
            let labels: Vec<usize> = items.iter().map(|d| d.label).collect();
            let (loss, acc) = self.step(net, &batch, &labels);
            total_loss += loss as f64 * labels.len() as f64;
            total_correct += acc * labels.len() as f64;
            seen += labels.len();
        }
        let stats = EpochStats {
            loss: total_loss / seen.max(1) as f64,
            accuracy: total_correct / seen.max(1) as f64,
        };
        snapea_obs::counter("train/epochs").inc();
        snapea_obs::counter("train/images").add(seen as u64);
        snapea_obs::log_histogram("train/epoch_ms").record(started.elapsed_ms());
        if snapea_obs::enabled() {
            let secs = started.elapsed_secs();
            snapea_obs::event!(
                "train/epoch",
                epoch = snapea_obs::counter("train/epochs").get(),
                loss = stats.loss,
                accuracy = stats.accuracy,
                images = seen as u64,
                ms = secs * 1e3,
                images_per_s = if secs > 0.0 { seen as f64 / secs } else { 0.0 },
            );
        }
        stats
    }
}

/// Evaluates classification accuracy of `net` over a dataset, batching for
/// throughput.
pub fn evaluate(net: &Graph, data: &[LabeledImage], batch_size: usize) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for chunk in data.chunks(batch_size.max(1)) {
        let refs: Vec<&LabeledImage> = chunk.iter().collect();
        let batch = crate::data::SynthShapes::batch_refs(&refs);
        let logits = net.logits(&batch);
        let preds = crate::loss::argmax_rows(&logits);
        correct += preds
            .iter()
            .zip(chunk.iter())
            .filter(|(p, d)| **p == d.label)
            .count();
    }
    correct as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SynthShapes;
    use crate::GraphBuilder;
    use snapea_tensor::im2col::ConvGeom;
    use snapea_tensor::init;

    fn tiny_net(classes: usize, seed: u64) -> Graph {
        let mut rng = init::rng(seed);
        let mut b = GraphBuilder::new();
        let x = b.input();
        let c1 = b.conv("c1", x, 3, 8, ConvGeom::square(3, 1, 1), &mut rng);
        let r1 = b.relu("r1", c1);
        let p1 = b.max_pool("p1", r1, 2, 2);
        let c2 = b.conv("c2", p1, 8, 8, ConvGeom::square(3, 1, 1), &mut rng);
        let r2 = b.relu("r2", c2);
        let p2 = b.max_pool("p2", r2, 2, 2);
        let f = b.flatten("f", p2);
        let _ = b.linear("fc", f, 8 * 4 * 4, classes, &mut rng);
        b.build()
    }

    #[test]
    fn training_reduces_loss_and_beats_chance() {
        let gen = SynthShapes::new(16, 4);
        let train = gen.generate(96, 10);
        let test = gen.generate(48, 11);
        let mut net = tiny_net(4, 1);
        let mut trainer = Trainer::new(TrainConfig {
            lr: 0.03,
            ..TrainConfig::default()
        });
        let mut rng = init::rng(99);
        let first = trainer.epoch(&mut net, &train, &mut rng);
        let mut last = first;
        for _ in 0..11 {
            last = trainer.epoch(&mut net, &train, &mut rng);
        }
        assert!(
            last.loss < first.loss,
            "loss did not decrease: {} -> {}",
            first.loss,
            last.loss
        );
        let acc = evaluate(&net, &test, 16);
        assert!(acc > 0.4, "test accuracy {acc} not above chance (0.25)");
    }

    #[test]
    fn step_is_deterministic_given_seed() {
        let gen = SynthShapes::new(16, 4);
        let data = gen.generate(8, 5);
        let batch = SynthShapes::batch(&data);
        let labels: Vec<usize> = data.iter().map(|d| d.label).collect();
        let mut n1 = tiny_net(4, 2);
        let mut n2 = tiny_net(4, 2);
        let mut t1 = Trainer::new(TrainConfig::default());
        let mut t2 = Trainer::new(TrainConfig::default());
        let (l1, _) = t1.step(&mut n1, &batch, &labels);
        let (l2, _) = t2.step(&mut n2, &batch, &labels);
        assert_eq!(l1, l2);
        let x = Tensor4::full(snapea_tensor::Shape4::new(1, 3, 16, 16), 0.1);
        assert_eq!(n1.logits(&x), n2.logits(&x));
    }
}
