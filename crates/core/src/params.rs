//! Speculation parameters `(Th, N)` — the paper's Section IV-A.

use serde::{Deserialize, Serialize};
use snapea_nn::graph::NodeId;
use std::collections::BTreeMap;

/// Speculation parameters of one kernel: a threshold `Th` and the number of
/// weight groups `N` whose representatives form the speculative set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelParams {
    /// Threshold the partial sum is compared against after the speculative
    /// MACs.
    pub threshold: f32,
    /// Number of groups the ascending-sorted weights are partitioned into;
    /// one largest-magnitude representative per group forms the speculative
    /// set, so this is also the number of speculative MAC operations.
    pub groups: usize,
}

impl KernelParams {
    /// Creates kernel parameters.
    pub fn new(threshold: f32, groups: usize) -> Self {
        Self { threshold, groups }
    }
}

/// Operating mode of a single kernel (output channel). The paper's kernel
/// profiling includes the exact mode as a per-kernel fallback candidate, so a
/// predictive layer may mix speculating and exact kernels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KernelMode {
    /// Sign-based reordering + sign-bit monitoring only.
    Exact,
    /// `(Th, N)` speculation.
    Speculate(KernelParams),
}

impl KernelMode {
    /// Convenience constructor for a speculating kernel.
    pub fn spec(threshold: f32, groups: usize) -> Self {
        KernelMode::Speculate(KernelParams::new(threshold, groups))
    }

    /// Whether the kernel speculates.
    pub fn is_speculative(&self) -> bool {
        matches!(self, KernelMode::Speculate(_))
    }
}

/// Operating mode of one convolution layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerParams {
    /// Exact mode for every kernel. No accuracy impact.
    Exact,
    /// Per-kernel modes; `kernels[k]` is the mode of output channel `k`.
    Predictive(Vec<KernelMode>),
}

impl LayerParams {
    /// Whether any kernel of the layer speculates.
    pub fn is_predictive(&self) -> bool {
        match self {
            LayerParams::Exact => false,
            LayerParams::Predictive(ks) => ks.iter().any(KernelMode::is_speculative),
        }
    }

    /// Uniform predictive parameters for a layer of `kernels` kernels.
    pub fn uniform(kernels: usize, params: KernelParams) -> Self {
        LayerParams::Predictive(vec![KernelMode::Speculate(params); kernels])
    }
}

/// Speculation parameters for an entire network: one [`LayerParams`] per
/// convolution node. Layers not present run in exact mode by default when
/// executed through [`crate::spec_net::SpecNet`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkParams {
    layers: BTreeMap<NodeId, LayerParams>,
}

impl NetworkParams {
    /// Creates an empty parameter set (every layer exact by default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the parameters of one conv layer.
    pub fn set(&mut self, layer: NodeId, params: LayerParams) {
        self.layers.insert(layer, params);
    }

    /// The parameters of one conv layer, if set.
    pub fn get(&self, layer: NodeId) -> Option<&LayerParams> {
        self.layers.get(&layer)
    }

    /// Iterates `(layer, params)` pairs in layer order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &LayerParams)> {
        self.layers.iter().map(|(k, v)| (*k, v))
    }

    /// Number of layers with explicit parameters.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether no layer has explicit parameters.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Number of layers currently in predictive mode.
    pub fn predictive_layer_count(&self) -> usize {
        self.layers.values().filter(|p| p.is_predictive()).count()
    }

    /// Ids of layers currently in predictive mode.
    pub fn predictive_layers(&self) -> Vec<NodeId> {
        self.layers
            .iter()
            .filter(|(_, p)| p.is_predictive())
            .map(|(id, _)| *id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_params_bookkeeping() {
        let mut p = NetworkParams::new();
        assert!(p.is_empty());
        p.set(3, LayerParams::Exact);
        p.set(7, LayerParams::uniform(4, KernelParams::new(-0.5, 2)));
        assert_eq!(p.len(), 2);
        assert_eq!(p.predictive_layer_count(), 1);
        assert_eq!(p.predictive_layers(), vec![7]);
        assert!(p.get(3).is_some());
        assert!(p.get(4).is_none());
        match p.get(7) {
            Some(LayerParams::Predictive(ks)) => {
                assert_eq!(ks.len(), 4);
                assert!(ks[0].is_speculative());
                match ks[0] {
                    KernelMode::Speculate(kp) => assert_eq!(kp.groups, 2),
                    KernelMode::Exact => panic!("expected speculation"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn all_exact_kernels_is_not_predictive() {
        let p = LayerParams::Predictive(vec![KernelMode::Exact; 3]);
        assert!(!p.is_predictive());
        let q = LayerParams::Predictive(vec![
            KernelMode::Exact,
            KernelMode::spec(0.0, 1),
            KernelMode::Exact,
        ]);
        assert!(q.is_predictive());
        assert!(!LayerParams::Exact.is_predictive());
    }

    #[test]
    fn serde_round_trip() {
        let mut p = NetworkParams::new();
        p.set(1, LayerParams::uniform(2, KernelParams::new(0.25, 8)));
        p.set(
            2,
            LayerParams::Predictive(vec![KernelMode::Exact, KernelMode::spec(-1.0, 4)]),
        );
        let json = serde_json::to_string(&p).unwrap();
        let back: NetworkParams = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
