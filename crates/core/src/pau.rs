//! Predictive Activation Unit (PAU) — behavioural model of the paper's
//! Figure 7 hardware.
//!
//! One PAU sits on every compute lane. The lane's controller walks the
//! reordered weights; before issuing the MAC at position `p` it probes the
//! PAU with the current partial sum. The PAU asserts `Terminate` when:
//!
//! * **predictive check** — `p` equals the speculative-set length and the
//!   partial sum is below the threshold `Th` (the `Predict` signal is high
//!   for exactly this one probe), or
//! * **sign check** — `p` lies in the trailing negative-weight region and
//!   the partial sum's sign bit is set (a single AND gate in hardware).
//!
//! The same struct drives both the software executor ([`crate::exec`]) and
//! the cycle-level simulator, so software decisions and simulated-hardware
//! decisions agree by construction.

use crate::params::KernelParams;
use crate::reorder::ReorderedKernel;
use serde::{Deserialize, Serialize};

/// Why a window terminated early.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TerminationKind {
    /// Speculative (predictive-mode) termination: partial sum fell below the
    /// threshold after the speculative MACs. May mispredict.
    Predicted,
    /// Exact sign-check termination in the negative-weight region. Never
    /// changes the post-ReLU output.
    SignCheck,
}

/// PAU probe outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PauAction {
    /// Proceed with the next MAC.
    Continue,
    /// Terminate the window now (before the probed MAC executes).
    Terminate(TerminationKind),
}

/// Configuration of one lane's PAU for one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pau {
    /// Threshold compared against the partial sum when `Predict` is high.
    /// Ignored when `spec_len == 0`.
    threshold: f32,
    /// Number of speculative MACs before the predictive check (0 disables
    /// prediction — exact mode).
    spec_len: usize,
    /// Position at which the negative-weight region begins; sign checks run
    /// from here on.
    neg_start: usize,
}

impl Pau {
    /// Exact-mode PAU for a kernel reordered with
    /// [`crate::reorder::sign_reorder`].
    pub fn exact(reordered: &ReorderedKernel) -> Self {
        Self {
            threshold: 0.0,
            spec_len: 0,
            neg_start: reordered.neg_start(),
        }
    }

    /// Predictive-mode PAU for a kernel reordered with
    /// [`crate::reorder::predictive_reorder`] under `params`.
    ///
    /// # Panics
    ///
    /// Panics if `reordered.spec_len() != params.groups`.
    pub fn predictive(reordered: &ReorderedKernel, params: KernelParams) -> Self {
        assert_eq!(
            reordered.spec_len(),
            params.groups,
            "reordering and parameters disagree on the speculative set size"
        );
        Self {
            threshold: params.threshold,
            spec_len: params.groups,
            neg_start: reordered.neg_start(),
        }
    }

    /// Reassembles a PAU from stored fields (the compiled-model artifact
    /// loader's entry point). Consistency with the kernel it will drive
    /// (`spec_len == kernel.spec_len()`, `neg_start == kernel.neg_start()`)
    /// is the caller's responsibility — the artifact loader cross-checks
    /// both against the reassembled [`ReorderedKernel`].
    pub fn from_parts(threshold: f32, spec_len: usize, neg_start: usize) -> Self {
        Self {
            threshold,
            spec_len,
            neg_start,
        }
    }

    /// The predictive threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// The speculative-set length (0 in exact mode).
    pub fn spec_len(&self) -> usize {
        self.spec_len
    }

    /// Start of the sign-checked negative region.
    pub fn neg_start(&self) -> usize {
        self.neg_start
    }

    /// Whether this PAU speculates.
    pub fn is_predictive(&self) -> bool {
        self.spec_len > 0
    }

    /// Probes the PAU before executing the MAC at position `pos`, with the
    /// partial sum accumulated over positions `0..pos`.
    #[inline]
    pub fn probe(&self, pos: usize, partial_sum: f32) -> PauAction {
        if self.spec_len > 0 && pos == self.spec_len && partial_sum < self.threshold {
            return PauAction::Terminate(TerminationKind::Predicted);
        }
        if pos >= self.neg_start && partial_sum < 0.0 {
            return PauAction::Terminate(TerminationKind::SignCheck);
        }
        PauAction::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reorder::{predictive_reorder, sign_reorder};

    #[test]
    fn exact_pau_only_sign_checks_in_negative_region() {
        let w = [0.5, -1.0, 0.25, -0.5];
        let r = sign_reorder(&w);
        let pau = Pau::exact(&r);
        assert!(!pau.is_predictive());
        // Positive region: never terminates, even on a negative partial sum
        // (a negative bias, say).
        assert_eq!(pau.probe(0, -5.0), PauAction::Continue);
        assert_eq!(pau.probe(1, -5.0), PauAction::Continue);
        // Negative region: terminates exactly when the sign bit is set.
        assert_eq!(pau.probe(2, 1.0), PauAction::Continue);
        assert_eq!(
            pau.probe(2, -0.01),
            PauAction::Terminate(TerminationKind::SignCheck)
        );
        assert_eq!(
            pau.probe(3, -2.0),
            PauAction::Terminate(TerminationKind::SignCheck)
        );
    }

    #[test]
    fn predictive_pau_checks_threshold_once() {
        let w = [0.5, -1.0, 0.25, -0.5, 0.1, -0.1];
        let r = predictive_reorder(&w, 2);
        let pau = Pau::predictive(&r, KernelParams::new(0.3, 2));
        assert!(pau.is_predictive());
        // Before the speculative set completes: no predictive check.
        assert_eq!(pau.probe(1, -10.0), PauAction::Continue);
        // At the boundary: below threshold → predicted negative.
        assert_eq!(
            pau.probe(2, 0.29),
            PauAction::Terminate(TerminationKind::Predicted)
        );
        // At or above threshold → continue.
        assert_eq!(pau.probe(2, 0.3), PauAction::Continue);
        assert_eq!(pau.probe(2, 5.0), PauAction::Continue);
    }

    #[test]
    fn predictive_pau_falls_back_to_sign_checks() {
        let w = [0.5, -1.0, 0.25, -0.5, 0.1, -0.1];
        let r = predictive_reorder(&w, 2);
        let pau = Pau::predictive(&r, KernelParams::new(-0.5, 2));
        // Speculation not triggered (partial above Th); in the negative
        // region the sign check still applies.
        assert_eq!(pau.probe(2, 0.0), PauAction::Continue);
        let ns = r.neg_start();
        assert_eq!(
            pau.probe(ns, -0.1),
            PauAction::Terminate(TerminationKind::SignCheck)
        );
        assert_eq!(pau.probe(ns, 0.1), PauAction::Continue);
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn predictive_pau_validates_spec_len() {
        let w = [0.5, -1.0, 0.25];
        let r = predictive_reorder(&w, 2);
        let _ = Pau::predictive(&r, KernelParams::new(0.0, 3));
    }
}
