//! Network-level SnaPEA execution: runs a [`snapea_nn::Graph`] with selected
//! convolution layers executed through the early-terminating executor.
//!
//! This is the `Simulate(CNN, D, …)` primitive of the paper's Algorithm 1:
//! it yields both the classification accuracy under a given parameter
//! assignment and the per-layer operation counts.

use crate::exec::{execute_conv, execute_conv_stats, LayerConfig, LayerProfile, PredictionStats};
use crate::params::{LayerParams, NetworkParams};
use snapea_nn::data::LabeledImage;
use snapea_nn::graph::{Graph, NodeId, Op};
use snapea_nn::loss::argmax_rows;
use snapea_tensor::Tensor4;
use std::collections::BTreeMap;

/// A network bound to a set of speculation parameters.
///
/// Layers with [`LayerParams::Predictive`] run through the SnaPEA executor
/// (their outputs may change); all other conv layers take the dense path,
/// which produces post-ReLU-identical outputs to exact-mode SnaPEA and is
/// much faster in software.
#[derive(Debug, Clone)]
pub struct SpecNet<'a> {
    net: &'a Graph,
    params: &'a NetworkParams,
}

impl<'a> SpecNet<'a> {
    /// Binds `net` to `params`.
    pub fn new(net: &'a Graph, params: &'a NetworkParams) -> Self {
        Self { net, params }
    }

    /// The underlying network.
    pub fn net(&self) -> &Graph {
        self.net
    }

    /// The bound parameters.
    pub fn params(&self) -> &NetworkParams {
        self.params
    }

    fn configs(&self) -> BTreeMap<NodeId, LayerConfig> {
        let mut map = BTreeMap::new();
        for (id, p) in self.params.iter() {
            if let LayerParams::Predictive(_) = p {
                if let Op::Conv(conv) = &self.net.node(id).op {
                    map.insert(id, LayerConfig::from_params(conv, p));
                }
            }
        }
        map
    }

    /// Forward pass with speculation applied; returns all activations.
    pub fn forward(&self, input: &Tensor4) -> Vec<Tensor4> {
        let configs = self.configs();
        self.net.forward_with(input, &mut |id, conv, x| {
            configs
                .get(&id)
                .map(|cfg| execute_conv(conv, x, cfg).output)
        })
    }

    /// Forward pass reusing `cached` activations of an unspeculated forward,
    /// recomputing only from `root` on (the Local-Optimization fast path).
    pub fn forward_from(&self, input: &Tensor4, cached: &[Tensor4], root: NodeId) -> Vec<Tensor4> {
        let configs = self.configs();
        self.net
            .forward_from(input, cached, root, &mut |id, conv, x| {
                configs
                    .get(&id)
                    .map(|cfg| execute_conv(conv, x, cfg).output)
            })
    }

    /// Classification accuracy over labelled images (batched as one tensor).
    pub fn accuracy(&self, images: &[LabeledImage]) -> f64 {
        if images.is_empty() {
            return 0.0;
        }
        let refs: Vec<&LabeledImage> = images.iter().collect();
        let batch = snapea_nn::data::SynthShapes::batch_refs(&refs);
        let acts = self.forward(&batch);
        // lint:allow(P1) forward returns one activation per node and the graph is non-empty by construction
        let logits = acts.last().expect("non-empty graph").to_matrix();
        let preds = argmax_rows(&logits);
        preds
            .iter()
            .zip(images)
            .filter(|(p, d)| **p == d.label)
            .count() as f64
            / images.len() as f64
    }
}

/// Per-layer profile of a network execution: op counts for **every** conv
/// layer under its configured mode (layers absent from `params` run exact).
/// This is the workload description the cycle-level simulator consumes.
#[derive(Debug, Clone)]
pub struct NetworkProfile {
    /// `(conv node id, layer name, profile)` per conv layer, topological
    /// order.
    pub layers: Vec<(NodeId, String, LayerProfile)>,
    /// Aggregated prediction statistics over all predictive layers.
    pub stats: PredictionStats,
}

impl NetworkProfile {
    /// Total MACs executed across all conv layers.
    pub fn total_ops(&self) -> u64 {
        self.layers.iter().map(|(_, _, p)| p.total_ops()).sum()
    }

    /// Total MACs of the unaltered network's conv layers.
    pub fn full_macs(&self) -> u64 {
        self.layers.iter().map(|(_, _, p)| p.full_macs()).sum()
    }

    /// Overall fraction of conv MACs eliminated.
    pub fn savings(&self) -> f64 {
        let full = self.full_macs();
        if full == 0 {
            return 0.0;
        }
        1.0 - self.total_ops() as f64 / full as f64
    }

    /// Profile of one layer by node id.
    pub fn layer(&self, id: NodeId) -> Option<&LayerProfile> {
        self.layers
            .iter()
            .find(|(lid, _, _)| *lid == id)
            .map(|(_, _, p)| p)
    }
}

/// Profiles every conv layer of `net` under `params` on a batch: runs the
/// real dataflow (speculative layers alter downstream activations) and
/// records per-window op counts per layer. With `collect_stats`, prediction
/// quality is also accounted (costs a full dot product per window).
pub fn profile_network(
    net: &Graph,
    params: &NetworkParams,
    batch: &Tensor4,
    collect_stats: bool,
) -> NetworkProfile {
    profile_network_full(net, params, batch, collect_stats, false)
}

/// Like [`profile_network`] but optionally profiling fully-connected layers
/// too, executed as 1×1 convolutions on the same hardware (paper §V). FC
/// layers feeding a ReLU run exact-mode SnaPEA; terminal classifiers (no
/// downstream ReLU) run dense. The paper reports FC layers account for ≈1%
/// of CNN computation, which this lets the simulator verify.
pub fn profile_network_full(
    net: &Graph,
    params: &NetworkParams,
    batch: &Tensor4,
    collect_stats: bool,
    include_fc: bool,
) -> NetworkProfile {
    let mut layers = Vec::new();
    let mut stats = PredictionStats::default();
    let acts = net.forward_with(batch, &mut |id, conv, x| {
        // Early activation is only sound when every consumer is a ReLU
        // (paper §II): other convs run dense and count full MACs.
        if !net.feeds_only_relu(id) {
            let out_shape = conv.out_shape(x.shape());
            layers.push((
                id,
                net.node(id).name.clone(),
                crate::exec::LayerProfile::dense(
                    out_shape.n,
                    conv.c_out(),
                    out_shape.plane_len(),
                    conv.window_len(),
                ),
            ));
            return Some(conv.forward(x));
        }
        let p = params.get(id).unwrap_or(&LayerParams::Exact);
        let cfg = LayerConfig::from_params(conv, p);
        let r = if collect_stats && cfg.is_predictive() {
            execute_conv_stats(conv, x, &cfg)
        } else {
            execute_conv(conv, x, &cfg)
        };
        layers.push((id, net.node(id).name.clone(), r.profile));
        stats.merge(&r.stats);
        Some(r.output)
    });
    if include_fc {
        for id in net.linear_ids() {
            let Op::Linear(lin) = &net.node(id).op else {
                // lint:allow(P1) linear_ids filters on Op::Linear, so this arm cannot be reached
                unreachable!("linear_ids returns linear nodes");
            };
            let as_conv = lin.to_conv();
            let input = &acts[net.node(id).inputs[0]];
            let profile = if net.feeds_only_relu(id) {
                execute_conv(&as_conv, input, &LayerConfig::exact(&as_conv)).profile
            } else {
                // Terminal classifier: no ReLU downstream, early activation
                // is unsound — dense execution.
                crate::exec::LayerProfile::dense(
                    input.shape().n,
                    as_conv.c_out(),
                    1,
                    as_conv.window_len(),
                )
            };
            layers.push((id, net.node(id).name.clone(), profile));
        }
        layers.sort_by_key(|(id, _, _)| *id);
    }
    NetworkProfile { layers, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::KernelParams;
    use snapea_nn::data::SynthShapes;
    use snapea_nn::zoo;

    #[test]
    fn exact_params_do_not_change_accuracy() {
        let net = zoo::mini_squeezenet(4);
        let data = SynthShapes::new(zoo::INPUT_SIZE, 4).generate(12, 21);
        let exact = NetworkParams::new();
        let spec = SpecNet::new(&net, &exact);
        let base = {
            let refs: Vec<&LabeledImage> = data.iter().collect();
            let batch = SynthShapes::batch_refs(&refs);
            let logits = net.logits(&batch);
            let preds = argmax_rows(&logits);
            preds
                .iter()
                .zip(&data)
                .filter(|(p, d)| **p == d.label)
                .count() as f64
                / data.len() as f64
        };
        assert_eq!(spec.accuracy(&data), base);
    }

    #[test]
    fn aggressive_speculation_degrades_outputs() {
        let net = zoo::mini_alexnet(4);
        let data = SynthShapes::new(zoo::INPUT_SIZE, 4).generate(8, 31);
        let batch = SynthShapes::batch(&data);
        let mut params = NetworkParams::new();
        for id in net.conv_ids() {
            if let Op::Conv(c) = &net.node(id).op {
                params.set(
                    id,
                    LayerParams::uniform(c.c_out(), KernelParams::new(f32::INFINITY, 1)),
                );
            }
        }
        let spec = SpecNet::new(&net, &params);
        let acts = spec.forward(&batch);
        // Every conv output is squashed to zero.
        let first_conv = net.conv_ids()[0];
        assert!(acts[first_conv].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn profile_counts_all_conv_layers() {
        let net = zoo::mini_alexnet(4);
        let data = SynthShapes::new(zoo::INPUT_SIZE, 4).generate(4, 41);
        let batch = SynthShapes::batch(&data);
        let params = NetworkParams::new();
        let prof = profile_network(&net, &params, &batch, false);
        assert_eq!(prof.layers.len(), net.conv_ids().len());
        assert!(prof.total_ops() > 0);
        assert!(prof.total_ops() <= prof.full_macs());
        assert!(prof.savings() > 0.0, "exact mode should save some MACs");
    }

    #[test]
    fn convs_without_downstream_relu_run_dense() {
        // A conv feeding the graph output directly (no ReLU) must be
        // profiled dense and produce its true (unterminated) outputs.
        use snapea_nn::GraphBuilder;
        use snapea_tensor::im2col::ConvGeom;
        use snapea_tensor::{init, Shape4};
        let mut rng = init::rng(77);
        let mut b = GraphBuilder::new();
        let x = b.input();
        let c = b.conv("naked", x, 2, 3, ConvGeom::square(3, 1, 1), &mut rng);
        let _ = c;
        let net = b.build();
        let batch = init::uniform4(Shape4::new(1, 2, 6, 6), 1.0, &mut init::rng(78)).map(f32::abs);
        let prof = profile_network(&net, &NetworkParams::new(), &batch, false);
        let lp = prof.layer(1).expect("conv profiled");
        assert_eq!(lp.total_ops(), lp.full_macs(), "must run dense");
        // Raw (possibly negative) outputs must be preserved.
        let empty = NetworkParams::new();
        let spec = SpecNet::new(&net, &empty);
        let acts = spec.forward(&batch);
        let dense = net.forward(&batch);
        assert_eq!(acts[1], dense[1]);
        assert!(dense[1].negative_fraction() > 0.0, "test needs negatives");
    }

    #[test]
    fn fc_layers_account_for_a_tiny_share_of_macs() {
        // Paper §V: FC computation is ≈1% of the total in modern CNNs; the
        // mini GoogLeNet/SqueezeNet preserve that property.
        let data = SynthShapes::new(zoo::INPUT_SIZE, 4).generate(2, 61);
        let batch = SynthShapes::batch(&data);
        for build in [
            zoo::mini_googlenet as fn(usize) -> crate::spec_net::Graph,
            zoo::mini_squeezenet,
        ] {
            let net = build(4);
            let with_fc = profile_network_full(&net, &NetworkParams::new(), &batch, false, true);
            let conv_only = profile_network(&net, &NetworkParams::new(), &batch, false);
            assert_eq!(
                with_fc.layers.len(),
                net.conv_ids().len() + net.linear_ids().len()
            );
            let fc_macs = with_fc.full_macs() - conv_only.full_macs();
            let share = fc_macs as f64 / with_fc.full_macs() as f64;
            assert!(share < 0.05, "FC share {share} unexpectedly large");
        }
    }

    #[test]
    fn fc_exact_execution_saves_ops_when_relu_follows() {
        // AlexNet's fc6/fc7 feed ReLUs → exact SnaPEA applies; fc8 is the
        // classifier → dense.
        let net = zoo::mini_alexnet(4);
        let data = SynthShapes::new(zoo::INPUT_SIZE, 4).generate(2, 62);
        let batch = SynthShapes::batch(&data);
        let prof = profile_network_full(&net, &NetworkParams::new(), &batch, false, true);
        let fc_ids = net.linear_ids();
        let fc6 = prof.layer(fc_ids[0]).expect("fc6 profiled");
        assert!(
            fc6.total_ops() < fc6.full_macs(),
            "fc6 should terminate early"
        );
        let fc8 = prof.layer(fc_ids[2]).expect("fc8 profiled");
        assert_eq!(fc8.total_ops(), fc8.full_macs(), "classifier runs dense");
    }

    #[test]
    fn forward_from_agrees_with_full_forward() {
        let net = zoo::mini_squeezenet(4);
        let data = SynthShapes::new(zoo::INPUT_SIZE, 4).generate(4, 51);
        let batch = SynthShapes::batch(&data);
        let cached = net.forward(&batch);
        let conv = net.conv_ids()[3];
        let mut params = NetworkParams::new();
        if let Op::Conv(c) = &net.node(conv).op {
            params.set(
                conv,
                LayerParams::uniform(c.c_out(), KernelParams::new(0.1, 2)),
            );
        }
        let spec = SpecNet::new(&net, &params);
        let fast = spec.forward_from(&batch, &cached, conv);
        let slow = spec.forward(&batch);
        assert_eq!(fast.last(), slow.last());
    }
}
