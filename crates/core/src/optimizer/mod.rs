//! The multi-variable constrained optimizer of the paper's Algorithm 1.
//!
//! Finds per-kernel speculation parameters `(Th, N)` minimising total MAC
//! operations subject to `Accuracy_CNN − Accuracy_SnaPEA ≤ ε` (Eq. 2), in
//! three passes:
//!
//! 1. **Kernel Profiling** ([`profiling::profile_layer_kernels`]) — per
//!    kernel in isolation, grid over `(Th, N)`, keep acceptable candidates
//!    sorted by op count.
//! 2. **Local Optimization** — per layer in isolation, form `T`
//!    configurations (the `t`-th uses every kernel's `t`-th cheapest
//!    candidate), measure real network accuracy with only that layer
//!    speculating, keep configurations within `ε`.
//! 3. **Global Optimization** — start every layer at its cheapest acceptable
//!    configuration; while the combined accuracy loss exceeds `ε`, move the
//!    layer/configuration with the best merit `−Δerr/Δop` one step more
//!    conservative (the paper's `ADJUSTPARAM`), re-simulating after each
//!    adjustment.
//!
//! The optimizer runs **offline** — exactly as in the paper, it adds no
//! runtime cost to inference.

pub mod profiling;

use crate::params::{KernelMode, LayerParams, NetworkParams};
use crate::spec_net::{profile_network, SpecNet};
use profiling::{profile_layer_kernels, KernelTable};
use snapea_nn::data::{LabeledImage, SynthShapes};
use snapea_nn::graph::{Graph, NodeId, Op};
use snapea_nn::loss::argmax_rows;
use snapea_tensor::Tensor4;
use std::collections::BTreeMap;

/// Hyper-parameters of the optimizer.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizerConfig {
    /// Acceptable absolute accuracy loss ε (the paper's headline setting is
    /// 0.03).
    pub epsilon: f64,
    /// Grid of group counts `N` profiled per kernel.
    pub group_candidates: Vec<usize>,
    /// Quantiles of the negative-window speculative partial-sum distribution
    /// used as threshold candidates.
    pub threshold_quantiles: Vec<f64>,
    /// Number of per-layer configurations `T` evaluated by the Local
    /// Optimization pass.
    pub local_configs: usize,
    /// Scale applied to ε to form the Kernel Profiling surrogate budget.
    pub surrogate_scale: f64,
    /// Safety cap on Global Optimization iterations.
    pub max_global_iters: usize,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.03,
            group_candidates: vec![1, 2, 4, 8],
            threshold_quantiles: vec![0.5, 0.75, 0.9, 0.97, 1.0],
            local_configs: 5,
            surrogate_scale: 8.0,
            max_global_iters: 512,
        }
    }
}

impl OptimizerConfig {
    /// Config with a different ε, other settings default.
    pub fn with_epsilon(epsilon: f64) -> Self {
        Self {
            epsilon,
            ..Self::default()
        }
    }
}

/// One acceptable configuration of a layer (an entry of the paper's
/// `ParamL[l]`).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerOption {
    /// The per-kernel modes.
    pub params: LayerParams,
    /// Profiled op count of the layer under this configuration.
    pub ops: u64,
    /// Measured accuracy loss with only this layer speculating.
    pub err: f64,
}

/// Final decision for one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerDecision {
    /// Conv node id.
    pub layer: NodeId,
    /// Layer name.
    pub name: String,
    /// Whether the layer ended up speculating.
    pub predictive: bool,
    /// Ops under the final configuration (profiled on the optimization set).
    pub ops: u64,
    /// Ops under pure exact mode (same set).
    pub exact_ops: u64,
    /// Full dense MACs (same set).
    pub full_macs: u64,
}

/// Result of the optimization.
#[derive(Debug, Clone)]
pub struct OptimizeOutcome {
    /// The chosen speculation parameters.
    pub params: NetworkParams,
    /// Accuracy of the unaltered network on the optimization set.
    pub baseline_accuracy: f64,
    /// Accuracy of the speculating network on the optimization set.
    pub final_accuracy: f64,
    /// Total conv MACs in pure exact mode.
    pub exact_ops: u64,
    /// Total conv MACs under the final parameters.
    pub final_ops: u64,
    /// Total conv MACs of the unaltered network.
    pub full_macs: u64,
    /// Per-layer breakdown.
    pub per_layer: Vec<LayerDecision>,
    /// Global-pass iterations used.
    pub global_iterations: usize,
}

impl OptimizeOutcome {
    /// Accuracy loss `baseline − final` (clamped at 0 from below for
    /// reporting).
    pub fn accuracy_loss(&self) -> f64 {
        self.baseline_accuracy - self.final_accuracy
    }

    /// Fraction of conv layers operating in predictive mode (paper
    /// Table IV's first column).
    pub fn predictive_layer_fraction(&self) -> f64 {
        if self.per_layer.is_empty() {
            return 0.0;
        }
        self.per_layer.iter().filter(|d| d.predictive).count() as f64 / self.per_layer.len() as f64
    }
}

/// The Algorithm-1 optimizer bound to a network and an optimization dataset.
#[derive(Debug)]
pub struct Optimizer<'a> {
    net: &'a Graph,
    data: &'a [LabeledImage],
    cfg: OptimizerConfig,
}

impl<'a> Optimizer<'a> {
    /// Binds the optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn new(net: &'a Graph, data: &'a [LabeledImage], cfg: OptimizerConfig) -> Self {
        assert!(!data.is_empty(), "optimization dataset must be non-empty");
        Self { net, data, cfg }
    }

    fn accuracy_from_acts(&self, acts: &[Tensor4]) -> f64 {
        // lint:allow(P1) forward returns one activation per node and the graph is non-empty by construction
        let logits = acts.last().expect("non-empty graph").to_matrix();
        let preds = argmax_rows(&logits);
        preds
            .iter()
            .zip(self.data)
            .filter(|(p, d)| **p == d.label)
            .count() as f64
            / self.data.len() as f64
    }

    /// Runs all three passes and returns the outcome.
    pub fn run(&self) -> OptimizeOutcome {
        let _run_span = snapea_obs::span!("optimizer/run");
        let refs: Vec<&LabeledImage> = self.data.iter().collect();
        let batch = SynthShapes::batch_refs(&refs);
        let cached = self.net.forward(&batch);
        let baseline_accuracy = self.accuracy_from_acts(&cached);

        // Eligible layers: conv nodes whose output feeds only ReLU.
        let eligible: Vec<NodeId> = self
            .net
            .conv_ids()
            .into_iter()
            .filter(|&id| self.net.feeds_only_relu(id))
            .collect();

        // Pass 1: kernel profiling.
        let budget = self.cfg.epsilon * self.cfg.surrogate_scale;
        let mut tables: BTreeMap<NodeId, Vec<KernelTable>> = BTreeMap::new();
        {
            let _span = snapea_obs::span!("optimizer/profile");
            for &l in &eligible {
                let Op::Conv(conv) = &self.net.node(l).op else {
                    // lint:allow(P1) eligible_ids filters on Op::Conv, so this arm cannot be reached
                    unreachable!("eligible ids are conv nodes");
                };
                let input = &cached[self.net.node(l).inputs[0]];
                let layer_tables = profile_layer_kernels(
                    conv,
                    input,
                    &self.cfg.group_candidates,
                    &self.cfg.threshold_quantiles,
                    budget,
                );
                snapea_obs::counter("optimizer/kernels_profiled").add(layer_tables.len() as u64);
                if snapea_obs::enabled() {
                    let candidates: u64 = layer_tables.iter().map(|t| t.len() as u64).sum();
                    snapea_obs::event!(
                        "optimizer/profile",
                        layer = self.net.node(l).name.clone(),
                        kernels = layer_tables.len() as u64,
                        candidates = candidates,
                    );
                }
                tables.insert(l, layer_tables);
            }
        }

        // Pass 2: local optimization.
        let mut options: BTreeMap<NodeId, Vec<LayerOption>> = BTreeMap::new();
        {
            let _span = snapea_obs::span!("optimizer/local");
            for &l in &eligible {
                let probes_before = snapea_obs::counter("optimizer/probes").get();
                let opts = self.local_options(l, &tables[&l], &batch, &cached, baseline_accuracy);
                if snapea_obs::enabled() {
                    snapea_obs::event!(
                        "optimizer/local",
                        layer = self.net.node(l).name.clone(),
                        options = opts.len() as u64,
                        probes = snapea_obs::counter("optimizer/probes").get() - probes_before,
                    );
                }
                options.insert(l, opts);
            }
        }

        // Pass 3: global optimization.
        let (current, global_iterations) = {
            let _span = snapea_obs::span!("optimizer/global");
            self.global_pass(&options, &batch, baseline_accuracy)
        };

        // Assemble final parameters.
        let mut params = NetworkParams::new();
        for (&l, opts) in &options {
            params.set(l, opts[current[&l]].params.clone());
        }

        // Final reporting profiles.
        let spec = SpecNet::new(self.net, &params);
        let final_acts = spec.forward(&batch);
        let final_accuracy = self.accuracy_from_acts(&final_acts);
        let final_profile = profile_network(self.net, &params, &batch, false);
        let exact_profile = profile_network(self.net, &NetworkParams::new(), &batch, false);

        let per_layer = final_profile
            .layers
            .iter()
            .map(|(id, name, p)| {
                let exact_ops = exact_profile.layer(*id).map(|e| e.total_ops()).unwrap_or(0);
                LayerDecision {
                    layer: *id,
                    name: name.clone(),
                    predictive: params
                        .get(*id)
                        .map(|lp| lp.is_predictive())
                        .unwrap_or(false),
                    ops: p.total_ops(),
                    exact_ops,
                    full_macs: p.full_macs(),
                }
            })
            .collect();

        let outcome = OptimizeOutcome {
            params,
            baseline_accuracy,
            final_accuracy,
            exact_ops: exact_profile.total_ops(),
            final_ops: final_profile.total_ops(),
            full_macs: final_profile.full_macs(),
            per_layer,
            global_iterations,
        };
        if snapea_obs::enabled() {
            for d in &outcome.per_layer {
                snapea_obs::event!(
                    "optimizer/decision",
                    layer = d.name.clone(),
                    predictive = d.predictive,
                    ops = d.ops,
                    exact_ops = d.exact_ops,
                    full_macs = d.full_macs,
                );
            }
            snapea_obs::event!(
                "optimizer/global",
                iterations = outcome.global_iterations as u64,
                baseline_accuracy = outcome.baseline_accuracy,
                final_accuracy = outcome.final_accuracy,
                exact_ops = outcome.exact_ops,
                final_ops = outcome.final_ops,
                full_macs = outcome.full_macs,
            );
        }
        outcome
    }

    /// The paper's `LOCALOPTIMIZATIONPASS` for one layer.
    fn local_options(
        &self,
        layer: NodeId,
        tables: &[KernelTable],
        batch: &Tensor4,
        cached: &[Tensor4],
        baseline: f64,
    ) -> Vec<LayerOption> {
        let mut opts: Vec<LayerOption> = Vec::new();
        let max_t = tables.iter().map(KernelTable::len).max().unwrap_or(1);
        let mut seen: Vec<LayerParams> = Vec::new();
        for t in 0..self.cfg.local_configs.min(max_t) {
            let modes: Vec<KernelMode> = tables.iter().map(|tab| tab.get_clamped(t).mode).collect();
            let ops: u64 = tables.iter().map(|tab| tab.get_clamped(t).ops).sum();
            let params = if modes.iter().any(KernelMode::is_speculative) {
                LayerParams::Predictive(modes)
            } else {
                LayerParams::Exact
            };
            if seen.contains(&params) {
                continue;
            }
            seen.push(params.clone());
            let err = if params.is_predictive() {
                snapea_obs::counter("optimizer/probes").inc();
                let mut np = NetworkParams::new();
                np.set(layer, params.clone());
                let spec = SpecNet::new(self.net, &np);
                let acts = spec.forward_from(batch, cached, layer);
                baseline - self.accuracy_from_acts(&acts)
            } else {
                0.0
            };
            if err <= self.cfg.epsilon {
                opts.push(LayerOption { params, ops, err });
            }
        }
        // The exact configuration is always an acceptable fallback.
        if !opts.iter().any(|o| !o.params.is_predictive()) {
            let exact_ops: u64 = tables
                .iter()
                .map(|tab| {
                    tab.candidates()
                        .iter()
                        .find(|c| matches!(c.mode, KernelMode::Exact))
                        .map(|c| c.ops)
                        .unwrap_or(0)
                })
                .sum();
            opts.push(LayerOption {
                params: LayerParams::Exact,
                ops: exact_ops,
                err: 0.0,
            });
        }
        opts.sort_by_key(|o| o.ops);
        opts
    }

    /// The paper's `GLOBALOPTIMIZATIONPASS` + `ADJUSTPARAM`.
    fn global_pass(
        &self,
        options: &BTreeMap<NodeId, Vec<LayerOption>>,
        batch: &Tensor4,
        baseline: f64,
    ) -> (BTreeMap<NodeId, usize>, usize) {
        let mut current: BTreeMap<NodeId, usize> = options.keys().map(|&l| (l, 0usize)).collect();
        let simulate = |cur: &BTreeMap<NodeId, usize>| -> f64 {
            snapea_obs::counter("optimizer/probes").inc();
            let mut params = NetworkParams::new();
            for (&l, &t) in cur {
                params.set(l, options[&l][t].params.clone());
            }
            let spec = SpecNet::new(self.net, &params);
            baseline - spec_accuracy(&spec, self.data, batch)
        };
        let mut err = simulate(&current);
        let mut iters = 0usize;
        while err > self.cfg.epsilon && iters < self.cfg.max_global_iters {
            // ADJUSTPARAM: best merit −Δerr/Δop over every possible move.
            let mut best: Option<(NodeId, usize, f64)> = None;
            for (&l, opts) in options {
                let cur_t = current[&l];
                let cur_opt = &opts[cur_t];
                for (t, opt) in opts.iter().enumerate().skip(cur_t + 1) {
                    let d_err = opt.err - cur_opt.err;
                    let d_ops = (opt.ops.saturating_sub(cur_opt.ops)).max(1) as f64;
                    let merit = -d_err / d_ops;
                    if best.map(|(_, _, m)| merit > m).unwrap_or(true) {
                        best = Some((l, t, merit));
                    }
                }
            }
            let Some((l, t, _)) = best else {
                // Nothing left to adjust: fall back to all-exact.
                for (&l, opts) in options {
                    let exact_idx = opts
                        .iter()
                        .position(|o| !o.params.is_predictive())
                        .unwrap_or(opts.len() - 1);
                    current.insert(l, exact_idx);
                }
                iters += 1;
                break;
            };
            current.insert(l, t);
            err = simulate(&current);
            iters += 1;
        }
        (current, iters)
    }
}

fn spec_accuracy(spec: &SpecNet<'_>, data: &[LabeledImage], batch: &Tensor4) -> f64 {
    let acts = spec.forward(batch);
    // lint:allow(P1) forward returns one activation per node and the graph is non-empty by construction
    let logits = acts.last().expect("non-empty graph").to_matrix();
    let preds = argmax_rows(&logits);
    preds
        .iter()
        .zip(data)
        .filter(|(p, d)| **p == d.label)
        .count() as f64
        / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapea_nn::zoo;

    fn small_setup() -> (Graph, Vec<LabeledImage>) {
        let net = zoo::mini_alexnet(4);
        let data = SynthShapes::new(zoo::INPUT_SIZE, 4).generate(16, 77);
        (net, data)
    }

    #[test]
    fn optimizer_respects_epsilon() {
        let (net, data) = small_setup();
        let cfg = OptimizerConfig {
            group_candidates: vec![1, 4],
            threshold_quantiles: vec![0.5],
            local_configs: 3,
            ..OptimizerConfig::with_epsilon(0.10)
        };
        let out = Optimizer::new(&net, &data, cfg).run();
        assert!(
            out.accuracy_loss() <= 0.10 + 1e-9,
            "loss {} exceeds epsilon",
            out.accuracy_loss()
        );
        assert!(
            out.final_ops <= out.exact_ops,
            "optimizer made things worse"
        );
        assert!(out.exact_ops < out.full_macs);
        assert_eq!(out.per_layer.len(), net.conv_ids().len());
    }

    #[test]
    fn zero_epsilon_keeps_exact_accuracy() {
        let (net, data) = small_setup();
        let cfg = OptimizerConfig {
            group_candidates: vec![2],
            threshold_quantiles: vec![0.5],
            local_configs: 2,
            ..OptimizerConfig::with_epsilon(0.0)
        };
        let out = Optimizer::new(&net, &data, cfg).run();
        assert!(out.accuracy_loss() <= 1e-9, "loss {}", out.accuracy_loss());
    }

    #[test]
    fn looser_epsilon_never_costs_more_ops() {
        let (net, data) = small_setup();
        let mk = |eps: f64| {
            let cfg = OptimizerConfig {
                group_candidates: vec![1, 4],
                threshold_quantiles: vec![0.5, 0.9],
                local_configs: 3,
                ..OptimizerConfig::with_epsilon(eps)
            };
            Optimizer::new(&net, &data, cfg).run()
        };
        let tight = mk(0.0);
        let loose = mk(0.25);
        assert!(
            loose.final_ops <= tight.final_ops,
            "loose {} > tight {}",
            loose.final_ops,
            tight.final_ops
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_dataset() {
        let net = zoo::mini_alexnet(4);
        let data: Vec<LabeledImage> = Vec::new();
        let _ = Optimizer::new(&net, &data, OptimizerConfig::default());
    }
}
