//! Kernel Profiling Pass (Algorithm 1, `KERNELPROFILINGPASS`).
//!
//! For every kernel in isolation, this pass measures the operation count and
//! a local error estimate for a grid of `(Th, N)` candidates, keeping those
//! whose error is acceptable, sorted by ascending operation count.
//!
//! ## Fidelity note
//!
//! The paper's inner `Simulate` call re-runs the whole network per kernel per
//! candidate to obtain the end-to-end accuracy loss. With hundreds of kernels
//! per network that is prohibitively slow on a CPU-only reproduction, so this
//! pass scores candidates with a *local surrogate*: the fraction of the
//! kernel's positive output **mass** that the candidate would squash to zero.
//! The paper itself observes (§VI-B, "Prediction accuracy") that >86% of
//! prediction error falls on small positive values filtered by downstream
//! max-pooling — i.e. squashed positive mass, not squashed count, is what
//! tracks final accuracy. The Local and Global optimization passes then
//! measure *real* network accuracy, exactly as in the paper, so surrogate
//! mis-rankings are corrected before any parameter is adopted.

use crate::exec::{layer_plan, GatherTable, WindowPlan};
use crate::params::KernelMode;
use crate::reorder::{predictive_reorder, sign_reorder, ReorderedKernel};
use snapea_nn::ops::Conv2d;
use snapea_tensor::Tensor4;

/// One profiled candidate for a kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelCandidate {
    /// The kernel mode this candidate represents.
    pub mode: KernelMode,
    /// Total MACs over the profiling set when this kernel runs alone with
    /// this mode.
    pub ops: u64,
    /// Local surrogate error: squashed positive mass / total positive mass
    /// (always 0 for the exact candidate).
    pub surrogate_err: f64,
}

/// Profiled candidates of one kernel, sorted by ascending `ops`. Always
/// contains the exact-mode candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTable {
    candidates: Vec<KernelCandidate>,
}

impl KernelTable {
    /// Candidates sorted by ascending op count.
    pub fn candidates(&self) -> &[KernelCandidate] {
        &self.candidates
    }

    /// The `t`-th cheapest candidate, clamped to the table length (the
    /// indexing rule of Algorithm 1's Local Optimization pass).
    pub fn get_clamped(&self, t: usize) -> &KernelCandidate {
        &self.candidates[t.min(self.candidates.len() - 1)]
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the table is empty (never true for tables built by
    /// [`profile_layer_kernels`]).
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }
}

/// Scan of one window under one reordering: the partial sum after the
/// speculative set, the sign-check termination op count, and the full value.
#[derive(Debug, Clone, Copy)]
struct WindowScan {
    spec_partial: f32,
    term_ops: u32,
    full: f32,
}

/// The extent of a scan's probe-free region: neither the speculative
/// partial (read at `spec_len`, which can be 0 — the bias itself) nor a
/// sign check (from `neg_start`) observes the accumulator before
/// `min(spec_len if > 0, neg_start, len)` — the same boundary as the
/// executor's `unconditional_prefix_len`, so the lane-blocked region
/// `0..m8` below matches the executor's walk position for position.
fn scan_prefix_m8(r: &ReorderedKernel, len: usize) -> usize {
    let spec_pos = if r.spec_len() > 0 {
        r.spec_len()
    } else {
        usize::MAX
    };
    snapea_tensor::lane::lane_prefix_len(spec_pos.min(r.neg_start()).min(len))
}

/// Scans one window: computes the running prefix of the reordered MAC chain
/// and extracts the three quantities every `(Th, N)` candidate needs. The
/// probe semantics mirror [`crate::pau::Pau::probe`]: a sign check fires
/// before MAC `p` (for `p ≥ neg_start`) when the prefix after `p` MACs is
/// negative. Accumulation follows the pinned lane order (`snapea_tensor::
/// lane`): lane-tree prefix over `0..m8`, sequential from there — the same
/// bits the executor's walk produces at every observed position.
fn scan_window(r: &ReorderedKernel, taps: &[i32], item: &[f32], bias: f32) -> WindowScan {
    let weights = r.weights();
    let order = r.order();
    let len = weights.len();
    let spec_len = r.spec_len();
    let neg_start = r.neg_start();
    let m8 = scan_prefix_m8(r, len);
    let mut acc = bias;
    if m8 > 0 {
        acc = bias + snapea_tensor::lane::lane_dot_gather(weights, order, taps, item, m8);
    }
    let mut spec_partial = bias;
    let mut term_ops = len as u32;
    let mut terminated = false;
    for p in m8..len {
        if p == spec_len {
            spec_partial = acc;
        }
        if !terminated && p >= neg_start && acc < 0.0 {
            term_ops = p as u32;
            terminated = true;
        }
        let off = taps[order[p] as usize];
        if off >= 0 {
            acc += item[off as usize] * weights[p];
        }
    }
    if spec_len == len {
        spec_partial = acc;
    }
    WindowScan {
        spec_partial,
        term_ops,
        full: acc,
    }
}

/// Interior windows scanned per batch. Eight independent accumulator chains
/// hide the `fadd` latency that bounds [`scan_window`]'s strictly-ordered
/// walk; each lane's own accumulation order (and thus every f32 result) is
/// unchanged.
const SCAN_BATCH: usize = 8;

/// [`scan_window`] for [`SCAN_BATCH`] interior windows at once, via resolved
/// taps (`offset = base + rt[p]`, see [`WindowPlan::resolve`]). Per-lane
/// results are bit-identical to the scalar scan.
fn scan_windows_batch(
    r: &ReorderedKernel,
    rt: &[i32],
    item: &[f32],
    bases: &[i32; SCAN_BATCH],
    bias: f32,
) -> [WindowScan; SCAN_BATCH] {
    let weights = r.weights();
    let len = weights.len();
    let spec_len = r.spec_len();
    let neg_start = r.neg_start();
    let m8 = scan_prefix_m8(r, len);
    let mut acc = [bias; SCAN_BATCH];
    if m8 > 0 {
        for (a, &b) in acc.iter_mut().zip(bases.iter()) {
            *a = bias + snapea_tensor::lane::lane_dot_resolved(weights, rt, b, item, m8);
        }
    }
    let mut spec = [bias; SCAN_BATCH];
    let mut term = [u32::MAX; SCAN_BATCH];
    for p in m8..len {
        if p == spec_len {
            spec = acc;
        }
        if p >= neg_start {
            for (t, &a) in term.iter_mut().zip(acc.iter()) {
                if *t == u32::MAX && a < 0.0 {
                    *t = p as u32;
                }
            }
        }
        let d = rt[p];
        let wt = weights[p];
        for (a, &b) in acc.iter_mut().zip(bases.iter()) {
            *a += item[(b + d) as usize] * wt;
        }
    }
    if spec_len == len {
        spec = acc;
    }
    std::array::from_fn(|l| WindowScan {
        spec_partial: spec[l],
        term_ops: term[l].min(len as u32),
        full: acc[l],
    })
}

/// Scans every `(image, window)` of the layer under reordering `r`, writing
/// `out[img * windows + w]`. Interior windows run through the batched
/// resolved-tap scan; border windows take the scalar gather path. Results
/// are indexed, not pushed, so downstream order-sensitive folds (the f64
/// mass sums) see the same ascending `(img, w)` order as the scalar loop.
fn scan_layer(
    r: &ReorderedKernel,
    plan: &WindowPlan,
    rt: &[i32],
    input: &Tensor4,
    bias: f32,
    out: &mut [WindowScan],
) {
    let windows = plan.windows();
    let gather = plan.gather();
    for img in 0..input.shape().n {
        let item = input.item(img);
        let row = &mut out[img * windows..(img + 1) * windows];
        let mut lanes = [(0usize, 0i32); SCAN_BATCH];
        let mut nl = 0usize;
        for w in 0..windows {
            let base = plan.window_base(w);
            if base >= 0 {
                lanes[nl] = (w, base);
                nl += 1;
                if nl == SCAN_BATCH {
                    nl = 0;
                    let bases = lanes.map(|(_, b)| b);
                    let scans = scan_windows_batch(r, rt, item, &bases, bias);
                    for (l, &(lw, _)) in lanes.iter().enumerate() {
                        row[lw] = scans[l];
                    }
                }
            } else {
                row[w] = scan_window(r, gather.window(w), item, bias);
            }
        }
        // Partial tail: the generic scalar scan is bit-identical on
        // interior windows (no padding taps to skip).
        for &(lw, _) in &lanes[..nl] {
            row[lw] = scan_window(r, gather.window(lw), item, bias);
        }
    }
}

/// Profiles every kernel of `conv` against the layer input `input` (a batch
/// of optimization-set activations), producing one [`KernelTable`] per
/// kernel.
///
/// `group_candidates` is the grid of `N` values; thresholds are derived per
/// `(kernel, N)` from the `threshold_quantiles` of the speculative partial
/// sums of truly-negative windows. Candidates whose surrogate error exceeds
/// `budget` are discarded. The exact-mode candidate is always present.
pub fn profile_layer_kernels(
    conv: &Conv2d,
    input: &Tensor4,
    group_candidates: &[usize],
    threshold_quantiles: &[f64],
    budget: f64,
) -> Vec<KernelTable> {
    let s = input.shape();
    let plan = layer_plan(s, conv.geom(), conv.c_in());
    let windows = plan.windows();
    let images = s.n;
    let window_len = conv.window_len();
    let blank = WindowScan {
        spec_partial: 0.0,
        term_ops: 0,
        full: 0.0,
    };

    // Kernels are profiled in isolation, so the candidate scans — the
    // optimizer's dominant loop — fan out in blocks of kernels; the result
    // vector preserves kernel order and each kernel's numbers never depend
    // on the thread count or the block size. A kernel's cost is one full
    // layer scan per candidate (the exact reorder plus each in-range N),
    // and the pool's walk floor groups kernels — or collapses the whole
    // profile to an inline call — when the scans are too small to amortise
    // a dispatch (tiny layers used to pay ~1.5× dispatch overhead here).
    let grid_scans = 1 + group_candidates
        .iter()
        .filter(|&&n| n > 0 && n < window_len)
        .count();
    let kernel_cost = grid_scans * images * windows * window_len;
    let chunk = snapea_tensor::par::chunk_for(
        conv.c_out(),
        kernel_cost,
        snapea_tensor::par::WALK_TASK_FLOOR_OPS,
    );
    snapea_tensor::par::parallel_map(conv.c_out(), chunk, |k| {
        let mut scans: Vec<WindowScan> = vec![blank; images * windows];
        let weights = conv.weight().item(k);
        let bias = conv.bias()[k];
        let mut candidates: Vec<KernelCandidate> = Vec::new();

        // Exact-mode candidate.
        let exact = sign_reorder(weights);
        let rt = plan.resolve(&exact);
        scan_layer(&exact, &plan, &rt, input, bias, &mut scans);
        let exact_ops: u64 = scans.iter().map(|sc| sc.term_ops as u64).sum();
        candidates.push(KernelCandidate {
            mode: KernelMode::Exact,
            ops: exact_ops,
            surrogate_err: 0.0,
        });

        // Predictive candidates.
        for &n in group_candidates {
            if n == 0 || n >= window_len {
                continue;
            }
            let r = predictive_reorder(weights, n);
            let rt = plan.resolve(&r);
            scan_layer(&r, &plan, &rt, input, bias, &mut scans);
            // Threshold grid: quantiles of the speculative partial sums of
            // truly-negative windows. No negative windows → nothing for this
            // kernel to gain from speculating at this N.
            let mut neg_partials: Vec<f32> = scans
                .iter()
                .filter(|sc| sc.full < 0.0)
                .map(|sc| sc.spec_partial)
                .collect();
            if neg_partials.is_empty() {
                continue;
            }
            neg_partials.sort_by(f32::total_cmp);
            let positive_mass: f64 = scans.iter().map(|sc| sc.full.max(0.0) as f64).sum();

            for &q in threshold_quantiles {
                let idx = ((neg_partials.len() as f64 - 1.0) * q).round() as usize;
                let th = neg_partials[idx.min(neg_partials.len() - 1)];
                let mut ops = 0u64;
                let mut squashed = 0.0f64;
                for sc in &scans {
                    if sc.spec_partial < th {
                        ops += n as u64;
                        if sc.full >= 0.0 {
                            squashed += sc.full as f64;
                        }
                    } else {
                        ops += sc.term_ops as u64;
                    }
                }
                let surrogate_err = if positive_mass > 0.0 {
                    squashed / positive_mass
                } else {
                    0.0
                };
                if surrogate_err <= budget {
                    candidates.push(KernelCandidate {
                        mode: KernelMode::spec(th, n),
                        ops,
                        surrogate_err,
                    });
                }
            }
        }

        candidates.sort_by_key(|c| c.ops);
        KernelTable { candidates }
    })
}

/// Frozen pre-plan [`profile_layer_kernels`]: rebuilds the gather table,
/// scans every window with the scalar [`scan_window`], and pushes scans in
/// ascending `(img, w)` order — exactly the code that ran before the
/// single-core kernel engine. It is the reference the regression tests pin
/// the batched path against bit-for-bit and the *before* side of
/// `perfbench`'s kernels section; do not optimise.
pub fn profile_layer_kernels_baseline(
    conv: &Conv2d,
    input: &Tensor4,
    group_candidates: &[usize],
    threshold_quantiles: &[f64],
    budget: f64,
) -> Vec<KernelTable> {
    let s = input.shape();
    let gather = GatherTable::build(s, conv.geom(), conv.c_in());
    let windows = gather.windows();
    let images = s.n;
    let window_len = conv.window_len();

    snapea_tensor::par::parallel_map(conv.c_out(), 1, |k| {
        let mut scans: Vec<WindowScan> = Vec::with_capacity(images * windows);
        let weights = conv.weight().item(k);
        let bias = conv.bias()[k];
        let mut candidates: Vec<KernelCandidate> = Vec::new();

        // Exact-mode candidate.
        let exact = sign_reorder(weights);
        let mut exact_ops = 0u64;
        for img in 0..images {
            let item = input.item(img);
            for w in 0..windows {
                exact_ops += scan_window(&exact, gather.window(w), item, bias).term_ops as u64;
            }
        }
        candidates.push(KernelCandidate {
            mode: KernelMode::Exact,
            ops: exact_ops,
            surrogate_err: 0.0,
        });

        // Predictive candidates.
        for &n in group_candidates {
            if n == 0 || n >= window_len {
                continue;
            }
            let r = predictive_reorder(weights, n);
            scans.clear();
            for img in 0..images {
                let item = input.item(img);
                for w in 0..windows {
                    scans.push(scan_window(&r, gather.window(w), item, bias));
                }
            }
            // Threshold grid: quantiles of the speculative partial sums of
            // truly-negative windows. No negative windows → nothing for this
            // kernel to gain from speculating at this N.
            let mut neg_partials: Vec<f32> = scans
                .iter()
                .filter(|sc| sc.full < 0.0)
                .map(|sc| sc.spec_partial)
                .collect();
            if neg_partials.is_empty() {
                continue;
            }
            neg_partials.sort_by(f32::total_cmp);
            let positive_mass: f64 = scans.iter().map(|sc| sc.full.max(0.0) as f64).sum();

            for &q in threshold_quantiles {
                let idx = ((neg_partials.len() as f64 - 1.0) * q).round() as usize;
                let th = neg_partials[idx.min(neg_partials.len() - 1)];
                let mut ops = 0u64;
                let mut squashed = 0.0f64;
                for sc in &scans {
                    if sc.spec_partial < th {
                        ops += n as u64;
                        if sc.full >= 0.0 {
                            squashed += sc.full as f64;
                        }
                    } else {
                        ops += sc.term_ops as u64;
                    }
                }
                let surrogate_err = if positive_mass > 0.0 {
                    squashed / positive_mass
                } else {
                    0.0
                };
                if surrogate_err <= budget {
                    candidates.push(KernelCandidate {
                        mode: KernelMode::spec(th, n),
                        ops,
                        surrogate_err,
                    });
                }
            }
        }

        candidates.sort_by_key(|c| c.ops);
        KernelTable { candidates }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapea_tensor::im2col::ConvGeom;
    use snapea_tensor::{init, Shape4};

    fn setup() -> (Conv2d, Tensor4) {
        let mut rng = init::rng(3);
        let conv = Conv2d::new(3, 4, ConvGeom::square(3, 1, 1), &mut rng);
        let input = init::uniform4(Shape4::new(3, 3, 8, 8), 1.0, &mut rng).map(f32::abs);
        (conv, input)
    }

    #[test]
    fn tables_always_contain_exact() {
        let (conv, input) = setup();
        let tables = profile_layer_kernels(&conv, &input, &[1, 2, 4], &[0.25, 0.5], 1.0);
        assert_eq!(tables.len(), conv.c_out());
        for t in &tables {
            assert!(!t.is_empty());
            assert!(t
                .candidates()
                .iter()
                .any(|c| matches!(c.mode, KernelMode::Exact)));
            // Sorted ascending by ops.
            for pair in t.candidates().windows(2) {
                assert!(pair[0].ops <= pair[1].ops);
            }
        }
    }

    #[test]
    fn generous_budget_admits_predictive_candidates() {
        let (conv, input) = setup();
        let tables = profile_layer_kernels(&conv, &input, &[1, 2, 4, 8], &[0.5, 0.9], 1.0);
        let any_spec = tables.iter().any(|t| {
            t.candidates()
                .iter()
                .any(|c| matches!(c.mode, KernelMode::Speculate(_)))
        });
        assert!(
            any_spec,
            "no speculative candidate survived a budget of 1.0"
        );
    }

    #[test]
    fn zero_budget_keeps_only_harmless_candidates() {
        let (conv, input) = setup();
        let tables = profile_layer_kernels(&conv, &input, &[1, 2, 4], &[0.5], 0.0);
        for t in &tables {
            for c in t.candidates() {
                assert_eq!(c.surrogate_err, 0.0);
            }
        }
    }

    #[test]
    fn predictive_candidates_cost_less_than_exact_when_aggressive() {
        let (conv, input) = setup();
        let tables = profile_layer_kernels(&conv, &input, &[1, 2], &[0.9], 1.0);
        for t in &tables {
            let exact_ops = t
                .candidates()
                .iter()
                .find(|c| matches!(c.mode, KernelMode::Exact))
                .map(|c| c.ops)
                .expect("exact present");
            if let Some(spec) = t
                .candidates()
                .iter()
                .find(|c| matches!(c.mode, KernelMode::Speculate(_)))
            {
                assert!(
                    spec.ops <= exact_ops,
                    "aggressive speculation should not cost more than exact"
                );
            }
        }
    }

    #[test]
    fn scan_window_agrees_with_executor() {
        use crate::exec::{run_window, KernelExec};
        use crate::pau::Pau;
        let (conv, input) = setup();
        let gather = GatherTable::build(input.shape(), conv.geom(), conv.c_in());
        for k in 0..conv.c_out() {
            let weights = conv.weight().item(k);
            let bias = conv.bias()[k];
            let r = sign_reorder(weights);
            let kexec = KernelExec::new(r.clone(), Pau::exact(&r));
            for w in 0..gather.windows() {
                let taps = gather.window(w);
                let item = input.item(0);
                let scan = scan_window(&r, taps, item, bias);
                let exec = run_window(&kexec, taps, item, bias);
                assert_eq!(scan.term_ops, exec.ops, "kernel {k} window {w}");
            }
        }
    }

    /// The batched resolved-tap profiling path must reproduce the frozen
    /// pre-plan scalar pass bit-for-bit: same candidates, same op counts,
    /// same (order-sensitive, f64) surrogate errors.
    #[test]
    fn profiling_is_bit_identical_to_baseline() {
        for geom in [
            ConvGeom::square(3, 1, 1),
            ConvGeom::square(3, 1, 0),
            ConvGeom::square(3, 2, 1),
        ] {
            let mut rng = init::rng(77);
            let conv = Conv2d::new(3, 4, geom, &mut rng);
            let input = init::uniform4(Shape4::new(2, 3, 8, 8), 1.0, &mut rng).map(f32::abs);
            let grid = [1usize, 2, 4, 8];
            let quantiles = [0.25, 0.5, 0.9];
            let new = profile_layer_kernels(&conv, &input, &grid, &quantiles, 1.0);
            let old = profile_layer_kernels_baseline(&conv, &input, &grid, &quantiles, 1.0);
            assert_eq!(new, old, "geom {geom:?}");
            for (a, b) in new.iter().zip(old.iter()) {
                for (ca, cb) in a.candidates().iter().zip(b.candidates()) {
                    assert_eq!(
                        ca.surrogate_err.to_bits(),
                        cb.surrogate_err.to_bits(),
                        "surrogate error must match bitwise"
                    );
                }
            }
        }
    }

    #[test]
    fn get_clamped_saturates() {
        let (conv, input) = setup();
        let tables = profile_layer_kernels(&conv, &input, &[2], &[0.5], 1.0);
        let t = &tables[0];
        let last = t.get_clamped(usize::MAX);
        assert_eq!(last, &t.candidates()[t.len() - 1]);
    }
}
