//! SnaPEA: Snappy Predictive Early Activation (ISCA 2018) — core library.
//!
//! Convolution layers in modern CNNs are followed by ReLU, which squashes
//! every negative output to zero. SnaPEA exploits this:
//!
//! * **Exact mode** — weights of each kernel are statically reordered so the
//!   positive subset is processed first ([`reorder::sign_reorder`]). Because
//!   convolution-layer inputs are non-negative (they come out of a ReLU), the
//!   partial sum can only decrease once the negative weights begin; a
//!   single-bit sign check after each of those MACs terminates the window as
//!   soon as the partial sum goes negative, with **zero** accuracy loss.
//! * **Predictive mode** — a small speculative set of weights (one
//!   largest-magnitude representative from each of `N` groups of the
//!   ascending-sorted weights, [`reorder::predictive_reorder`]) is processed
//!   first; if the partial sum falls below a per-kernel threshold `Th`, the
//!   window is *predicted* negative and terminated immediately, trading
//!   accuracy for computation. The `(Th, N)` parameters for every kernel are
//!   found by the three-pass optimizer of the paper's Algorithm 1
//!   ([`optimizer`]).
//!
//! The behavioural contract between software and hardware lives in
//! [`pau`] (the Predictive Activation Unit state machine) and [`exec`] (the
//! window-walking executor that both the accuracy simulations and the
//! cycle-level accelerator model consume).
//!
//! # Examples
//!
//! ```
//! use snapea::exec::{execute_conv, LayerConfig};
//! use snapea_nn::ops::Conv2d;
//! use snapea_tensor::{im2col::ConvGeom, init, Shape4, Tensor4};
//!
//! let mut rng = init::rng(0);
//! let conv = Conv2d::new(4, 8, ConvGeom::square(3, 1, 1), &mut rng);
//! let input = init::uniform4(Shape4::new(1, 4, 8, 8), 1.0, &mut rng).map(f32::abs);
//!
//! let cfg = LayerConfig::exact(&conv);
//! let result = execute_conv(&conv, &input, &cfg);
//! // Early termination must never change the post-ReLU output (up to
//! // floating-point summation order).
//! let reference = conv.forward(&input).map(|v| v.max(0.0));
//! let early = result.output.map(|v| v.max(0.0));
//! for (a, b) in early.iter().zip(reference.iter()) {
//!     assert!((a - b).abs() < 1e-4);
//! }
//! // ...but it skips MACs.
//! assert!(result.profile.total_ops() < conv.full_macs(input.shape()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod exec;
pub mod optimizer;
pub mod params;
pub mod pau;
pub mod reorder;
pub mod spec_net;

pub use artifact::{ArtifactError, CompiledModel};
pub use params::{KernelParams, LayerParams, NetworkParams};
pub use reorder::ReorderedKernel;
