//! Compiled-model artifact: the versioned, checksummed on-disk form of an
//! optimized SnaPEA model (`.snapea` files).
//!
//! Algorithm 1 (the speculation-parameter search) and the kernel engine's
//! precomputations — per-kernel reorder permutations, resolved
//! [`WindowPlan`]s, pre-quantized q16 weights — are expensive to rebuild
//! every process start. A [`CompiledModel`] captures all of them once at
//! *compile time* (`snapea-tool compile`), and *run time*
//! (`snapea-tool run --artifact`) merely deserializes and executes: no
//! optimizer, no reordering, no plan construction. Loading is bit-faithful —
//! an executor fed a loaded artifact produces byte-for-byte the outputs of
//! one fed the freshly-optimized model, at any thread count.
//!
//! # On-disk format (version 2)
//!
//! All multi-byte values are **little-endian** regardless of host; floats
//! are stored as their IEEE-754 bit patterns (exact round-trip, including
//! infinities). The file is a 24-byte header followed by exactly five
//! sections in fixed order:
//!
//! ```text
//! header   magic "SNPA" · version u32 · endian tag u32 · section count u32
//!          · FNV-1a-64 of the preceding 16 bytes
//! section  tag u32 · payload length u64 · payload
//!          · FNV-1a-64 of (tag ‖ length ‖ payload)
//! ```
//!
//! | tag | section | payload |
//! |-----|---------|---------|
//! | 1   | META    | input `c,h,w` · q16 `frac_bits` |
//! | 2   | GRAPH   | full network: nodes with ops, weights, topology |
//! | 3   | PARAMS  | [`NetworkParams`] — per-layer `(Th, N)` assignments |
//! | 4   | LAYERS  | per predictive layer: reordered kernels, PAU fields, pre-quantized q16 weights, resolved window plan |
//! | 5   | PACKED  | per predictive layer: lane-major packed weights per kernel (walk order, `+0.0`-padded to whole lane blocks) |
//!
//! Version 2 added the PACKED section — the eight-wide lane layout the SIMD
//! kernels load from (DESIGN.md §11), built at compile time so run time
//! never re-packs.
//!
//! Every byte of the file is covered by a checksum, so any corruption —
//! bit flip, truncation, region swap — yields a typed [`ArtifactError`],
//! never a panic or a silently wrong model. Beyond the checksums, loading
//! cross-validates the compiled sections against the model itself: index
//! buffers must be permutations, reordered weights must match the graph's
//! originals through the permutation, stored PAU fields must agree with the
//! stored `(Th, N)` parameters, q16 weights must equal the quantization of
//! the f32 weights, packed weights must be bitwise the walk-order weights
//! padded with `+0.0` to whole lane blocks, and plan tables must stay
//! within the layer's activation bounds. Format changes require bumping
//! [`VERSION`]; old readers reject newer files with
//! [`ArtifactError::UnsupportedVersion`].

use crate::exec::{self, GatherTable, KernelExec, LayerConfig, WindowPlan};
use crate::params::{KernelMode, LayerParams, NetworkParams};
use crate::pau::Pau;
use crate::reorder::ReorderedKernel;
use snapea_nn::graph::{Graph, Node, NodeId, Op};
use snapea_nn::ops::{AvgPool, Conv2d, Linear, Lrn, MaxPool, PoolGeom};
use snapea_tensor::im2col::ConvGeom;
use snapea_tensor::q16::{quantize_slice, Q16Format, Q16};
use snapea_tensor::{Shape2, Shape4, Tensor2, Tensor4};
use std::collections::BTreeMap;
use std::sync::Arc;

/// File magic: the first four bytes of every `.snapea` artifact.
pub const MAGIC: [u8; 4] = *b"SNPA";
/// Current format version. Bump on any layout change.
pub const VERSION: u32 = 2;
/// Endianness canary: written little-endian; a reader on a platform (or a
/// codepath) that does not decode little-endian sees a scrambled value.
pub const ENDIAN_TAG: u32 = 0x1A2B_3C4D;

const SECTION_META: u32 = 1;
const SECTION_GRAPH: u32 = 2;
const SECTION_PARAMS: u32 = 3;
const SECTION_LAYERS: u32 = 4;
const SECTION_PACKED: u32 = 5;
const SECTION_COUNT: u32 = 5;

/// FNV-1a 64-bit — the checksum and digest function of the artifact format
/// (dependency-free, deterministic, byte-order independent).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut f = Fnv::new();
    f.update(bytes);
    f.finish()
}

/// Streaming FNV-1a 64-bit state.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Typed rejection of an artifact that cannot be loaded. The corruption
/// battery asserts that *every* byte-level mutation of a valid artifact
/// maps to one of these — never a panic, never a silently-accepted load.
#[derive(Debug)]
pub enum ArtifactError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The file does not begin with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The file's format version is newer than this reader supports.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Newest version this reader understands.
        supported: u32,
    },
    /// The endianness canary decoded wrong.
    BadEndianTag(u32),
    /// A stored checksum disagrees with the bytes it covers.
    Checksum {
        /// Which region failed ("header" or a section name).
        region: &'static str,
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed over the bytes.
        computed: u64,
    },
    /// The file ends before a declared field or payload.
    Truncated {
        /// Which region was being read.
        region: &'static str,
        /// Bytes the field needed.
        needed: usize,
        /// Bytes remaining.
        available: usize,
    },
    /// A count, index, or offset is outside its valid range.
    Bounds {
        /// Which region was being read.
        region: &'static str,
        /// What was out of range.
        detail: String,
    },
    /// Structurally well-formed bytes that violate a semantic invariant
    /// (non-permutation index buffer, weight/PAU/q16 cross-check failure,
    /// wrong section order, …).
    Invalid {
        /// Which region was being read.
        region: &'static str,
        /// The violated invariant.
        detail: String,
    },
    /// Bytes remain after the last declared section.
    TrailingBytes {
        /// Number of undeclared trailing bytes.
        extra: usize,
    },
}

impl ArtifactError {
    /// Short machine-readable classification (battery reporting).
    pub fn kind(&self) -> &'static str {
        match self {
            ArtifactError::Io(_) => "io",
            ArtifactError::BadMagic(_) => "magic",
            ArtifactError::UnsupportedVersion { .. } => "version",
            ArtifactError::BadEndianTag(_) => "endian",
            ArtifactError::Checksum { .. } => "checksum",
            ArtifactError::Truncated { .. } => "truncated",
            ArtifactError::Bounds { .. } => "bounds",
            ArtifactError::Invalid { .. } => "invalid",
            ArtifactError::TrailingBytes { .. } => "trailing",
        }
    }
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact i/o: {e}"),
            ArtifactError::BadMagic(m) => write!(f, "not a .snapea artifact (magic {m:02x?})"),
            ArtifactError::UnsupportedVersion { found, supported } => write!(
                f,
                "artifact version {found} is newer than supported version {supported}"
            ),
            ArtifactError::BadEndianTag(t) => write!(
                f,
                "endianness tag 0x{t:08x} != 0x{ENDIAN_TAG:08x} (corrupt or non-little-endian file)"
            ),
            ArtifactError::Checksum {
                region,
                stored,
                computed,
            } => write!(
                f,
                "{region} checksum mismatch: stored 0x{stored:016x}, computed 0x{computed:016x}"
            ),
            ArtifactError::Truncated {
                region,
                needed,
                available,
            } => write!(
                f,
                "{region} truncated: needs {needed} more byte(s), {available} available"
            ),
            ArtifactError::Bounds { region, detail } => {
                write!(f, "{region} out of bounds: {detail}")
            }
            ArtifactError::Invalid { region, detail } => write!(f, "{region} invalid: {detail}"),
            ArtifactError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after the last section")
            }
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

/// Load-time switches. The defaults are full verification; the only knob
/// exists for the corruption battery's prove-it-can-fail smoke.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadOptions {
    /// Skip verifying the LAYERS section checksum — a deliberately planted
    /// bug (`snapea-tool selfcheck --artifact --inject-bug`) that the
    /// corruption battery must detect by observing a corrupted artifact
    /// load successfully. Never set outside that smoke test.
    pub skip_layers_checksum: bool,
}

/// Byte sizes of the artifact's regions, as last serialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionSizes {
    /// Fixed header (magic, version, endian tag, count, checksum).
    pub header: usize,
    /// META section, including framing.
    pub meta: usize,
    /// GRAPH section, including framing.
    pub graph: usize,
    /// PARAMS section, including framing.
    pub params: usize,
    /// LAYERS section, including framing.
    pub layers: usize,
    /// PACKED section, including framing.
    pub packed: usize,
}

impl SectionSizes {
    /// Total artifact size in bytes.
    pub fn total(&self) -> usize {
        self.header + self.meta + self.graph + self.params + self.layers + self.packed
    }
}

/// One compiled convolution layer: everything the executor needs to run the
/// layer without recomputing reorderings, PAU configs, quantizations, or
/// window plans.
#[derive(Debug, Clone)]
pub struct CompiledLayer {
    node: NodeId,
    in_h: usize,
    in_w: usize,
    kernels: Vec<KernelExec>,
    q16: Vec<Vec<Q16>>,
    plan: Arc<WindowPlan>,
}

impl CompiledLayer {
    /// The conv node this layer compiles.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Input activation height/width the plan was resolved for.
    pub fn input_hw(&self) -> (usize, usize) {
        (self.in_h, self.in_w)
    }

    /// Per-kernel execution states (reordered weights + PAU).
    pub fn kernels(&self) -> &[KernelExec] {
        &self.kernels
    }

    /// Pre-quantized q16 weights, one vector per kernel, in reordered
    /// (execution) order.
    pub fn q16_weights(&self) -> &[Vec<Q16>] {
        &self.q16
    }

    /// The resolved window plan for the layer's compile-time geometry.
    pub fn plan(&self) -> &Arc<WindowPlan> {
        &self.plan
    }
}

/// A fully compiled model: the network, its chosen speculation parameters,
/// and the per-layer compiled state. Produced by [`CompiledModel::compile`]
/// at compile time or [`CompiledModel::from_bytes`] at run time — the two
/// are interchangeable by construction (the round-trip battery holds them
/// bit-identical).
#[derive(Debug, Clone)]
pub struct CompiledModel {
    graph: Graph,
    params: NetworkParams,
    input_c: usize,
    input_h: usize,
    input_w: usize,
    fmt: Q16Format,
    layers: Vec<CompiledLayer>,
}

impl CompiledModel {
    /// Compiles `graph` under `params` for inputs of shape
    /// `[n, input_c, input_h, input_w]` (any batch size `n`): reorders every
    /// kernel of every predictive layer, configures its PAU, pre-quantizes
    /// the reordered weights under `fmt`, and resolves the window plan of
    /// each layer's compile-time geometry.
    ///
    /// # Panics
    ///
    /// Panics if the graph cannot execute an input of the given shape (the
    /// same shape errors `Graph::forward` raises).
    pub fn compile(
        graph: &Graph,
        params: &NetworkParams,
        (input_c, input_h, input_w): (usize, usize, usize),
        fmt: Q16Format,
    ) -> Self {
        let _span = snapea_obs::span!("artifact/compile");
        // Shape inference: one dense single-image forward pins every
        // activation shape, so each predictive layer's plan is resolved for
        // exactly the geometry run time will present.
        let acts = graph.forward(&Tensor4::zeros(Shape4::new(1, input_c, input_h, input_w)));
        let mut layers = Vec::new();
        for (id, p) in params.iter() {
            let LayerParams::Predictive(_) = p else {
                continue;
            };
            let Op::Conv(conv) = &graph.node(id).op else {
                continue;
            };
            let in_shape = match graph.node(id).inputs.first() {
                Some(&src) => acts[src].shape(),
                None => continue,
            };
            let cfg = LayerConfig::from_params(conv, p);
            let kernels = cfg.kernels().to_vec();
            let q16 = kernels
                .iter()
                .map(|k| quantize_slice(fmt, k.reordered.weights()))
                .collect();
            let plan = exec::layer_plan(in_shape, conv.geom(), conv.c_in());
            layers.push(CompiledLayer {
                node: id,
                in_h: in_shape.h,
                in_w: in_shape.w,
                kernels,
                q16,
                plan,
            });
        }
        snapea_obs::event!(
            "artifact/compiled",
            layers = layers.len() as u64,
            nodes = graph.len() as u64,
        );
        CompiledModel {
            graph: graph.clone(),
            params: params.clone(),
            input_c,
            input_h,
            input_w,
            fmt,
            layers,
        }
    }

    /// The full network.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The speculation parameters the model was compiled under.
    pub fn params(&self) -> &NetworkParams {
        &self.params
    }

    /// The `(c, h, w)` input shape the plans were resolved for.
    pub fn input_dims(&self) -> (usize, usize, usize) {
        (self.input_c, self.input_h, self.input_w)
    }

    /// The fixed-point format of the pre-quantized weights.
    pub fn fmt(&self) -> Q16Format {
        self.fmt
    }

    /// The compiled layers, in node order.
    pub fn layers(&self) -> &[CompiledLayer] {
        &self.layers
    }

    /// Primes the executor's plan cache with every compiled layer's resolved
    /// window plan, so the first execution skips plan construction.
    pub fn install_plans(&self) {
        for l in &self.layers {
            let Op::Conv(conv) = &self.graph.node(l.node).op else {
                continue;
            };
            exec::install_plan(
                l.in_h,
                l.in_w,
                conv.c_in(),
                conv.geom(),
                Arc::clone(&l.plan),
            );
        }
    }

    /// Per-layer executor configurations built from the stored kernels —
    /// the run-time twin of `SpecNet`'s fresh-reorder path.
    pub fn configs(&self) -> BTreeMap<NodeId, LayerConfig> {
        self.layers
            .iter()
            .map(|l| (l.node, LayerConfig::from_kernels(l.kernels.clone())))
            .collect()
    }

    /// Forward pass with speculation applied, mirroring `SpecNet::forward`
    /// except that every per-kernel state comes from the compiled artifact
    /// instead of being re-derived. Returns all activations.
    ///
    /// # Panics
    ///
    /// Panics if `input`'s `(c, h, w)` disagree with [`Self::input_dims`]
    /// (the plans would not match) or the graph cannot execute the shape.
    pub fn forward(&self, input: &Tensor4) -> Vec<Tensor4> {
        let s = input.shape();
        assert_eq!(
            (s.c, s.h, s.w),
            (self.input_c, self.input_h, self.input_w),
            "input shape differs from the artifact's compiled shape"
        );
        let _span = snapea_obs::span!("artifact/forward");
        self.install_plans();
        let configs = self.configs();
        self.graph.forward_with(input, &mut |id, conv, x| {
            configs
                .get(&id)
                .map(|cfg| exec::execute_conv(conv, x, cfg).output)
        })
    }

    /// Classification accuracy over labelled images, mirroring
    /// `SpecNet::accuracy` on the compiled kernels.
    pub fn accuracy(&self, images: &[snapea_nn::data::LabeledImage]) -> f64 {
        if images.is_empty() {
            return 0.0;
        }
        let refs: Vec<&snapea_nn::data::LabeledImage> = images.iter().collect();
        let batch = snapea_nn::data::SynthShapes::batch_refs(&refs);
        let acts = self.forward(&batch);
        let logits = match acts.last() {
            Some(t) => t.to_matrix(),
            None => return 0.0,
        };
        let preds = snapea_nn::loss::argmax_rows(&logits);
        preds
            .iter()
            .zip(images)
            .filter(|(p, d)| **p == d.label)
            .count() as f64
            / images.len() as f64
    }

    // ------------------------------------------------------------------
    // Serialization
    // ------------------------------------------------------------------

    /// Serializes the model to artifact bytes (canonical form: serializing
    /// the result of [`CompiledModel::from_bytes`] reproduces the input
    /// byte-for-byte).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_sized().0
    }

    /// [`Self::to_bytes`] plus the per-section size breakdown.
    pub fn to_bytes_sized(&self) -> (Vec<u8>, SectionSizes) {
        let meta = self.encode_meta();
        let graph = encode_graph(&self.graph);
        let params = encode_params(&self.params);
        let layers = self.encode_layers();
        let packed = self.encode_packed();

        let mut out = Vec::with_capacity(
            64 + meta.len() + graph.len() + params.len() + layers.len() + packed.len(),
        );
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&ENDIAN_TAG.to_le_bytes());
        out.extend_from_slice(&SECTION_COUNT.to_le_bytes());
        let header_fnv = fnv64(&out);
        out.extend_from_slice(&header_fnv.to_le_bytes());
        let header = out.len();

        let mut sizes = SectionSizes {
            header,
            meta: 0,
            graph: 0,
            params: 0,
            layers: 0,
            packed: 0,
        };
        sizes.meta = append_section(&mut out, SECTION_META, &meta);
        sizes.graph = append_section(&mut out, SECTION_GRAPH, &graph);
        sizes.params = append_section(&mut out, SECTION_PARAMS, &params);
        sizes.layers = append_section(&mut out, SECTION_LAYERS, &layers);
        sizes.packed = append_section(&mut out, SECTION_PACKED, &packed);
        (out, sizes)
    }

    /// Writes the artifact to `path`.
    pub fn write_file(&self, path: &std::path::Path) -> Result<SectionSizes, ArtifactError> {
        let (bytes, sizes) = self.to_bytes_sized();
        std::fs::write(path, bytes)?;
        Ok(sizes)
    }

    /// Reads and fully validates an artifact from `path`.
    pub fn read_file(path: &std::path::Path) -> Result<Self, ArtifactError> {
        Self::from_bytes(&std::fs::read(path)?)
    }

    /// Deserializes and fully validates artifact bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ArtifactError> {
        Self::from_bytes_with(bytes, LoadOptions::default())
    }

    /// [`Self::from_bytes`] with explicit [`LoadOptions`].
    pub fn from_bytes_with(bytes: &[u8], opts: LoadOptions) -> Result<Self, ArtifactError> {
        let _span = snapea_obs::span!("artifact/load");
        let mut r = Reader::new(bytes, "header");
        let magic = r.take_array::<4>()?;
        if magic != MAGIC {
            return Err(ArtifactError::BadMagic(magic));
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(ArtifactError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let endian = r.u32()?;
        if endian != ENDIAN_TAG {
            return Err(ArtifactError::BadEndianTag(endian));
        }
        let sections = r.u32()?;
        let stored = r.u64()?;
        let computed = fnv64(bytes.get(..16).unwrap_or_default());
        if stored != computed {
            return Err(ArtifactError::Checksum {
                region: "header",
                stored,
                computed,
            });
        }
        if sections != SECTION_COUNT {
            return Err(ArtifactError::Invalid {
                region: "header",
                detail: format!("section count {sections} != {SECTION_COUNT}"),
            });
        }

        let meta = read_section(&mut r, SECTION_META, "META", true)?;
        let graph_bytes = read_section(&mut r, SECTION_GRAPH, "GRAPH", true)?;
        let params_bytes = read_section(&mut r, SECTION_PARAMS, "PARAMS", true)?;
        let layers_bytes =
            read_section(&mut r, SECTION_LAYERS, "LAYERS", !opts.skip_layers_checksum)?;
        let packed_bytes = read_section(&mut r, SECTION_PACKED, "PACKED", true)?;
        if r.remaining() > 0 {
            return Err(ArtifactError::TrailingBytes {
                extra: r.remaining(),
            });
        }

        let (input_c, input_h, input_w, fmt) = decode_meta(&meta)?;
        let graph = decode_graph(&graph_bytes)?;
        let params = decode_params(&params_bytes, &graph)?;
        let layers = decode_layers(&layers_bytes, &graph, &params, fmt)?;
        validate_packed(&packed_bytes, &layers)?;
        snapea_obs::event!(
            "artifact/loaded",
            bytes = bytes.len() as u64,
            layers = layers.len() as u64,
            version = u64::from(version),
        );
        Ok(CompiledModel {
            graph,
            params,
            input_c,
            input_h,
            input_w,
            fmt,
            layers,
        })
    }

    fn encode_meta(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.usize32(self.input_c);
        w.usize32(self.input_h);
        w.usize32(self.input_w);
        w.u32(self.fmt.frac_bits());
        w.done()
    }

    fn encode_layers(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.usize32(self.layers.len());
        for l in &self.layers {
            w.usize32(l.node);
            w.usize32(l.in_h);
            w.usize32(l.in_w);
            w.usize32(l.kernels.len());
            for (k, q) in l.kernels.iter().zip(&l.q16) {
                let r = &k.reordered;
                w.usize32(r.len());
                for &i in r.order() {
                    w.u32(i);
                }
                for &v in r.weights() {
                    w.f32(v);
                }
                w.usize32(r.spec_len());
                w.usize32(r.neg_start());
                w.f32(k.pau.threshold());
                for &Q16(bits) in q {
                    w.i16(bits);
                }
            }
            let plan = &l.plan;
            w.usize32(plan.windows());
            w.usize32(plan.window_len());
            w.usize32(plan.interior_windows());
            for &t in plan.gather().taps() {
                w.i32(t);
            }
            for &d in plan.delta() {
                w.i32(d);
            }
            for &b in plan.bases() {
                w.i32(b);
            }
        }
        w.done()
    }

    /// PACKED section: each kernel's lane-major packed weights (walk-order
    /// values `+0.0`-padded to whole lane blocks). Fully derivable from
    /// LAYERS — stored so run time maps the layout straight off disk, and
    /// cross-validated on load so a file cannot smuggle in a packed copy
    /// that disagrees with the weights the scalar paths use.
    fn encode_packed(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.usize32(self.layers.len());
        for l in &self.layers {
            w.usize32(l.node);
            w.usize32(l.kernels.len());
            for k in &l.kernels {
                w.usize32(k.packed().len());
                for &v in k.packed() {
                    w.f32(v);
                }
            }
        }
        w.done()
    }
}

/// Validates the PACKED section against the already-decoded layers: per
/// kernel, the stored values must be bitwise the walk-order weights for the
/// unpadded prefix and exactly `+0.0` (all-zero bits) for the lane-padding
/// tail — i.e. identical to what [`snapea_tensor::lane::pack_weights`]
/// produces, which is what [`KernelExec::new`] already rebuilt.
fn validate_packed(bytes: &[u8], layers: &[CompiledLayer]) -> Result<(), ArtifactError> {
    const R: &str = "PACKED";
    let invalid = |detail: String| ArtifactError::Invalid { region: R, detail };
    let mut r = Reader::new(bytes, R);
    let count = r.len32()?;
    if count != layers.len() {
        return Err(invalid(format!(
            "{count} packed layer(s) but LAYERS holds {}",
            layers.len()
        )));
    }
    for l in layers {
        let node = r.len32()?;
        if node != l.node {
            return Err(invalid(format!(
                "packed layer order: found node {node}, expected {}",
                l.node
            )));
        }
        let n_kernels = r.len32()?;
        if n_kernels != l.kernels.len() {
            return Err(invalid(format!(
                "node {node}: {n_kernels} packed kernel(s), LAYERS holds {}",
                l.kernels.len()
            )));
        }
        for (k, kexec) in l.kernels.iter().enumerate() {
            let len = r.len32()?;
            let expect = kexec.packed();
            if len != expect.len() {
                return Err(invalid(format!(
                    "node {node} kernel {k}: packed length {len}, expected {} \
                     (weights padded to whole lane blocks)",
                    expect.len()
                )));
            }
            let stored = r.f32s(len)?;
            let unpadded = kexec.reordered.len();
            for (p, (&s, &e)) in stored.iter().zip(expect).enumerate() {
                if s.to_bits() != e.to_bits() {
                    let what = if p < unpadded {
                        "disagrees with the walk-order weight"
                    } else {
                        "lane padding is not +0.0"
                    };
                    return Err(invalid(format!(
                        "node {node} kernel {k} position {p}: {what}"
                    )));
                }
            }
        }
    }
    r.finish()?;
    Ok(())
}

/// Appends one framed section (tag, length, payload, checksum); returns the
/// number of bytes appended.
fn append_section(out: &mut Vec<u8>, tag: u32, payload: &[u8]) -> usize {
    let before = out.len();
    let mut f = Fnv::new();
    let tag_b = tag.to_le_bytes();
    let len_b = (payload.len() as u64).to_le_bytes();
    f.update(&tag_b);
    f.update(&len_b);
    f.update(payload);
    out.extend_from_slice(&tag_b);
    out.extend_from_slice(&len_b);
    out.extend_from_slice(payload);
    out.extend_from_slice(&f.finish().to_le_bytes());
    out.len() - before
}

/// Reads one framed section, enforcing the expected tag and (optionally)
/// verifying its checksum. Returns the payload bytes.
fn read_section(
    r: &mut Reader<'_>,
    tag: u32,
    region: &'static str,
    verify: bool,
) -> Result<Vec<u8>, ArtifactError> {
    r.region = region;
    let found = r.u32()?;
    if found != tag {
        return Err(ArtifactError::Invalid {
            region,
            detail: format!("expected section tag {tag}, found {found}"),
        });
    }
    let len = r.u64()?;
    let len: usize = len.try_into().map_err(|_| ArtifactError::Bounds {
        region,
        detail: format!("payload length {len} exceeds the address space"),
    })?;
    let payload = r.chunk(len)?.to_vec();
    let stored = r.u64()?;
    if verify {
        let mut f = Fnv::new();
        f.update(&tag.to_le_bytes());
        f.update(&(payload.len() as u64).to_le_bytes());
        f.update(&payload);
        let computed = f.finish();
        if stored != computed {
            return Err(ArtifactError::Checksum {
                region,
                stored,
                computed,
            });
        }
    }
    Ok(payload)
}

// ----------------------------------------------------------------------
// META
// ----------------------------------------------------------------------

fn decode_meta(bytes: &[u8]) -> Result<(usize, usize, usize, Q16Format), ArtifactError> {
    let mut r = Reader::new(bytes, "META");
    let c = r.len32()?;
    let h = r.len32()?;
    let w = r.len32()?;
    let frac = r.u32()?;
    if frac >= 16 {
        return Err(ArtifactError::Bounds {
            region: "META",
            detail: format!("frac_bits {frac} >= 16"),
        });
    }
    if c == 0 || h == 0 || w == 0 {
        return Err(ArtifactError::Bounds {
            region: "META",
            detail: format!("degenerate input shape {c}x{h}x{w}"),
        });
    }
    r.finish()?;
    Ok((c, h, w, Q16Format::new(frac)))
}

// ----------------------------------------------------------------------
// GRAPH
// ----------------------------------------------------------------------

const OP_INPUT: u8 = 0;
const OP_CONV: u8 = 1;
const OP_RELU: u8 = 2;
const OP_MAXPOOL: u8 = 3;
const OP_AVGPOOL: u8 = 4;
const OP_CONCAT: u8 = 5;
const OP_FLATTEN: u8 = 6;
const OP_LINEAR: u8 = 7;
const OP_LRN: u8 = 8;

fn encode_graph(graph: &Graph) -> Vec<u8> {
    let mut w = Writer::new();
    w.usize32(graph.len());
    for node in graph.nodes() {
        w.str(&node.name);
        match &node.op {
            Op::Input => w.u8(OP_INPUT),
            Op::Conv(c) => {
                w.u8(OP_CONV);
                let s = c.weight().shape();
                w.usize32(s.n);
                w.usize32(s.c);
                w.usize32(s.h);
                w.usize32(s.w);
                w.usize32(c.geom().stride);
                w.usize32(c.geom().pad);
                for &v in c.weight().as_slice() {
                    w.f32(v);
                }
                for &v in c.bias() {
                    w.f32(v);
                }
            }
            Op::Relu => w.u8(OP_RELU),
            Op::MaxPool(p) => {
                w.u8(OP_MAXPOOL);
                w.usize32(p.geom.k);
                w.usize32(p.geom.stride);
                w.usize32(p.geom.pad);
            }
            Op::AvgPool(p) => {
                w.u8(OP_AVGPOOL);
                w.usize32(p.geom.k);
                w.usize32(p.geom.stride);
                w.usize32(p.geom.pad);
            }
            Op::Concat => w.u8(OP_CONCAT),
            Op::Flatten => w.u8(OP_FLATTEN),
            Op::Linear(l) => {
                w.u8(OP_LINEAR);
                let s = l.weight().shape();
                w.usize32(s.rows);
                w.usize32(s.cols);
                for &v in l.weight().as_slice() {
                    w.f32(v);
                }
                for &v in l.bias() {
                    w.f32(v);
                }
            }
            Op::Lrn(l) => {
                w.u8(OP_LRN);
                w.usize32(l.size);
                w.f32(l.alpha);
                w.f32(l.beta);
                w.f32(l.k);
            }
        }
        w.usize32(node.inputs.len());
        for &i in &node.inputs {
            w.usize32(i);
        }
    }
    w.done()
}

fn decode_graph(bytes: &[u8]) -> Result<Graph, ArtifactError> {
    const R: &str = "GRAPH";
    let mut r = Reader::new(bytes, R);
    let count = r.len32()?;
    let mut nodes = Vec::new();
    for id in 0..count {
        let name = r.str()?;
        let op = match r.u8()? {
            OP_INPUT => Op::Input,
            OP_CONV => {
                let c_out = r.len32()?;
                let c_in = r.len32()?;
                let kh = r.len32()?;
                let kw = r.len32()?;
                let stride = r.len32()?;
                let pad = r.len32()?;
                let n = checked_product(R, &[c_out, c_in, kh, kw])?;
                let weight = r.f32s(n)?;
                let bias = r.f32s(c_out)?;
                if kh == 0 || kw == 0 || stride == 0 {
                    return Err(ArtifactError::Bounds {
                        region: R,
                        detail: format!("degenerate conv geometry {kh}x{kw} stride {stride}"),
                    });
                }
                let weight =
                    Tensor4::from_vec(Shape4::new(c_out, c_in, kh, kw), weight).map_err(|e| {
                        ArtifactError::Invalid {
                            region: R,
                            detail: format!("conv weight tensor: {e}"),
                        }
                    })?;
                let geom = ConvGeom {
                    kh,
                    kw,
                    stride,
                    pad,
                };
                Op::Conv(Conv2d::from_parts(weight, bias, geom))
            }
            OP_RELU => Op::Relu,
            OP_MAXPOOL => {
                let (k, stride, pad) = (r.len32()?, r.len32()?, r.len32()?);
                pool_geom(R, k, stride)?;
                Op::MaxPool(MaxPool::with_pad(k, stride, pad))
            }
            OP_AVGPOOL => {
                let (k, stride, pad) = (r.len32()?, r.len32()?, r.len32()?);
                pool_geom(R, k, stride)?;
                Op::AvgPool(AvgPool {
                    geom: PoolGeom::with_pad(k, stride, pad),
                })
            }
            OP_CONCAT => Op::Concat,
            OP_FLATTEN => Op::Flatten,
            OP_LINEAR => {
                let rows = r.len32()?;
                let cols = r.len32()?;
                let n = checked_product(R, &[rows, cols])?;
                let weight = r.f32s(n)?;
                let bias = r.f32s(rows)?;
                let weight = Tensor2::from_vec(Shape2::new(rows, cols), weight).map_err(|e| {
                    ArtifactError::Invalid {
                        region: R,
                        detail: format!("linear weight matrix: {e}"),
                    }
                })?;
                Op::Linear(Linear::from_parts(weight, bias))
            }
            OP_LRN => {
                let size = r.len32()?;
                let (alpha, beta, k) = (r.f32()?, r.f32()?, r.f32()?);
                if size == 0 {
                    return Err(ArtifactError::Bounds {
                        region: R,
                        detail: "LRN window size 0".to_string(),
                    });
                }
                Op::Lrn(Lrn::new(size, alpha, beta, k))
            }
            other => {
                return Err(ArtifactError::Invalid {
                    region: R,
                    detail: format!("unknown op tag {other} at node {id}"),
                })
            }
        };
        let n_inputs = r.len32()?;
        let mut inputs = Vec::with_capacity(n_inputs.min(r.remaining() / 4 + 1));
        for _ in 0..n_inputs {
            inputs.push(r.len32()?);
        }
        nodes.push(Node { name, op, inputs });
    }
    r.finish()?;
    Graph::from_nodes(nodes).map_err(|detail| ArtifactError::Invalid { region: R, detail })
}

fn pool_geom(region: &'static str, k: usize, stride: usize) -> Result<(), ArtifactError> {
    if k == 0 || stride == 0 {
        return Err(ArtifactError::Bounds {
            region,
            detail: format!("degenerate pool geometry k {k} stride {stride}"),
        });
    }
    Ok(())
}

// ----------------------------------------------------------------------
// PARAMS
// ----------------------------------------------------------------------

const LAYER_EXACT: u8 = 0;
const LAYER_PREDICTIVE: u8 = 1;
const KERNEL_EXACT: u8 = 0;
const KERNEL_SPECULATE: u8 = 1;

fn encode_params(params: &NetworkParams) -> Vec<u8> {
    let mut w = Writer::new();
    w.usize32(params.len());
    for (id, p) in params.iter() {
        w.usize32(id);
        match p {
            LayerParams::Exact => w.u8(LAYER_EXACT),
            LayerParams::Predictive(modes) => {
                w.u8(LAYER_PREDICTIVE);
                w.usize32(modes.len());
                for m in modes {
                    match m {
                        KernelMode::Exact => w.u8(KERNEL_EXACT),
                        KernelMode::Speculate(kp) => {
                            w.u8(KERNEL_SPECULATE);
                            w.f32(kp.threshold);
                            w.usize32(kp.groups);
                        }
                    }
                }
            }
        }
    }
    w.done()
}

fn decode_params(bytes: &[u8], graph: &Graph) -> Result<NetworkParams, ArtifactError> {
    const R: &str = "PARAMS";
    let mut r = Reader::new(bytes, R);
    let count = r.len32()?;
    let mut params = NetworkParams::new();
    let mut prev: Option<usize> = None;
    for _ in 0..count {
        let id = r.len32()?;
        if prev.is_some_and(|p| p >= id) {
            return Err(ArtifactError::Invalid {
                region: R,
                detail: format!("layer ids not strictly increasing at {id}"),
            });
        }
        prev = Some(id);
        if id >= graph.len() || !matches!(graph.node(id).op, Op::Conv(_)) {
            return Err(ArtifactError::Bounds {
                region: R,
                detail: format!("node {id} is not a convolution of the stored graph"),
            });
        }
        let p = match r.u8()? {
            LAYER_EXACT => LayerParams::Exact,
            LAYER_PREDICTIVE => {
                let n = r.len32()?;
                let mut modes = Vec::with_capacity(n.min(r.remaining() + 1));
                for _ in 0..n {
                    modes.push(match r.u8()? {
                        KERNEL_EXACT => KernelMode::Exact,
                        KERNEL_SPECULATE => {
                            let threshold = r.f32()?;
                            let groups = r.len32()?;
                            if groups == 0 {
                                return Err(ArtifactError::Bounds {
                                    region: R,
                                    detail: "speculative group count 0".to_string(),
                                });
                            }
                            KernelMode::spec(threshold, groups)
                        }
                        other => {
                            return Err(ArtifactError::Invalid {
                                region: R,
                                detail: format!("unknown kernel mode tag {other}"),
                            })
                        }
                    });
                }
                LayerParams::Predictive(modes)
            }
            other => {
                return Err(ArtifactError::Invalid {
                    region: R,
                    detail: format!("unknown layer mode tag {other}"),
                })
            }
        };
        params.set(id, p);
    }
    r.finish()?;
    Ok(params)
}

// ----------------------------------------------------------------------
// LAYERS
// ----------------------------------------------------------------------

fn decode_layers(
    bytes: &[u8],
    graph: &Graph,
    params: &NetworkParams,
    fmt: Q16Format,
) -> Result<Vec<CompiledLayer>, ArtifactError> {
    const R: &str = "LAYERS";
    let invalid = |detail: String| ArtifactError::Invalid { region: R, detail };
    let mut r = Reader::new(bytes, R);
    let count = r.len32()?;
    let expected: Vec<NodeId> = params
        .iter()
        .filter(|(_, p)| matches!(p, LayerParams::Predictive(_)))
        .map(|(id, _)| id)
        .collect();
    if count != expected.len() {
        return Err(invalid(format!(
            "{count} compiled layer(s) but the parameters declare {} predictive layer(s)",
            expected.len()
        )));
    }
    let mut layers = Vec::with_capacity(count);
    for &want_node in &expected {
        let node = r.len32()?;
        if node != want_node {
            return Err(invalid(format!(
                "compiled layer order: found node {node}, expected {want_node}"
            )));
        }
        let Op::Conv(conv) = &graph.node(node).op else {
            return Err(invalid(format!("node {node} is not a convolution")));
        };
        let Some(LayerParams::Predictive(modes)) = params.get(node) else {
            return Err(invalid(format!("node {node} has no predictive parameters")));
        };
        let in_h = r.len32()?;
        let in_w = r.len32()?;
        let n_kernels = r.len32()?;
        if n_kernels != conv.c_out() || modes.len() != conv.c_out() {
            return Err(invalid(format!(
                "node {node}: {n_kernels} kernel(s) stored, {} mode(s), conv has {}",
                modes.len(),
                conv.c_out()
            )));
        }
        let window_len = conv.window_len();
        let mut kernels = Vec::with_capacity(n_kernels);
        let mut q16 = Vec::with_capacity(n_kernels);
        for (k, mode) in modes.iter().enumerate() {
            let len = r.len32()?;
            if len != window_len {
                return Err(invalid(format!(
                    "node {node} kernel {k}: {len} weight(s) stored, window length is {window_len}"
                )));
            }
            let order = r.u32s(len)?;
            let weights = r.f32s(len)?;
            let spec_len = r.len32()?;
            let neg_start = r.len32()?;
            let threshold = r.f32()?;
            let stored_q = r.i16s(len)?;
            let reordered = ReorderedKernel::from_parts(order, weights, spec_len, neg_start)
                .map_err(|e| invalid(format!("node {node} kernel {k}: {e}")))?;
            // Cross-checks against the graph and parameter sections: the
            // compiled state must be exactly what compiling the stored model
            // would produce.
            let original = conv.weight().item(k);
            for (p, &oi) in reordered.order().iter().enumerate() {
                let (Some(&stored_w), Some(&orig_w)) =
                    (reordered.weights().get(p), original.get(oi as usize))
                else {
                    return Err(invalid(format!(
                        "node {node} kernel {k}: index {oi} escapes the original weights"
                    )));
                };
                if stored_w.to_bits() != orig_w.to_bits() {
                    return Err(invalid(format!(
                        "node {node} kernel {k} position {p}: reordered weight disagrees with the model weights"
                    )));
                }
            }
            match mode {
                KernelMode::Exact => {
                    if spec_len != 0 {
                        return Err(invalid(format!(
                            "node {node} kernel {k}: exact mode but speculative length {spec_len}"
                        )));
                    }
                }
                KernelMode::Speculate(kp) => {
                    if spec_len != kp.groups || threshold.to_bits() != kp.threshold.to_bits() {
                        return Err(invalid(format!(
                            "node {node} kernel {k}: stored PAU (Th {threshold}, N {spec_len}) disagrees with parameters (Th {}, N {})",
                            kp.threshold, kp.groups
                        )));
                    }
                }
            }
            let expect_q = quantize_slice(fmt, reordered.weights());
            if stored_q != expect_q {
                return Err(invalid(format!(
                    "node {node} kernel {k}: stored q16 weights disagree with quantization"
                )));
            }
            let pau = Pau::from_parts(threshold, spec_len, neg_start);
            kernels.push(KernelExec::new(reordered, pau));
            q16.push(stored_q);
        }
        // Plan tables, bounds-checked against the layer's activation size.
        let windows = r.len32()?;
        let plan_wl = r.len32()?;
        let interior = r.len32()?;
        let item_len = checked_product(R, &[conv.c_in(), in_h, in_w])?;
        if plan_wl != window_len {
            return Err(invalid(format!(
                "node {node}: plan window length {plan_wl} != kernel window length {window_len}"
            )));
        }
        let geom = conv.geom();
        let expect_windows = geom.out_h(in_h) * geom.out_w(in_w);
        if windows != expect_windows {
            return Err(invalid(format!(
                "node {node}: {windows} plan window(s), geometry implies {expect_windows}"
            )));
        }
        let taps = r.i32s(checked_product(R, &[windows, plan_wl])?)?;
        let delta = r.i32s(plan_wl)?;
        let bases = r.i32s(windows)?;
        let gather = GatherTable::from_parts(windows, plan_wl, taps, item_len)
            .map_err(|e| invalid(format!("node {node} gather table: {e}")))?;
        let plan = WindowPlan::from_parts(gather, delta, bases, interior, item_len)
            .map_err(|e| invalid(format!("node {node} window plan: {e}")))?;
        layers.push(CompiledLayer {
            node,
            in_h,
            in_w,
            kernels,
            q16,
            plan: Arc::new(plan),
        });
    }
    r.finish()?;
    Ok(layers)
}

fn checked_product(region: &'static str, factors: &[usize]) -> Result<usize, ArtifactError> {
    let mut acc = 1usize;
    for &f in factors {
        acc = acc.checked_mul(f).ok_or_else(|| ArtifactError::Bounds {
            region,
            detail: format!("size product overflows ({factors:?})"),
        })?;
    }
    Ok(acc)
}

// ----------------------------------------------------------------------
// Little-endian writer/reader
// ----------------------------------------------------------------------

/// Little-endian byte sink for section payloads.
struct Writer(Vec<u8>);

impl Writer {
    fn new() -> Self {
        Writer(Vec::new())
    }
    fn done(self) -> Vec<u8> {
        self.0
    }
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    /// Writes a usize as u32 (all artifact counts fit comfortably; the
    /// assert documents the format bound rather than guarding a real path).
    fn usize32(&mut self, v: usize) {
        assert!(v <= u32::MAX as usize, "artifact count exceeds u32");
        self.u32(v as u32);
    }
    fn i16(&mut self, v: i16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn i32(&mut self, v: i32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.usize32(s.len());
        self.0.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked little-endian byte reader. Every primitive read returns a
/// typed [`ArtifactError::Truncated`] instead of panicking, and bulk reads
/// verify the byte count against the remaining input *before* allocating,
/// so corrupted counts cannot trigger allocation blow-ups.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    region: &'static str,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8], region: &'static str) -> Self {
        Reader {
            bytes,
            pos: 0,
            region,
        }
    }

    fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }

    fn chunk(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        match self.bytes.get(self.pos..self.pos.saturating_add(n)) {
            Some(s) => {
                self.pos += n;
                Ok(s)
            }
            None => Err(ArtifactError::Truncated {
                region: self.region,
                needed: n,
                available: self.remaining(),
            }),
        }
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], ArtifactError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.chunk(N)?);
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.take_array::<1>()?[0])
    }
    fn u32(&mut self) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(self.take_array::<4>()?))
    }
    fn u64(&mut self) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(self.take_array::<8>()?))
    }
    fn f32(&mut self) -> Result<f32, ArtifactError> {
        Ok(f32::from_bits(self.u32()?))
    }
    /// A u32-encoded count/index as usize.
    fn len32(&mut self) -> Result<usize, ArtifactError> {
        Ok(self.u32()? as usize)
    }

    fn u32s(&mut self, n: usize) -> Result<Vec<u32>, ArtifactError> {
        let raw = self.chunk(n.checked_mul(4).ok_or(ArtifactError::Bounds {
            region: self.region,
            detail: "u32 count overflows".to_string(),
        })?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, ArtifactError> {
        Ok(self.u32s(n)?.into_iter().map(f32::from_bits).collect())
    }

    fn i32s(&mut self, n: usize) -> Result<Vec<i32>, ArtifactError> {
        Ok(self
            .u32s(n)?
            .into_iter()
            .map(|v| i32::from_le_bytes(v.to_le_bytes()))
            .collect())
    }

    fn i16s(&mut self, n: usize) -> Result<Vec<Q16>, ArtifactError> {
        let raw = self.chunk(n.checked_mul(2).ok_or(ArtifactError::Bounds {
            region: self.region,
            detail: "i16 count overflows".to_string(),
        })?)?;
        Ok(raw
            .chunks_exact(2)
            .map(|c| Q16(i16::from_le_bytes([c[0], c[1]])))
            .collect())
    }

    fn str(&mut self) -> Result<String, ArtifactError> {
        let n = self.len32()?;
        let raw = self.chunk(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| ArtifactError::Invalid {
            region: self.region,
            detail: "string is not valid UTF-8".to_string(),
        })
    }

    /// Declares the payload fully consumed.
    fn finish(&self) -> Result<(), ArtifactError> {
        if self.remaining() > 0 {
            return Err(ArtifactError::Invalid {
                region: self.region,
                detail: format!("{} unread payload byte(s)", self.remaining()),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::KernelParams;
    use snapea_nn::graph::GraphBuilder;
    use snapea_tensor::init;

    /// Deterministic two-conv model with mixed exact/predictive kernels.
    fn tiny_model() -> (Graph, NetworkParams) {
        let mut rng = init::rng(0xA57);
        let mut b = GraphBuilder::new();
        let x = b.input();
        let c1 = b.conv("conv1", x, 3, 4, ConvGeom::square(3, 1, 1), &mut rng);
        let r1 = b.relu("relu1", c1);
        let c2 = b.conv("conv2", r1, 4, 3, ConvGeom::square(3, 2, 0), &mut rng);
        let r2 = b.relu("relu2", c2);
        let f = b.flatten("flat", r2);
        let _ = b.linear("fc", f, 3 * 3 * 3, 5, &mut rng);
        let g = b.build();
        let mut p = NetworkParams::new();
        p.set(
            1,
            LayerParams::Predictive(vec![
                KernelMode::Exact,
                KernelMode::spec(0.25, 4),
                KernelMode::spec(-0.5, 2),
                KernelMode::spec(f32::INFINITY, 3),
            ]),
        );
        p.set(3, LayerParams::uniform(3, KernelParams::new(0.1, 5)));
        (g, p)
    }

    fn compile_tiny() -> CompiledModel {
        let (g, p) = tiny_model();
        CompiledModel::compile(&g, &p, (3, 8, 8), Q16Format::default())
    }

    #[test]
    fn round_trip_is_byte_exact_and_executes_identically() {
        let cm = compile_tiny();
        let bytes = cm.to_bytes();
        let loaded = CompiledModel::from_bytes(&bytes).expect("valid artifact");
        assert_eq!(loaded.to_bytes(), bytes, "canonical re-serialization");

        let input = init::uniform4(Shape4::new(2, 3, 8, 8), 1.0, &mut init::rng(9)).map(f32::abs);
        let fresh = cm.forward(&input);
        let from_artifact = loaded.forward(&input);
        assert_eq!(fresh.len(), from_artifact.len());
        for (a, b) in fresh.iter().zip(&from_artifact) {
            assert_eq!(a.as_slice(), b.as_slice(), "bit-identical activations");
        }
    }

    #[test]
    fn artifact_matches_spec_net_execution() {
        let (g, p) = tiny_model();
        let cm = CompiledModel::compile(&g, &p, (3, 8, 8), Q16Format::default());
        let loaded = CompiledModel::from_bytes(&cm.to_bytes()).expect("valid artifact");
        let input = init::uniform4(Shape4::new(1, 3, 8, 8), 1.0, &mut init::rng(3)).map(f32::abs);
        let spec = crate::spec_net::SpecNet::new(&g, &p).forward(&input);
        let art = loaded.forward(&input);
        for (a, b) in spec.iter().zip(&art) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn header_field_corruptions_yield_typed_errors() {
        let bytes = compile_tiny().to_bytes();

        let mut b = bytes.clone();
        b[0] = b'X';
        assert!(matches!(
            CompiledModel::from_bytes(&b),
            Err(ArtifactError::BadMagic(_))
        ));

        let mut b = bytes.clone();
        b[4] = 0xFF; // version
        assert!(matches!(
            CompiledModel::from_bytes(&b),
            Err(ArtifactError::UnsupportedVersion { .. })
        ));

        let mut b = bytes.clone();
        b[8] ^= 0x01; // endian tag
        assert!(matches!(
            CompiledModel::from_bytes(&b),
            Err(ArtifactError::BadEndianTag(_))
        ));

        let mut b = bytes.clone();
        b[12] ^= 0x01; // section count (covered by the header checksum)
        assert!(matches!(
            CompiledModel::from_bytes(&b),
            Err(ArtifactError::Checksum {
                region: "header",
                ..
            })
        ));
    }

    #[test]
    fn payload_corruption_truncation_and_trailing_are_rejected() {
        let bytes = compile_tiny().to_bytes();

        // Flip one bit in every section's payload territory.
        for pos in [40usize, bytes.len() / 2, bytes.len() - 9] {
            let mut b = bytes.clone();
            b[pos] ^= 0x10;
            assert!(
                CompiledModel::from_bytes(&b).is_err(),
                "bit flip at {pos} must be rejected"
            );
        }

        for cut in [bytes.len() - 1, bytes.len() / 2, 20, 3] {
            let b = &bytes[..cut];
            assert!(matches!(
                CompiledModel::from_bytes(b),
                Err(ArtifactError::Truncated { .. })
            ));
        }

        let mut b = bytes.clone();
        b.push(0);
        assert!(matches!(
            CompiledModel::from_bytes(&b),
            Err(ArtifactError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn skip_layers_checksum_accepts_plan_corruption() {
        // The inject-bug smoke's premise: with the LAYERS checksum verify
        // skipped, a corruption in otherwise-unvalidated plan bytes loads
        // successfully — the corruption battery exists to catch exactly
        // this class of bug.
        let cm = compile_tiny();
        let bytes = cm.to_bytes();
        let sizes = cm.to_bytes_sized().1;
        let layers_start = bytes.len() - sizes.layers;
        // Find a tap byte to nudge: the last section's tail holds the plan
        // tables; toggling the low bit of an interior base keeps bounds.
        let mut b = bytes.clone();
        let pos = layers_start + sizes.layers / 2;
        b[pos] ^= 0x01;
        // Fully-verified load rejects it...
        assert!(CompiledModel::from_bytes(&b).is_err());
        // ...and the only acceptable outcomes under the planted bug are a
        // typed rejection (semantic cross-check caught it) or a load — never
        // a panic.
        let opts = LoadOptions {
            skip_layers_checksum: true,
        };
        let _ = CompiledModel::from_bytes_with(&b, opts);
    }

    #[test]
    fn section_sizes_cover_the_file() {
        let cm = compile_tiny();
        let (bytes, sizes) = cm.to_bytes_sized();
        assert_eq!(sizes.total(), bytes.len());
        assert_eq!(sizes.header, 24);
    }

    #[test]
    fn install_plans_primes_the_cache() {
        let cm = compile_tiny();
        exec::clear_plan_cache();
        cm.install_plans();
        assert_eq!(exec::plan_cache_len(), 2);
    }
}
