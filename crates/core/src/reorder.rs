//! Static weight reordering — the paper's Sign-Based Weight Reordering and
//! Weight Reordering (predictive) passes.
//!
//! Reordering is purely a software transform: the hardware receives the
//! weights in the new order plus an *index buffer* mapping each reordered
//! position back to the original weight index, so the PE can fetch the
//! matching input value (the inputs cannot be reordered — their order is
//! fixed by the activation layout).

use serde::{Deserialize, Serialize};

/// A kernel's weights in SnaPEA execution order, together with the index
/// buffer contents.
///
/// Layout of the reordered sequence:
///
/// ```text
/// [ speculative set (spec_len) | remaining positives | remaining negatives ]
///                                                      ^ neg_start
/// ```
///
/// In exact mode `spec_len == 0`. `neg_start` is the position at which the
/// hardware begins its per-MAC sign checks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReorderedKernel {
    order: Vec<u32>,
    weights: Vec<f32>,
    spec_len: usize,
    neg_start: usize,
}

impl ReorderedKernel {
    /// Reassembles a kernel from its stored parts (the compiled-model
    /// artifact loader's entry point). Validates every structural invariant
    /// the reordering passes establish, so a kernel built from untrusted
    /// bytes is indistinguishable from a freshly reordered one:
    ///
    /// * `order` is a permutation of `0..weights.len()`,
    /// * `spec_len <= neg_start <= len` (the three-region layout).
    ///
    /// Value-level agreement with the original weights (artifact cross-check)
    /// is the caller's job — this type does not store the originals.
    pub fn from_parts(
        order: Vec<u32>,
        weights: Vec<f32>,
        spec_len: usize,
        neg_start: usize,
    ) -> Result<Self, String> {
        let len = order.len();
        if weights.len() != len {
            return Err(format!(
                "weight count {} != index-buffer length {len}",
                weights.len()
            ));
        }
        if spec_len > neg_start || neg_start > len {
            return Err(format!(
                "region layout violated: spec_len {spec_len} <= neg_start {neg_start} <= len {len} required"
            ));
        }
        let mut seen = vec![false; len];
        for &i in &order {
            match seen.get_mut(i as usize) {
                Some(s) if !*s => *s = true,
                Some(_) => return Err(format!("index {i} repeats in the index buffer")),
                None => return Err(format!("index {i} out of range for {len} weights")),
            }
        }
        Ok(Self {
            order,
            weights,
            spec_len,
            neg_start,
        })
    }

    /// The index buffer: `order()[p]` is the original index of the weight at
    /// reordered position `p`.
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// The weights in reordered (execution) order.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Number of leading speculative weights (0 in exact mode).
    pub fn spec_len(&self) -> usize {
        self.spec_len
    }

    /// Position where the trailing negative-weight region begins — the point
    /// from which the PAU performs per-MAC sign checks.
    pub fn neg_start(&self) -> usize {
        self.neg_start
    }

    /// Total number of weights.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the kernel has no weights.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// Appends the negative weights in descending magnitude order.
///
/// Within-subset order does not affect exactness (the sign check is only
/// sound once *all* positives are done), but processing the largest-magnitude
/// negatives first drives the partial sum below zero soonest, maximising the
/// number of skipped MACs. This is the natural implementation choice for the
/// paper's "negative subset".
fn push_negatives_descending(order: &mut Vec<u32>, weights: &[f32], skip: impl Fn(u32) -> bool) {
    let mut negs: Vec<u32> = (0..weights.len() as u32)
        .filter(|&i| weights[i as usize] < 0.0 && !skip(i))
        .collect();
    negs.sort_by(|&a, &b| {
        weights[a as usize]
            .total_cmp(&weights[b as usize])
            .then(a.cmp(&b))
    });
    order.extend(negs);
}

/// Exact-mode reordering: non-negative weights first (original relative
/// order preserved), then negative weights in descending magnitude order
/// (earliest possible sign-check termination).
pub fn sign_reorder(weights: &[f32]) -> ReorderedKernel {
    let mut order: Vec<u32> = Vec::with_capacity(weights.len());
    for (i, &w) in weights.iter().enumerate() {
        if w >= 0.0 {
            order.push(i as u32);
        }
    }
    let neg_start = order.len();
    push_negatives_descending(&mut order, weights, |_| false);
    let reordered: Vec<f32> = order.iter().map(|&i| weights[i as usize]).collect();
    ReorderedKernel {
        order,
        weights: reordered,
        spec_len: 0,
        neg_start,
    }
}

/// Predictive-mode reordering (paper §IV-A): sort the weights in ascending
/// order, partition them into `groups` near-equal contiguous groups, take the
/// largest-magnitude representative of each group as the speculative set,
/// then order the remaining weights positive-first / negative-last as in
/// [`sign_reorder`].
///
/// Selecting one representative per group — rather than simply the `groups`
/// largest-magnitude weights — lets small weights (which may multiply large,
/// data-dependent inputs) participate in the speculation; the paper reports
/// that magnitude-only selection "drastically declines" accuracy, and the
/// `ablation_speculative_selection` bench reproduces that comparison.
///
/// # Panics
///
/// Panics if `groups == 0` or `groups > weights.len()`.
pub fn predictive_reorder(weights: &[f32], groups: usize) -> ReorderedKernel {
    assert!(groups >= 1, "at least one group");
    assert!(
        groups <= weights.len(),
        "groups ({groups}) exceed weight count ({})",
        weights.len()
    );
    // Ascending sort of the weight *values* (ties broken by index for
    // determinism).
    let mut sorted: Vec<u32> = (0..weights.len() as u32).collect();
    sorted.sort_by(|&a, &b| {
        weights[a as usize]
            .total_cmp(&weights[b as usize])
            .then(a.cmp(&b))
    });
    // Partition into `groups` near-equal contiguous chunks; from each take
    // the largest-magnitude element.
    let mut spec: Vec<u32> = Vec::with_capacity(groups);
    let len = sorted.len();
    for g in 0..groups {
        let lo = g * len / groups;
        let hi = ((g + 1) * len / groups).max(lo + 1);
        let pick = sorted[lo..hi]
            .iter()
            .copied()
            .max_by(|&a, &b| {
                weights[a as usize]
                    .abs()
                    .total_cmp(&weights[b as usize].abs())
                    .then(a.cmp(&b))
            })
            // lint:allow(P1) hi is clamped to at least lo + 1, so the group slice is never empty
            .expect("non-empty group");
        spec.push(pick);
    }
    let in_spec: std::collections::BTreeSet<u32> = spec.iter().copied().collect();
    let mut order = spec.clone();
    for (i, &w) in weights.iter().enumerate() {
        if w >= 0.0 && !in_spec.contains(&(i as u32)) {
            order.push(i as u32);
        }
    }
    let neg_start = order.len();
    push_negatives_descending(&mut order, weights, |i| in_spec.contains(&i));
    let reordered: Vec<f32> = order.iter().map(|&i| weights[i as usize]).collect();
    ReorderedKernel {
        order,
        weights: reordered,
        spec_len: groups,
        neg_start,
    }
}

/// Ablation reordering (paper §IV-A's rejected alternative): speculative set
/// = the `count` largest-magnitude weights outright. Kept for the
/// `ablation_speculative_selection` experiment.
///
/// # Panics
///
/// Panics if `count == 0` or `count > weights.len()`.
pub fn magnitude_reorder(weights: &[f32], count: usize) -> ReorderedKernel {
    assert!(
        count >= 1 && count <= weights.len(),
        "bad speculative count"
    );
    let mut by_mag: Vec<u32> = (0..weights.len() as u32).collect();
    by_mag.sort_by(|&a, &b| {
        weights[b as usize]
            .abs()
            .total_cmp(&weights[a as usize].abs())
            .then(a.cmp(&b))
    });
    let spec: Vec<u32> = by_mag[..count].to_vec();
    let in_spec: std::collections::BTreeSet<u32> = spec.iter().copied().collect();
    let mut order = spec;
    for (i, &w) in weights.iter().enumerate() {
        if w >= 0.0 && !in_spec.contains(&(i as u32)) {
            order.push(i as u32);
        }
    }
    let neg_start = order.len();
    push_negatives_descending(&mut order, weights, |i| in_spec.contains(&i));
    let reordered: Vec<f32> = order.iter().map(|&i| weights[i as usize]).collect();
    ReorderedKernel {
        order,
        weights: reordered,
        spec_len: count,
        neg_start,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(order: &[u32], len: usize) -> bool {
        let mut seen = vec![false; len];
        for &i in order {
            if seen[i as usize] {
                return false;
            }
            seen[i as usize] = true;
        }
        order.len() == len
    }

    #[test]
    fn sign_reorder_partitions_by_sign() {
        let w = [0.5, -1.0, 0.0, 2.0, -0.25];
        let r = sign_reorder(&w);
        assert!(is_permutation(r.order(), w.len()));
        assert_eq!(r.spec_len(), 0);
        assert_eq!(r.neg_start(), 3);
        assert!(r.weights()[..3].iter().all(|&v| v >= 0.0));
        assert!(r.weights()[3..].iter().all(|&v| v < 0.0));
        // Positives keep original order; negatives descend in magnitude.
        assert_eq!(r.order(), &[0, 2, 3, 1, 4]);
        assert_eq!(&r.weights()[3..], &[-1.0, -0.25]);
    }

    #[test]
    fn sign_reorder_all_positive_or_all_negative() {
        let r = sign_reorder(&[1.0, 2.0]);
        assert_eq!(r.neg_start(), 2);
        let r = sign_reorder(&[-1.0, -2.0]);
        assert_eq!(r.neg_start(), 0);
    }

    #[test]
    fn predictive_reorder_structure() {
        let w = [0.1, -0.9, 0.4, -0.2, 0.8, -0.05, 0.3, 0.05];
        for groups in 1..=w.len() {
            let r = predictive_reorder(&w, groups);
            assert!(is_permutation(r.order(), w.len()), "groups={groups}");
            assert_eq!(r.spec_len(), groups);
            assert!(r.neg_start() >= groups);
            // Region after spec: positives then negatives.
            let mid = &r.weights()[groups..r.neg_start()];
            let tail = &r.weights()[r.neg_start()..];
            assert!(mid.iter().all(|&v| v >= 0.0), "groups={groups}");
            assert!(tail.iter().all(|&v| v < 0.0), "groups={groups}");
        }
    }

    #[test]
    fn predictive_groups_cover_small_weights() {
        // With enough groups, at least one small-magnitude weight must appear
        // in the speculative set (the whole point of group-based selection).
        let w = [-1.0, 1.0, 0.01, -0.02, 0.03, -0.04, 0.05, 0.06];
        let r = predictive_reorder(&w, 4);
        let spec: Vec<f32> = r.weights()[..4].to_vec();
        assert!(
            spec.iter().any(|v| v.abs() < 0.1),
            "speculative set {spec:?} contains no small weight"
        );
    }

    #[test]
    fn magnitude_reorder_takes_largest() {
        let w = [0.1, -0.9, 0.4, -0.2, 0.8];
        let r = magnitude_reorder(&w, 2);
        let spec: Vec<f32> = r.weights()[..2].to_vec();
        assert_eq!(spec, vec![-0.9, 0.8]);
        assert!(is_permutation(r.order(), w.len()));
    }

    #[test]
    fn groups_equal_len_selects_everything() {
        let w = [0.3, -0.1, 0.2];
        let r = predictive_reorder(&w, 3);
        assert_eq!(r.spec_len(), 3);
        assert_eq!(r.neg_start(), 3);
        let mut spec: Vec<u32> = r.order().to_vec();
        spec.sort_unstable();
        assert_eq!(spec, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "groups")]
    fn predictive_rejects_too_many_groups() {
        let _ = predictive_reorder(&[1.0, 2.0], 3);
    }

    #[test]
    fn index_buffer_round_trips_weights() {
        let w = [0.5, -1.0, 0.0, 2.0, -0.25, 0.7];
        for r in [
            sign_reorder(&w),
            predictive_reorder(&w, 3),
            magnitude_reorder(&w, 2),
        ] {
            for (p, &orig) in r.order().iter().enumerate() {
                assert_eq!(r.weights()[p], w[orig as usize]);
            }
        }
    }
}
