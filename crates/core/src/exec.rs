//! The SnaPEA convolution executor: walks every convolution window
//! weight-by-weight in the reordered order, probing the PAU before each MAC
//! exactly as the hardware lanes do (paper §V), and records the per-window
//! operation counts — the function `Op(o, Th, N)` of the paper's Eq. (1).

use crate::params::{KernelMode, KernelParams, LayerParams};
use crate::pau::{Pau, PauAction, TerminationKind};
use crate::reorder::{predictive_reorder, sign_reorder, ReorderedKernel};
use serde::{Deserialize, Serialize};
use snapea_nn::ops::Conv2d;
use snapea_tensor::im2col::ConvGeom;
use snapea_tensor::{Shape4, Tensor4};

/// Per-kernel execution state: the reordered weights (weight buffer + index
/// buffer), the PAU configuration, and the lane-major packed weight copy
/// the SIMD kernels load from.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelExec {
    /// The reordered kernel (weight values + index buffer).
    pub reordered: ReorderedKernel,
    /// The lane's PAU configuration for this kernel.
    pub pau: Pau,
    /// Walk-order weights padded to whole eight-wide lane blocks
    /// ([`snapea_tensor::lane::pack_weights`]) — built once per kernel at
    /// configuration (or artifact-compile) time, never per layer call. The
    /// `.snapea` artifact carries and validates this layout.
    packed: Vec<f32>,
}

impl KernelExec {
    /// Builds the execution state for a reordered kernel, deriving the
    /// packed lane layout from its walk-order weights.
    pub fn new(reordered: ReorderedKernel, pau: Pau) -> Self {
        let packed = snapea_tensor::lane::pack_weights(reordered.weights());
        Self {
            reordered,
            pau,
            packed,
        }
    }

    /// The lane-major packed weights (walk-order values padded with `+0.0`
    /// to a multiple of [`snapea_tensor::lane::LANES`]).
    pub fn packed(&self) -> &[f32] {
        &self.packed
    }
}

/// Execution configuration of one convolution layer: one [`KernelExec`] per
/// output channel.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerConfig {
    kernels: Vec<KernelExec>,
}

impl LayerConfig {
    /// Exact-mode configuration: sign-based reordering for every kernel.
    pub fn exact(conv: &Conv2d) -> Self {
        let kernels = (0..conv.c_out())
            .map(|k| {
                let r = sign_reorder(conv.weight().item(k));
                let pau = Pau::exact(&r);
                KernelExec::new(r, pau)
            })
            .collect();
        Self { kernels }
    }

    /// Predictive-mode configuration with per-kernel modes (speculating
    /// kernels carry their `(Th, N)`; exact kernels fall back to sign-based
    /// reordering).
    ///
    /// # Panics
    ///
    /// Panics if `modes.len() != conv.c_out()` or any `groups` exceeds the
    /// window length.
    pub fn predictive(conv: &Conv2d, modes: &[KernelMode]) -> Self {
        assert_eq!(modes.len(), conv.c_out(), "one mode per kernel");
        let kernels = modes
            .iter()
            .enumerate()
            .map(|(k, mode)| match mode {
                KernelMode::Exact => {
                    let r = sign_reorder(conv.weight().item(k));
                    let pau = Pau::exact(&r);
                    KernelExec::new(r, pau)
                }
                KernelMode::Speculate(p) => {
                    let r = predictive_reorder(conv.weight().item(k), p.groups);
                    let pau = Pau::predictive(&r, *p);
                    KernelExec::new(r, pau)
                }
            })
            .collect();
        Self { kernels }
    }

    /// Uniform predictive configuration: every kernel speculates with the
    /// same `(Th, N)`.
    pub fn predictive_uniform(conv: &Conv2d, params: KernelParams) -> Self {
        Self::predictive(conv, &vec![KernelMode::Speculate(params); conv.c_out()])
    }

    /// Builds the configuration dictated by [`LayerParams`].
    pub fn from_params(conv: &Conv2d, params: &LayerParams) -> Self {
        match params {
            LayerParams::Exact => Self::exact(conv),
            LayerParams::Predictive(ks) => Self::predictive(conv, ks),
        }
    }

    /// Builds a configuration from explicit per-kernel states (used by the
    /// ablation benches to plug in alternative reorderings).
    pub fn from_kernels(kernels: Vec<KernelExec>) -> Self {
        Self { kernels }
    }

    /// Per-kernel execution states.
    pub fn kernels(&self) -> &[KernelExec] {
        &self.kernels
    }

    /// Whether any kernel speculates.
    pub fn is_predictive(&self) -> bool {
        self.kernels.iter().any(|k| k.pau.is_predictive())
    }
}

/// Per-window operation counts of one layer execution — the raw material for
/// both the computation-reduction numbers and the cycle-level simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerProfile {
    images: usize,
    kernels: usize,
    windows: usize,
    window_len: usize,
    /// `ops[(img * kernels + k) * windows + w]` = MACs executed for window
    /// `w` of kernel `k` on image `img`.
    ops: Vec<u32>,
}

impl LayerProfile {
    /// A dense profile: every window costs the full `window_len` MACs (the
    /// baseline accelerator's workload).
    pub fn dense(images: usize, kernels: usize, windows: usize, window_len: usize) -> Self {
        Self {
            images,
            kernels,
            windows,
            window_len,
            ops: vec![snapea_tensor::num::ops_u32(window_len); images * kernels * windows],
        }
    }

    /// A dense profile with the same geometry as `self`.
    pub fn to_dense(&self) -> Self {
        Self::dense(self.images, self.kernels, self.windows, self.window_len)
    }

    /// Builds a profile from explicit per-window op counts (layout
    /// `[(img * kernels + k) * windows + w]`).
    ///
    /// # Panics
    ///
    /// Panics if `ops.len() != images * kernels * windows` or any count
    /// exceeds `window_len`.
    pub fn from_ops(
        images: usize,
        kernels: usize,
        windows: usize,
        window_len: usize,
        ops: Vec<u32>,
    ) -> Self {
        assert_eq!(ops.len(), images * kernels * windows, "op count layout");
        assert!(
            ops.iter().all(|&o| o as usize <= window_len),
            "op count exceeds window length"
        );
        Self {
            images,
            kernels,
            windows,
            window_len,
            ops,
        }
    }

    /// The raw op-count slice (layout `[(img * kernels + k) * windows + w]`).
    pub fn ops_slice(&self) -> &[u32] {
        &self.ops
    }

    /// Number of images profiled.
    pub fn images(&self) -> usize {
        self.images
    }

    /// Number of kernels (output channels).
    pub fn kernels(&self) -> usize {
        self.kernels
    }

    /// Number of windows per kernel (out_h × out_w).
    pub fn windows(&self) -> usize {
        self.windows
    }

    /// Window length `C_in × D × D`.
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// MACs executed for one window.
    pub fn op(&self, image: usize, kernel: usize, window: usize) -> u32 {
        self.ops[(image * self.kernels + kernel) * self.windows + window]
    }

    /// All op counts of one `(image, kernel)` pair.
    pub fn kernel_ops(&self, image: usize, kernel: usize) -> &[u32] {
        let base = (image * self.kernels + kernel) * self.windows;
        &self.ops[base..base + self.windows]
    }

    /// Total MACs executed.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().map(|&o| o as u64).sum()
    }

    /// Total MACs an unaltered convolution would execute.
    pub fn full_macs(&self) -> u64 {
        (self.images * self.kernels * self.windows) as u64 * self.window_len as u64
    }

    /// `1 - total/full`: the fraction of MACs eliminated.
    pub fn savings(&self) -> f64 {
        let full = self.full_macs();
        if full == 0 {
            return 0.0;
        }
        1.0 - self.total_ops() as f64 / full as f64
    }
}

/// Prediction quality accounting (paper Table V).
///
/// *True negatives* are windows whose full convolution output is negative
/// and which the **predictive** check terminated. *False negatives* are
/// positive-output windows the predictive check squashed to zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PredictionStats {
    /// Windows whose full output is negative.
    pub negative_windows: u64,
    /// Windows whose full output is positive (or zero).
    pub positive_windows: u64,
    /// Negative windows terminated by the predictive check.
    pub true_negatives: u64,
    /// Positive windows terminated by the predictive check.
    pub false_negatives: u64,
    /// Negative windows terminated by the exact sign check.
    pub sign_terminations: u64,
    /// Sum of ReLU(full output) over all windows.
    pub positive_mass: f64,
    /// Sum of ReLU(full output) over falsely-squashed windows.
    pub squashed_mass: f64,
}

impl PredictionStats {
    /// True-negative rate: correctly-predicted negatives over all negatives.
    pub fn true_negative_rate(&self) -> f64 {
        if self.negative_windows == 0 {
            0.0
        } else {
            self.true_negatives as f64 / self.negative_windows as f64
        }
    }

    /// False-negative rate: mis-squashed positives over all positives.
    pub fn false_negative_rate(&self) -> f64 {
        if self.positive_windows == 0 {
            0.0
        } else {
            self.false_negatives as f64 / self.positive_windows as f64
        }
    }

    /// Fraction of total positive activation mass that was squashed — the
    /// quantity the paper argues stays on "small positive values".
    pub fn squashed_mass_fraction(&self) -> f64 {
        if self.positive_mass == 0.0 {
            0.0
        } else {
            self.squashed_mass / self.positive_mass
        }
    }

    /// Accumulates another stats block.
    pub fn merge(&mut self, other: &PredictionStats) {
        self.negative_windows += other.negative_windows;
        self.positive_windows += other.positive_windows;
        self.true_negatives += other.true_negatives;
        self.false_negatives += other.false_negatives;
        self.sign_terminations += other.sign_terminations;
        self.positive_mass += other.positive_mass;
        self.squashed_mass += other.squashed_mass;
    }
}

/// Result of executing one convolution layer through SnaPEA.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecResult {
    /// Layer output. For windows terminated by the predictive check the
    /// early ReLU has already fired: the stored value is `0.0`. All other
    /// windows hold their raw (pre-ReLU) partial sums, so applying ReLU
    /// yields the layer's post-activation output.
    pub output: Tensor4,
    /// Per-window operation counts.
    pub profile: LayerProfile,
    /// Prediction accounting (all-zero when stats collection is off).
    pub stats: PredictionStats,
}

/// Per-window input gather table: `taps[w][orig_idx]` is the offset into the
/// image's item slice, or `-1` for a padding tap.
#[derive(Debug, Clone)]
pub struct GatherTable {
    windows: usize,
    taps: Vec<i32>,
    window_len: usize,
}

impl GatherTable {
    /// Builds the gather table for `geom` over inputs of shape `input`
    /// (shared by every kernel of the layer).
    pub fn build(input: Shape4, geom: ConvGeom, c_in: usize) -> Self {
        let (oh, ow) = (geom.out_h(input.h), geom.out_w(input.w));
        let window_len = c_in * geom.kh * geom.kw;
        let mut taps = Vec::with_capacity(oh * ow * window_len);
        for oy in 0..oh {
            for ox in 0..ow {
                for c in 0..c_in {
                    for ky in 0..geom.kh {
                        for kx in 0..geom.kw {
                            let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                            let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                            if iy < 0 || ix < 0 || iy >= input.h as isize || ix >= input.w as isize
                            {
                                taps.push(-1);
                            } else {
                                taps.push(snapea_tensor::num::idx_i32(
                                    (c * input.h + iy as usize) * input.w + ix as usize,
                                ));
                            }
                        }
                    }
                }
            }
        }
        Self {
            windows: oh * ow,
            taps,
            window_len,
        }
    }

    /// Reassembles a gather table from stored parts (the compiled-model
    /// artifact loader). `taps` must hold exactly `windows × window_len`
    /// offsets, each either `-1` (padding) or `< item_len`.
    pub fn from_parts(
        windows: usize,
        window_len: usize,
        taps: Vec<i32>,
        item_len: usize,
    ) -> Result<Self, String> {
        let expect = windows
            .checked_mul(window_len)
            .ok_or("windows × window_len overflows")?;
        if taps.len() != expect {
            return Err(format!(
                "tap count {} != windows {windows} × window_len {window_len}",
                taps.len()
            ));
        }
        if let Some(&bad) = taps
            .iter()
            .find(|&&t| t < -1 || (t >= 0 && t as usize >= item_len.max(1)))
        {
            return Err(format!(
                "tap offset {bad} outside item of {item_len} elements"
            ));
        }
        Ok(Self {
            windows,
            taps,
            window_len,
        })
    }

    /// Number of windows.
    pub fn windows(&self) -> usize {
        self.windows
    }

    /// Window length `c_in × kh × kw`.
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// The full tap array, window-major (`windows × window_len` offsets).
    pub fn taps(&self) -> &[i32] {
        &self.taps
    }

    /// Tap offsets of window `w`.
    #[inline]
    pub fn window(&self, w: usize) -> &[i32] {
        &self.taps[w * self.window_len..(w + 1) * self.window_len]
    }
}

/// Kernel-independent execution plan for one layer geometry: the gather
/// table plus the *resolved-tap* factorisation of its interior windows.
///
/// For a window with no padding taps, tap `i`'s offset decomposes as
/// `base + delta[i]`, where `delta[i] = (c*h + ky)*w + kx` depends only on
/// the original weight index and the input shape, and `base` is the window's
/// top-left input offset. Permuting `delta` by a kernel's reorder
/// ([`WindowPlan::resolve`]) yields taps already in walk order, so the
/// interior hot loop needs no `order[p]` indirection and no `off >= 0`
/// padding branch. Border windows (any padding tap) keep the general
/// gather-table path.
///
/// Plans depend only on `(input.h, input.w, c_in, geom)` and are memoised by
/// [`layer_plan`].
#[derive(Debug, Clone)]
pub struct WindowPlan {
    gather: GatherTable,
    /// `delta[i]` for each original weight index `i` (valid for interior
    /// windows only).
    delta: Vec<i32>,
    /// Per window: the window's base offset into the item slice (≥ 0) for
    /// interior windows, `-1` for border windows.
    bases: Vec<i32>,
    interior: usize,
}

impl WindowPlan {
    /// Builds the plan for `geom` over inputs of shape `input`. Prefer
    /// [`layer_plan`], which memoises the result per geometry.
    pub fn build(input: Shape4, geom: ConvGeom, c_in: usize) -> Self {
        let gather = GatherTable::build(input, geom, c_in);
        let window_len = gather.window_len();
        let mut delta = Vec::with_capacity(window_len);
        for c in 0..c_in {
            for ky in 0..geom.kh {
                for kx in 0..geom.kw {
                    delta.push(snapea_tensor::num::idx_i32(
                        (c * input.h + ky) * input.w + kx,
                    ));
                }
            }
        }
        let mut bases = Vec::with_capacity(gather.windows());
        let mut interior = 0usize;
        for w in 0..gather.windows() {
            let taps = gather.window(w);
            // A window is interior iff none of its taps fall in the padding.
            // With `window_len == 0` there are no taps, so the window is
            // vacuously interior with an (unused) base of 0.
            if taps.iter().any(|&off| off < 0) {
                bases.push(-1);
            } else {
                let base = taps.first().copied().unwrap_or(0);
                debug_assert!(taps.iter().zip(delta.iter()).all(|(&t, &d)| t == base + d));
                bases.push(base);
                interior += 1;
            }
        }
        Self {
            gather,
            delta,
            bases,
            interior,
        }
    }

    /// Reassembles a plan from stored parts (the compiled-model artifact
    /// loader). Validates the structural invariants [`WindowPlan::build`]
    /// establishes: one delta per original weight index, one base per
    /// window, `interior` equal to the count of non-negative bases, and
    /// `base + delta` within the item bounds for every interior window (a
    /// delta alone may exceed the item — only resolved taps index memory).
    pub fn from_parts(
        gather: GatherTable,
        delta: Vec<i32>,
        bases: Vec<i32>,
        interior: usize,
        item_len: usize,
    ) -> Result<Self, String> {
        if delta.len() != gather.window_len() {
            return Err(format!(
                "delta count {} != window length {}",
                delta.len(),
                gather.window_len()
            ));
        }
        if bases.len() != gather.windows() {
            return Err(format!(
                "base count {} != window count {}",
                bases.len(),
                gather.windows()
            ));
        }
        if interior != bases.iter().filter(|&&b| b >= 0).count() {
            return Err("interior count disagrees with the non-negative bases".to_string());
        }
        if let Some(&bad) = delta.iter().find(|&&d| d < 0) {
            return Err(format!("negative delta {bad}"));
        }
        if let Some(&bad) = bases.iter().find(|&&b| b < -1) {
            return Err(format!("base {bad} below the border sentinel -1"));
        }
        let max_delta = delta.iter().copied().max().unwrap_or(0) as i64;
        if let Some(&bad) = bases
            .iter()
            .find(|&&b| b >= 0 && i64::from(b) + max_delta >= item_len as i64)
        {
            return Err(format!(
                "interior base {bad} + max delta {max_delta} escapes the item of {item_len} elements"
            ));
        }
        Ok(Self {
            gather,
            delta,
            bases,
            interior,
        })
    }

    /// The underlying gather table (border windows, tests, profiling).
    #[inline]
    pub fn gather(&self) -> &GatherTable {
        &self.gather
    }

    /// The per-original-index tap deltas of interior windows.
    pub fn delta(&self) -> &[i32] {
        &self.delta
    }

    /// The per-window base offsets (`-1` marks a border window).
    pub fn bases(&self) -> &[i32] {
        &self.bases
    }

    /// Number of windows.
    #[inline]
    pub fn windows(&self) -> usize {
        self.gather.windows()
    }

    /// Window length `c_in × kh × kw`.
    #[inline]
    pub fn window_len(&self) -> usize {
        self.gather.window_len()
    }

    /// Base offset of window `w`: `≥ 0` for an interior window (tap `p` of a
    /// resolved kernel lives at `base + resolved[p]`), `-1` for a border
    /// window.
    #[inline]
    pub fn window_base(&self, w: usize) -> i32 {
        self.bases[w]
    }

    /// Number of interior (padding-free) windows.
    #[inline]
    pub fn interior_windows(&self) -> usize {
        self.interior
    }

    /// The tap deltas permuted into `kernel`'s walk order: the resolved taps
    /// of every interior window (`offset(p) = base + resolved[p]`).
    ///
    /// # Panics
    ///
    /// Panics if the kernel's length differs from the plan's window length.
    pub fn resolve(&self, kernel: &ReorderedKernel) -> Vec<i32> {
        assert_eq!(kernel.len(), self.delta.len(), "kernel/plan window length");
        kernel
            .order()
            .iter()
            .map(|&i| self.delta[i as usize])
            .collect()
    }
}

/// Key of the memoised plan cache: everything [`WindowPlan::build`] reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct PlanKey {
    h: usize,
    w: usize,
    c_in: usize,
    geom: ConvGeom,
}

/// Entry cap before the plan cache is wiped wholesale — the executor sees a
/// handful of geometries per network, but fuzzers (selfcheck) churn through
/// hundreds; the cap bounds their footprint without an LRU's bookkeeping.
const PLAN_CACHE_CAP: usize = 256;

fn plan_cache(
) -> &'static std::sync::Mutex<std::collections::BTreeMap<PlanKey, std::sync::Arc<WindowPlan>>> {
    static CACHE: std::sync::OnceLock<
        std::sync::Mutex<std::collections::BTreeMap<PlanKey, std::sync::Arc<WindowPlan>>>,
    > = std::sync::OnceLock::new();
    CACHE.get_or_init(Default::default)
}

/// Locks the plan cache, recovering from poisoning: entries are immutable
/// `Arc`s inserted whole, so a panic elsewhere cannot leave a half-built
/// plan behind.
fn lock_plan_cache(
) -> std::sync::MutexGuard<'static, std::collections::BTreeMap<PlanKey, std::sync::Arc<WindowPlan>>>
{
    plan_cache()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The memoised [`WindowPlan`] for `(input, geom, c_in)` — built once per
/// layer geometry and shared by every subsequent call (the Algorithm 1
/// optimizer re-profiles the same layer hundreds of times). Charges the
/// `exec/gather_cache_hits` / `exec/gather_cache_misses` counters.
pub fn layer_plan(input: Shape4, geom: ConvGeom, c_in: usize) -> std::sync::Arc<WindowPlan> {
    layer_plan_entry(input, geom, c_in).0
}

/// [`layer_plan`] plus whether the plan was served from the cache (recorded
/// on the `exec/layer` event).
fn layer_plan_entry(
    input: Shape4,
    geom: ConvGeom,
    c_in: usize,
) -> (std::sync::Arc<WindowPlan>, bool) {
    let key = PlanKey {
        h: input.h,
        w: input.w,
        c_in,
        geom,
    };
    let mut map = lock_plan_cache();
    if let Some(p) = map.get(&key) {
        snapea_obs::counter("exec/gather_cache_hits").inc();
        return (std::sync::Arc::clone(p), true);
    }
    snapea_obs::counter("exec/gather_cache_misses").inc();
    if map.len() >= PLAN_CACHE_CAP {
        map.clear();
    }
    let plan = std::sync::Arc::new(WindowPlan::build(input, geom, c_in));
    map.insert(key, std::sync::Arc::clone(&plan));
    (plan, false)
}

/// Installs a prebuilt plan into the memoised cache under the key
/// [`layer_plan`] would compute for `(input h/w, geom, c_in)` — the
/// compiled-model artifact loader uses this so the first execution of a
/// loaded model skips plan construction. An already-cached plan for the key
/// is left in place (both are deterministic functions of the key).
pub fn install_plan(
    h: usize,
    w: usize,
    c_in: usize,
    geom: ConvGeom,
    plan: std::sync::Arc<WindowPlan>,
) {
    let key = PlanKey { h, w, c_in, geom };
    let mut map = lock_plan_cache();
    if map.len() >= PLAN_CACHE_CAP {
        map.clear();
    }
    map.entry(key).or_insert(plan);
}

/// Number of plans currently cached (test hook).
pub fn plan_cache_len() -> usize {
    lock_plan_cache().len()
}

/// Empties the plan cache (test hook; the executor repopulates on demand).
pub fn clear_plan_cache() {
    lock_plan_cache().clear();
}

/// Outcome of one window walk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowResult {
    /// MACs executed (the paper's `Op` function, Eq. (1)).
    pub ops: u32,
    /// The value written to the output buffer *before* the downstream ReLU
    /// (0.0 if the early ReLU already fired on a prediction).
    pub output: f32,
    /// How the window ended.
    pub termination: Option<TerminationKind>,
}

/// The walk position at which the PAU's *predictive* probe can first fire
/// (`usize::MAX` in exact mode, where it never does).
#[inline(always)]
fn spec_probe_pos(pau: &Pau) -> usize {
    if pau.spec_len() > 0 {
        pau.spec_len()
    } else {
        usize::MAX
    }
}

/// Number of leading walk positions at which no PAU probe can fire: the
/// predictive probe fires only *at* `spec_len`, and the sign check only from
/// `neg_start` on, so positions `0..min(spec_len, neg_start, len)` are
/// unconditional MACs.
#[inline(always)]
fn unconditional_prefix_len(pau: &Pau, len: usize) -> usize {
    spec_probe_pos(pau).min(pau.neg_start()).min(len)
}

#[inline(always)]
fn terminated(ops: usize, acc: f32, kind: TerminationKind) -> WindowResult {
    let output = match kind {
        TerminationKind::Predicted => 0.0, // early ReLU fired
        TerminationKind::SignCheck => acc,
    };
    WindowResult {
        ops: snapea_tensor::num::ops_u32(ops),
        output,
        termination: Some(kind),
    }
}

/// Continues a window walk from position `start` with partial sum `acc`,
/// where `start` must be the walk's unconditional-prefix length
/// ([`unconditional_prefix_len`]). `mac(p, acc)` performs the MAC at
/// position `p` and returns the new partial sum.
///
/// This is the *phase-split* form of the per-MAC probe loop: one probe at
/// the speculative boundary, an unconditional run to `neg_start`, then a
/// probed walk through the negative region. The probe outcomes — and hence
/// `ops`, `output` and `termination` — are bit-identical to probing before
/// every MAC, because [`Pau::probe`] returns `Continue` unconditionally at
/// every skipped position.
#[inline(always)]
fn walk_window_from(
    pau: &Pau,
    len: usize,
    mut acc: f32,
    start: usize,
    mut mac: impl FnMut(usize, f32) -> f32,
) -> WindowResult {
    debug_assert_eq!(start, unconditional_prefix_len(pau, len));
    let spec_probe = spec_probe_pos(pau);
    let ns = pau.neg_start();
    let mut p = start;
    if p < len && p == spec_probe {
        // The full probe also covers the spec_len == neg_start tie, where a
        // prediction outranks the sign check.
        if let PauAction::Terminate(kind) = pau.probe(p, acc) {
            return terminated(p, acc, kind);
        }
        acc = mac(p, acc);
        p += 1;
        let stop = ns.min(len);
        while p < stop {
            acc = mac(p, acc);
            p += 1;
        }
    }
    while p < len {
        if let PauAction::Terminate(kind) = pau.probe(p, acc) {
            return terminated(p, acc, kind);
        }
        acc = mac(p, acc);
        p += 1;
    }
    WindowResult {
        ops: snapea_tensor::num::ops_u32(len),
        output: acc,
        termination: None,
    }
}

/// Runs a full window walk (lane prefix + sequential remainder + probed
/// phases) through `mac`, in the pinned lane order (`snapea_tensor::lane`
/// module docs): `lane_prefix(m8)` must return the lane-tree sum of
/// positions `0..m8` (called only when `m8 > 0`, so an empty lane region
/// leaves the bias bit-untouched), and positions `m8..` run sequentially
/// through `mac`.
#[inline(always)]
fn walk_window(
    pau: &Pau,
    len: usize,
    bias: f32,
    lane_prefix: impl FnOnce(usize) -> f32,
    mut mac: impl FnMut(usize, f32) -> f32,
) -> WindowResult {
    let stop1 = unconditional_prefix_len(pau, len);
    let m8 = snapea_tensor::lane::lane_prefix_len(stop1);
    let mut acc = bias;
    if m8 > 0 {
        acc = bias + lane_prefix(m8);
    }
    for p in m8..stop1 {
        acc = mac(p, acc);
    }
    walk_window_from(pau, len, acc, stop1, mac)
}

/// Walks a single convolution window: probes the PAU exactly as the hardware
/// lanes do before each MAC, terminates when it says so. `item` is the
/// image's contiguous `c*h*w` slice; `taps` maps original weight indices to
/// offsets (−1 = padding). Padding taps still occupy a MAC slot in the
/// hardware walk: the weight is broadcast and the lane multiplies by zero.
#[inline]
pub fn run_window(kernel: &KernelExec, taps: &[i32], item: &[f32], bias: f32) -> WindowResult {
    let weights = kernel.reordered.weights();
    let order = kernel.reordered.order();
    walk_window(
        &kernel.pau,
        weights.len(),
        bias,
        |m8| snapea_tensor::lane::lane_dot_gather(kernel.packed(), order, taps, item, m8),
        |p, acc| {
            let off = taps[order[p] as usize];
            if off >= 0 {
                acc + item[off as usize] * weights[p]
            } else {
                acc
            }
        },
    )
}

/// [`run_window`] over an interior window of a [`WindowPlan`]: `resolved`
/// holds the kernel's taps already permuted into walk order
/// ([`WindowPlan::resolve`]), so the hot loop is a branch-free
/// gather-multiply-add.
#[inline]
pub fn run_window_resolved(
    kernel: &KernelExec,
    resolved: &[i32],
    base: i32,
    item: &[f32],
    bias: f32,
) -> WindowResult {
    let weights = kernel.reordered.weights();
    walk_window(
        &kernel.pau,
        weights.len(),
        bias,
        |m8| snapea_tensor::lane::lane_dot_resolved(kernel.packed(), resolved, base, item, m8),
        |p, acc| acc + item[(base + resolved[p]) as usize] * weights[p],
    )
}

/// Completes a window's dot product regardless of termination (used for
/// prediction-quality accounting). Accumulates in the same pinned lane
/// order as the walk — lane prefix over `m8` (derived from the *walk's*
/// probe-free prefix, so a never-terminating walk produces these exact
/// bits), then sequential to the end.
// lint:allow(P2) p < weights.len(); order/taps sized to window_len and off >= 0 checked before use
fn full_window_value(kernel: &KernelExec, taps: &[i32], item: &[f32], bias: f32) -> f32 {
    let weights = kernel.reordered.weights();
    let order = kernel.reordered.order();
    let len = weights.len();
    let m8 = snapea_tensor::lane::lane_prefix_len(unconditional_prefix_len(&kernel.pau, len));
    let mut acc = bias;
    if m8 > 0 {
        acc = bias + snapea_tensor::lane::lane_dot_gather(kernel.packed(), order, taps, item, m8);
    }
    for p in m8..len {
        let off = taps[order[p] as usize];
        if off >= 0 {
            acc += item[off as usize] * weights[p];
        }
    }
    acc
}

/// [`full_window_value`] for an interior window via resolved taps.
#[inline]
// lint:allow(P2) p < weights.len() = resolved.len(); base+delta proven in-bounds by WindowPlan::build
fn full_window_value_resolved(
    kernel: &KernelExec,
    resolved: &[i32],
    base: i32,
    item: &[f32],
    bias: f32,
) -> f32 {
    let weights = kernel.reordered.weights();
    let len = weights.len();
    let m8 = snapea_tensor::lane::lane_prefix_len(unconditional_prefix_len(&kernel.pau, len));
    let mut acc = bias;
    if m8 > 0 {
        acc = bias
            + snapea_tensor::lane::lane_dot_resolved(kernel.packed(), resolved, base, item, m8);
    }
    for p in m8..len {
        acc += item[(base + resolved[p]) as usize] * weights[p];
    }
    acc
}

/// Interior windows processed per batch by the executor. Eight lanes give
/// the FPU eight independent accumulator chains, hiding the `fadd` latency
/// that bounds a single window's strictly-ordered walk.
const BATCH: usize = 8;

/// How many windows took the eight-wide batched interior path (`lane`)
/// versus the scalar gather/partial-drain path (`scalar`) — surfaced as
/// the `exec/lane_windows` / `exec/scalar_windows` counters and on the
/// `exec/layer` event.
#[derive(Debug, Default, Clone, Copy)]
struct LaneCounts {
    lane: u64,
    scalar: u64,
}

impl LaneCounts {
    fn merge(&mut self, o: &LaneCounts) {
        self.lane += o.lane;
        self.scalar += o.scalar;
    }
}

/// Accumulates positions `m8..hi` for [`BATCH`] interior windows at once:
/// each position loads its resolved tap and weight once and feeds all
/// eight accumulator chains. Each window's own accumulation order is
/// unchanged (ascending `p`), so per-window results stay bit-identical to
/// the scalar walk's sequential remainder.
#[inline]
// lint:allow(P2) p < hi <= weights.len() = resolved.len(); interior bases keep base+delta in bounds
fn batch_span(
    weights: &[f32],
    resolved: &[i32],
    item: &[f32],
    bases: &[i32; BATCH],
    acc: &mut [f32; BATCH],
    m8: usize,
    hi: usize,
) {
    for p in m8..hi {
        let d = resolved[p];
        let w = weights[p];
        for (a, &b) in acc.iter_mut().zip(bases.iter()) {
            *a += item[(b + d) as usize] * w;
        }
    }
}

/// Runs the unconditional prefix (positions `0..stop1`, where no PAU probe
/// can fire — [`unconditional_prefix_len`]) for [`BATCH`] interior windows
/// at once in the pinned lane order: each window's lane-blocked region
/// `0..m8` goes through the SIMD lane kernel, the remainder `m8..stop1`
/// through the eight-chain batched span.
#[inline]
fn prefix_batch(
    kernel: &KernelExec,
    resolved: &[i32],
    item: &[f32],
    bases: &[i32; BATCH],
    bias: f32,
    m8: usize,
    stop1: usize,
) -> [f32; BATCH] {
    let mut acc = [bias; BATCH];
    if m8 > 0 {
        for (a, &b) in acc.iter_mut().zip(bases.iter()) {
            *a = bias
                + snapea_tensor::lane::lane_dot_resolved(kernel.packed(), resolved, b, item, m8);
        }
    }
    batch_span(
        kernel.reordered.weights(),
        resolved,
        item,
        bases,
        &mut acc,
        m8,
        stop1,
    );
    acc
}

/// Full dot products of [`BATCH`] interior windows (stats accounting), in
/// the same pinned order as [`prefix_batch`] continued to the window end.
#[inline]
fn full_values_batch(
    kernel: &KernelExec,
    resolved: &[i32],
    item: &[f32],
    bases: &[i32; BATCH],
    bias: f32,
    m8: usize,
) -> [f32; BATCH] {
    let weights = kernel.reordered.weights();
    let mut acc = [bias; BATCH];
    if m8 > 0 {
        for (a, &b) in acc.iter_mut().zip(bases.iter()) {
            *a = bias
                + snapea_tensor::lane::lane_dot_resolved(kernel.packed(), resolved, b, item, m8);
        }
    }
    batch_span(weights, resolved, item, bases, &mut acc, m8, weights.len());
    acc
}

/// Folds one window's outcome into the prediction-quality accounting. Must
/// be called in ascending window order within a pair — the f64 mass sums are
/// order-sensitive and pinned bit-identical to the scalar executor.
#[inline]
fn account_window(st: &mut PredictionStats, full: f32, termination: Option<TerminationKind>) {
    if full < 0.0 {
        st.negative_windows += 1;
    } else {
        st.positive_windows += 1;
        st.positive_mass += full as f64;
    }
    match termination {
        Some(TerminationKind::Predicted) => {
            if full < 0.0 {
                st.true_negatives += 1;
            } else {
                st.false_negatives += 1;
                st.squashed_mass += full.max(0.0) as f64;
            }
        }
        Some(TerminationKind::SignCheck) => {
            st.sign_terminations += 1;
        }
        None => {}
    }
}

/// Executes a convolution layer through SnaPEA (no prediction accounting —
/// the fast path used inside the optimizer's accuracy simulations).
pub fn execute_conv(conv: &Conv2d, input: &Tensor4, cfg: &LayerConfig) -> ExecResult {
    execute_conv_inner(conv, input, cfg, false)
}

/// Like [`execute_conv`] but additionally completes every window's dot
/// product to fill [`PredictionStats`] (paper Table V).
pub fn execute_conv_stats(conv: &Conv2d, input: &Tensor4, cfg: &LayerConfig) -> ExecResult {
    execute_conv_inner(conv, input, cfg, true)
}

/// Drains `lanes` pending interior windows one at a time (used for the
/// partial batch at a flush boundary). Lane order is ascending-window, so
/// stats accounting order is preserved.
#[allow(clippy::too_many_arguments)]
// lint:allow(P2) lane window ids are < windows = out/ops slice length by construction
fn drain_interior_lanes(
    kexec: &KernelExec,
    resolved: &[i32],
    item: &[f32],
    bias: f32,
    lanes: &[(usize, i32)],
    collect_stats: bool,
    out_slice: &mut [f32],
    ops_slice: &mut [u32],
    st: &mut PredictionStats,
) {
    for &(w, base) in lanes {
        let r = run_window_resolved(kexec, resolved, base, item, bias);
        out_slice[w] = r.output;
        ops_slice[w] = r.ops;
        if collect_stats {
            let full = full_window_value_resolved(kexec, resolved, base, item, bias);
            account_window(st, full, r.termination);
        }
    }
}

// lint:allow(P2) w < windows = chunk length; lane fills bounded by BATCH; taps validated by the plan
fn execute_conv_inner(
    conv: &Conv2d,
    input: &Tensor4,
    cfg: &LayerConfig,
    collect_stats: bool,
) -> ExecResult {
    assert_eq!(cfg.kernels.len(), conv.c_out(), "config kernel count");
    // Per-layer span (only when a sink is attached) plus an always-on
    // stopwatch feeding the `exec/layer_ms` latency histogram: one clock
    // read per layer call, never per window, so the disabled-path budget
    // holds. Per-(image, kernel) spans are a further opt-in behind
    // `SNAPEA_TRACE_DETAIL` — a full repro run executes thousands of
    // layers and would swamp the log otherwise.
    let _layer_span = snapea_obs::hot_span!("exec/layer");
    let trace_kernels = snapea_obs::enabled() && snapea_obs::detail_enabled();
    let layer_clock = snapea_obs::Stopwatch::start();
    let s = input.shape();
    let geom = conv.geom();
    let (plan, cache_hit) = layer_plan_entry(s, geom, conv.c_in());
    let out_shape = conv.out_shape(s);
    let windows = plan.windows();
    debug_assert_eq!(windows, out_shape.plane_len());

    // Resolved taps (walk-order tap deltas) once per kernel, shared by every
    // image's tasks.
    let resolved: Vec<Vec<i32>> = cfg
        .kernels
        .iter()
        .map(|k| plan.resolve(&k.reordered))
        .collect();

    let mut output = Tensor4::zeros(out_shape);
    let mut ops = vec![0u32; s.n * conv.c_out() * windows];
    let mut stats = PredictionStats::default();
    let mut lane_counts = LaneCounts::default();

    // One task per *block* of consecutive (image, kernel) pairs. Flat pair
    // index `n * c_out + k` addresses both the output plane
    // (`offset(n, k, 0, 0)` = pair * windows) and the ops layout, so zipping
    // the two block-sized chunk iterators hands every task its disjoint
    // output/ops slices; within a block the pairs are walked ascending. The
    // block size comes from `chunk_for` with the walk floor: an n=1 serving
    // layer with 32 kernels still splits into per-kernel-block tasks, while
    // a tiny layer collapses to one inline task and never pays dispatch.
    // Each pair's stats still accumulate privately (one `PredictionStats`
    // per pair, exactly as the serial walk folds them) and merge in
    // ascending pair order — the same grouping for any thread count and any
    // block size, so the f64 masses are bit-identical whether the pairs ran
    // on one worker or eight.
    //
    // Within a pair, interior windows are gathered into [`BATCH`]-wide
    // groups walked through the resolved-tap batch kernels; border windows
    // take the general gather path. Any pending batch is drained before a
    // border window (and at the end), so per-window results and the
    // order-sensitive stats folds still happen in ascending window order.
    if windows > 0 {
        let pair_cost = windows * conv.window_len();
        let chunk = snapea_tensor::par::chunk_for(
            s.n * conv.c_out(),
            pair_cost,
            snapea_tensor::par::WALK_TASK_FLOOR_OPS,
        );
        let blocks: Vec<(&mut [f32], &mut [u32])> = output
            .as_mut_slice()
            .chunks_mut(chunk * windows)
            .zip(ops.chunks_mut(chunk * windows))
            .collect();
        let per_block: Vec<Vec<(PredictionStats, LaneCounts)>> =
            snapea_tensor::par::run_tasks(blocks, |bi, (out_blk, ops_blk)| {
                out_blk
                    .chunks_mut(windows)
                    .zip(ops_blk.chunks_mut(windows))
                    .enumerate()
                    .map(|(pi, (out_slice, ops_slice))| {
                        let pair = bi * chunk + pi;
                        let (n, k) = (pair / conv.c_out(), pair % conv.c_out());
                        let _kernel_span = if trace_kernels {
                            Some(snapea_obs::span::enter_detail(
                                "exec/kernel",
                                Some(format!("image {n} kernel {k}")),
                            ))
                        } else {
                            None
                        };
                        let item = input.item(n);
                        let kexec = &cfg.kernels[k];
                        let rt = &resolved[k][..];
                        let weights = kexec.reordered.weights();
                        let len = weights.len();
                        let stop1 = unconditional_prefix_len(&kexec.pau, len);
                        let m8 = snapea_tensor::lane::lane_prefix_len(stop1);
                        let bias = conv.bias()[k];
                        let mut st = PredictionStats::default();
                        let mut lc = LaneCounts::default();
                        let mut lanes = [(0usize, 0i32); BATCH];
                        let mut nl = 0usize;
                        for w in 0..windows {
                            let base = plan.window_base(w);
                            if base >= 0 {
                                lanes[nl] = (w, base);
                                nl += 1;
                                if nl < BATCH {
                                    continue;
                                }
                                nl = 0;
                                lc.lane += BATCH as u64;
                                let bases = lanes.map(|(_, b)| b);
                                let accs = prefix_batch(kexec, rt, item, &bases, bias, m8, stop1);
                                // Each lane's full value accumulates in the same
                                // per-lane order as the scalar walk; only the folds
                                // below are order-sensitive, and they run ascending.
                                let fulls = if collect_stats {
                                    Some(full_values_batch(kexec, rt, item, &bases, bias, m8))
                                } else {
                                    None
                                };
                                for (l, &(lw, lb)) in lanes.iter().enumerate() {
                                    let r = walk_window_from(
                                        &kexec.pau,
                                        len,
                                        accs[l],
                                        stop1,
                                        |p, acc| acc + item[(lb + rt[p]) as usize] * weights[p],
                                    );
                                    out_slice[lw] = r.output;
                                    ops_slice[lw] = r.ops;
                                    if let Some(f) = &fulls {
                                        account_window(&mut st, f[l], r.termination);
                                    }
                                }
                            } else {
                                lc.scalar += nl as u64 + 1;
                                drain_interior_lanes(
                                    kexec,
                                    rt,
                                    item,
                                    bias,
                                    &lanes[..nl],
                                    collect_stats,
                                    out_slice,
                                    ops_slice,
                                    &mut st,
                                );
                                nl = 0;
                                let taps = plan.gather().window(w);
                                let r = run_window(kexec, taps, item, bias);
                                out_slice[w] = r.output;
                                ops_slice[w] = r.ops;
                                if collect_stats {
                                    let full = full_window_value(kexec, taps, item, bias);
                                    account_window(&mut st, full, r.termination);
                                }
                            }
                        }
                        lc.scalar += nl as u64;
                        drain_interior_lanes(
                            kexec,
                            rt,
                            item,
                            bias,
                            &lanes[..nl],
                            collect_stats,
                            out_slice,
                            ops_slice,
                            &mut st,
                        );
                        (st, lc)
                    })
                    .collect()
            });
        for (st, lc) in per_block.iter().flatten() {
            stats.merge(st);
            lane_counts.merge(lc);
        }
    }

    let profile = LayerProfile {
        images: s.n,
        kernels: conv.c_out(),
        windows,
        window_len: conv.window_len(),
        ops,
    };
    record_layer_execution(
        &profile,
        if collect_stats { Some(&stats) } else { None },
        lane_counts,
        cache_hit,
        layer_clock.elapsed_ms(),
    );
    ExecResult {
        output,
        profile,
        stats,
    }
}

/// Charges one layer execution to the global `exec/*` metrics (including
/// the `exec/layer_ms` latency log-histogram) and, when a sink is
/// installed, emits an `exec/layer` event. Counters and the histogram are
/// relaxed atomics charged once per layer call (never per window), and the
/// event payload is only built behind [`snapea_obs::enabled`], keeping the
/// disabled-path overhead within the executor bench's <2% budget.
fn record_layer_execution(
    profile: &LayerProfile,
    stats: Option<&PredictionStats>,
    lane_counts: LaneCounts,
    gather_cache_hit: bool,
    elapsed_ms: f64,
) {
    let performed = profile.total_ops();
    let dense = profile.full_macs();
    snapea_obs::counter("exec/layer_calls").inc();
    snapea_obs::counter("exec/macs_performed").add(performed);
    snapea_obs::counter("exec/macs_dense").add(dense);
    snapea_obs::counter("exec/lane_windows").add(lane_counts.lane);
    snapea_obs::counter("exec/scalar_windows").add(lane_counts.scalar);
    snapea_obs::log_histogram("exec/layer_ms").record(elapsed_ms);
    if let Some(s) = stats {
        snapea_obs::counter("exec/windows_negative").add(s.negative_windows);
        snapea_obs::counter("exec/windows_positive").add(s.positive_windows);
        snapea_obs::counter("exec/true_negatives").add(s.true_negatives);
        snapea_obs::counter("exec/false_negatives").add(s.false_negatives);
        snapea_obs::counter("exec/sign_terminations").add(s.sign_terminations);
    }
    if snapea_obs::enabled() {
        if let Some(s) = stats {
            snapea_obs::event!(
                "exec/layer",
                images = profile.images() as u64,
                kernels = profile.kernels() as u64,
                windows = profile.windows() as u64,
                performed_macs = performed,
                full_macs = dense,
                savings = profile.savings(),
                gather_cache_hit = gather_cache_hit,
                elapsed_ms = elapsed_ms,
                lane_windows = lane_counts.lane,
                scalar_windows = lane_counts.scalar,
                true_negative_rate = s.true_negative_rate(),
                false_negative_rate = s.false_negative_rate(),
                sign_terminations = s.sign_terminations,
            );
        } else {
            snapea_obs::event!(
                "exec/layer",
                images = profile.images() as u64,
                kernels = profile.kernels() as u64,
                windows = profile.windows() as u64,
                performed_macs = performed,
                full_macs = dense,
                savings = profile.savings(),
                gather_cache_hit = gather_cache_hit,
                elapsed_ms = elapsed_ms,
                lane_windows = lane_counts.lane,
                scalar_windows = lane_counts.scalar,
            );
        }
    }
}

/// Op counts under Cnvlutin-style *ineffectual-neuron skipping* (paper §VII's
/// related work): a window's cost is the number of taps whose **input** is
/// non-zero — zero activations (the output of upstream ReLUs) are skipped
/// outright, regardless of weight signs. This is the orthogonal,
/// input-sparsity approach SnaPEA is contrasted against.
// lint:allow(P2) gather offsets are >= 0 checked and built in-bounds for the item slice
pub fn zero_skip_profile(conv: &Conv2d, input: &Tensor4) -> LayerProfile {
    let s = input.shape();
    let plan = layer_plan(s, conv.geom(), conv.c_in());
    let gather = plan.gather();
    let windows = gather.windows();
    let mut ops = Vec::with_capacity(s.n * conv.c_out() * windows);
    for n in 0..s.n {
        let item = input.item(n);
        // The nonzero-tap count per window is kernel-independent; compute it
        // once and replicate across kernels.
        let mut per_window = Vec::with_capacity(windows);
        for w in 0..windows {
            let count = gather
                .window(w)
                .iter()
                .filter(|&&off| off >= 0 && item[off as usize] != 0.0)
                .count();
            let count = snapea_tensor::num::ops_u32(count);
            per_window.push(count);
        }
        for _k in 0..conv.c_out() {
            ops.extend_from_slice(&per_window);
        }
    }
    LayerProfile::from_ops(s.n, conv.c_out(), windows, conv.window_len(), ops)
}

/// Op counts when zero-input skipping **combines** with SnaPEA's early
/// termination: the window walks the reordered weights, zero-input taps are
/// free, and the PAU terminates as usual. Shows the two mechanisms are
/// complementary (they eliminate different MACs).
// lint:allow(P2) p < weights.len(); gather offsets checked >= 0 and in-bounds by construction
pub fn combined_profile(conv: &Conv2d, input: &Tensor4, cfg: &LayerConfig) -> LayerProfile {
    assert_eq!(cfg.kernels.len(), conv.c_out(), "config kernel count");
    let s = input.shape();
    let plan = layer_plan(s, conv.geom(), conv.c_in());
    let gather = plan.gather();
    let windows = gather.windows();
    let mut ops = Vec::with_capacity(s.n * conv.c_out() * windows);
    for n in 0..s.n {
        let item = input.item(n);
        for (k, kexec) in cfg.kernels.iter().enumerate() {
            let weights = kexec.reordered.weights();
            let order = kexec.reordered.order();
            for w in 0..windows {
                let taps = gather.window(w);
                let mut acc = conv.bias()[k];
                let mut effectual = 0u32;
                for p in 0..weights.len() {
                    if let PauAction::Terminate(_) = kexec.pau.probe(p, acc) {
                        break;
                    }
                    let off = taps[order[p] as usize];
                    if off >= 0 && item[off as usize] != 0.0 {
                        acc += item[off as usize] * weights[p];
                        effectual += 1; // zero-input taps cost nothing
                    }
                }
                ops.push(effectual);
            }
        }
    }
    LayerProfile::from_ops(s.n, conv.c_out(), windows, conv.window_len(), ops)
}

/// Walks a single convolution window in 16-bit fixed point, as the paper's
/// PEs do (Table II): operands are quantised to `fmt`, products accumulate in
/// a 32-bit-style register ([`QAcc`]), and the PAU probes the dequantised
/// partial sum. Termination decisions may differ from the `f32` walk by at
/// most the quantisation error of the partial sums.
pub fn run_window_q16(
    kernel: &KernelExec,
    taps: &[i32],
    item_q: &[snapea_tensor::q16::Q16],
    bias: f32,
    fmt: snapea_tensor::q16::Q16Format,
) -> WindowResult {
    let weights = kernel.reordered.weights();
    let order = kernel.reordered.order();
    walk_window_q16(&kernel.pau, weights.len(), bias, fmt, |p, acc| {
        let off = taps[order[p] as usize];
        if off >= 0 {
            acc.mac(item_q[off as usize], fmt.quantize(weights[p]));
        }
    })
}

/// The fixed-point accumulator seeded with the bias pre-scaled to the
/// product width (how every q16 walk begins).
#[inline(always)]
fn q16_bias_acc(bias: f32, fmt: snapea_tensor::q16::Q16Format) -> snapea_tensor::q16::QAcc {
    let mut acc = snapea_tensor::q16::QAcc::new();
    acc.mac(fmt.quantize(bias), fmt.quantize(1.0));
    acc
}

/// Continues a fixed-point window walk from position `start` (which must
/// be the walk's unconditional-prefix length) with partial sum `acc` — the
/// q16 twin of [`walk_window_from`]. Integer accumulation is exact, so any
/// batching of the prefix that hands the same raw sum in here is
/// bit-identical to the sequential walk.
#[inline(always)]
fn walk_window_q16_from(
    pau: &Pau,
    len: usize,
    mut acc: snapea_tensor::q16::QAcc,
    start: usize,
    fmt: snapea_tensor::q16::Q16Format,
    mut mac: impl FnMut(usize, &mut snapea_tensor::q16::QAcc),
) -> WindowResult {
    debug_assert_eq!(start, unconditional_prefix_len(pau, len));
    let spec_probe = spec_probe_pos(pau);
    let ns = pau.neg_start();
    let mut p = start;
    if p < len && p == spec_probe {
        if let PauAction::Terminate(kind) = pau.probe(p, acc.to_f32(fmt)) {
            return terminated(p, acc.to_f32(fmt), kind);
        }
        mac(p, &mut acc);
        p += 1;
        let stop = ns.min(len);
        while p < stop {
            mac(p, &mut acc);
            p += 1;
        }
    }
    while p < len {
        if let PauAction::Terminate(kind) = pau.probe(p, acc.to_f32(fmt)) {
            return terminated(p, acc.to_f32(fmt), kind);
        }
        mac(p, &mut acc);
        p += 1;
    }
    WindowResult {
        ops: snapea_tensor::num::ops_u32(len),
        output: acc.to_f32(fmt),
        termination: None,
    }
}

/// Phase-split fixed-point window walk (the q16 twin of [`walk_window`]):
/// probes only where [`Pau::probe`] can fire, dequantising the partial sum
/// per probe instead of per MAC. `mac(p, acc)` performs the MAC at position
/// `p` in place.
#[inline(always)]
fn walk_window_q16(
    pau: &Pau,
    len: usize,
    bias: f32,
    fmt: snapea_tensor::q16::Q16Format,
    mut mac: impl FnMut(usize, &mut snapea_tensor::q16::QAcc),
) -> WindowResult {
    let mut acc = q16_bias_acc(bias, fmt);
    let stop1 = unconditional_prefix_len(pau, len);
    let mut p = 0usize;
    while p < stop1 {
        mac(p, &mut acc);
        p += 1;
    }
    walk_window_q16_from(pau, len, acc, stop1, fmt, mac)
}

/// Executes a convolution layer with 16-bit fixed-point arithmetic in the
/// lanes (quantised inputs and weights, wide accumulator), mirroring
/// [`execute_conv`]. No prediction accounting.
// lint:allow(P2) k < c_out and w < windows index per-kernel tables sized by the asserts above
pub fn execute_conv_q16(
    conv: &Conv2d,
    input: &Tensor4,
    cfg: &LayerConfig,
    fmt: snapea_tensor::q16::Q16Format,
) -> ExecResult {
    assert_eq!(cfg.kernels.len(), conv.c_out(), "config kernel count");
    let _layer_span = snapea_obs::hot_span!("exec/layer");
    let layer_clock = snapea_obs::Stopwatch::start();
    let s = input.shape();
    let (plan, cache_hit) = layer_plan_entry(s, conv.geom(), conv.c_in());
    let out_shape = conv.out_shape(s);
    let windows = plan.windows();

    // Resolved taps and pre-quantised weights once per kernel —
    // `fmt.quantize` is deterministic, so hoisting it out of the per-MAC
    // loop changes nothing numerically.
    let resolved: Vec<Vec<i32>> = cfg
        .kernels
        .iter()
        .map(|k| plan.resolve(&k.reordered))
        .collect();
    let weights_q: Vec<Vec<snapea_tensor::q16::Q16>> = cfg
        .kernels
        .iter()
        .map(|k| {
            k.reordered
                .weights()
                .iter()
                .map(|&w| fmt.quantize(w))
                .collect()
        })
        .collect();

    // Every image quantised once up front (the serial loop quantised per
    // image too — same values, same count), so the parallel pair blocks
    // below can read any image without re-quantising per kernel.
    let items_q: Vec<Vec<snapea_tensor::q16::Q16>> = (0..s.n)
        .map(|n| snapea_tensor::q16::quantize_slice(fmt, input.item(n)))
        .collect();

    let mut output = Tensor4::zeros(out_shape);
    let mut ops = vec![0u32; s.n * conv.c_out() * windows];
    let mut lane_counts = LaneCounts::default();

    // Same (image, kernel) pair-block dispatch as `execute_conv_inner`:
    // flat pair index `n * c_out + k` addresses both layouts, blocks are
    // sized by the walk floor (q16 has no stats to merge — windows are
    // pure writes into the block's disjoint slices), and each block walks
    // its pairs and windows in ascending order, so the quantised outputs
    // are bit-identical to the serial loop at any thread count.
    //
    // Interior windows are gathered into [`BATCH`]-wide groups whose
    // unconditional prefixes run through the integer lane kernel
    // ([`snapea_tensor::lane::lane_q16_span`]); i64 accumulation is exact,
    // so the batched prefix hands each window the same raw sum as its
    // sequential walk and the probed remainder continues bit-identically.
    if windows > 0 {
        let chunk = snapea_tensor::par::chunk_for(
            s.n * conv.c_out(),
            windows * conv.window_len(),
            snapea_tensor::par::WALK_TASK_FLOOR_OPS,
        );
        let blocks: Vec<(&mut [f32], &mut [u32])> = output
            .as_mut_slice()
            .chunks_mut(chunk * windows)
            .zip(ops.chunks_mut(chunk * windows))
            .collect();
        let per_block: Vec<LaneCounts> =
            snapea_tensor::par::run_tasks(blocks, |bi, (out_blk, ops_blk)| {
                let mut lc = LaneCounts::default();
                for (pi, (out_slice, ops_slice)) in out_blk
                    .chunks_mut(windows)
                    .zip(ops_blk.chunks_mut(windows))
                    .enumerate()
                {
                    let pair = bi * chunk + pi;
                    let (n, k) = (pair / conv.c_out(), pair % conv.c_out());
                    let kexec = &cfg.kernels[k];
                    let bias = conv.bias()[k];
                    let len = kexec.reordered.weights().len();
                    let stop1 = unconditional_prefix_len(&kexec.pau, len);
                    let rt = &resolved[k][..];
                    let wq = &weights_q[k][..];
                    let item_q = &items_q[n][..];
                    let bias_raw = q16_bias_acc(bias, fmt).raw();
                    let mut lanes = [(0usize, 0i32); BATCH];
                    let mut nl = 0usize;
                    for w in 0..windows {
                        let base = plan.window_base(w);
                        if base >= 0 {
                            lanes[nl] = (w, base);
                            nl += 1;
                            if nl < BATCH {
                                continue;
                            }
                            nl = 0;
                            lc.lane += BATCH as u64;
                            let bases = lanes.map(|(_, b)| b);
                            let mut accs = [bias_raw; BATCH];
                            snapea_tensor::lane::lane_q16_span(
                                &mut accs, wq, rt, &bases, item_q, 0, stop1,
                            );
                            for (l, &(lw, lb)) in lanes.iter().enumerate() {
                                let r = walk_window_q16_from(
                                    &kexec.pau,
                                    len,
                                    snapea_tensor::q16::QAcc::from_raw(accs[l]),
                                    stop1,
                                    fmt,
                                    |p, acc| {
                                        acc.mac(item_q[(lb + rt[p]) as usize], wq[p]);
                                    },
                                );
                                out_slice[lw] = r.output;
                                ops_slice[lw] = r.ops;
                            }
                        } else {
                            lc.scalar += nl as u64 + 1;
                            for &(lw, lb) in &lanes[..nl] {
                                let r = walk_window_q16(&kexec.pau, len, bias, fmt, |p, acc| {
                                    acc.mac(item_q[(lb + rt[p]) as usize], wq[p]);
                                });
                                out_slice[lw] = r.output;
                                ops_slice[lw] = r.ops;
                            }
                            nl = 0;
                            let r =
                                run_window_q16(kexec, plan.gather().window(w), item_q, bias, fmt);
                            out_slice[w] = r.output;
                            ops_slice[w] = r.ops;
                        }
                    }
                    lc.scalar += nl as u64;
                    for &(lw, lb) in &lanes[..nl] {
                        let r = walk_window_q16(&kexec.pau, len, bias, fmt, |p, acc| {
                            acc.mac(item_q[(lb + rt[p]) as usize], wq[p]);
                        });
                        out_slice[lw] = r.output;
                        ops_slice[lw] = r.ops;
                    }
                }
                lc
            });
        for lc in &per_block {
            lane_counts.merge(lc);
        }
    }

    let profile = LayerProfile {
        images: s.n,
        kernels: conv.c_out(),
        windows,
        window_len: conv.window_len(),
        ops,
    };
    record_layer_execution(
        &profile,
        None,
        lane_counts,
        cache_hit,
        layer_clock.elapsed_ms(),
    );
    ExecResult {
        output,
        profile,
        stats: PredictionStats::default(),
    }
}

pub mod baseline {
    //! Frozen pre-plan scalar executor: the window walk exactly as it stood
    //! before the single-core kernel engine (resolved-tap window plans,
    //! phase-split probes, batched interior walks, plan caching).
    //!
    //! This is the *reference implementation* the regression tests pin the
    //! optimised paths against bit-for-bit, and the *before* side of
    //! `perfbench`'s kernels section. The issue suggested keeping it behind
    //! `#[cfg(test)]`, but the benchmark binary needs it at runtime, so it
    //! lives here as a public module instead (see DESIGN.md §6). It is
    //! serial, builds its gather table from scratch on every call, probes
    //! the PAU before every MAC, and charges no metrics — do not optimise
    //! or hook it up to the plan cache.
    //!
    //! Re-frozen for the lane engine (DESIGN.md §11): the accumulation
    //! order is the *pinned lane order* — a hand-written scalar
    //! eight-accumulator prefix over `0..m8` with select semantics for
    //! padding taps, deliberately independent of `snapea_tensor::lane` —
    //! followed by the historical probe-before-every-MAC walk from `m8`.
    //! Skipping the probes below `m8` is observationally identical: every
    //! position there is below both the speculative boundary and
    //! `neg_start`, where [`Pau::probe`] returns `Continue` unconditionally.

    use super::*;

    /// Scalar reference for the pinned lane prefix: positions `0..m8` of
    /// the gathered walk summed into eight named accumulators (padding taps
    /// contributing a literal `0.0` operand), collapsed through the pinned
    /// tree, added to the bias only when `m8 > 0`.
    // lint:allow(P2) frozen reference walk: p < m8 <= weights.len(), off >= 0 checked before indexing
    fn pinned_prefix(kernel: &KernelExec, taps: &[i32], item: &[f32], bias: f32, m8: usize) -> f32 {
        if m8 == 0 {
            return bias;
        }
        let weights = kernel.reordered.weights();
        let order = kernel.reordered.order();
        let mut lanes = [0.0f32; 8];
        for p in 0..m8 {
            let off = taps[order[p] as usize];
            let v = if off >= 0 { item[off as usize] } else { 0.0 };
            lanes[p % 8] += v * weights[p];
        }
        bias + (((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
            + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7])))
    }

    /// The lane-blocked prefix length of a kernel's walk: the largest
    /// multiple of eight not exceeding the probe-free prefix.
    fn lane_m8(kernel: &KernelExec, len: usize) -> usize {
        let stop1 = unconditional_prefix_len(&kernel.pau, len);
        stop1 - stop1 % 8
    }

    /// Pre-plan [`run_window`](super::run_window): pinned lane prefix, then
    /// probes before every MAC.
    // lint:allow(P2) frozen reference walk: p < weights.len(), off >= 0 checked before indexing
    pub fn run_window(kernel: &KernelExec, taps: &[i32], item: &[f32], bias: f32) -> WindowResult {
        let weights = kernel.reordered.weights();
        let order = kernel.reordered.order();
        let m8 = lane_m8(kernel, weights.len());
        let mut acc = pinned_prefix(kernel, taps, item, bias, m8);
        for p in m8..weights.len() {
            match kernel.pau.probe(p, acc) {
                PauAction::Terminate(kind) => {
                    let output = match kind {
                        TerminationKind::Predicted => 0.0, // early ReLU fired
                        TerminationKind::SignCheck => acc,
                    };
                    return WindowResult {
                        ops: snapea_tensor::num::ops_u32(p),
                        output,
                        termination: Some(kind),
                    };
                }
                PauAction::Continue => {}
            }
            let off = taps[order[p] as usize];
            if off >= 0 {
                acc += item[off as usize] * weights[p];
            }
            // Padding taps still occupy a MAC slot in the hardware walk: the
            // weight is broadcast and the lane multiplies by zero.
        }
        WindowResult {
            ops: snapea_tensor::num::ops_u32(weights.len()),
            output: acc,
            termination: None,
        }
    }

    /// Pre-plan full dot product (stats accounting reference): pinned lane
    /// prefix over the walk's `m8`, sequential to the end.
    // lint:allow(P2) frozen reference walk: p < weights.len(), off >= 0 checked before indexing
    pub fn full_window_value(kernel: &KernelExec, taps: &[i32], item: &[f32], bias: f32) -> f32 {
        let weights = kernel.reordered.weights();
        let order = kernel.reordered.order();
        let m8 = lane_m8(kernel, weights.len());
        let mut acc = pinned_prefix(kernel, taps, item, bias, m8);
        for p in m8..weights.len() {
            let off = taps[order[p] as usize];
            if off >= 0 {
                acc += item[off as usize] * weights[p];
            }
        }
        acc
    }

    /// Pre-plan serial executor: per-window scalar walks over a freshly
    /// built gather table, stats folded in ascending `(image, kernel,
    /// window)` order — the order the optimised executor must reproduce.
    // lint:allow(P2) frozen reference executor: k < c_out, w < windows by the geometry asserts
    pub fn execute_conv(
        conv: &Conv2d,
        input: &Tensor4,
        cfg: &LayerConfig,
        collect_stats: bool,
    ) -> ExecResult {
        assert_eq!(cfg.kernels().len(), conv.c_out(), "config kernel count");
        let s = input.shape();
        let gather = GatherTable::build(s, conv.geom(), conv.c_in());
        let out_shape = conv.out_shape(s);
        let windows = gather.windows();

        let mut output = Tensor4::zeros(out_shape);
        let mut ops = vec![0u32; s.n * conv.c_out() * windows];
        let mut stats = PredictionStats::default();

        for n in 0..s.n {
            let item = input.item(n);
            for (k, kexec) in cfg.kernels().iter().enumerate() {
                let bias = conv.bias()[k];
                let out_base = out_shape.offset(n, k, 0, 0);
                let ops_base = (n * conv.c_out() + k) * windows;
                for w in 0..windows {
                    let taps = gather.window(w);
                    let r = run_window(kexec, taps, item, bias);
                    output.as_mut_slice()[out_base + w] = r.output;
                    ops[ops_base + w] = r.ops;
                    if collect_stats {
                        let full = full_window_value(kexec, taps, item, bias);
                        account_window(&mut stats, full, r.termination);
                    }
                }
            }
        }

        let profile = LayerProfile {
            images: s.n,
            kernels: conv.c_out(),
            windows,
            window_len: conv.window_len(),
            ops,
        };
        ExecResult {
            output,
            profile,
            stats,
        }
    }

    /// Pre-plan [`run_window_q16`](super::run_window_q16): probes (and
    /// dequantises) before every MAC, quantises the weight per MAC.
    // lint:allow(P2) frozen reference walk: p < weights.len(), off >= 0 checked before indexing
    pub fn run_window_q16(
        kernel: &KernelExec,
        taps: &[i32],
        item_q: &[snapea_tensor::q16::Q16],
        bias: f32,
        fmt: snapea_tensor::q16::Q16Format,
    ) -> WindowResult {
        use snapea_tensor::q16::QAcc;
        let weights = kernel.reordered.weights();
        let order = kernel.reordered.order();
        let mut acc = QAcc::new();
        // Bias enters the accumulator pre-scaled to the product width.
        acc.mac(fmt.quantize(bias), fmt.quantize(1.0));
        for p in 0..weights.len() {
            match kernel.pau.probe(p, acc.to_f32(fmt)) {
                PauAction::Terminate(kind) => {
                    let output = match kind {
                        TerminationKind::Predicted => 0.0,
                        TerminationKind::SignCheck => acc.to_f32(fmt),
                    };
                    return WindowResult {
                        ops: snapea_tensor::num::ops_u32(p),
                        output,
                        termination: Some(kind),
                    };
                }
                PauAction::Continue => {}
            }
            let off = taps[order[p] as usize];
            if off >= 0 {
                acc.mac(item_q[off as usize], fmt.quantize(weights[p]));
            }
        }
        WindowResult {
            ops: snapea_tensor::num::ops_u32(weights.len()),
            output: acc.to_f32(fmt),
            termination: None,
        }
    }

    /// Pre-plan serial fixed-point executor.
    // lint:allow(P2) frozen reference executor: k < c_out, w < windows by the geometry asserts
    pub fn execute_conv_q16(
        conv: &Conv2d,
        input: &Tensor4,
        cfg: &LayerConfig,
        fmt: snapea_tensor::q16::Q16Format,
    ) -> ExecResult {
        assert_eq!(cfg.kernels().len(), conv.c_out(), "config kernel count");
        let s = input.shape();
        let gather = GatherTable::build(s, conv.geom(), conv.c_in());
        let out_shape = conv.out_shape(s);
        let windows = gather.windows();

        let mut output = Tensor4::zeros(out_shape);
        let mut ops = vec![0u32; s.n * conv.c_out() * windows];

        for n in 0..s.n {
            let item_q = snapea_tensor::q16::quantize_slice(fmt, input.item(n));
            for (k, kexec) in cfg.kernels().iter().enumerate() {
                let bias = conv.bias()[k];
                let out_base = out_shape.offset(n, k, 0, 0);
                let ops_base = (n * conv.c_out() + k) * windows;
                for w in 0..windows {
                    let r = run_window_q16(kexec, gather.window(w), &item_q, bias, fmt);
                    output.as_mut_slice()[out_base + w] = r.output;
                    ops[ops_base + w] = r.ops;
                }
            }
        }

        let profile = LayerProfile {
            images: s.n,
            kernels: conv.c_out(),
            windows,
            window_len: conv.window_len(),
            ops,
        };
        ExecResult {
            output,
            profile,
            stats: PredictionStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapea_tensor::init;

    fn nonneg_input(shape: Shape4, seed: u64) -> Tensor4 {
        init::uniform4(shape, 1.0, &mut init::rng(seed)).map(f32::abs)
    }

    #[test]
    fn exact_mode_preserves_post_relu_output() {
        for seed in 0..5 {
            let mut rng = init::rng(seed);
            let conv = Conv2d::new(3, 6, ConvGeom::square(3, 1, 1), &mut rng);
            let input = nonneg_input(Shape4::new(2, 3, 7, 7), seed + 100);
            let cfg = LayerConfig::exact(&conv);
            let r = execute_conv(&conv, &input, &cfg);
            let reference = conv.forward(&input);
            for (a, b) in r.output.iter().zip(reference.iter()) {
                let (ra, rb) = (a.max(0.0), b.max(0.0));
                assert!(
                    (ra - rb).abs() < 1e-3,
                    "post-ReLU mismatch: {ra} vs {rb} (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn exact_mode_saves_ops_on_zero_centred_kernels() {
        let mut rng = init::rng(1);
        let conv = Conv2d::new(4, 8, ConvGeom::square(3, 1, 1), &mut rng);
        let input = nonneg_input(Shape4::new(1, 4, 8, 8), 7);
        let cfg = LayerConfig::exact(&conv);
        let r = execute_conv(&conv, &input, &cfg);
        assert!(
            r.profile.savings() > 0.05,
            "savings {}",
            r.profile.savings()
        );
        assert_eq!(r.profile.full_macs(), conv.full_macs(input.shape()));
    }

    #[test]
    fn all_positive_kernel_never_terminates() {
        let mut rng = init::rng(2);
        let mut conv = Conv2d::new(2, 1, ConvGeom::square(3, 1, 0), &mut rng);
        conv.weight_mut().map_inplace(f32::abs);
        let input = nonneg_input(Shape4::new(1, 2, 5, 5), 3);
        let cfg = LayerConfig::exact(&conv);
        let r = execute_conv(&conv, &input, &cfg);
        assert_eq!(r.profile.total_ops(), r.profile.full_macs());
    }

    #[test]
    fn paper_figure4_example() {
        // Figure 4: weights [-5, +1, -1] over inputs [+1, +2, +6], bias 0.
        // Unaltered output: -5 + 2 - 6 = -9. Exact mode reorders to
        // [+1, -5, -1] over [+2, +1, +6] and stops after 2 MACs at -3.
        let weight = Tensor4::from_vec(Shape4::new(1, 1, 1, 3), vec![-5.0, 1.0, -1.0]).unwrap();
        let geom = ConvGeom {
            kh: 1,
            kw: 3,
            stride: 1,
            pad: 0,
        };
        let conv = Conv2d::from_parts(weight, vec![0.0], geom);
        let input = Tensor4::from_vec(Shape4::new(1, 1, 1, 3), vec![1.0, 2.0, 6.0]).unwrap();
        let cfg = LayerConfig::exact(&conv);
        let r = execute_conv(&conv, &input, &cfg);
        assert_eq!(r.profile.op(0, 0, 0), 2);
        assert_eq!(r.output.as_slice()[0], -3.0);

        // Predictive mode with N=1, Th=+3: the largest-magnitude
        // representative of the single group is -5 (product -5·1 = -5 < 3),
        // so the window terminates after 1 MAC and the early ReLU outputs 0.
        let cfg = LayerConfig::predictive_uniform(&conv, KernelParams::new(3.0, 1));
        let r = execute_conv(&conv, &input, &cfg);
        assert_eq!(r.profile.op(0, 0, 0), 1);
        assert_eq!(r.output.as_slice()[0], 0.0);
    }

    #[test]
    fn predictive_mode_cuts_at_least_as_early_with_loose_threshold() {
        let mut rng = init::rng(5);
        let conv = Conv2d::new(3, 4, ConvGeom::square(3, 1, 1), &mut rng);
        let input = nonneg_input(Shape4::new(1, 3, 8, 8), 11);
        let exact = execute_conv(&conv, &input, &LayerConfig::exact(&conv));
        // A huge threshold predicts "negative" for every window after N ops.
        let params = KernelParams::new(f32::INFINITY, 4);
        let pred = execute_conv(
            &conv,
            &input,
            &LayerConfig::predictive_uniform(&conv, params),
        );
        assert!(pred.profile.total_ops() < exact.profile.total_ops());
        assert_eq!(
            pred.profile.total_ops(),
            (pred.profile.images() * pred.profile.kernels() * pred.profile.windows()) as u64 * 4
        );
        // Every window output zero (all predicted).
        assert!(pred.output.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn predictive_with_never_firing_threshold_matches_exact_outputs() {
        let mut rng = init::rng(6);
        let conv = Conv2d::new(3, 4, ConvGeom::square(3, 1, 1), &mut rng);
        let input = nonneg_input(Shape4::new(1, 3, 6, 6), 13);
        let params = KernelParams::new(f32::NEG_INFINITY, 2);
        let pred = execute_conv(
            &conv,
            &input,
            &LayerConfig::predictive_uniform(&conv, params),
        );
        let reference = conv.forward(&input);
        for (a, b) in pred.output.iter().zip(reference.iter()) {
            assert!((a.max(0.0) - b.max(0.0)).abs() < 1e-3);
        }
        assert!(!pred.output.iter().any(|v| v.is_nan()));
    }

    #[test]
    fn stats_split_true_and_false_negatives() {
        let mut rng = init::rng(8);
        let conv = Conv2d::new(3, 8, ConvGeom::square(3, 1, 1), &mut rng);
        let input = nonneg_input(Shape4::new(2, 3, 8, 8), 17);
        let params = KernelParams::new(0.05, 4);
        let r = execute_conv_stats(
            &conv,
            &input,
            &LayerConfig::predictive_uniform(&conv, params),
        );
        let s = r.stats;
        assert_eq!(
            s.negative_windows + s.positive_windows,
            (r.profile.images() * r.profile.kernels() * r.profile.windows()) as u64
        );
        assert!(s.true_negatives > 0, "no true negatives: {s:?}");
        assert!(s.true_negative_rate() <= 1.0);
        assert!(s.false_negative_rate() <= 1.0);
        assert!(s.squashed_mass <= s.positive_mass);
        // With a mild threshold the squashed mass should be a small share.
        assert!(s.squashed_mass_fraction() < 0.8);
    }

    #[test]
    fn op_counts_bounded_by_window_len() {
        let mut rng = init::rng(9);
        let conv = Conv2d::new(2, 3, ConvGeom::square(3, 2, 1), &mut rng);
        let input = nonneg_input(Shape4::new(1, 2, 9, 9), 19);
        for cfg in [
            LayerConfig::exact(&conv),
            LayerConfig::predictive_uniform(&conv, KernelParams::new(0.0, 2)),
        ] {
            let r = execute_conv(&conv, &input, &cfg);
            assert!(r
                .profile
                .ops
                .iter()
                .all(|&o| o as usize <= conv.window_len()));
        }
    }

    #[test]
    fn zero_skip_counts_nonzero_taps() {
        let mut rng = init::rng(41);
        let conv = Conv2d::new(2, 3, ConvGeom::square(3, 1, 1), &mut rng);
        // Half the inputs are exactly zero (post-ReLU style sparsity).
        let input = init::uniform4(Shape4::new(1, 2, 6, 6), 1.0, &mut rng).map(|v| {
            if v > 0.0 {
                v
            } else {
                0.0
            }
        });
        let p = zero_skip_profile(&conv, &input);
        assert!(p.total_ops() < p.full_macs(), "sparsity must be exploited");
        // Kernel-independent: same counts for every kernel.
        for w in 0..p.windows() {
            let a = p.op(0, 0, w);
            for k in 1..p.kernels() {
                assert_eq!(p.op(0, k, w), a);
            }
        }
        // All-dense input ⇒ only padding taps are skipped.
        let ones = Tensor4::full(Shape4::new(1, 2, 6, 6), 1.0);
        let pd = zero_skip_profile(&conv, &ones);
        let interior_full = pd
            .kernel_ops(0, 0)
            .iter()
            .any(|&o| o as usize == conv.window_len());
        assert!(interior_full, "interior windows have no zero taps");
    }

    #[test]
    fn combined_profile_dominates_both_mechanisms() {
        let mut rng = init::rng(43);
        let conv = Conv2d::new(3, 4, ConvGeom::square(3, 1, 1), &mut rng);
        let input = init::uniform4(Shape4::new(1, 3, 8, 8), 1.0, &mut rng).map(|v| {
            if v > 0.2 {
                v
            } else {
                0.0
            }
        });
        let cfg = LayerConfig::exact(&conv);
        let snapea = execute_conv(&conv, &input, &cfg).profile;
        let zskip = zero_skip_profile(&conv, &input);
        let combined = combined_profile(&conv, &input, &cfg);
        // Combining the two mechanisms never costs more than either alone.
        assert!(combined.total_ops() <= snapea.total_ops());
        assert!(combined.total_ops() <= zskip.total_ops());
        assert!(combined.total_ops() > 0);
    }

    #[test]
    fn q16_exact_mode_matches_f32_within_quantisation() {
        use snapea_tensor::q16::Q16Format;
        let mut rng = init::rng(21);
        let conv = Conv2d::new(3, 4, ConvGeom::square(3, 1, 1), &mut rng);
        let input = nonneg_input(Shape4::new(1, 3, 8, 8), 22);
        let cfg = LayerConfig::exact(&conv);
        let fmt = Q16Format::new(10);
        let fq = execute_conv_q16(&conv, &input, &cfg, fmt);
        let ff = execute_conv(&conv, &input, &cfg);
        // Post-ReLU outputs agree within accumulated quantisation error.
        let window_err = conv.window_len() as f32 * fmt.lsb() * 4.0;
        for (a, b) in fq.output.iter().zip(ff.output.iter()) {
            assert!((a.max(0.0) - b.max(0.0)).abs() <= window_err, "{a} vs {b}");
        }
        // Termination decisions agree for the overwhelming majority of
        // windows (they can differ where the partial sum grazes zero).
        let same = fq
            .profile
            .ops_slice()
            .iter()
            .zip(ff.profile.ops_slice())
            .filter(|(a, b)| a == b)
            .count();
        let total = fq.profile.ops_slice().len();
        assert!(
            same as f64 / total as f64 > 0.9,
            "only {same}/{total} windows agree"
        );
    }

    #[test]
    fn q16_predictive_mode_zeroes_predicted_windows() {
        use snapea_tensor::q16::Q16Format;
        let mut rng = init::rng(31);
        let conv = Conv2d::new(2, 3, ConvGeom::square(3, 1, 0), &mut rng);
        let input = nonneg_input(Shape4::new(1, 2, 6, 6), 32);
        let cfg = LayerConfig::predictive_uniform(&conv, KernelParams::new(f32::INFINITY, 2));
        let r = execute_conv_q16(&conv, &input, &cfg, Q16Format::default());
        assert!(r.output.iter().all(|&v| v == 0.0));
        assert_eq!(
            r.profile.total_ops(),
            (r.profile.kernels() * r.profile.windows()) as u64 * 2
        );
    }

    /// Brute-force interior test straight from the definition: a window is
    /// border iff any of its gather taps is a padding tap.
    fn brute_force_is_border(gather: &GatherTable, w: usize) -> bool {
        gather.window(w).iter().any(|&off| off < 0)
    }

    proptest::proptest! {
        #[test]
        fn plan_partition_matches_brute_force_scan(
            h in 1usize..10,
            w in 1usize..10,
            c_in in 1usize..4,
            kh in 1usize..4,
            kw in 1usize..4,
            stride in 1usize..3,
            pad in 0usize..3,
        ) {
            let shape = Shape4::new(1, c_in, h, w);
            let geom = ConvGeom { kh, kw, stride, pad };
            let plan = WindowPlan::build(shape, geom, c_in);
            let gather = plan.gather();
            let mut interior = 0usize;
            for win in 0..plan.windows() {
                let base = plan.window_base(win);
                let border = brute_force_is_border(gather, win);
                proptest::prop_assert_eq!(base >= 0, !border, "window {}", win);
                if base >= 0 {
                    interior += 1;
                    // Interior windows must reconstruct their gather taps
                    // exactly from base + delta (here via an identity-order
                    // kernel's resolved taps).
                    let taps = gather.window(win);
                    for (i, &t) in taps.iter().enumerate() {
                        let delta = {
                            let per_c = geom.kh * geom.kw;
                            let (c, r) = (i / per_c, i % per_c);
                            let (ky, kx) = (r / geom.kw, r % geom.kw);
                            ((c * h + ky) * w + kx) as i32
                        };
                        proptest::prop_assert_eq!(t, base + delta);
                    }
                }
            }
            proptest::prop_assert_eq!(interior, plan.interior_windows());
            // pad == 0 with a kernel that fits the input means no window can
            // touch padding. (A kernel *larger* than the input still yields
            // one out-of-bounds window under the saturating output formula.)
            if pad == 0 && kh <= h && kw <= w {
                proptest::prop_assert_eq!(plan.interior_windows(), plan.windows());
            }
        }
    }

    /// The optimised executor (resolved-tap plans, phase-split probes,
    /// batched interior walks) must be bit-identical to the frozen pre-plan
    /// scalar walk — outputs, op counts, and the order-sensitive f64 stats.
    #[test]
    fn executor_is_bit_identical_to_baseline() {
        for (seed, geom) in [
            (50, ConvGeom::square(3, 1, 1)), // borders on every edge
            (51, ConvGeom::square(3, 1, 0)), // all interior
            (52, ConvGeom::square(3, 2, 1)), // strided
            (53, ConvGeom::square(1, 1, 0)), // 1x1
            (54, ConvGeom::square(5, 1, 2)), // wide borders
        ] {
            let mut rng = init::rng(seed);
            let conv = Conv2d::new(3, 5, geom, &mut rng);
            let input = nonneg_input(Shape4::new(2, 3, 9, 9), seed + 100);
            let groups = 4.min(conv.window_len());
            for cfg in [
                LayerConfig::exact(&conv),
                LayerConfig::predictive_uniform(&conv, KernelParams::new(0.05, groups)),
                LayerConfig::predictive_uniform(&conv, KernelParams::new(f32::INFINITY, 2)),
            ] {
                for collect_stats in [false, true] {
                    let new = execute_conv_inner(&conv, &input, &cfg, collect_stats);
                    let old = baseline::execute_conv(&conv, &input, &cfg, collect_stats);
                    assert_eq!(new.output.as_slice(), old.output.as_slice(), "seed {seed}");
                    assert_eq!(new.profile.ops, old.profile.ops, "seed {seed}");
                    assert_eq!(new.stats, old.stats, "seed {seed}");
                    assert_eq!(
                        new.stats.positive_mass.to_bits(),
                        old.stats.positive_mass.to_bits(),
                        "seed {seed}: f64 mass must match bitwise"
                    );
                    assert_eq!(
                        new.stats.squashed_mass.to_bits(),
                        old.stats.squashed_mass.to_bits(),
                        "seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn q16_executor_is_bit_identical_to_baseline() {
        use snapea_tensor::q16::Q16Format;
        for seed in [60, 61] {
            let mut rng = init::rng(seed);
            let conv = Conv2d::new(2, 4, ConvGeom::square(3, 1, 1), &mut rng);
            let input = nonneg_input(Shape4::new(1, 2, 8, 8), seed + 7);
            for cfg in [
                LayerConfig::exact(&conv),
                LayerConfig::predictive_uniform(&conv, KernelParams::new(0.05, 3)),
            ] {
                let fmt = Q16Format::new(10);
                let new = execute_conv_q16(&conv, &input, &cfg, fmt);
                let old = baseline::execute_conv_q16(&conv, &input, &cfg, fmt);
                assert_eq!(new.output.as_slice(), old.output.as_slice(), "seed {seed}");
                assert_eq!(new.profile.ops, old.profile.ops, "seed {seed}");
            }
        }
    }

    #[test]
    fn run_window_resolved_matches_generic_on_interior_windows() {
        let mut rng = init::rng(70);
        let conv = Conv2d::new(2, 3, ConvGeom::square(3, 1, 1), &mut rng);
        let input = nonneg_input(Shape4::new(1, 2, 7, 7), 71);
        let plan = WindowPlan::build(input.shape(), conv.geom(), conv.c_in());
        let cfg = LayerConfig::predictive_uniform(&conv, KernelParams::new(0.1, 4));
        let item = input.item(0);
        for (k, kexec) in cfg.kernels().iter().enumerate() {
            let rt = plan.resolve(&kexec.reordered);
            let bias = conv.bias()[k];
            for w in 0..plan.windows() {
                let base = plan.window_base(w);
                if base < 0 {
                    continue;
                }
                let generic = run_window(kexec, plan.gather().window(w), item, bias);
                let resolved = run_window_resolved(kexec, &rt, base, item, bias);
                assert_eq!(generic, resolved, "kernel {k} window {w}");
            }
        }
    }

    #[test]
    fn layer_plan_cache_hits_and_misses_are_counted() {
        // A deliberately odd geometry no other test uses, so the first call
        // must miss and the second must hit even with tests running in
        // parallel against the shared cache and counters.
        let shape = Shape4::new(1, 3, 23, 19);
        let geom = ConvGeom {
            kh: 2,
            kw: 3,
            stride: 2,
            pad: 1,
        };
        let hits0 = snapea_obs::counter("exec/gather_cache_hits").get();
        let misses0 = snapea_obs::counter("exec/gather_cache_misses").get();
        let a = layer_plan(shape, geom, 3);
        let b = layer_plan(shape, geom, 3);
        assert!(std::sync::Arc::ptr_eq(&a, &b), "second call must be cached");
        assert!(snapea_obs::counter("exec/gather_cache_misses").get() > misses0);
        assert!(snapea_obs::counter("exec/gather_cache_hits").get() > hits0);
        assert!(plan_cache_len() >= 1);
    }

    #[test]
    fn gather_table_matches_im2col_layout() {
        let shape = Shape4::new(1, 2, 5, 5);
        let geom = ConvGeom::square(3, 2, 1);
        let g = GatherTable::build(shape, geom, 2);
        let x = Tensor4::from_fn(shape, |_, c, h, w| (c * 100 + h * 10 + w) as f32);
        let cols = snapea_tensor::im2col::im2col(&x, 0, geom);
        let item = x.item(0);
        for w in 0..g.windows() {
            for (idx, &off) in g.window(w).iter().enumerate() {
                let expect = cols[(idx, w)];
                let got = if off < 0 { 0.0 } else { item[off as usize] };
                assert_eq!(got, expect, "window {w} tap {idx}");
            }
        }
    }
}
