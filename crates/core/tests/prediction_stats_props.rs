//! Unit and property tests for [`PredictionStats::merge`], the executor's
//! aggregation path: merging must behave like elementwise addition
//! (commutative, associative, zero identity) and the derived rates must be
//! the count-weighted combination of the inputs — aggregating per-layer or
//! per-image blocks in any order may never change a reported rate.

use proptest::prelude::*;
use snapea::exec::PredictionStats;

fn merged(a: &PredictionStats, b: &PredictionStats) -> PredictionStats {
    let mut out = *a;
    out.merge(b);
    out
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0)
}

#[test]
fn merge_of_zero_is_identity() {
    let a = PredictionStats {
        negative_windows: 10,
        positive_windows: 30,
        true_negatives: 7,
        false_negatives: 3,
        sign_terminations: 2,
        positive_mass: 12.5,
        squashed_mass: 0.5,
    };
    assert_eq!(merged(&a, &PredictionStats::default()), a);
    assert_eq!(merged(&PredictionStats::default(), &a), a);
}

#[test]
fn merged_rates_are_count_weighted() {
    // Layer 1: 1/2 of negatives caught. Layer 2: 9/18. Merged: 10/20 — the
    // weighted combination, not the mean of the per-layer rates.
    let a = PredictionStats {
        negative_windows: 2,
        true_negatives: 1,
        ..PredictionStats::default()
    };
    let b = PredictionStats {
        negative_windows: 18,
        true_negatives: 9,
        ..PredictionStats::default()
    };
    let m = merged(&a, &b);
    assert_eq!(m.true_negative_rate(), 0.5);
    assert_eq!(m.negative_windows, 20);
    assert_eq!(m.true_negatives, 10);
}

fn stats() -> impl Strategy<Value = PredictionStats> {
    (
        0u64..10_000,
        0u64..10_000,
        0.0f64..=1.0,
        0.0f64..=1.0,
        0u64..10_000,
        0.0f64..1000.0,
        0.0f64..=1.0,
    )
        .prop_map(|(neg, pos, tn_frac, fn_frac, sign, mass, squash_frac)| {
            // Derive the dependent fields from fractions so every generated
            // block satisfies the executor's invariants (tn ≤ neg, fn ≤ pos,
            // squashed ≤ positive mass).
            PredictionStats {
                negative_windows: neg,
                positive_windows: pos,
                true_negatives: (neg as f64 * tn_frac) as u64,
                false_negatives: (pos as f64 * fn_frac) as u64,
                sign_terminations: sign,
                positive_mass: mass,
                squashed_mass: mass * squash_frac,
            }
        })
}

proptest! {
    /// `a.merge(b)` equals `b.merge(a)` field for field.
    #[test]
    fn merge_is_commutative(a in stats(), b in stats()) {
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    /// `(a ∪ b) ∪ c` equals `a ∪ (b ∪ c)` on the integer fields exactly and
    /// on the mass fields within float tolerance.
    #[test]
    fn merge_is_associative(a in stats(), b in stats(), c in stats()) {
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(left.negative_windows, right.negative_windows);
        prop_assert_eq!(left.positive_windows, right.positive_windows);
        prop_assert_eq!(left.true_negatives, right.true_negatives);
        prop_assert_eq!(left.false_negatives, right.false_negatives);
        prop_assert_eq!(left.sign_terminations, right.sign_terminations);
        prop_assert!(close(left.positive_mass, right.positive_mass));
        prop_assert!(close(left.squashed_mass, right.squashed_mass));
    }

    /// The merged rates equal the count-weighted combination of the inputs
    /// (so aggregation can never bias a rate), and the structural invariants
    /// survive the merge.
    #[test]
    fn rates_preserved_under_aggregation(a in stats(), b in stats()) {
        let m = merged(&a, &b);

        let neg = a.negative_windows + b.negative_windows;
        if neg > 0 {
            let expect = (a.true_negatives + b.true_negatives) as f64 / neg as f64;
            prop_assert!(close(m.true_negative_rate(), expect));
        } else {
            prop_assert_eq!(m.true_negative_rate(), 0.0);
        }

        let pos = a.positive_windows + b.positive_windows;
        if pos > 0 {
            let expect = (a.false_negatives + b.false_negatives) as f64 / pos as f64;
            prop_assert!(close(m.false_negative_rate(), expect));
        } else {
            prop_assert_eq!(m.false_negative_rate(), 0.0);
        }

        // A weighted combination stays inside the per-block range.
        let lo = a.true_negative_rate().min(b.true_negative_rate());
        let hi = a.true_negative_rate().max(b.true_negative_rate());
        if a.negative_windows > 0 && b.negative_windows > 0 {
            prop_assert!(m.true_negative_rate() >= lo - 1e-12);
            prop_assert!(m.true_negative_rate() <= hi + 1e-12);
        }

        prop_assert!(m.true_negatives <= m.negative_windows);
        prop_assert!(m.false_negatives <= m.positive_windows);
        prop_assert!(m.squashed_mass <= m.positive_mass + 1e-9);
        prop_assert!(m.squashed_mass_fraction() <= 1.0 + 1e-12);
    }
}
