//! The executor's trace wiring: every layer call opens an `exec/layer`
//! span and emits an `exec/layer` event (with its wall time and plan-cache
//! outcome), the `exec/layer_ms` latency histogram accumulates, and — only
//! under the `SNAPEA_TRACE_DETAIL` opt-in — each `(image, kernel)` task
//! additionally records an `exec/kernel` span.
//!
//! This is one test function (not several) because the obs sink is a
//! process-wide global and the crate's other integration suites run in
//! their own binaries; a single test serialises sink installation without
//! needing a cross-crate lock.

use snapea::exec::{execute_conv, LayerConfig};
use snapea_nn::ops::Conv2d;
use snapea_obs::Json;
use snapea_tensor::{im2col::ConvGeom, init, Shape4};

#[test]
fn executor_emits_layer_spans_events_and_kernel_detail() {
    let mut rng = init::rng(9);
    let conv = Conv2d::new(3, 4, ConvGeom::square(3, 1, 1), &mut rng);
    let input = init::uniform4(Shape4::new(2, 3, 7, 7), 1.0, &mut rng).map(f32::abs);
    let cfg = LayerConfig::exact(&conv);

    let mem = snapea_obs::MemorySink::new();
    snapea_obs::sink::install(Box::new(mem.clone()));
    snapea_obs::set_detail_enabled(false);
    let baseline = execute_conv(&conv, &input, &cfg);
    snapea_obs::set_detail_enabled(true);
    let detailed = execute_conv(&conv, &input, &cfg);
    snapea_obs::set_detail_enabled(false);
    snapea_obs::sink::clear();

    // Tracing must never perturb results.
    assert_eq!(
        baseline.output.as_slice(),
        detailed.output.as_slice(),
        "detail tracing changed the layer output"
    );

    let events = mem.events();
    let spans_named = |name: &str| {
        events
            .iter()
            .filter(|e| {
                e.get("kind").and_then(Json::as_str) == Some("span")
                    && e.get("name").and_then(Json::as_str) == Some(name)
            })
            .count()
    };
    assert_eq!(spans_named("exec/layer"), 2, "one span per layer call");
    // Detail spans only for the opted-in call: 2 images × 4 kernels.
    assert_eq!(
        spans_named("exec/kernel"),
        8,
        "one span per (image, kernel)"
    );

    let layer_events: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("kind").and_then(Json::as_str) == Some("exec/layer"))
        .collect();
    assert_eq!(layer_events.len(), 2, "one exec/layer event per call");
    for e in &layer_events {
        let ms = e
            .get("elapsed_ms")
            .and_then(Json::as_f64)
            .expect("exec/layer carries its wall time");
        assert!(ms >= 0.0 && ms.is_finite());
        assert!(
            e.get("gather_cache_hit").is_some(),
            "plan-cache outcome is part of the event"
        );
    }

    // The latency histogram saw both calls (≥, not ==: other layer calls in
    // this process would also be charged — there are none today, but the
    // histogram is a process-global).
    let snap = snapea_obs::log_histogram("exec/layer_ms").snapshot();
    assert!(snap.count() >= 2, "exec/layer_ms recorded both calls");
}
