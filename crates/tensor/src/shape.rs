//! Shape types for 2-D and 4-D tensors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error produced when a shape-sensitive operation receives incompatible
/// shapes (e.g. reshaping to a different element count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    what: String,
}

impl ShapeError {
    pub(crate) fn new(what: impl Into<String>) -> Self {
        Self { what: what.into() }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape mismatch: {}", self.what)
    }
}

impl std::error::Error for ShapeError {}

/// Shape of a 4-D tensor in NCHW layout: batch `n`, channels `c`, height `h`,
/// width `w`.
///
/// ```
/// use snapea_tensor::Shape4;
/// let s = Shape4::new(2, 3, 8, 8);
/// assert_eq!(s.len(), 2 * 3 * 8 * 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape4 {
    /// Batch dimension.
    pub n: usize,
    /// Channel dimension.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl Shape4 {
    /// Creates a new NCHW shape.
    pub fn new(n: usize, c: usize, h: usize, w: usize) -> Self {
        Self { n, c, h, w }
    }

    /// Total number of elements.
    pub fn len(self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Row-major (NCHW) linear offset of element `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[inline]
    pub fn offset(self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(
            n < self.n && c < self.c && h < self.h && w < self.w,
            "index ({n},{c},{h},{w}) out of bounds for {self}"
        );
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Number of elements in a single batch item (`c * h * w`).
    pub fn item_len(self) -> usize {
        self.c * self.h * self.w
    }

    /// Number of elements in a single channel plane (`h * w`).
    pub fn plane_len(self) -> usize {
        self.h * self.w
    }
}

impl fmt::Display for Shape4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}, {}, {}]", self.n, self.c, self.h, self.w)
    }
}

/// Shape of a 2-D tensor (matrix): `rows × cols`, row-major.
///
/// ```
/// use snapea_tensor::Shape2;
/// let s = Shape2::new(3, 4);
/// assert_eq!(s.len(), 12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape2 {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Shape2 {
    /// Creates a new matrix shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols }
    }

    /// Total number of elements.
    pub fn len(self) -> usize {
        self.rows * self.cols
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Row-major linear offset of element `(r, c)`.
    #[inline]
    pub fn offset(self, r: usize, c: usize) -> usize {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {self}"
        );
        r * self.cols + c
    }
}

impl fmt::Display for Shape2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape4_len_and_offsets() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(s.len(), 120);
        assert_eq!(s.offset(0, 0, 0, 0), 0);
        assert_eq!(s.offset(0, 0, 0, 1), 1);
        assert_eq!(s.offset(0, 0, 1, 0), 5);
        assert_eq!(s.offset(0, 1, 0, 0), 20);
        assert_eq!(s.offset(1, 0, 0, 0), 60);
        assert_eq!(s.offset(1, 2, 3, 4), 119);
    }

    #[test]
    fn shape4_item_and_plane() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(s.item_len(), 60);
        assert_eq!(s.plane_len(), 20);
        assert!(!s.is_empty());
        assert!(Shape4::new(0, 3, 4, 5).is_empty());
    }

    #[test]
    fn shape2_offsets() {
        let s = Shape2::new(3, 4);
        assert_eq!(s.offset(0, 0), 0);
        assert_eq!(s.offset(2, 3), 11);
        assert_eq!(s.len(), 12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Shape4::new(1, 2, 3, 4).to_string(), "[1, 2, 3, 4]");
        assert_eq!(Shape2::new(5, 6).to_string(), "[5, 6]");
        let e = ShapeError::new("boom");
        assert_eq!(e.to_string(), "shape mismatch: boom");
    }
}
