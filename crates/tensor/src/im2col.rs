//! im2col / col2im transforms used by the fast convolution path.
//!
//! The forward/backward passes of [`snapea-nn`]'s convolution layer lower a
//! convolution to a matrix product: weights `[c_out, c_in*kh*kw]` times the
//! im2col patch matrix `[c_in*kh*kw, out_h*out_w]`. The SnaPEA executor in the
//! `snapea` crate does *not* use this path — it walks windows weight-by-weight
//! to model early termination — but both paths must agree numerically, which
//! the integration tests assert.

use crate::{Shape2, Tensor2, Tensor4};

/// Geometry of a 2-D convolution: kernel size, stride and zero padding.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct ConvGeom {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Vertical and horizontal stride.
    pub stride: usize,
    /// Zero padding applied on every side.
    pub pad: usize,
}

impl ConvGeom {
    /// Creates a square-kernel geometry.
    pub fn square(k: usize, stride: usize, pad: usize) -> Self {
        Self {
            kh: k,
            kw: k,
            stride,
            pad,
        }
    }

    /// Output height for an input of height `h`.
    pub fn out_h(&self, h: usize) -> usize {
        (h + 2 * self.pad).saturating_sub(self.kh) / self.stride + 1
    }

    /// Output width for an input of width `w`.
    pub fn out_w(&self, w: usize) -> usize {
        (w + 2 * self.pad).saturating_sub(self.kw) / self.stride + 1
    }
}

/// Expands batch item `n` of `input` into the im2col patch matrix of shape
/// `[c_in*kh*kw, out_h*out_w]`. Out-of-bounds (padding) taps contribute zero.
///
/// # Panics
///
/// Panics if `n` is out of bounds.
pub fn im2col(input: &Tensor4, n: usize, geom: ConvGeom) -> Tensor2 {
    let s = input.shape();
    let (oh, ow) = (geom.out_h(s.h), geom.out_w(s.w));
    let rows = s.c * geom.kh * geom.kw;
    let mut out = Tensor2::zeros(Shape2::new(rows, oh * ow));
    im2col_into(input, n, geom, out.as_mut_slice());
    out
}

/// [`im2col`] writing into a caller-provided **zeroed** flat buffer of length
/// `c_in*kh*kw × out_h*out_w` (row-major) — the allocation-free form used by
/// the scratch-reuse convolution path. Padding taps are left untouched, which
/// is why the buffer must arrive zeroed (e.g. from
/// [`crate::scratch::with_zeroed`]).
///
/// # Panics
///
/// Panics if `n` is out of bounds or `out` has the wrong length.
// lint:allow(P2) rows/cols derive from the asserted buffer length; iy/ix are bounds-checked before use
pub fn im2col_into(input: &Tensor4, n: usize, geom: ConvGeom, out: &mut [f32]) {
    let s = input.shape();
    let (oh, ow) = (geom.out_h(s.h), geom.out_w(s.w));
    let rows = s.c * geom.kh * geom.kw;
    let cols = oh * ow;
    assert_eq!(out.len(), rows * cols, "im2col_into: buffer length");
    for c in 0..s.c {
        for ky in 0..geom.kh {
            for kx in 0..geom.kw {
                let row = (c * geom.kh + ky) * geom.kw + kx;
                let dst = &mut out[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                    if iy < 0 || iy >= s.h as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                        if ix < 0 || ix >= s.w as isize {
                            continue;
                        }
                        dst[oy * ow + ox] = input[(n, c, iy as usize, ix as usize)];
                    }
                }
            }
        }
    }
}

/// Scatters a patch-matrix gradient (shape `[c_in*kh*kw, out_h*out_w]`) back
/// into an input-shaped gradient for batch item `n`, accumulating overlaps.
///
/// Inverse-adjoint of [`im2col`]: padding positions are dropped.
///
/// # Panics
///
/// Panics if `cols` has the wrong shape for `(grad_input.shape(), geom)`.
pub fn col2im(cols: &Tensor2, grad_input: &mut Tensor4, n: usize, geom: ConvGeom) {
    let s = grad_input.shape();
    col2im_item(cols, grad_input.item_mut(n), s.c, s.h, s.w, geom);
}

/// [`col2im`] operating on a single batch item's flat `[c × h × w]` slice —
/// the form used by the parallel convolution backward pass, where each
/// worker owns one item's disjoint `grad_input` slice.
///
/// # Panics
///
/// Panics if `grad_item.len() != c * h * w` or `cols` has the wrong shape
/// for `(c, h, w, geom)`.
pub fn col2im_item(
    cols: &Tensor2,
    grad_item: &mut [f32],
    c: usize,
    h: usize,
    w: usize,
    geom: ConvGeom,
) {
    let (oh, ow) = (geom.out_h(h), geom.out_w(w));
    assert_eq!(
        cols.shape(),
        Shape2::new(c * geom.kh * geom.kw, oh * ow),
        "col2im: patch matrix shape mismatch"
    );
    col2im_item_slice(cols.as_slice(), grad_item, c, h, w, geom);
}

/// [`col2im_item`] over a raw flat `[c*kh*kw, out_h*out_w]` row-major patch
/// matrix — the allocation-free form used by the scratch-reuse convolution
/// backward pass.
///
/// # Panics
///
/// Panics if either slice has the wrong length for `(c, h, w, geom)`.
// lint:allow(P2) both slice lengths are asserted above the loops; iy/ix are bounds-checked before use
pub fn col2im_item_slice(
    cols: &[f32],
    grad_item: &mut [f32],
    c: usize,
    h: usize,
    w: usize,
    geom: ConvGeom,
) {
    let (oh, ow) = (geom.out_h(h), geom.out_w(w));
    let ocols = oh * ow;
    assert_eq!(grad_item.len(), c * h * w, "col2im: item slice length");
    assert_eq!(
        cols.len(),
        c * geom.kh * geom.kw * ocols,
        "col2im: patch matrix length mismatch"
    );
    for ci in 0..c {
        for ky in 0..geom.kh {
            for kx in 0..geom.kw {
                let row = (ci * geom.kh + ky) * geom.kw + kx;
                let src = &cols[row * ocols..(row + 1) * ocols];
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        grad_item[(ci * h + iy as usize) * w + ix as usize] += src[oy * ow + ox];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape4;

    #[test]
    fn geometry() {
        let g = ConvGeom::square(3, 1, 1);
        assert_eq!(g.out_h(8), 8);
        assert_eq!(g.out_w(8), 8);
        let g = ConvGeom::square(3, 2, 0);
        assert_eq!(g.out_h(7), 3);
        let g = ConvGeom::square(1, 1, 0);
        assert_eq!(g.out_h(5), 5);
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no pad: im2col is just the channel planes.
        let t = Tensor4::from_fn(Shape4::new(1, 2, 2, 2), |_, c, h, w| {
            (c * 4 + h * 2 + w) as f32
        });
        let m = im2col(&t, 0, ConvGeom::square(1, 1, 0));
        assert_eq!(m.shape(), Shape2::new(2, 4));
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn im2col_padding_zero_fills() {
        let t = Tensor4::full(Shape4::new(1, 1, 2, 2), 1.0);
        let m = im2col(&t, 0, ConvGeom::square(3, 1, 1));
        // Centre tap of the 3x3 kernel sees every input pixel.
        let centre = m.row(4);
        assert_eq!(centre, &[1.0, 1.0, 1.0, 1.0]);
        // Top-left tap only sees the input at output (1,1).
        let tl = m.row(0);
        assert_eq!(tl, &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y.
        let geom = ConvGeom::square(3, 2, 1);
        let shape = Shape4::new(1, 2, 5, 5);
        let x = Tensor4::from_fn(shape, |_, c, h, w| ((c * 25 + h * 5 + w) as f32).sin());
        let cols = im2col(&x, 0, geom);
        let y = Tensor2::from_fn(cols.shape(), |r, c| ((r * 31 + c * 7) as f32).cos());
        let lhs: f32 = cols.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
        let mut back = Tensor4::zeros(shape);
        col2im(&y, &mut back, 0, geom);
        let rhs: f32 = x.iter().zip(back.iter()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }
}
