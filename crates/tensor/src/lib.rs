//! Minimal dense tensor library underpinning the SnaPEA reproduction.
//!
//! The crate provides exactly what the CNN substrate ([`snapea-nn`]) and the
//! SnaPEA core need:
//!
//! * [`Tensor4`] — a dense, row-major, NCHW `f32` tensor used for activations
//!   and convolution kernels.
//! * [`Tensor2`] — a dense matrix used by fully-connected layers and the
//!   im2col-based convolution path.
//! * [`init`] — deterministic, seeded weight initializers.
//! * [`q16`] — 16-bit fixed-point arithmetic mirroring the paper's 16-bit
//!   fixed-point processing engines (Table II of the paper).
//! * [`lane`] — the eight-wide lane layer: `f32x8`/`i32x8` wrappers, the
//!   pinned lane-tree reduction order, and the asm-verified SIMD kernels
//!   behind the GEMM microkernel and the executor walks.
//! * [`par`] — the scoped worker pool behind every parallel hot path in the
//!   workspace (`SNAPEA_THREADS` knob; results are bit-identical for any
//!   thread count).
//! * [`scratch`] — a thread-local arena of reusable zeroed `f32` buffers so
//!   the steady-state conv/executor paths stay off the allocator.
//!
//! Everything is deterministic: no global RNG state, and no wall-clock in
//! any numeric path (the pool reads the clock only for its metrics).
//!
//! # Examples
//!
//! ```
//! use snapea_tensor::{Shape4, Tensor4};
//!
//! let mut t = Tensor4::zeros(Shape4::new(1, 3, 4, 4));
//! t[(0, 0, 0, 0)] = 1.0;
//! assert_eq!(t[(0, 0, 0, 0)], 1.0);
//! assert_eq!(t.shape().len(), 48);
//! ```

// `deny`, not `forbid`: the persistent worker pool (`par::pool`) carries the
// crate's only unsafe sites — a small audited lifetime-erasure core, each
// site annotated with `#[allow(unsafe_code)]` plus a reasoned
// `lint:allow(S1)` justification checked by snapea-lint. Everything else in
// the crate remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod matrix;
mod shape;
mod tensor4;

pub mod im2col;
pub mod init;
pub mod lane;
pub mod num;
pub mod par;
pub mod q16;
pub mod scratch;

pub use im2col::ConvGeom;
pub use matrix::{matmul_into, matmul_t_into, t_matmul_into, Tensor2};
pub use shape::{Shape2, Shape4, ShapeError};
pub use tensor4::Tensor4;
