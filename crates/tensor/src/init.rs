//! Deterministic, seeded weight initializers.
//!
//! All initializers take an explicit RNG so that every experiment in the
//! reproduction is reproducible bit-for-bit from a seed.

use crate::{Shape2, Shape4, Tensor2, Tensor4};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a [`StdRng`] from a 64-bit seed.
///
/// ```
/// use rand::Rng;
/// let mut a = snapea_tensor::init::rng(7);
/// let mut b = snapea_tensor::init::rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Uniform values in `[-limit, limit)`.
pub fn uniform4(shape: Shape4, limit: f32, rng: &mut StdRng) -> Tensor4 {
    Tensor4::from_fn(shape, |_, _, _, _| rng.gen_range(-limit..limit))
}

/// Uniform values in `[-limit, limit)` for matrices.
pub fn uniform2(shape: Shape2, limit: f32, rng: &mut StdRng) -> Tensor2 {
    Tensor2::from_fn(shape, |_, _| rng.gen_range(-limit..limit))
}

/// He (Kaiming) uniform initialization for a convolution kernel of shape
/// `[c_out, c_in, kh, kw]`: `limit = sqrt(6 / fan_in)` with
/// `fan_in = c_in * kh * kw`.
///
/// He initialization is the standard choice upstream of ReLU layers and
/// produces the roughly zero-centred pre-activation distributions whose
/// negative halves SnaPEA exploits.
pub fn he_conv(shape: Shape4, rng: &mut StdRng) -> Tensor4 {
    let fan_in = (shape.c * shape.h * shape.w).max(1);
    let limit = (6.0 / fan_in as f32).sqrt();
    uniform4(shape, limit, rng)
}

/// He (Kaiming) uniform initialization for a fully-connected weight matrix of
/// shape `[fan_out, fan_in]`.
pub fn he_fc(shape: Shape2, rng: &mut StdRng) -> Tensor2 {
    let fan_in = shape.cols.max(1);
    let limit = (6.0 / fan_in as f32).sqrt();
    uniform2(shape, limit, rng)
}

/// Xavier (Glorot) uniform initialization for a fully-connected weight matrix
/// of shape `[fan_out, fan_in]`: `limit = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_fc(shape: Shape2, rng: &mut StdRng) -> Tensor2 {
    let limit = (6.0 / (shape.rows + shape.cols).max(1) as f32).sqrt();
    uniform2(shape, limit, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_initializers_are_deterministic() {
        let s = Shape4::new(4, 3, 3, 3);
        let a = he_conv(s, &mut rng(42));
        let b = he_conv(s, &mut rng(42));
        assert_eq!(a, b);
        let c = he_conv(s, &mut rng(43));
        assert_ne!(a, c);
    }

    #[test]
    fn he_conv_respects_limit() {
        let s = Shape4::new(8, 4, 3, 3);
        let limit = (6.0_f32 / (4 * 3 * 3) as f32).sqrt();
        let t = he_conv(s, &mut rng(1));
        assert!(t.iter().all(|v| v.abs() <= limit));
        // Values should be roughly symmetric around zero.
        let frac = t.negative_fraction();
        assert!(frac > 0.3 && frac < 0.7, "negative fraction {frac}");
    }

    #[test]
    fn fc_initializers_shapes() {
        let s = Shape2::new(10, 20);
        assert_eq!(he_fc(s, &mut rng(0)).shape(), s);
        assert_eq!(xavier_fc(s, &mut rng(0)).shape(), s);
        assert_eq!(uniform2(s, 0.1, &mut rng(0)).shape(), s);
    }
}
