//! Scoped worker pool shared by every hot path of the reproduction.
//!
//! The pool is deliberately tiny: no persistent threads, no channels, no
//! unsafe. Every invocation opens a [`std::thread::scope`], the workers pull
//! task indices from a shared queue (dynamic scheduling, so uneven task
//! costs — e.g. predictive windows that terminate at different depths —
//! still balance), and results are returned **in task order** so callers
//! observe the same values regardless of how work was interleaved.
//!
//! ## Determinism contract
//!
//! Parallel callers in this workspace follow two rules, and the pool is
//! shaped to make them easy:
//!
//! 1. **Ownership-partitioned writes** — each task owns a disjoint `&mut`
//!    slice of the output (rows of a matrix, batch items of a tensor,
//!    `(image, kernel)` planes of an executor run). Safe Rust enforces the
//!    disjointness; no task ever observes another task's writes.
//! 2. **Deterministic reduction order** — floating-point reductions are
//!    merged on the caller's thread in ascending task order, with task
//!    boundaries chosen independently of the thread count.
//!
//! Under those rules every result is bit-identical for any thread count,
//! and `SNAPEA_THREADS=1` executes the exact serial loop (tasks run inline
//! on the caller's thread in ascending order, no queue, no spawns).
//!
//! ## Configuration
//!
//! The thread count comes from the `SNAPEA_THREADS` environment variable
//! (clamped to ≥ 1), defaulting to [`std::thread::available_parallelism`].
//! It is resolved once and cached; [`set_threads`] overrides it at runtime
//! (used by benches and determinism tests).
//!
//! Nested parallelism is flattened: a pool worker that itself calls into
//! the pool runs its tasks inline, so a parallel `Conv2d::forward` over
//! batch items never multiplies into a parallel `matmul` per item.
//!
//! ## Observability
//!
//! Each multi-threaded invocation charges `par/invocations`, `par/tasks`,
//! and per-worker busy time (`par/busy_ns`) into the [`snapea_obs`] metrics
//! registry, and sets the `par/imbalance` gauge (`1 − min/max` worker busy
//! time — 0.0 is a perfectly balanced dispatch). With a sink installed and
//! `SNAPEA_TRACE_DETAIL=1`, every worker additionally emits one
//! `par/worker` lane event (`worker`, `start_ms`, `ms`, `tasks`) that the
//! Chrome-trace export renders as a per-thread track.

use std::cell::Cell;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Cached thread count; 0 means "not resolved yet".
static THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True on pool worker threads: nested pool calls run inline.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Interprets a `SNAPEA_THREADS` value: a parsable count yields
/// `Some(count.max(1))` (`"0"` clamps to one thread), while an empty or
/// unparsable value yields `None` so the caller falls back to the machine's
/// available parallelism. A malformed environment variable must degrade to
/// the default, never panic — the pool is initialised lazily from arbitrary
/// call sites, including inside tests and benches.
pub fn parse_thread_count(value: &str) -> Option<usize> {
    value.trim().parse::<usize>().ok().map(|n| n.max(1))
}

fn resolve_threads() -> usize {
    if let Ok(v) = std::env::var("SNAPEA_THREADS") {
        if let Some(n) = parse_thread_count(&v) {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The pool's thread count: `SNAPEA_THREADS` if set (≥ 1), otherwise the
/// machine's available parallelism. Resolved once and cached; override with
/// [`set_threads`].
pub fn threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => {
            let n = resolve_threads();
            THREADS.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Overrides the pool's thread count for the rest of the process (clamped
/// to ≥ 1). Because every parallel caller is deterministic by construction,
/// changing the thread count never changes results — only wall time.
pub fn set_threads(n: usize) {
    THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Runs `f(index, task)` for every task and returns the results **in task
/// order**.
///
/// With one thread (or one task, or when called from inside another pool
/// task) this is exactly `tasks.into_iter().enumerate().map(f).collect()`
/// on the caller's thread. Otherwise `min(threads(), tasks.len())` scoped
/// workers pull tasks from a shared queue; a task that owns a `&mut` slice
/// of some output writes it in place, and the returned values are reordered
/// into task order before the call returns.
///
/// Panics in `f` propagate to the caller (the scope joins all workers
/// first).
pub fn run_tasks<T, R, F>(tasks: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let nested = IN_WORKER.with(Cell::get);
    let workers = if nested {
        1
    } else {
        threads().min(tasks.len())
    };
    if workers <= 1 {
        return tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    let n_tasks = tasks.len();
    snapea_obs::counter("par/invocations").inc();
    snapea_obs::counter("par/tasks").add(n_tasks as u64);
    // Worker-lane trace events are a double opt-in (sink installed AND
    // `SNAPEA_TRACE_DETAIL=1`): a full repro run makes thousands of pool
    // invocations, each of which would add one event per worker. Lanes
    // carry wall times only — they never feed back into results, so the
    // bit-identical-for-any-thread-count contract is untouched.
    let trace_lanes = snapea_obs::enabled() && snapea_obs::detail_enabled();

    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(tasks.into_iter().enumerate().collect());
    let mut slots: Vec<Option<R>> = (0..n_tasks).map(|_| None).collect();
    let mut busy_ns: Vec<u64> = Vec::with_capacity(workers);

    std::thread::scope(|s| {
        let queue = &queue;
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                s.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    let start_ms = snapea_obs::sink::now_ms();
                    let started = snapea_obs::Stopwatch::start();
                    let mut done: Vec<(usize, R)> = Vec::new();
                    loop {
                        // A poisoned queue only means another worker's task
                        // panicked; the VecDeque itself is still coherent,
                        // and that panic is re-raised at join below.
                        let next = queue
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .pop_front();
                        let Some((i, t)) = next else { break };
                        done.push((i, f(i, t)));
                    }
                    if trace_lanes {
                        // Emitted from the worker thread itself so the
                        // envelope `tid` separates lanes in the Chrome
                        // export (one track per worker thread).
                        snapea_obs::event!(
                            "par/worker",
                            worker = worker as u64,
                            start_ms = start_ms,
                            ms = started.elapsed_ms(),
                            tasks = done.len() as u64,
                        );
                    }
                    (done, started.elapsed_ns())
                })
            })
            .collect();
        for h in handles {
            let (done, ns) = match h.join() {
                Ok(r) => r,
                // Documented contract: panics in `f` propagate to the caller.
                Err(payload) => std::panic::resume_unwind(payload),
            };
            busy_ns.push(ns);
            for (i, r) in done {
                slots[i] = Some(r);
            }
        }
    });

    let max = busy_ns.iter().copied().max().unwrap_or(0);
    let min = busy_ns.iter().copied().min().unwrap_or(0);
    snapea_obs::counter("par/busy_ns").add(busy_ns.iter().sum::<u64>());
    snapea_obs::gauge("par/workers").set(workers as f64);
    snapea_obs::gauge("par/imbalance").set(if max == 0 {
        0.0
    } else {
        1.0 - min as f64 / max as f64
    });

    slots
        .into_iter()
        // lint:allow(P1) queue drains exactly once per index and every worker joined, so each slot was written
        .map(|r| r.expect("every task produced a result"))
        .collect()
}

/// Splits `0..n` into contiguous chunks of `chunk` indices (the last chunk
/// may be shorter) and runs `f(chunk_index, range)` for each, returning the
/// results in chunk order.
///
/// Chunk boundaries depend only on `n` and `chunk` — never on the thread
/// count — so reductions merged in chunk order are thread-count invariant.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn parallel_map_chunks<R, F>(n: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, Range<usize>) -> R + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let ranges: Vec<Range<usize>> = (0..n)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(n))
        .collect();
    run_tasks(ranges, f)
}

/// Runs `f(i)` for every `i` in `0..n`, dispatched in chunks of `chunk`
/// indices. `f` must only perform independent work (interior mutability,
/// disjoint outputs resolved by index); no result is collected.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn parallel_for<F>(n: usize, chunk: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    parallel_map_chunks(n, chunk, |_, range| range.for_each(&f));
}

/// Maps `f` over `0..n` returning the results in index order, dispatched in
/// chunks of `chunk` indices.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn parallel_map<R, F>(n: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let nested: Vec<Vec<R>> = parallel_map_chunks(n, chunk, |_, range| range.map(&f).collect());
    let mut out = Vec::with_capacity(n);
    for v in nested {
        out.extend(v);
    }
    out
}

/// A chunk size that yields a few tasks per worker (for callers whose
/// results are order-insensitive or merged per fixed boundaries anyway):
/// `ceil(n / (4 × threads))`, at least 1. Smaller chunks balance better;
/// larger chunks amortise queue traffic — 4 tasks per worker is a
/// reasonable middle for the coarse tasks this workspace dispatches.
pub fn chunk_hint(n: usize) -> usize {
    n.div_ceil(4 * threads().max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        let tasks: Vec<usize> = (0..97).collect();
        let out = run_tasks(tasks, |i, t| {
            assert_eq!(i, t);
            i * 3
        });
        assert_eq!(out, (0..97).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        let out = parallel_map(23, 4, |i| i as i64 - 5);
        assert_eq!(out, (0..23).map(|i| i as i64 - 5).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_cover_range_exactly_once() {
        let ranges = parallel_map_chunks(10, 3, |_, r| r);
        assert_eq!(ranges, vec![0..3, 3..6, 6..9, 9..10]);
    }

    #[test]
    fn parallel_for_visits_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(50, 7, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_calls_run_inline() {
        // A pool task that calls back into the pool must not deadlock or
        // oversubscribe; the nested call runs serially on the worker.
        let out = run_tasks(vec![(); 8], |i, ()| {
            let inner = parallel_map(4, 1, move |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        assert_eq!(out.len(), 8);
        assert_eq!(out[2], 2 * 10 * 4 + 6);
    }

    #[test]
    fn empty_and_single_task_edges() {
        let empty: Vec<u8> = run_tasks(Vec::<u8>::new(), |_, t| t);
        assert!(empty.is_empty());
        assert_eq!(run_tasks(vec![41], |_, t| t + 1), vec![42]);
    }

    #[test]
    fn thread_count_parsing_never_panics_and_falls_back() {
        // Regression: "0", empty, and garbage values must fall back to the
        // default (or clamp), not panic the lazy pool initialisation.
        assert_eq!(parse_thread_count("0"), Some(1));
        assert_eq!(parse_thread_count(""), None);
        assert_eq!(parse_thread_count("   "), None);
        assert_eq!(parse_thread_count("garbage"), None);
        assert_eq!(parse_thread_count("-3"), None);
        assert_eq!(parse_thread_count("2.5"), None);
        assert_eq!(parse_thread_count("4"), Some(4));
        assert_eq!(parse_thread_count(" 8 "), Some(8));
    }

    #[test]
    fn chunk_hint_is_positive_and_covers() {
        assert_eq!(chunk_hint(0), 1);
        for n in [1, 7, 1000] {
            let c = chunk_hint(n);
            assert!(c >= 1 && c <= n.max(1));
        }
    }
}
