//! Persistent worker pool shared by every hot path of the reproduction.
//!
//! Workers are started **once per process** (lazily, on the first dispatch
//! that wants more than one thread) and then parked on a condition variable
//! between dispatches. A `run_tasks` call publishes one *batch* into a
//! bounded injector queue, wakes the workers, and participates in the work
//! itself; workers claim task indices from an atomic cursor (dynamic
//! scheduling, so uneven task costs — e.g. predictive windows that
//! terminate at different depths — still balance), and results are returned
//! **in task order** so callers observe the same values regardless of how
//! work was interleaved. The queue needs no artificial bound: each caller
//! thread has at most one batch in flight (it blocks on its own rendezvous,
//! and nested calls flatten), so the queue length is bounded by the number
//! of concurrently dispatching threads.
//!
//! ## Determinism contract
//!
//! Parallel callers in this workspace follow two rules, and the pool is
//! shaped to make them easy:
//!
//! 1. **Ownership-partitioned writes** — each task owns a disjoint `&mut`
//!    slice of the output (rows of a matrix, batch items of a tensor,
//!    `(image, kernel)` planes of an executor run). Safe Rust enforces the
//!    disjointness; no task ever observes another task's writes.
//! 2. **Deterministic reduction order** — floating-point reductions are
//!    accumulated per *item* (never fused across a task's items) and merged
//!    on the caller's thread in ascending item order, so the fold is the
//!    same no matter where task boundaries fall — and therefore the same
//!    for every thread count and chunk size.
//!
//! Under those rules every result is bit-identical for any thread count,
//! and `SNAPEA_THREADS=1` executes the exact serial loop (tasks run inline
//! on the caller's thread in ascending order, no queue, no wakeups).
//!
//! ## The lifetime-erasure core
//!
//! Persistent workers are never joined, so safe Rust cannot hand them the
//! borrowed closures and `&mut` output slices our callers use
//! (`std::thread::scope` is the only safe primitive for non-`'static`
//! borrows, and it spawns fresh threads per call — the overhead this
//! rewrite removes). The pool therefore erases the dispatch behind a small,
//! audited unsafe core ([`pool`]): a raw pointer to the caller-stack task
//! set plus a monomorphized runner function. Soundness rests on one
//! bracketing invariant, enforced by a drop guard:
//!
//! > A worker dereferences the erased pointer only between *joining* a
//! > batch (under the queue lock, while the batch is open) and *leaving*
//! > it; the caller closes the batch under the same lock and does not
//! > return — not even by unwinding — until every joined worker has left
//! > and every task has completed.
//!
//! The tensor crate is `#![deny(unsafe_code)]`; these are its only unsafe
//! sites, each carrying a `lint:allow(S1)` justification checked by
//! `snapea-lint`.
//!
//! ## Chunk-size floors
//!
//! Dispatching a batch costs a few microseconds (queue lock, wakeup,
//! rendezvous). Call sites therefore size their tasks with [`chunk_for`],
//! which raises the per-task chunk until each task carries at least a
//! minimum amount of work ([`GEMM_TASK_FLOOR_MACS`],
//! [`WALK_TASK_FLOOR_OPS`]); when the whole problem is below the floor the
//! chunk covers it entirely and `run_tasks` degenerates to the inline
//! serial loop — sub-millisecond work never pays for a dispatch.
//!
//! ## Configuration
//!
//! The thread count comes from the `SNAPEA_THREADS` environment variable
//! (clamped to ≥ 1), defaulting to [`std::thread::available_parallelism`].
//! It is resolved once and cached; [`set_threads`] overrides it at runtime
//! (used by benches and determinism tests). The pool grows lazily and
//! never shrinks: raising the count spawns more persistent workers on the
//! next dispatch, lowering it caps how many parked workers may join future
//! batches, and `1` restores the exact inline serial path.
//!
//! A dispatch never uses more *participants* than the machine has cores:
//! extra runnable compute-bound threads cannot add throughput, but the OS
//! round-robins them at millisecond timeslices, destroying cache locality
//! (measured 20–30% slowdowns on this repo's conv shapes). The configured
//! count above the core count therefore only affects chunk boundaries
//! (which must stay a pure function of it — see the determinism contract),
//! not how many threads actually run. `SNAPEA_OVERSUBSCRIBE=1` (or
//! [`set_oversubscribe`]) lifts the clamp; the thread-grid CI stages use it
//! so determinism and pool-machinery tests exercise real concurrency even
//! on single-core runners.
//!
//! Nested parallelism is flattened: a thread that is already running pool
//! tasks (a worker, or the caller while it participates in its own batch)
//! runs nested pool calls inline, so a parallel `Conv2d::forward` over
//! batch items never multiplies into a parallel `matmul` per item.
//!
//! ## Observability
//!
//! Each multi-threaded invocation charges `par/invocations`, `par/tasks`,
//! and per-participant busy time (`par/busy_ns`) into the [`snapea_obs`]
//! metrics registry, and sets the `par/imbalance` gauge (`1 − min/max`
//! participant busy time — 0.0 is a perfectly balanced dispatch);
//! `par/workers_spawned` counts persistent worker threads started. With a
//! sink installed and `SNAPEA_TRACE_DETAIL=1`, every participant that ran
//! at least one task additionally emits one `par/worker` lane event
//! (`worker`, `start_ms`, `ms`, `tasks`) from its own thread — `worker` is
//! the persistent worker's process-wide id (0 is the dispatching caller) —
//! which the Chrome-trace export renders as a per-thread track.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Cached thread count; 0 means "not resolved yet".
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Cached machine parallelism; 0 means "not resolved yet".
static MACHINE: AtomicUsize = AtomicUsize::new(0);

/// Oversubscription policy: 0 unresolved, 1 clamp to the machine, 2 allow.
static OVERSUB: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True while a thread is running pool tasks (persistent workers always,
    /// the caller during its own dispatch): nested pool calls run inline.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Interprets a `SNAPEA_THREADS` value: a parsable count yields
/// `Some(count.max(1))` (`"0"` clamps to one thread), while an empty or
/// unparsable value yields `None` so the caller falls back to the machine's
/// available parallelism. A malformed environment variable must degrade to
/// the default, never panic — the pool is initialised lazily from arbitrary
/// call sites, including inside tests and benches.
pub fn parse_thread_count(value: &str) -> Option<usize> {
    value.trim().parse::<usize>().ok().map(|n| n.max(1))
}

fn resolve_threads() -> usize {
    // lint:allow(R1) sanctioned config site: SNAPEA_THREADS is read once at
    // pool init and only sizes the pool; results are thread-count-invariant
    // by the bit-identity contract
    #[allow(clippy::disallowed_methods)]
    if let Ok(v) = std::env::var("SNAPEA_THREADS") {
        if let Some(n) = parse_thread_count(&v) {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The pool's thread count: `SNAPEA_THREADS` if set (≥ 1), otherwise the
/// machine's available parallelism. Resolved once and cached; override with
/// [`set_threads`].
pub fn threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => {
            let n = resolve_threads();
            THREADS.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Overrides the pool's thread count for the rest of the process (clamped
/// to ≥ 1). Because every parallel caller is deterministic by construction,
/// changing the thread count never changes results — only wall time.
///
/// The persistent pool resolves this lazily per dispatch: raising the count
/// spawns additional workers on the next multi-threaded `run_tasks` call,
/// lowering it merely caps how many of the already-parked workers may join
/// future batches (surplus workers stay parked; threads are never torn
/// down), and `set_threads(1)` restores the exact inline serial path. It is
/// therefore safe to call at any time, including after the pool has
/// started — `crates/tensor/tests/pool.rs` pins this behavior.
pub fn set_threads(n: usize) {
    THREADS.store(n.max(1), Ordering::Relaxed);
}

/// The machine's available parallelism, resolved once and cached.
fn machine_parallelism() -> usize {
    match MACHINE.load(Ordering::Relaxed) {
        0 => {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            MACHINE.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Whether dispatches may run more participants than the machine has cores.
/// Defaults to the `SNAPEA_OVERSUBSCRIBE` environment variable (`"1"`
/// enables), resolved once; [`set_oversubscribe`] overrides at runtime.
pub fn oversubscribe_enabled() -> bool {
    match OVERSUB.load(Ordering::Relaxed) {
        0 => {
            // lint:allow(R1) sanctioned config site: SNAPEA_OVERSUBSCRIBE is
            // resolved once and only gates dispatch width, never results
            #[allow(clippy::disallowed_methods)]
            let on = std::env::var("SNAPEA_OVERSUBSCRIBE").is_ok_and(|v| v.trim() == "1");
            OVERSUB.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        n => n == 2,
    }
}

/// Overrides the oversubscription policy (see the module docs): `true`
/// lets a dispatch run up to `threads()` participants even beyond the core
/// count — pool and determinism tests use it so single-core CI still
/// exercises real worker concurrency. Never affects results: chunk
/// boundaries follow [`effective_threads`], and the determinism contract
/// (per-item accumulation, ascending merge) makes results independent of
/// chunk boundaries in the first place.
pub fn set_oversubscribe(enabled: bool) {
    OVERSUB.store(if enabled { 2 } else { 1 }, Ordering::Relaxed);
}

/// The participant count a dispatch will actually use: [`threads`], clamped
/// to the machine's cores unless oversubscription is enabled. Chunk sizing
/// uses this too, so a thread count the clamp voids does not fragment tasks
/// — on a one-core machine every `SNAPEA_THREADS` value executes the exact
/// serial loop with the exact serial chunking.
pub fn effective_threads() -> usize {
    if oversubscribe_enabled() {
        threads()
    } else {
        threads().min(machine_parallelism())
    }
}

/// Runs `f(index, task)` for every task and returns the results **in task
/// order**.
///
/// With one thread (or one task, or when called from inside another pool
/// task) this is exactly `tasks.into_iter().enumerate().map(f).collect()`
/// on the caller's thread. Otherwise the caller publishes one batch to the
/// persistent pool, up to `threads() - 1` parked workers join it, and the
/// caller itself claims tasks alongside them until the batch drains; a task
/// that owns a `&mut` slice of some output writes it in place, and the
/// returned values are reordered into task order before the call returns.
///
/// Panics in `f` are caught at the task boundary, the batch still drains
/// (every task runs), and the first panic payload is re-raised on the
/// caller after the rendezvous — so a panicking task neither tears down the
/// persistent workers nor leaves the pool in a broken state for the next
/// dispatch.
pub fn run_tasks<T, R, F>(tasks: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let nested = IN_WORKER.with(Cell::get);
    let participants = if nested {
        1
    } else {
        effective_threads().min(tasks.len())
    };
    if participants <= 1 {
        return tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    pool::dispatch(tasks, &f, participants)
}

/// Splits `0..n` into contiguous chunks of `chunk` indices (the last chunk
/// may be shorter) and runs `f(chunk_index, range)` for each, returning the
/// results in chunk order.
///
/// Chunk boundaries depend only on `n` and `chunk` — never on the thread
/// count — so reductions merged in chunk order are thread-count invariant.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn parallel_map_chunks<R, F>(n: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, Range<usize>) -> R + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let ranges: Vec<Range<usize>> = (0..n)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(n))
        .collect();
    run_tasks(ranges, f)
}

/// Runs `f(i)` for every `i` in `0..n`, dispatched in chunks of `chunk`
/// indices. `f` must only perform independent work (interior mutability,
/// disjoint outputs resolved by index); no result is collected.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn parallel_for<F>(n: usize, chunk: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    parallel_map_chunks(n, chunk, |_, range| range.for_each(&f));
}

/// Maps `f` over `0..n` returning the results in index order, dispatched in
/// chunks of `chunk` indices.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn parallel_map<R, F>(n: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let nested: Vec<Vec<R>> = parallel_map_chunks(n, chunk, |_, range| range.map(&f).collect());
    let mut out = Vec::with_capacity(n);
    for v in nested {
        out.extend(v);
    }
    out
}

/// A chunk size that yields a few tasks per participant:
/// `ceil(n / (4 × effective_threads))`, at least 1. Smaller chunks balance
/// better; larger chunks amortise queue traffic — 4 tasks per participant
/// is a reasonable middle for the coarse tasks this workspace dispatches.
/// Uses [`effective_threads`] so a clamped-away thread count does not
/// fragment chunks (results are boundary-independent either way — per-item
/// accumulation merged ascending — so this is purely a cost question).
pub fn chunk_hint(n: usize) -> usize {
    n.div_ceil(4 * effective_threads().max(1)).max(1)
}

/// Minimum useful task size for GEMM-shaped work, in f32 MACs.
///
/// Measured on the recording machine (see `EXPERIMENTS.md`): the dense
/// `matmul` microkernel sustains roughly 8–9 GMAC/s per core and a pool
/// dispatch costs a handful of microseconds end to end, so 256 Ki MACs
/// (~30 µs of work) keeps dispatch overhead under a few percent of any
/// task. Used by `matmul`/`t_matmul`/`matmul_t` row blocks and the conv
/// forward/backward batch-item blocks via [`chunk_for`].
pub const GEMM_TASK_FLOOR_MACS: usize = 256 * 1024;

/// Minimum useful task size for window-walk-shaped work (executor walks,
/// optimizer profiling scans), in walked taps.
///
/// The speculative walks run nearer 1 ns per tap (probe state machines,
/// gathers) than the GEMM's ~0.1 ns per MAC, so 32 Ki taps buys the same
/// ~30 µs of work per task. Used by the executor's `(image, kernel)` pair
/// blocks and the profiling pass's kernel blocks via [`chunk_for`].
pub const WALK_TASK_FLOOR_OPS: usize = 32 * 1024;

/// A chunk size for `n` items of `cost_per_item` work units each such that
/// every task carries at least `floor_cost` units: the larger of
/// [`chunk_hint`]`(n)` and `ceil(floor_cost / cost_per_item)`, clamped to
/// `n`. Depends only on the problem size and the (fixed) thread count —
/// never on scheduling — so chunk boundaries, and therefore reduction
/// groupings, stay deterministic. When the whole problem is below the
/// floor this returns `n`: one task, which `run_tasks` runs inline.
pub fn chunk_for(n: usize, cost_per_item: usize, floor_cost: usize) -> usize {
    if n == 0 {
        return 1;
    }
    let min_items = floor_cost.div_ceil(cost_per_item.max(1));
    chunk_hint(n).max(min_items).min(n)
}

mod pool {
    //! The audited unsafe core: batch publication, worker loop, rendezvous.
    //!
    //! See the module docs above for the bracketing invariant every unsafe
    //! site below leans on. The structure:
    //!
    //! * [`TaskSet`] lives on the **caller's stack** for the duration of one
    //!   [`dispatch`]: the closure reference, the task inputs, the result
    //!   slots, and the first caught panic.
    //! * [`Batch`] is the `'static` control block shared through the queue
    //!   (`Arc`): the erased `TaskSet` pointer, the monomorphized runner,
    //!   the claim/completion cursors, and the join/leave accounting.
    //! * [`Rendezvous`] is a drop guard on the caller: even if the caller
    //!   unwinds mid-dispatch, its `Drop` blocks until the batch is fully
    //!   drained and every joined worker has left before the `TaskSet` can
    //!   go out of scope.

    use super::{Cell, IN_WORKER};
    use std::any::Any;
    use std::collections::VecDeque;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

    /// Locks a mutex, recovering from poisoning: the pool never runs caller
    /// code while holding one of its own locks (tasks run between claim and
    /// completion), so a poisoned guard only means some thread panicked
    /// elsewhere and the protected data is still coherent.
    fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// One dispatch's caller-stack state. Referenced by workers only through
    /// [`Batch::data`] under the join/leave bracket.
    struct TaskSet<'f, T, R, F> {
        f: &'f F,
        /// Task inputs; `run_one` takes index `i` exactly once (claims are
        /// unique by the atomic cursor).
        tasks: Mutex<Vec<Option<T>>>,
        /// Results, written at the claimed index.
        slots: Mutex<Vec<Option<R>>>,
        /// First caught task panic, re-raised on the caller post-rendezvous.
        panic: Mutex<Option<Box<dyn Any + Send>>>,
    }

    /// Claims-and-runs-one-task entry point, monomorphized per dispatch and
    /// stored in [`Batch::run`] as a plain function pointer.
    ///
    /// # Safety
    ///
    /// `data` must point to the live `TaskSet<T, R, F>` of the batch this
    /// pointer was stored in, and the caller must hold a join on that batch
    /// (or be the dispatching thread). `i` must be an index claimed from
    /// `Batch::next` exactly once.
    // lint:allow(S1) deref of the erased TaskSet pointer: callers hold the batch's join/leave bracket, and the dispatching caller cannot return (Rendezvous drop guard) until all joiners left — the pointee is alive for every call
    #[allow(unsafe_code)]
    unsafe fn run_one<T, R, F>(data: *const (), i: usize)
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let set = unsafe { &*data.cast::<TaskSet<'_, T, R, F>>() };
        let Some(task) = lock(&set.tasks).get_mut(i).and_then(Option::take) else {
            return;
        };
        // Catch panics at the task boundary: the persistent worker must
        // survive for the next dispatch, and the caller must not unwind past
        // its TaskSet while other participants still reference it. The
        // closure only touches `set` through its mutexes (re-checked, never
        // held across `f`) plus the task it owns, so observing it after an
        // unwind is sound.
        match catch_unwind(AssertUnwindSafe(|| (set.f)(i, task))) {
            Ok(r) => {
                if let Some(slot) = lock(&set.slots).get_mut(i) {
                    *slot = Some(r);
                }
            }
            Err(payload) => {
                let mut first = lock(&set.panic);
                if first.is_none() {
                    *first = Some(payload);
                }
            }
        }
    }

    // lint:allow(S1) function-pointer *type* only — calling through it is the unsafe act, audited at the single call site in run_batch
    type RunFn = unsafe fn(*const (), usize);

    /// The `'static` control block of one in-flight dispatch, shared with
    /// workers through the injector queue.
    struct Batch {
        /// Erased pointer to the caller-stack [`TaskSet`]. Dereferenced only
        /// via [`Batch::run`] inside the join/leave bracket.
        data: *const (),
        /// Monomorphized [`run_one`] for this dispatch's `(T, R, F)`.
        run: RunFn,
        /// Task count; claims at or above this index are void.
        total: usize,
        /// Maximum pool workers allowed to join (the dispatching caller is
        /// an additional, uncounted participant).
        cap: usize,
        /// Whether participants should emit `par/worker` lane events.
        trace_lanes: bool,
        /// Next unclaimed task index (may run past `total`; each failed
        /// claimer stops touching the batch, so overshoot is bounded by the
        /// participant count).
        next: AtomicUsize,
        /// Tasks fully executed. The caller's first rendezvous condition.
        completed: AtomicUsize,
        /// Cleared (under the queue lock) when the caller starts teardown;
        /// joining requires it, so no worker joins a closing batch.
        open: AtomicBool,
        /// Pool workers that joined (incremented under the queue lock).
        joined: AtomicUsize,
        /// Joined workers that finished and will touch the batch no more.
        left: AtomicUsize,
        /// Per-participant busy nanoseconds, for the imbalance gauge.
        busy_ns: Mutex<Vec<u64>>,
        /// Rendezvous: caller waits here for `completed == total`, then for
        /// `left == joined`.
        done: Mutex<()>,
        done_cv: Condvar,
    }

    #[allow(unsafe_code)]
    // lint:allow(S1) Batch is shared across threads by design; the raw data pointer it carries is only dereferenced inside the join/leave bracket documented on the module
    unsafe impl Send for Batch {}
    #[allow(unsafe_code)]
    // lint:allow(S1) all Batch fields are atomics/mutexes except the erased pointer, whose access discipline is the module's bracketing invariant
    unsafe impl Sync for Batch {}

    /// Process-wide pool state: the injector queue and the worker census.
    struct PoolShared {
        /// Pending batches. Bounded by the number of concurrently
        /// dispatching caller threads (each blocks on its own rendezvous).
        queue: Mutex<VecDeque<Arc<Batch>>>,
        /// Workers park here between batches.
        work_cv: Condvar,
        /// Persistent workers successfully spawned so far.
        spawned: AtomicUsize,
        /// Serialises pool growth.
        grow: Mutex<()>,
    }

    static POOL: OnceLock<Arc<PoolShared>> = OnceLock::new();

    fn shared() -> &'static Arc<PoolShared> {
        POOL.get_or_init(|| {
            Arc::new(PoolShared {
                queue: Mutex::new(VecDeque::new()),
                work_cv: Condvar::new(),
                spawned: AtomicUsize::new(0),
                grow: Mutex::new(()),
            })
        })
    }

    /// Grows the pool to at least `want` persistent workers and returns how
    /// many exist. Spawn failure (resource exhaustion) degrades to fewer
    /// workers instead of panicking — the dispatch then simply runs with
    /// less parallelism, down to the caller alone.
    fn ensure_workers(shared: &Arc<PoolShared>, want: usize) -> usize {
        let mut have = shared.spawned.load(Ordering::Acquire);
        if have >= want {
            return have;
        }
        let _g = lock(&shared.grow);
        have = shared.spawned.load(Ordering::Acquire);
        while have < want {
            let s = Arc::clone(shared);
            let id = have + 1;
            let spawned = std::thread::Builder::new()
                .name(format!("snapea-par-{id}"))
                .spawn(move || worker_main(&s, id as u64));
            match spawned {
                Ok(handle) => {
                    // Detached on purpose: persistent workers live until
                    // process exit, parked between batches.
                    drop(handle);
                    have += 1;
                    shared.spawned.store(have, Ordering::Release);
                    snapea_obs::counter("par/workers_spawned").inc();
                }
                Err(_) => break,
            }
        }
        have
    }

    /// A batch a parked worker may join: still open, under its worker cap,
    /// with unclaimed tasks remaining.
    fn joinable(b: &Batch) -> bool {
        b.open.load(Ordering::Acquire)
            && b.joined.load(Ordering::Acquire) < b.cap
            && b.next.load(Ordering::Relaxed) < b.total
    }

    /// Persistent worker body: park until a joinable batch appears, join it
    /// (under the queue lock — the caller closes batches under the same
    /// lock, so a join can never race a teardown), drain claims, leave.
    fn worker_main(shared: &Arc<PoolShared>, id: u64) {
        IN_WORKER.with(|w| w.set(true));
        loop {
            let batch: Arc<Batch> = {
                let mut q = lock(&shared.queue);
                loop {
                    if let Some(b) = q.iter().find(|b| joinable(b)) {
                        b.joined.fetch_add(1, Ordering::AcqRel);
                        break Arc::clone(b);
                    }
                    q = shared
                        .work_cv
                        .wait(q)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            run_batch(&batch, id);
            batch.left.fetch_add(1, Ordering::AcqRel);
            let _g = lock(&batch.done);
            batch.done_cv.notify_all();
        }
    }

    /// Claims and runs tasks until the batch drains. Shared by workers and
    /// the dispatching caller (`lane` 0). Records busy time and, when
    /// tracing, emits this participant's `par/worker` lane event from its
    /// own thread (so the Chrome export gets one track per thread).
    // lint:allow(S1) the `(batch.run)(batch.data, i)` call: `i` was claimed from the cursor exactly once, and this thread holds either the batch's join (worker) or the dispatch itself (caller), so the TaskSet behind `data` is alive
    #[allow(unsafe_code)]
    fn run_batch(batch: &Batch, lane: u64) {
        let start_ms = snapea_obs::sink::now_ms();
        let clock = snapea_obs::Stopwatch::start();
        let mut ran = 0u64;
        loop {
            let i = batch.next.fetch_add(1, Ordering::Relaxed);
            if i >= batch.total {
                break;
            }
            unsafe { (batch.run)(batch.data, i) };
            ran += 1;
            if batch.completed.fetch_add(1, Ordering::AcqRel) + 1 == batch.total {
                let _g = lock(&batch.done);
                batch.done_cv.notify_all();
            }
        }
        if ran > 0 {
            lock(&batch.busy_ns).push(clock.elapsed_ns());
            if batch.trace_lanes {
                snapea_obs::event!(
                    "par/worker",
                    worker = lane,
                    start_ms = start_ms,
                    ms = clock.elapsed_ms(),
                    tasks = ran,
                );
            }
        }
    }

    /// Drop guard making the caller's rendezvous unconditional: even if the
    /// caller unwinds between publishing the batch and collecting results,
    /// this blocks until (1) every task completed, (2) the batch is closed
    /// and out of the queue, and (3) every joined worker has left — only
    /// then may the `TaskSet` behind the erased pointer go out of scope.
    struct Rendezvous<'a> {
        shared: &'a PoolShared,
        batch: &'a Arc<Batch>,
    }

    impl Drop for Rendezvous<'_> {
        fn drop(&mut self) {
            let b: &Batch = self.batch;
            let mut g = lock(&b.done);
            while b.completed.load(Ordering::Acquire) < b.total {
                g = b.done_cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
            drop(g);
            {
                // Close under the queue lock: joins also happen under it, so
                // after this block `joined` is frozen.
                let mut q = lock(&self.shared.queue);
                b.open.store(false, Ordering::Release);
                q.retain(|x| !Arc::ptr_eq(x, self.batch));
            }
            let mut g = lock(&b.done);
            while b.left.load(Ordering::Acquire) < b.joined.load(Ordering::Acquire) {
                g = b.done_cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// Restores the caller's `IN_WORKER` flag after it participated in its
    /// own batch (restoration must survive unwinds too, hence a guard).
    struct CallerFlag {
        prev: bool,
    }

    impl CallerFlag {
        fn set() -> Self {
            let prev = IN_WORKER.with(Cell::get);
            IN_WORKER.with(|w| w.set(true));
            CallerFlag { prev }
        }
    }

    impl Drop for CallerFlag {
        fn drop(&mut self) {
            let prev = self.prev;
            IN_WORKER.with(|w| w.set(prev));
        }
    }

    /// Publishes one batch to the persistent pool, participates in draining
    /// it, rendezvouses, and returns the results in task order. Called by
    /// [`super::run_tasks`] only with `participants ≥ 2` from a
    /// non-nested context.
    pub(super) fn dispatch<T, R, F>(tasks: Vec<T>, f: &F, participants: usize) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let total = tasks.len();
        let shared = shared();
        let available = ensure_workers(shared, participants - 1);
        let cap = available.min(participants - 1);

        snapea_obs::counter("par/invocations").inc();
        snapea_obs::counter("par/tasks").add(total as u64);
        // Worker-lane trace events are a double opt-in (sink installed AND
        // `SNAPEA_TRACE_DETAIL=1`): a full repro run makes thousands of pool
        // invocations, each of which would add one event per participant.
        // Lanes carry wall times only — they never feed back into results,
        // so the bit-identical-for-any-thread-count contract is untouched.
        let trace_lanes = snapea_obs::enabled() && snapea_obs::detail_enabled();

        let set = TaskSet::<'_, T, R, F> {
            f,
            tasks: Mutex::new(tasks.into_iter().map(Some).collect()),
            slots: Mutex::new((0..total).map(|_| None).collect()),
            panic: Mutex::new(None),
        };
        let batch = Arc::new(Batch {
            data: (&raw const set).cast(),
            run: run_one::<T, R, F>,
            total,
            cap,
            trace_lanes,
            next: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            open: AtomicBool::new(true),
            joined: AtomicUsize::new(0),
            left: AtomicUsize::new(0),
            busy_ns: Mutex::new(Vec::new()),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
        });

        {
            // From the moment the batch is visible to workers until the
            // rendezvous guard drops, `set` must stay alive — the guard is
            // constructed *before* publication so no unwind path can skip it.
            let rendezvous = Rendezvous {
                shared,
                batch: &batch,
            };
            if cap > 0 {
                lock(&shared.queue).push_back(Arc::clone(&batch));
                shared.work_cv.notify_all();
            }
            {
                let _caller = CallerFlag::set();
                run_batch(&batch, 0);
            }
            drop(rendezvous);
        }

        let busy: Vec<u64> = lock(&batch.busy_ns).clone();
        let max = busy.iter().copied().max().unwrap_or(0);
        let min = busy.iter().copied().min().unwrap_or(0);
        snapea_obs::counter("par/busy_ns").add(busy.iter().sum::<u64>());
        snapea_obs::gauge("par/workers").set(busy.len() as f64);
        snapea_obs::gauge("par/imbalance").set(if max == 0 {
            0.0
        } else {
            1.0 - min as f64 / max as f64
        });

        if let Some(payload) = lock(&set.panic).take() {
            // Documented contract: panics in `f` propagate to the caller —
            // after the rendezvous, so the pool is already coherent again.
            resume_unwind(payload);
        }
        let slots = set
            .slots
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        slots
            .into_iter()
            // lint:allow(P1) the claim cursor visits every index exactly once and the rendezvous saw completed == total with no panic recorded, so each slot was written
            .map(|r| r.expect("every task produced a result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        let tasks: Vec<usize> = (0..97).collect();
        let out = run_tasks(tasks, |i, t| {
            assert_eq!(i, t);
            i * 3
        });
        assert_eq!(out, (0..97).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        let out = parallel_map(23, 4, |i| i as i64 - 5);
        assert_eq!(out, (0..23).map(|i| i as i64 - 5).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_cover_range_exactly_once() {
        let ranges = parallel_map_chunks(10, 3, |_, r| r);
        assert_eq!(ranges, vec![0..3, 3..6, 6..9, 9..10]);
    }

    #[test]
    fn parallel_for_visits_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(50, 7, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_calls_run_inline() {
        // A pool task that calls back into the pool must not deadlock or
        // oversubscribe; the nested call runs serially on the same thread
        // (worker or participating caller alike).
        let out = run_tasks(vec![(); 8], |i, ()| {
            let outer = std::thread::current().id();
            let inner = parallel_map(4, 1, move |j| {
                assert_eq!(std::thread::current().id(), outer, "nested task migrated");
                i * 10 + j
            });
            inner.iter().sum::<usize>()
        });
        assert_eq!(out.len(), 8);
        assert_eq!(out[2], 2 * 10 * 4 + 6);
    }

    #[test]
    fn empty_and_single_task_edges() {
        let empty: Vec<u8> = run_tasks(Vec::<u8>::new(), |_, t| t);
        assert!(empty.is_empty());
        assert_eq!(run_tasks(vec![41], |_, t| t + 1), vec![42]);
    }

    #[test]
    fn thread_count_parsing_never_panics_and_falls_back() {
        // Regression: "0", empty, and garbage values must fall back to the
        // default (or clamp), not panic the lazy pool initialisation.
        assert_eq!(parse_thread_count("0"), Some(1));
        assert_eq!(parse_thread_count(""), None);
        assert_eq!(parse_thread_count("   "), None);
        assert_eq!(parse_thread_count("garbage"), None);
        assert_eq!(parse_thread_count("-3"), None);
        assert_eq!(parse_thread_count("2.5"), None);
        assert_eq!(parse_thread_count("4"), Some(4));
        assert_eq!(parse_thread_count(" 8 "), Some(8));
    }

    #[test]
    fn chunk_hint_is_positive_and_covers() {
        assert_eq!(chunk_hint(0), 1);
        for n in [1, 7, 1000] {
            let c = chunk_hint(n);
            assert!(c >= 1 && c <= n.max(1));
        }
    }

    #[test]
    fn oversubscribe_override_round_trips() {
        // Results never depend on the policy (only which threads run the
        // identically chunked tasks), so toggling it mid-process is safe;
        // this pins the programmatic override used by the pool tests.
        set_oversubscribe(true);
        assert!(oversubscribe_enabled());
        set_oversubscribe(false);
        assert!(!oversubscribe_enabled());
    }

    #[test]
    fn chunk_for_respects_floor_and_clamps() {
        // Below the floor: one task covering everything (runs inline).
        assert_eq!(chunk_for(8, 10, 1000), 8);
        // Well above the floor: the hint wins.
        let c = chunk_for(1000, 1_000_000, 10);
        assert_eq!(c, chunk_hint(1000));
        // Exact floor arithmetic: ceil(100 / 30) = 4 items per task.
        assert!(chunk_for(1000, 30, 100) >= 4);
        // Degenerate inputs never panic and never return 0.
        assert_eq!(chunk_for(0, 0, 0), 1);
        assert!(chunk_for(5, 0, 7) >= 1);
    }
}
