//! Dense 4-D NCHW tensor.

use crate::{Shape4, ShapeError, Tensor2};
use serde::{Deserialize, Serialize};
use std::ops::{Index, IndexMut};

/// A dense, row-major, NCHW `f32` tensor.
///
/// `Tensor4` is the activation/kernel container used throughout the
/// reproduction. It is deliberately simple: owned storage, no views, no
/// broadcasting — convolution layers index it directly.
///
/// ```
/// use snapea_tensor::{Shape4, Tensor4};
/// let t = Tensor4::from_fn(Shape4::new(1, 1, 2, 2), |_, _, h, w| (h * 2 + w) as f32);
/// assert_eq!(t[(0, 0, 1, 1)], 3.0);
/// assert_eq!(t.iter().sum::<f32>(), 6.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor4 {
    shape: Shape4,
    data: Vec<f32>,
}

impl Tensor4 {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: Shape4) -> Self {
        Self {
            shape,
            data: vec![0.0; shape.len()],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: Shape4, value: f32) -> Self {
        Self {
            shape,
            data: vec![value; shape.len()],
        }
    }

    /// Creates a tensor by evaluating `f(n, c, h, w)` at every coordinate.
    pub fn from_fn(shape: Shape4, mut f: impl FnMut(usize, usize, usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(shape.len());
        for n in 0..shape.n {
            for c in 0..shape.c {
                for h in 0..shape.h {
                    for w in 0..shape.w {
                        data.push(f(n, c, h, w));
                    }
                }
            }
        }
        Self { shape, data }
    }

    /// Creates a tensor from a flat row-major (NCHW) vector.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `data.len() != shape.len()`.
    pub fn from_vec(shape: Shape4, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != shape.len() {
            return Err(ShapeError::new(format!(
                "expected {} elements for shape {shape}, got {}",
                shape.len(),
                data.len()
            )));
        }
        Ok(Self { shape, data })
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape4 {
        self.shape
    }

    /// Borrow the flat row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Iterate over all elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    /// Mutably iterate over all elements in row-major order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f32> {
        self.data.iter_mut()
    }

    /// Element at `(n, c, h, w)`, or `None` if out of bounds.
    pub fn get(&self, n: usize, c: usize, h: usize, w: usize) -> Option<f32> {
        if n < self.shape.n && c < self.shape.c && h < self.shape.h && w < self.shape.w {
            Some(self.data[self.shape.offset(n, c, h, w)])
        } else {
            None
        }
    }

    /// Borrow the channel plane `(n, c)` as a contiguous `h*w` slice.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `c` is out of bounds.
    pub fn plane(&self, n: usize, c: usize) -> &[f32] {
        let start = self.shape.offset(n, c, 0, 0);
        &self.data[start..start + self.shape.plane_len()]
    }

    /// Borrow the batch item `n` as a contiguous `c*h*w` slice.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    pub fn item(&self, n: usize) -> &[f32] {
        // Computed from `item_len` rather than `offset(n, 0, 0, 0)` so that
        // degenerate shapes with a zero channel/spatial axis yield an empty
        // slice instead of tripping the offset bounds check.
        assert!(
            n < self.shape.n,
            "item {n} out of bounds for {}",
            self.shape
        );
        let len = self.shape.item_len();
        &self.data[n * len..(n + 1) * len]
    }

    /// Mutably borrow the batch item `n` as a contiguous `c*h*w` slice.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    pub fn item_mut(&mut self, n: usize) -> &mut [f32] {
        assert!(
            n < self.shape.n,
            "item {n} out of bounds for {}",
            self.shape
        );
        let len = self.shape.item_len();
        &mut self.data[n * len..(n + 1) * len]
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new tensor with `f` applied to every element.
    pub fn map(&self, f: impl FnMut(f32) -> f32) -> Self {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Adds `other` element-wise.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor4) -> Result<(), ShapeError> {
        if self.shape != other.shape {
            return Err(ShapeError::new(format!(
                "add: {} vs {}",
                self.shape, other.shape
            )));
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// Scales every element by `s`.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Reinterprets batch item dimensions as a matrix of shape
    /// `n × (c*h*w)` (used at the conv→FC boundary).
    pub fn to_matrix(&self) -> Tensor2 {
        Tensor2::from_vec(
            crate::Shape2::new(self.shape.n, self.shape.item_len()),
            self.data.clone(),
        )
        // lint:allow(P1) n × item_len is by definition the element count of this tensor's own data
        .expect("shape product is preserved")
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Fraction of elements strictly below zero.
    ///
    /// This is the quantity the paper's Figure 1 reports for activation-layer
    /// inputs. Returns 0.0 for an empty tensor.
    pub fn negative_fraction(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let neg = self.data.iter().filter(|v| **v < 0.0).count();
        neg as f64 / self.data.len() as f64
    }
}

impl Index<(usize, usize, usize, usize)> for Tensor4 {
    type Output = f32;

    #[inline]
    fn index(&self, (n, c, h, w): (usize, usize, usize, usize)) -> &f32 {
        &self.data[self.shape.offset(n, c, h, w)]
    }
}

impl IndexMut<(usize, usize, usize, usize)> for Tensor4 {
    #[inline]
    fn index_mut(&mut self, (n, c, h, w): (usize, usize, usize, usize)) -> &mut f32 {
        &mut self.data[self.shape.offset(n, c, h, w)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let s = Shape4::new(2, 2, 3, 3);
        let t = Tensor4::from_fn(s, |n, c, h, w| (n * 1000 + c * 100 + h * 10 + w) as f32);
        assert_eq!(t[(1, 1, 2, 2)], 1122.0);
        assert_eq!(t.get(1, 1, 2, 2), Some(1122.0));
        assert_eq!(t.get(2, 0, 0, 0), None);
    }

    #[test]
    fn from_vec_validates_len() {
        let s = Shape4::new(1, 1, 2, 2);
        assert!(Tensor4::from_vec(s, vec![1.0; 4]).is_ok());
        assert!(Tensor4::from_vec(s, vec![1.0; 5]).is_err());
    }

    #[test]
    fn plane_and_item_slices() {
        let s = Shape4::new(2, 3, 2, 2);
        let t = Tensor4::from_fn(s, |n, c, _, _| (n * 10 + c) as f32);
        assert_eq!(t.plane(1, 2), &[12.0; 4]);
        assert_eq!(t.item(0).len(), 12);
        assert_eq!(t.item(1)[0], 10.0);
    }

    #[test]
    fn map_and_arith() {
        let s = Shape4::new(1, 1, 2, 2);
        let mut a = Tensor4::full(s, 2.0);
        let b = Tensor4::full(s, 3.0);
        a.add_assign(&b).unwrap();
        assert_eq!(a.sum(), 20.0);
        a.scale(0.5);
        assert_eq!(a.sum(), 10.0);
        let c = a.map(|v| v - 2.5);
        assert_eq!(c.sum(), 0.0);
        assert_eq!(c.negative_fraction(), 0.0);

        let d = Tensor4::from_fn(s, |_, _, h, w| if (h + w) % 2 == 0 { -1.0 } else { 1.0 });
        assert_eq!(d.negative_fraction(), 0.5);
    }

    #[test]
    fn add_shape_mismatch_errors() {
        let mut a = Tensor4::zeros(Shape4::new(1, 1, 2, 2));
        let b = Tensor4::zeros(Shape4::new(1, 1, 2, 3));
        assert!(a.add_assign(&b).is_err());
    }

    #[test]
    fn to_matrix_flattens_items() {
        let t = Tensor4::from_fn(Shape4::new(2, 1, 1, 3), |n, _, _, w| (n * 3 + w) as f32);
        let m = t.to_matrix();
        assert_eq!(m.shape().rows, 2);
        assert_eq!(m.shape().cols, 3);
        assert_eq!(m[(1, 2)], 5.0);
    }

    #[test]
    fn serde_round_trip() {
        let t = Tensor4::from_fn(Shape4::new(1, 2, 2, 2), |_, c, h, w| (c + h + w) as f32);
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor4 = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
