//! 16-bit fixed-point arithmetic mirroring the paper's PEs.
//!
//! Table II of the paper specifies "16-bit Fixed Point PE"s. The SnaPEA
//! executor can run its window walks in this representation so that
//! early-termination decisions (sign checks, threshold comparisons) are made
//! on the same quantised partial sums the hardware would see.
//!
//! The format is Q notation with a configurable number of fractional bits
//! (default Q8.8 via [`Q16::DEFAULT_FRAC_BITS`]); multiplies accumulate into
//! a 32-bit register, as hardware MAC units do, and saturate on conversion
//! back to 16 bits.

use serde::{Deserialize, Serialize};

/// A 16-bit fixed-point value with `FRAC` fractional bits implied by the
/// [`Q16Format`] used to create it.
///
/// `Q16` is a plain wrapper over `i16`; the format travels separately (the
/// hardware fixes it per accelerator configuration, not per value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Q16(pub i16);

impl Q16 {
    /// Default number of fractional bits (Q8.8).
    pub const DEFAULT_FRAC_BITS: u32 = 8;

    /// The raw underlying bits.
    pub fn raw(self) -> i16 {
        self.0
    }

    /// True if the value is negative (hardware sign-bit check — the single
    /// AND gate the paper describes for exact-mode termination).
    pub fn is_negative(self) -> bool {
        self.0 < 0
    }
}

/// Fixed-point format: the number of fractional bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Q16Format {
    frac_bits: u32,
}

impl Default for Q16Format {
    fn default() -> Self {
        Self {
            frac_bits: Q16::DEFAULT_FRAC_BITS,
        }
    }
}

impl Q16Format {
    /// Creates a format with `frac_bits` fractional bits.
    ///
    /// # Panics
    ///
    /// Panics if `frac_bits >= 16`.
    pub fn new(frac_bits: u32) -> Self {
        assert!(frac_bits < 16, "Q16 supports at most 15 fractional bits");
        Self { frac_bits }
    }

    /// Number of fractional bits.
    pub fn frac_bits(self) -> u32 {
        self.frac_bits
    }

    /// Quantises an `f32` to fixed point, rounding to nearest and saturating.
    pub fn quantize(self, v: f32) -> Q16 {
        let scaled = (v * (1i32 << self.frac_bits) as f32).round();
        Q16(crate::num::sat_i16(scaled))
    }

    /// Converts a fixed-point value back to `f32`.
    pub fn dequantize(self, q: Q16) -> f32 {
        q.0 as f32 / (1i32 << self.frac_bits) as f32
    }

    /// The quantisation step (value of one least-significant bit).
    pub fn lsb(self) -> f32 {
        1.0 / (1i32 << self.frac_bits) as f32
    }
}

/// A 32-bit accumulator for fixed-point MAC chains, as in a hardware MAC
/// unit: products of two Q(16−f).f values are Q(32−2f).2f and are summed at
/// full width, avoiding intermediate overflow for realistic window lengths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QAcc {
    acc: i64,
}

impl QAcc {
    /// A zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Multiply-accumulate of two fixed-point operands.
    pub fn mac(&mut self, a: Q16, b: Q16) {
        self.acc += a.0 as i64 * b.0 as i64;
    }

    /// Raw accumulator value (in Q.2f).
    pub fn raw(self) -> i64 {
        self.acc
    }

    /// Rebuilds an accumulator from a raw Q.2f value (the lane kernels
    /// batch several windows' raw sums and hand them back through here).
    pub fn from_raw(acc: i64) -> Self {
        Self { acc }
    }

    /// Sign-bit of the running partial sum — the hardware's termination
    /// signal in exact mode.
    pub fn is_negative(self) -> bool {
        self.acc < 0
    }

    /// Converts the accumulator (Q.2f) back to an `f32` given the operand
    /// format.
    pub fn to_f32(self, fmt: Q16Format) -> f32 {
        self.acc as f32 / (1i64 << (2 * fmt.frac_bits())) as f32
    }

    /// Compares the partial sum against a threshold expressed in the operand
    /// format (the PAU's predictive comparison). The threshold is widened to
    /// the accumulator's Q.2f scale before comparing.
    pub fn below_threshold(self, th: Q16, fmt: Q16Format) -> bool {
        let widened = (th.0 as i64) << fmt.frac_bits();
        self.acc < widened
    }
}

/// Quantises a slice of `f32` values into fixed point.
pub fn quantize_slice(fmt: Q16Format, values: &[f32]) -> Vec<Q16> {
    values.iter().map(|&v| fmt.quantize(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_within_lsb() {
        let fmt = Q16Format::default();
        for &v in &[0.0_f32, 1.0, -1.0, 0.5, -0.4999, 3.75, -7.125, 100.0] {
            let q = fmt.quantize(v);
            let back = fmt.dequantize(q);
            assert!((back - v).abs() <= fmt.lsb() / 2.0 + 1e-6, "{v} -> {back}");
        }
    }

    #[test]
    fn saturation() {
        let fmt = Q16Format::new(8);
        assert_eq!(fmt.quantize(1e9).raw(), i16::MAX);
        assert_eq!(fmt.quantize(-1e9).raw(), i16::MIN);
    }

    #[test]
    fn mac_chain_matches_float() {
        let fmt = Q16Format::new(8);
        let xs = [0.5_f32, -1.25, 2.0, 0.125];
        let ws = [1.0_f32, 0.75, -0.5, 2.5];
        let mut acc = QAcc::new();
        for (&x, &w) in xs.iter().zip(ws.iter()) {
            acc.mac(fmt.quantize(x), fmt.quantize(w));
        }
        let float: f32 = xs.iter().zip(ws.iter()).map(|(x, w)| x * w).sum();
        assert!((acc.to_f32(fmt) - float).abs() < 0.02);
    }

    #[test]
    fn sign_and_threshold_checks() {
        let fmt = Q16Format::new(8);
        let mut acc = QAcc::new();
        acc.mac(fmt.quantize(1.0), fmt.quantize(-2.0));
        assert!(acc.is_negative());
        assert!(acc.below_threshold(fmt.quantize(0.0), fmt));
        assert!(acc.below_threshold(fmt.quantize(-1.0), fmt));
        assert!(!acc.below_threshold(fmt.quantize(-3.0), fmt));
        assert!(fmt.quantize(-0.5).is_negative());
        assert!(!fmt.quantize(0.5).is_negative());
    }

    #[test]
    fn quantize_slice_matches_elementwise() {
        let fmt = Q16Format::default();
        let v = [0.1_f32, -0.2, 0.3];
        let q = quantize_slice(fmt, &v);
        assert_eq!(q.len(), 3);
        for (a, &b) in q.iter().zip(v.iter()) {
            assert_eq!(*a, fmt.quantize(b));
        }
    }
}
