//! Thread-local scratch arena for the hot-path temporaries.
//!
//! The conv forward/backward passes and the SnaPEA executor need a handful of
//! short-lived `f32` buffers per call (im2col patch matrices, GEMM products,
//! per-window full values). Allocating them fresh on every call puts the
//! allocator on the steady-state inference path; this arena keeps a per-thread
//! pool of retired buffers and hands them back zeroed, so a warmed-up thread
//! performs no heap allocation for those temporaries.
//!
//! ## Semantics
//!
//! [`with_zeroed`] lends the closure a zero-filled `&mut [f32]` of exactly the
//! requested length and returns the buffer to the pool afterwards. Zeroing is
//! a `memset` over reused capacity — the same state a fresh `vec![0.0; len]`
//! would have — so callers cannot observe whether the buffer was recycled, and
//! results are bit-identical either way.
//!
//! Calls nest freely: each nested call pops (or allocates) a distinct buffer,
//! so `with_zeroed(a, |x| with_zeroed(b, |y| ...))` works and is the intended
//! shape for "cols + product" pairs.
//!
//! ## Interaction with the worker pool
//!
//! The pool is `thread_local!`, and [`crate::par`]'s workers are persistent —
//! spawned once per process and parked between dispatches — so every
//! participant's arena survives across `run_tasks` calls: after the first
//! batch warms a worker up, steady-state inference performs no heap
//! allocation for these temporaries on *any* thread, not just the caller's.
//! (The caller participates in its own dispatches and the
//! `SNAPEA_THREADS=1` serial path runs entirely on it, so its arena was
//! always long-lived; the persistent pool extends that to the workers.)
//!
//! ## Observability
//!
//! `scratch/acquires` counts every lease; `scratch/reuses` counts the leases
//! served from the pool (the difference is the number of fresh allocations).

use std::cell::RefCell;

thread_local! {
    static POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Buffers larger than this are not retained in the pool; a pathological
/// one-off (e.g. a huge fuzzing shape) should not pin memory for the thread's
/// lifetime. 16 MiB of `f32` covers every shape this workspace produces.
const MAX_POOLED_LEN: usize = 4 << 20;

/// Lends `f` a zero-filled `f32` buffer of length `len`, recycling capacity
/// from earlier calls on this thread where possible.
pub fn with_zeroed<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let mut buf = POOL.with(|p| p.borrow_mut().pop());
    snapea_obs::counter("scratch/acquires").inc();
    if buf.is_some() {
        snapea_obs::counter("scratch/reuses").inc();
    }
    let mut buf = buf.take().unwrap_or_default();
    buf.clear();
    buf.resize(len, 0.0);
    let r = f(&mut buf);
    if buf.capacity() <= MAX_POOLED_LEN {
        POOL.with(|p| p.borrow_mut().push(buf));
    }
    r
}

/// Number of retired buffers currently pooled on this thread (test hook).
pub fn pooled_buffers() -> usize {
    POOL.with(|p| p.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_arrive_zeroed_even_after_reuse() {
        with_zeroed(8, |b| {
            assert_eq!(b.len(), 8);
            assert!(b.iter().all(|&v| v == 0.0));
            b.fill(7.0);
        });
        // The dirtied buffer comes back zeroed, at the new length.
        with_zeroed(5, |b| {
            assert_eq!(b.len(), 5);
            assert!(b.iter().all(|&v| v == 0.0));
        });
    }

    #[test]
    fn nested_leases_are_distinct_buffers() {
        with_zeroed(4, |outer| {
            outer.fill(1.0);
            with_zeroed(4, |inner| {
                assert!(inner.iter().all(|&v| v == 0.0));
                inner.fill(2.0);
            });
            assert!(outer.iter().all(|&v| v == 1.0), "inner lease aliased outer");
        });
    }

    #[test]
    fn pool_retains_and_reuses_capacity() {
        // Drain whatever earlier tests left behind, then verify round trip.
        while pooled_buffers() > 0 {
            POOL.with(|p| {
                p.borrow_mut().pop();
            });
        }
        with_zeroed(16, |_| {});
        assert_eq!(pooled_buffers(), 1);
        with_zeroed(16, |_| {});
        assert_eq!(pooled_buffers(), 1, "reuse must not grow the pool");
    }

    #[test]
    fn zero_length_lease_works() {
        with_zeroed(0, |b| assert!(b.is_empty()));
    }
}
