//! Audited narrowing conversions for kernel and simulator arithmetic.
//!
//! The `snapea-lint` N1 rule bans bare `as` casts to narrow integers in the
//! hot kernel/simulator files: a silent wrap there corrupts results instead
//! of failing. These helpers are the sanctioned replacements — each one
//! states its saturation/rounding contract, debug-asserts the in-range
//! invariant the caller relies on, and degrades to saturation (never a
//! wrap) in release builds.

/// Saturating `f32 → i16` for the fixed-point quantiser: values outside
/// `i16` range clamp to the nearest bound, `NaN` maps to 0 (the semantics
/// of Rust's saturating float-to-int `as`, made explicit).
///
/// The input is expected to be pre-rounded; this function only narrows.
#[inline]
pub fn sat_i16(v: f32) -> i16 {
    v.clamp(i16::MIN as f32, i16::MAX as f32) as i16
}

/// Narrows an operation count to the `u32` the per-window `ops` counters
/// use, saturating at `u32::MAX`. Window lengths are `c·k·k ≤ 2¹⁵` for any
/// layer in scope, so saturation is unreachable in practice; counters
/// prefer a pegged maximum over a wrapped-to-small lie if that ever changes.
#[inline]
pub fn ops_u32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// Narrows an element index to `u32` (window ids, tap permutation entries).
/// Debug builds assert the index fits; release builds saturate, which turns
/// an impossible out-of-range id into an out-of-bounds panic at the use
/// site rather than silently aliasing element 0.
#[inline]
pub fn idx_u32(n: usize) -> u32 {
    debug_assert!(u32::try_from(n).is_ok(), "index {n} exceeds u32::MAX");
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// Narrows an element offset to the signed `i32` tap-offset encoding
/// (negative values are the executor's "out of bounds / padding" marker,
/// so offsets must stay in `0..=i32::MAX`). Debug builds assert the offset
/// fits; release builds saturate.
#[inline]
pub fn idx_i32(n: usize) -> i32 {
    debug_assert!(i32::try_from(n).is_ok(), "offset {n} exceeds i32::MAX");
    i32::try_from(n).unwrap_or(i32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat_i16_rounds_are_clamped_not_wrapped() {
        assert_eq!(sat_i16(0.0), 0);
        assert_eq!(sat_i16(123.0), 123);
        assert_eq!(sat_i16(-123.0), -123);
        assert_eq!(sat_i16(40000.0), i16::MAX);
        assert_eq!(sat_i16(-40000.0), i16::MIN);
        assert_eq!(sat_i16(f32::NAN), 0);
        assert_eq!(sat_i16(f32::INFINITY), i16::MAX);
        assert_eq!(sat_i16(f32::NEG_INFINITY), i16::MIN);
    }

    #[test]
    fn unsigned_narrowing_saturates() {
        assert_eq!(ops_u32(0), 0);
        assert_eq!(ops_u32(4_000_000_000), 4_000_000_000);
        assert_eq!(ops_u32(usize::MAX), u32::MAX);
        assert_eq!(idx_u32(7), 7);
    }

    #[test]
    fn signed_narrowing_saturates() {
        assert_eq!(idx_i32(0), 0);
        assert_eq!(idx_i32(2_000_000_000), 2_000_000_000);
    }

    #[test]
    #[should_panic(expected = "exceeds i32::MAX")]
    #[cfg(debug_assertions)]
    fn signed_narrowing_asserts_in_debug() {
        let _ = idx_i32(usize::MAX);
    }
}
