//! Eight-wide lane layer: explicit SIMD-shaped types and the pinned
//! reduction order every numeric path in the suite is frozen to.
//!
//! The accelerator's PEs are eight-lane MAC arrays; this module gives the
//! software model the same shape in std-only Rust. [`f32x8`] / [`i32x8`]
//! wrap `[T; 8]` with `#[inline]` elementwise ops that LLVM turns into
//! vector instructions (`scripts/asm_check.sh` asserts this structurally on
//! the `#[inline(never)]` kernels below — check the asm, not just the
//! timing).
//!
//! # The pinned lane-tree reduction order
//!
//! Splitting a dot product across eight lanes changes float accumulation
//! order, so the order is *pinned* once, here, and every implementation in
//! the workspace (executor, frozen baseline, oracle reference, optimizer
//! scans) reproduces it bit-for-bit:
//!
//! * positions `0..m8` (where `m8 = lane_prefix_len(stop1)` is the largest
//!   multiple of [`LANES`] no larger than the probe-free prefix) are summed
//!   into eight lane accumulators, position `p` into lane `p % 8`, each
//!   lane in ascending `p` order;
//! * the eight lanes collapse through the fixed tree
//!   `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))` ([`tree8`]);
//! * the caller adds the tree sum to the bias **only when `m8 > 0`** (so an
//!   empty lane region leaves the bias bit-untouched, `-0.0` included);
//! * positions `m8..` continue in the original sequential order.
//!
//! Padding taps that fall inside the lane region contribute a literal
//! `0.0 * w` product (select semantics) instead of being skipped; a lane
//! accumulator that starts at `+0.0` is unchanged by adding `±0.0`, so the
//! select form is bit-identical to the historical skip form while staying
//! branch-free.
//!
//! Integer accumulation ([`lane_q16_span`]) is exact and associative, so
//! the q16 path needs no pinning — any batching order is bit-identical.

use crate::q16::Q16;

/// Lane width of the engine (the paper's eight-MAC PE rows).
pub const LANES: usize = 8;

/// Largest multiple of [`LANES`] not exceeding `stop1`: the extent of the
/// lane-blocked region of a walk whose probe-free prefix is `stop1`.
#[inline]
pub const fn lane_prefix_len(stop1: usize) -> usize {
    stop1 - stop1 % LANES
}

/// Length of a weight vector padded up to a whole number of lane blocks.
#[inline]
pub const fn packed_len(len: usize) -> usize {
    len.div_ceil(LANES) * LANES
}

/// The lane-major packed copy of a reordered weight vector: the walk-order
/// weights padded with `+0.0` to a whole number of eight-wide blocks, so
/// every aligned block is one full vector load and kernels never branch on
/// the tail. Produced at compile time and carried through the `.snapea`
/// artifact (which validates it bitwise against this function).
pub fn pack_weights(weights: &[f32]) -> Vec<f32> {
    let mut packed = weights.to_vec();
    packed.resize(packed_len(weights.len()), 0.0);
    packed
}

/// The pinned eight-way reduction tree: `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`.
#[inline]
pub fn tree8(l: [f32; LANES]) -> f32 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

/// Eight `f32` lanes. Elementwise ops compile to vector instructions; the
/// horizontal reduction is pinned to [`tree8`].
#[allow(non_camel_case_types)]
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct f32x8([f32; LANES]);

impl f32x8 {
    /// All lanes zero (`+0.0`).
    pub const ZERO: Self = Self([0.0; LANES]);

    /// Wraps an array of lane values.
    #[inline]
    pub fn new(v: [f32; LANES]) -> Self {
        Self(v)
    }

    /// Broadcasts `v` to every lane.
    #[inline]
    pub fn splat(v: f32) -> Self {
        Self([v; LANES])
    }

    /// Loads the first [`LANES`] elements of `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` has fewer than [`LANES`] elements.
    #[inline]
    pub fn load(s: &[f32]) -> Self {
        let chunk = s.first_chunk::<LANES>();
        // lint:allow(P1) documented precondition of an inline SIMD primitive; a Result here would defeat vectorization
        Self(*chunk.expect("lane load needs 8 elements"))
    }

    /// Stores the lanes into the first [`LANES`] elements of `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out` has fewer than [`LANES`] elements.
    #[inline]
    pub fn store(self, out: &mut [f32]) {
        *out.first_chunk_mut::<LANES>()
            // lint:allow(P1) documented precondition of an inline SIMD primitive; a Result here would defeat vectorization
            .expect("lane store needs 8 elements") = self.0;
    }

    /// The lane values.
    #[inline]
    pub fn to_array(self) -> [f32; LANES] {
        self.0
    }

    /// The pinned horizontal reduction ([`tree8`]).
    #[inline]
    pub fn tree_sum(self) -> f32 {
        tree8(self.0)
    }
}

/// Elementwise lane addition.
impl std::ops::Add for f32x8 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        let mut v = self.0;
        for (a, b) in v.iter_mut().zip(rhs.0) {
            *a += b;
        }
        Self(v)
    }
}

/// Elementwise lane multiplication.
impl std::ops::Mul for f32x8 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        let mut v = self.0;
        for (a, b) in v.iter_mut().zip(rhs.0) {
            *a *= b;
        }
        Self(v)
    }
}

/// Eight `i32` lanes (wrapping arithmetic — the q16 kernels' products are
/// exact in `i32` by construction, so wrapping never fires in practice and
/// keeps the ops branch-free in debug builds too).
#[allow(non_camel_case_types)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct i32x8([i32; LANES]);

impl i32x8 {
    /// All lanes zero.
    pub const ZERO: Self = Self([0; LANES]);

    /// Wraps an array of lane values.
    #[inline]
    pub fn new(v: [i32; LANES]) -> Self {
        Self(v)
    }

    /// Broadcasts `v` to every lane.
    #[inline]
    pub fn splat(v: i32) -> Self {
        Self([v; LANES])
    }

    /// The lane values.
    #[inline]
    pub fn to_array(self) -> [i32; LANES] {
        self.0
    }
}

/// Elementwise wrapping lane addition.
impl std::ops::Add for i32x8 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        let mut v = self.0;
        for (a, b) in v.iter_mut().zip(rhs.0) {
            *a = a.wrapping_add(b);
        }
        Self(v)
    }
}

/// Elementwise wrapping lane multiplication.
impl std::ops::Mul for i32x8 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        let mut v = self.0;
        for (a, b) in v.iter_mut().zip(rhs.0) {
            *a = a.wrapping_mul(b);
        }
        Self(v)
    }
}

/// The GEMM microkernel: `out[j] += a[0]*b[0][j] + … + a[7]*b[7][j]` for
/// every `j`, each output element accumulating its eight products in
/// ascending `q` order — bit-identical to the scalar unrolled form, with
/// the `j` dimension carried in [`f32x8`] chunks.
///
/// `#[inline(never)]` keeps a standalone symbol for `scripts/asm_check.sh`;
/// the internal loop over `out` amortises the call.
///
/// # Panics
///
/// Panics if any `b[q]` is shorter than `out`.
#[inline(never)]
pub fn lane_axpy8(out: &mut [f32], a: &[f32; LANES], b: [&[f32]; LANES]) {
    let n = out.len();
    for bq in &b {
        assert!(bq.len() >= n, "lane_axpy8 row shorter than out");
    }
    let mut j = 0;
    while j + LANES <= n {
        let mut v = f32x8::load(&out[j..]);
        for (aq, bq) in a.iter().zip(b) {
            v = v + f32x8::splat(*aq) * f32x8::load(&bq[j..]);
        }
        v.store(&mut out[j..]);
        j += LANES;
    }
    while j < n {
        let mut v = out[j];
        for (aq, bq) in a.iter().zip(b) {
            v += aq * bq[j];
        }
        out[j] = v;
        j += 1;
    }
}

/// Lane-blocked dot product of contiguous `values`/`weights` over the
/// pinned order: positions `0..m8` (which must be a multiple of [`LANES`];
/// excess positions are ignored) summed into lane `p % 8`, collapsed via
/// [`tree8`]. Callers add the result to the bias only when `m8 > 0`.
#[inline(never)]
pub fn lane_dot(values: &[f32], weights: &[f32], m8: usize) -> f32 {
    debug_assert_eq!(m8 % LANES, 0);
    let mut lanes = f32x8::ZERO;
    let mut p = 0;
    while p + LANES <= m8 {
        let v = f32x8::load(&values[p..]);
        let w = f32x8::load(&weights[p..]);
        lanes = lanes + v * w;
        p += LANES;
    }
    lanes.tree_sum()
}

/// [`lane_dot`] over an interior window of a resolved-tap plan: value `p`
/// is gathered from `item[base + resolved[p]]` (branch-free — interior
/// windows have no padding taps).
#[inline(never)]
pub fn lane_dot_resolved(
    weights: &[f32],
    resolved: &[i32],
    base: i32,
    item: &[f32],
    m8: usize,
) -> f32 {
    debug_assert_eq!(m8 % LANES, 0);
    let mut lanes = f32x8::ZERO;
    let mut p = 0;
    while p + LANES <= m8 {
        let w = f32x8::load(&weights[p..]);
        let mut v = [0.0f32; LANES];
        for (l, vl) in v.iter_mut().enumerate() {
            *vl = item[(base + resolved[p + l]) as usize];
        }
        lanes = lanes + f32x8::new(v) * w;
        p += LANES;
    }
    lanes.tree_sum()
}

/// [`lane_dot`] over a general gathered window: value `p` comes from
/// `item[taps[order[p]]]`, with padding taps (`offset < 0`) contributing a
/// literal `0.0` operand (select semantics — see the module docs).
#[inline(never)]
pub fn lane_dot_gather(
    weights: &[f32],
    order: &[u32],
    taps: &[i32],
    item: &[f32],
    m8: usize,
) -> f32 {
    debug_assert_eq!(m8 % LANES, 0);
    let mut lanes = f32x8::ZERO;
    let mut p = 0;
    while p + LANES <= m8 {
        let w = f32x8::load(&weights[p..]);
        let mut v = [0.0f32; LANES];
        for (l, vl) in v.iter_mut().enumerate() {
            let off = taps[order[p + l] as usize];
            *vl = if off >= 0 { item[off as usize] } else { 0.0 };
        }
        lanes = lanes + f32x8::new(v) * w;
        p += LANES;
    }
    lanes.tree_sum()
}

/// Fixed-point MAC span for eight windows at once: for every position `p`
/// in `lo..hi`, accumulates `item_q[bases[l] + resolved[p]] * wq[p]` into
/// `accs[l]`. Products are exact in `i32` (15-bit operands) and the `i64`
/// sums are associative, so any interleaving is bit-identical to the
/// per-window sequential walk.
#[inline(never)]
pub fn lane_q16_span(
    accs: &mut [i64; LANES],
    wq: &[Q16],
    resolved: &[i32],
    bases: &[i32; LANES],
    item_q: &[Q16],
    lo: usize,
    hi: usize,
) {
    for p in lo..hi {
        let w = i32x8::splat(wq[p].0 as i32);
        let d = resolved[p];
        let mut v = [0i32; LANES];
        for (l, vl) in v.iter_mut().enumerate() {
            *vl = item_q[(bases[l] + d) as usize].0 as i32;
        }
        let prod = (i32x8::new(v) * w).to_array();
        for (a, p) in accs.iter_mut().zip(prod) {
            *a += p as i64;
        }
    }
}

/// Strictly sequential scalar dot product — **deliberately not
/// vectorizable** (the single accumulator chain forbids reassociation).
/// This is the planted-scalarization symbol `scripts/asm_check.sh
/// --negative-smoke` asserts its vector patterns *fail* on, proving the
/// check can actually detect a scalarized kernel.
#[inline(never)]
pub fn seq_dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// Scalar reference for the pinned lane order: eight named accumulators
/// filled in ascending `p`, collapsed via [`tree8`]. The proptests pin the
/// vector kernels to this bit-for-bit.
pub fn pinned_dot_ref(values: &[f32], weights: &[f32], m8: usize) -> f32 {
    let mut lanes = [0.0f32; LANES];
    for p in 0..m8 {
        lanes[p % LANES] += values[p] * weights[p];
    }
    tree8(lanes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::q16::{Q16Format, QAcc};
    use proptest::prelude::*;

    fn lcg(seed: u64, n: usize) -> Vec<f32> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn lane_prefix_and_packed_lengths() {
        for (len, m8, pl) in [
            (0, 0, 0),
            (1, 0, 8),
            (7, 0, 8),
            (8, 8, 8),
            (9, 8, 16),
            (15, 8, 16),
            (16, 16, 16),
            (17, 16, 24),
        ] {
            assert_eq!(lane_prefix_len(len), m8, "m8 for {len}");
            assert_eq!(packed_len(len), pl, "packed for {len}");
        }
    }

    #[test]
    fn pack_weights_pads_with_positive_zero() {
        for len in [0usize, 1, 7, 8, 9, 23] {
            let w = lcg(len as u64 + 3, len);
            let p = pack_weights(&w);
            assert_eq!(p.len(), packed_len(len));
            assert_eq!(&p[..len], &w[..], "prefix preserved for {len}");
            for pad in &p[len..] {
                assert_eq!(pad.to_bits(), 0.0f32.to_bits(), "padding is +0.0");
            }
        }
    }

    // Remainder tails: lengths that are not multiples of 8, including 1
    // and 7, leave the lane region empty or partial and must agree with
    // the scalar pinned reference bit-for-bit.
    #[test]
    fn lane_dot_tail_cases_match_reference() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 24, 31, 33] {
            let v = lcg(len as u64 + 11, len);
            let w = lcg(len as u64 + 29, len);
            let m8 = lane_prefix_len(len);
            let got = lane_dot(&v, &w, m8);
            let want = pinned_dot_ref(&v, &w, m8);
            assert_eq!(got.to_bits(), want.to_bits(), "len {len}");
        }
    }

    #[test]
    fn lane_axpy8_tail_cases_match_scalar() {
        for n in [0usize, 1, 7, 8, 9, 16, 17, 31] {
            let a_v = lcg(n as u64 + 5, LANES);
            let a: [f32; LANES] = a_v.as_slice().try_into().unwrap();
            let rows: Vec<Vec<f32>> = (0..LANES).map(|q| lcg(q as u64 + 40, n)).collect();
            let b: [&[f32]; LANES] = std::array::from_fn(|q| rows[q].as_slice());
            let mut out = lcg(n as u64 + 99, n);
            let mut want = out.clone();
            for j in 0..n {
                let mut v = want[j];
                for q in 0..LANES {
                    v += a[q] * b[q][j];
                }
                want[j] = v;
            }
            lane_axpy8(&mut out, &a, b);
            for (g, w) in out.iter().zip(&want) {
                assert_eq!(g.to_bits(), w.to_bits(), "n {n}");
            }
        }
    }

    #[test]
    fn seq_dot_is_the_plain_sequential_sum() {
        let a = lcg(1, 37);
        let b = lcg(2, 37);
        let mut want = 0.0f32;
        for (x, y) in a.iter().zip(&b) {
            want += x * y;
        }
        assert_eq!(seq_dot(&a, &b).to_bits(), want.to_bits());
    }

    proptest! {
        #[test]
        fn prop_lane_dot_matches_pinned_reference(
            seed in 0u64..1000,
            len in 0usize..64,
        ) {
            let v = lcg(seed + 1, len);
            let w = lcg(seed + 2, len);
            let m8 = lane_prefix_len(len);
            prop_assert_eq!(
                lane_dot(&v, &w, m8).to_bits(),
                pinned_dot_ref(&v, &w, m8).to_bits()
            );
        }

        #[test]
        fn prop_lane_dot_resolved_matches_gathered_reference(
            seed in 0u64..1000,
            len in 0usize..48,
            extra in 0usize..16,
        ) {
            // Synthetic resolved taps: a permutation-ish scatter into a
            // larger item buffer, offset by a nonzero base.
            let item = lcg(seed + 3, len + extra + 4);
            let w = lcg(seed + 4, len);
            let base = 2i32;
            let resolved: Vec<i32> = (0..len)
                .map(|p| ((p * 7 + 3) % (len + extra).max(1)) as i32)
                .collect();
            let gathered: Vec<f32> = resolved
                .iter()
                .map(|&d| item[(base + d) as usize])
                .collect();
            let m8 = lane_prefix_len(len);
            prop_assert_eq!(
                lane_dot_resolved(&w, &resolved, base, &item, m8).to_bits(),
                pinned_dot_ref(&gathered, &w, m8).to_bits()
            );
        }

        #[test]
        fn prop_lane_dot_gather_selects_padding_as_zero(
            seed in 0u64..1000,
            len in 0usize..48,
        ) {
            let item = lcg(seed + 5, len + 4);
            let w = lcg(seed + 6, len);
            // Every third tap is padding.
            let taps: Vec<i32> = (0..len)
                .map(|i| if i % 3 == 2 { -1 } else { (i % (len + 3)) as i32 })
                .collect();
            let order: Vec<u32> = (0..len as u32).rev().collect();
            let gathered: Vec<f32> = order
                .iter()
                .map(|&o| {
                    let off = taps[o as usize];
                    if off >= 0 { item[off as usize] } else { 0.0 }
                })
                .collect();
            let m8 = lane_prefix_len(len);
            prop_assert_eq!(
                lane_dot_gather(&w, &order, &taps, &item, m8).to_bits(),
                pinned_dot_ref(&gathered, &w, m8).to_bits()
            );
        }

        #[test]
        fn prop_lane_q16_span_matches_sequential_macs(
            seed in 0u64..1000,
            len in 0usize..40,
            lo_frac in 0usize..8,
        ) {
            let fmt = Q16Format::default();
            let item = crate::q16::quantize_slice(fmt, &lcg(seed + 7, len + 40));
            let wq = crate::q16::quantize_slice(fmt, &lcg(seed + 8, len));
            let resolved: Vec<i32> = (0..len).map(|p| ((p * 5) % 32) as i32).collect();
            let bases: [i32; LANES] = std::array::from_fn(|l| l as i32);
            let lo = if len == 0 { 0 } else { lo_frac % (len + 1) };
            let mut accs = [3i64; LANES];
            lane_q16_span(&mut accs, &wq, &resolved, &bases, &item, lo, len);
            for (l, &acc) in accs.iter().enumerate() {
                let mut q = QAcc::from_raw(3);
                for p in lo..len {
                    q.mac(item[(bases[l] + resolved[p]) as usize], wq[p]);
                }
                prop_assert_eq!(acc, q.raw());
            }
        }

        #[test]
        fn prop_lane_axpy8_matches_scalar(seed in 0u64..500, n in 0usize..40) {
            let a_v = lcg(seed + 9, LANES);
            let a: [f32; LANES] = a_v.as_slice().try_into().unwrap();
            let rows: Vec<Vec<f32>> = (0..LANES).map(|q| lcg(seed + 10 + q as u64, n)).collect();
            let b: [&[f32]; LANES] = std::array::from_fn(|q| rows[q].as_slice());
            let mut out = lcg(seed + 20, n);
            let mut want = out.clone();
            for j in 0..n {
                for q in 0..LANES {
                    want[j] += a[q] * b[q][j];
                }
            }
            lane_axpy8(&mut out, &a, b);
            for (g, w) in out.iter().zip(&want) {
                prop_assert_eq!(g.to_bits(), w.to_bits());
            }
        }
    }
}
