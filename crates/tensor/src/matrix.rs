//! Dense 2-D matrix.

use crate::{Shape2, ShapeError};
use serde::{Deserialize, Serialize};
use std::ops::{Index, IndexMut};

/// Output columns per GEMM tile: 4096 f32 = 16 KiB, so an output tile stays
/// L1-resident while `k` streams through for very wide outputs. Every shape
/// this workspace produces (`out_h × out_w` columns) fits a single tile —
/// perfbench showed a smaller tile (512) costs ~40% on the repo's GEMM
/// shapes by breaking the streaming access to `rhs`, so the tile only
/// engages where out rows genuinely exceed L1.
const GEMM_COL_TILE: usize = 4096;

/// A dense, row-major `f32` matrix.
///
/// Used by fully-connected layers, the im2col convolution path, and the
/// softmax/loss computations.
///
/// ```
/// use snapea_tensor::{Shape2, Tensor2};
/// let a = Tensor2::from_fn(Shape2::new(2, 3), |r, c| (r * 3 + c) as f32);
/// let b = Tensor2::eye(3);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c, a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor2 {
    shape: Shape2,
    data: Vec<f32>,
}

impl Tensor2 {
    /// Creates a matrix filled with zeros.
    pub fn zeros(shape: Shape2) -> Self {
        Self {
            shape,
            data: vec![0.0; shape.len()],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn full(shape: Shape2, value: f32) -> Self {
        Self {
            shape,
            data: vec![value; shape.len()],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(Shape2::new(n, n));
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` at every coordinate.
    pub fn from_fn(shape: Shape2, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(shape.len());
        for r in 0..shape.rows {
            for c in 0..shape.cols {
                data.push(f(r, c));
            }
        }
        Self { shape, data }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `data.len() != shape.len()`.
    pub fn from_vec(shape: Shape2, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != shape.len() {
            return Err(ShapeError::new(format!(
                "expected {} elements for shape {shape}, got {}",
                shape.len(),
                data.len()
            )));
        }
        Ok(Self { shape, data })
    }

    /// The matrix shape.
    pub fn shape(&self) -> Shape2 {
        self.shape
    }

    /// Borrow the flat row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        let start = self.shape.offset(r, 0);
        &self.data[start..start + self.shape.cols]
    }

    /// Mutably borrow row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let start = self.shape.offset(r, 0);
        let cols = self.shape.cols;
        &mut self.data[start..start + cols]
    }

    /// Matrix product `self × rhs`.
    ///
    /// Row-partitioned across the [`crate::par`] pool (each worker owns a
    /// disjoint block of output rows) with column tiling so the output tile
    /// stays cache-resident while `k` streams through. Every output element
    /// accumulates in ascending-`k` order regardless of thread count or
    /// tiling, so the result is bit-identical to the naive serial ikj loop.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Tensor2) -> Result<Tensor2, ShapeError> {
        if self.shape.cols != rhs.shape.rows {
            return Err(ShapeError::new(format!(
                "matmul: {} × {}",
                self.shape, rhs.shape
            )));
        }
        let (m, k, n) = (self.shape.rows, self.shape.cols, rhs.shape.cols);
        let mut out = Tensor2::zeros(Shape2::new(m, n));
        if m == 0 || n == 0 {
            return Ok(out);
        }
        let chunk = crate::par::chunk_hint(m);
        let row_blocks: Vec<(usize, &mut [f32])> = out
            .data
            .chunks_mut(chunk * n)
            .enumerate()
            .map(|(ci, slab)| (ci * chunk, slab))
            .collect();
        crate::par::run_tasks(row_blocks, |_, (row0, slab)| {
            for (di, out_row) in slab.chunks_mut(n).enumerate() {
                let a_row = self.row(row0 + di);
                for j0 in (0..n).step_by(GEMM_COL_TILE) {
                    let j1 = (j0 + GEMM_COL_TILE).min(n);
                    let out_tile = &mut out_row[j0..j1];
                    for (p, &a) in a_row.iter().enumerate().take(k) {
                        let b_tile = &rhs.row(p)[j0..j1];
                        for (o, &b) in out_tile.iter_mut().zip(b_tile.iter()) {
                            *o += a * b;
                        }
                    }
                }
            }
        });
        Ok(out)
    }

    /// Matrix product `self × rhs` that skips zero entries of the LHS.
    ///
    /// For finite inputs this returns the same values as [`Tensor2::matmul`]
    /// (the skipped contributions are exact zeros). The `gemm` section of
    /// `BENCH_parallel.json` records the trade: on a dense LHS the branch is
    /// perfectly predicted and costs nothing, but it makes wall time depend
    /// on the data, and it only pays off when the LHS is *proven* sparse
    /// (~1.8× on a half-zero, post-ReLU-style LHS). The default [`matmul`]
    /// stays branch-free, parallel, and data-independent; reach for this
    /// variant explicitly where sparsity is established — and remember that
    /// computation-skipping for the SnaPEA data path itself lives in the
    /// executor, not the tensor crate. Serial.
    ///
    /// [`matmul`]: Tensor2::matmul
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `self.cols != rhs.rows`.
    pub fn matmul_sparse_lhs(&self, rhs: &Tensor2) -> Result<Tensor2, ShapeError> {
        if self.shape.cols != rhs.shape.rows {
            return Err(ShapeError::new(format!(
                "matmul_sparse_lhs: {} × {}",
                self.shape, rhs.shape
            )));
        }
        let (m, k, n) = (self.shape.rows, self.shape.cols, rhs.shape.cols);
        let mut out = Tensor2::zeros(Shape2::new(m, n));
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (p, &a) in a_row.iter().enumerate().take(k) {
                if a == 0.0 {
                    continue;
                }
                let b_row = rhs.row(p);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product `selfᵀ × rhs` without materialising the transpose.
    ///
    /// Parallelised over blocks of output rows (columns of `self`); each
    /// element accumulates in ascending-`k` order, so results are
    /// bit-identical for any thread count.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `self.rows != rhs.rows`.
    pub fn t_matmul(&self, rhs: &Tensor2) -> Result<Tensor2, ShapeError> {
        if self.shape.rows != rhs.shape.rows {
            return Err(ShapeError::new(format!(
                "t_matmul: {}ᵀ × {}",
                self.shape, rhs.shape
            )));
        }
        let (m, k, n) = (self.shape.cols, self.shape.rows, rhs.shape.cols);
        let mut out = Tensor2::zeros(Shape2::new(m, n));
        if m == 0 || n == 0 {
            return Ok(out);
        }
        let chunk = crate::par::chunk_hint(m);
        let row_blocks: Vec<(usize, &mut [f32])> = out
            .data
            .chunks_mut(chunk * n)
            .enumerate()
            .map(|(ci, slab)| (ci * chunk, slab))
            .collect();
        crate::par::run_tasks(row_blocks, |_, (row0, slab)| {
            for p in 0..k {
                let a_row = self.row(p);
                let b_row = rhs.row(p);
                for (di, out_row) in slab.chunks_mut(n).enumerate() {
                    let a = a_row[row0 + di];
                    for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += a * b;
                    }
                }
            }
        });
        Ok(out)
    }

    /// Matrix product `self × rhsᵀ` without materialising the transpose.
    ///
    /// Parallelised over blocks of output rows; each element is a single
    /// ascending-`k` dot product, so results are bit-identical for any
    /// thread count.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `self.cols != rhs.cols`.
    pub fn matmul_t(&self, rhs: &Tensor2) -> Result<Tensor2, ShapeError> {
        if self.shape.cols != rhs.shape.cols {
            return Err(ShapeError::new(format!(
                "matmul_t: {} × {}ᵀ",
                self.shape, rhs.shape
            )));
        }
        let (m, n) = (self.shape.rows, rhs.shape.rows);
        let mut out = Tensor2::zeros(Shape2::new(m, n));
        if m == 0 || n == 0 {
            return Ok(out);
        }
        let chunk = crate::par::chunk_hint(m);
        let row_blocks: Vec<(usize, &mut [f32])> = out
            .data
            .chunks_mut(chunk * n)
            .enumerate()
            .map(|(ci, slab)| (ci * chunk, slab))
            .collect();
        crate::par::run_tasks(row_blocks, |_, (row0, slab)| {
            for (di, out_row) in slab.chunks_mut(n).enumerate() {
                let a_row = self.row(row0 + di);
                for (j, o) in out_row.iter_mut().enumerate().take(n) {
                    let b_row = rhs.row(j);
                    let mut acc = 0.0;
                    for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                        acc += a * b;
                    }
                    *o = acc;
                }
            }
        });
        Ok(out)
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Tensor2 {
        Tensor2::from_fn(Shape2::new(self.shape.cols, self.shape.rows), |r, c| {
            self[(c, r)]
        })
    }

    /// Adds `other` element-wise.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor2) -> Result<(), ShapeError> {
        if self.shape != other.shape {
            return Err(ShapeError::new(format!(
                "add: {} vs {}",
                self.shape, other.shape
            )));
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// Scales every element by `s`.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Iterate over all elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }
}

impl Index<(usize, usize)> for Tensor2 {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[self.shape.offset(r, c)]
    }
}

impl IndexMut<(usize, usize)> for Tensor2 {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[self.shape.offset(r, c)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, v: &[f32]) -> Tensor2 {
        Tensor2::from_vec(Shape2::new(rows, cols), v.to_vec()).unwrap()
    }

    #[test]
    fn matmul_small() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = mat(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, mat(2, 2, &[58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = mat(2, 3, &[0.0; 6]);
        let b = mat(2, 3, &[0.0; 6]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transposed_products_agree_with_explicit_transpose() {
        let a = mat(3, 2, &[1.0, -2.0, 0.5, 4.0, -1.0, 2.0]);
        let b = mat(3, 4, &(0..12).map(|i| i as f32 * 0.25 - 1.0).collect::<Vec<_>>());
        let fast = a.t_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert_eq!(fast, slow);

        let c = mat(5, 2, &(0..10).map(|i| (i as f32).sin()).collect::<Vec<_>>());
        let fast = a.matmul_t(&c).unwrap();
        let slow = a.matmul(&c.transpose()).unwrap();
        for (x, y) in fast.iter().zip(slow.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    /// Naive triple loop accumulating in ascending-k order — the reference
    /// the parallel kernels must match bit-for-bit.
    fn naive_matmul(a: &Tensor2, b: &Tensor2) -> Tensor2 {
        let (m, k, n) = (a.shape().rows, a.shape().cols, b.shape().cols);
        let mut out = Tensor2::zeros(Shape2::new(m, n));
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[(i, p)] * b[(p, j)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    /// Deterministic pseudo-random matrix with a sprinkling of exact zeros.
    fn lcg_mat(rows: usize, cols: usize, seed: &mut u64) -> Tensor2 {
        Tensor2::from_fn(Shape2::new(rows, cols), |_, _| {
            *seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if (*seed >> 20).is_multiple_of(5) {
                0.0
            } else {
                ((*seed >> 33) as f32 / (1u64 << 31) as f32) * 4.0 - 2.0
            }
        })
    }

    #[test]
    fn matmul_is_bit_identical_across_thread_counts() {
        let prev = crate::par::threads();
        let mut seed = 0x5EED_0001_u64;
        // The last shape exceeds GEMM_COL_TILE to exercise multi-tile rows.
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 4), (17, 9, 23), (9, 8, GEMM_COL_TILE + 5)] {
            let a = lcg_mat(m, k, &mut seed);
            let b = lcg_mat(k, n, &mut seed);
            let reference = naive_matmul(&a, &b);
            for t in [1, 2, 4, 7] {
                crate::par::set_threads(t);
                assert_eq!(a.matmul(&b).unwrap(), reference, "m={m} k={k} n={n} t={t}");
            }
            assert_eq!(a.matmul_sparse_lhs(&b).unwrap(), reference);
        }
        crate::par::set_threads(prev);
    }

    #[test]
    fn transposed_products_are_bit_identical_across_thread_counts() {
        let prev = crate::par::threads();
        let mut seed = 0x5EED_0002_u64;
        for &(m, k, n) in &[(2, 3, 2), (19, 11, 13), (40, 24, 31)] {
            let a = lcg_mat(k, m, &mut seed); // for t_matmul: aᵀ is m×k
            let b = lcg_mat(k, n, &mut seed);
            let c = lcg_mat(n, k, &mut seed); // for matmul_t: a2 × cᵀ
            let a2 = lcg_mat(m, k, &mut seed);
            crate::par::set_threads(1);
            let serial_t = a.t_matmul(&b).unwrap();
            let serial_mt = a2.matmul_t(&c).unwrap();
            for t in [2, 4, 7] {
                crate::par::set_threads(t);
                assert_eq!(a.t_matmul(&b).unwrap(), serial_t, "t_matmul t={t}");
                assert_eq!(a2.matmul_t(&c).unwrap(), serial_mt, "matmul_t t={t}");
            }
        }
        crate::par::set_threads(prev);
    }

    proptest::proptest! {
        #[test]
        fn prop_parallel_matmul_equals_serial_reference(
            m in 1usize..8,
            k in 1usize..8,
            n in 1usize..8,
            raw_seed in 0u64..1024,
        ) {
            let mut seed = raw_seed.wrapping_mul(0x9E37_79B9).wrapping_add(1);
            let a = lcg_mat(m, k, &mut seed);
            let b = lcg_mat(k, n, &mut seed);
            let prev = crate::par::threads();
            crate::par::set_threads(4);
            let got = a.matmul(&b).unwrap();
            crate::par::set_threads(prev);
            proptest::prop_assert_eq!(got, naive_matmul(&a, &b));
        }
    }

    #[test]
    fn eye_is_identity_for_matmul() {
        let a = mat(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.matmul(&Tensor2::eye(2)).unwrap(), a);
        assert_eq!(Tensor2::eye(2).matmul(&a).unwrap(), a);
    }

    #[test]
    fn rows_and_mutation() {
        let mut a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0]);
        a.row_mut(0)[2] = 9.0;
        assert_eq!(a[(0, 2)], 9.0);
        a.scale(2.0);
        assert_eq!(a.sum(), 2.0 * (1.0 + 2.0 + 9.0 + 4.0 + 5.0 + 6.0));
    }
}
