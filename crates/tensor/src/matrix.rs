//! Dense 2-D matrix.

use crate::{Shape2, ShapeError};
use serde::{Deserialize, Serialize};
use std::ops::{Index, IndexMut};

/// Output columns per GEMM tile: 4096 f32 = 16 KiB, so an output tile stays
/// L1-resident while `k` streams through for very wide outputs. Every shape
/// this workspace produces (`out_h × out_w` columns) fits a single tile —
/// perfbench showed a smaller tile (512) costs ~40% on the repo's GEMM
/// shapes by breaking the streaming access to `rhs`, so the tile only
/// engages where out rows genuinely exceed L1.
const GEMM_COL_TILE: usize = 4096;

/// `k` values fused per pass of the register-blocked axpy microkernel
/// ([`axpy_k8`]). Eight is past the knee on the repo's GEMM shapes: it cuts
/// the `out`-row load/store traffic 8× versus one-`k`-per-pass, and going
/// wider would spill the broadcast `a` registers.
const AXPY_K_UNROLL: usize = 8;

/// `out[j] += a * b[j]` — the single-`k` GEMM inner loop.
///
/// Deliberately written as the flat zip loop: LLVM's loop vectorizer emits
/// full-width vector code for it (with runtime alias checks). Hand-chunking
/// this loop into fixed 8-lane pieces *defeats* vectorization — the chunked
/// body has to be SLP-vectorized, and SLP cannot insert the alias checks the
/// loop vectorizer can, so it falls back to scalar code ~6× slower. Measured
/// on this toolchain via the `matmul` entry of `BENCH_kernels.json`.
#[inline]
fn axpy(out: &mut [f32], a: f32, b: &[f32]) {
    debug_assert_eq!(out.len(), b.len());
    for (o, &bv) in out.iter_mut().zip(b.iter()) {
        *o += a * bv;
    }
}

/// The register-blocked GEMM microkernel: fuses [`AXPY_K_UNROLL`] successive
/// `k` contributions into one pass over the output row.
///
/// Per element `j` it computes `(((out[j] + a[0]*b[0][j]) + a[1]*b[1][j]) +
/// …) + a[7]*b[7][j]` — exactly the sequence eight successive [`axpy`] calls
/// produce (keeping the partial in a register instead of storing/reloading
/// `out[j]` is exact: an `f32` load/store round-trip never changes the
/// value, and Rust does not contract `a*b + c` into FMA). So each element's
/// ascending-`k` accumulation order is unchanged and results stay
/// bit-identical, while `out` is loaded and stored once per eight `k` steps
/// instead of once per step. Vectorization happens across the independent
/// `n` dimension, never across `k`: the body is [`crate::lane::lane_axpy8`],
/// which carries `n` in explicit [`crate::lane::f32x8`] chunks (plus a
/// scalar tail) and is one of the symbols `scripts/asm_check.sh` asserts
/// compiles to vector mul/add.
#[inline]
fn axpy_k8(out: &mut [f32], a: &[f32; AXPY_K_UNROLL], b: [&[f32]; AXPY_K_UNROLL]) {
    for bq in b {
        debug_assert_eq!(bq.len(), out.len());
    }
    crate::lane::lane_axpy8(out, a, b);
}

/// Runs the `k` loop of one output tile: [`axpy_k8`] over full
/// [`AXPY_K_UNROLL`]-sized blocks of `k`, then plain [`axpy`] for the tail.
/// `a` holds the `k` coefficients for this output row; `bs(p)` must return
/// the RHS row-`p` slice aligned with `out`.
#[inline]
// lint:allow(P1) the try_into target is a p..p+AXPY_K_UNROLL window with p < k8 ≤ k − AXPY_K_UNROLL + …, always exactly block-sized
// lint:allow(P2) p stays below k = a.len() by both while bounds
fn axpy_k_loop<'a>(out: &mut [f32], a: &[f32], bs: impl Fn(usize) -> &'a [f32]) {
    let k = a.len();
    let k8 = k - k % AXPY_K_UNROLL;
    let mut p = 0;
    while p < k8 {
        let a8: &[f32; AXPY_K_UNROLL] = a[p..p + AXPY_K_UNROLL].try_into().expect("block size");
        axpy_k8(out, a8, std::array::from_fn(|q| bs(p + q)));
        p += AXPY_K_UNROLL;
    }
    while p < k {
        axpy(out, a[p], bs(p));
        p += 1;
    }
}

/// Validates the raw-slice operands of the `*_into` GEMM entry points.
fn check_slices(
    name: &str,
    lhs: &[f32],
    lhs_shape: Shape2,
    rhs: &[f32],
    rhs_shape: Shape2,
    out_len: usize,
    expected_out: usize,
) -> Result<(), ShapeError> {
    if lhs.len() != lhs_shape.len() || rhs.len() != rhs_shape.len() {
        return Err(ShapeError::new(format!(
            "{name}: slice lengths {}/{} do not match shapes {lhs_shape}/{rhs_shape}",
            lhs.len(),
            rhs.len()
        )));
    }
    if out_len != expected_out {
        return Err(ShapeError::new(format!(
            "{name}: output length {out_len}, expected {expected_out}"
        )));
    }
    Ok(())
}

/// `out += lhs × rhs` over raw row-major slices (`out` is `m × n` row-major
/// and is **accumulated into**, so it must be zeroed for a plain product).
///
/// This is the allocation-free core behind [`Tensor2::matmul`], exposed so
/// the conv forward path can run GEMM into a reused scratch buffer. Same
/// parallel row-partitioning, column tiling, and ascending-`k` bit-identity
/// contract as the method.
///
/// # Errors
///
/// Returns a [`ShapeError`] if the inner dimensions disagree or any slice
/// length does not match its shape.
// lint:allow(P2) row/tile indices are derived from chunks_mut geometry and check_slices-validated shapes
pub fn matmul_into(
    lhs: &[f32],
    lhs_shape: Shape2,
    rhs: &[f32],
    rhs_shape: Shape2,
    out: &mut [f32],
) -> Result<(), ShapeError> {
    if lhs_shape.cols != rhs_shape.rows {
        return Err(ShapeError::new(format!(
            "matmul: {lhs_shape} × {rhs_shape}"
        )));
    }
    let (m, k, n) = (lhs_shape.rows, lhs_shape.cols, rhs_shape.cols);
    check_slices(
        "matmul_into",
        lhs,
        lhs_shape,
        rhs,
        rhs_shape,
        out.len(),
        m * n,
    )?;
    if m == 0 || n == 0 {
        return Ok(());
    }
    // Each output row costs k·n MACs; the floor keeps every task above the
    // pool's dispatch-overhead crossover (small GEMMs run inline).
    let chunk = crate::par::chunk_for(m, k * n, crate::par::GEMM_TASK_FLOOR_MACS);
    let row_blocks: Vec<(usize, &mut [f32])> = out
        .chunks_mut(chunk * n)
        .enumerate()
        .map(|(ci, slab)| (ci * chunk, slab))
        .collect();
    crate::par::run_tasks(row_blocks, |_, (row0, slab)| {
        for (di, out_row) in slab.chunks_mut(n).enumerate() {
            let a_row = &lhs[(row0 + di) * k..][..k];
            for j0 in (0..n).step_by(GEMM_COL_TILE) {
                let j1 = (j0 + GEMM_COL_TILE).min(n);
                let out_tile = &mut out_row[j0..j1];
                axpy_k_loop(out_tile, a_row, |p| &rhs[p * n + j0..p * n + j1]);
            }
        }
    });
    Ok(())
}

/// `out += lhsᵀ × rhs` over raw row-major slices (`out` is
/// `lhs.cols × rhs.cols`, accumulated into). Allocation-free core behind
/// [`Tensor2::t_matmul`]; same determinism contract.
///
/// # Errors
///
/// Returns a [`ShapeError`] if `lhs_shape.rows != rhs_shape.rows` or any
/// slice length does not match its shape.
// lint:allow(P2) p0 < k and row0+di < m by the block loops; slice windows sized from check_slices-validated shapes
pub fn t_matmul_into(
    lhs: &[f32],
    lhs_shape: Shape2,
    rhs: &[f32],
    rhs_shape: Shape2,
    out: &mut [f32],
) -> Result<(), ShapeError> {
    if lhs_shape.rows != rhs_shape.rows {
        return Err(ShapeError::new(format!(
            "t_matmul: {lhs_shape}ᵀ × {rhs_shape}"
        )));
    }
    let (m, k, n) = (lhs_shape.cols, lhs_shape.rows, rhs_shape.cols);
    check_slices(
        "t_matmul_into",
        lhs,
        lhs_shape,
        rhs,
        rhs_shape,
        out.len(),
        m * n,
    )?;
    if m == 0 || n == 0 {
        return Ok(());
    }
    // k·n MACs per output row, floored like matmul_into so sub-crossover
    // gradient GEMMs stay inline.
    let chunk = crate::par::chunk_for(m, k * n, crate::par::GEMM_TASK_FLOOR_MACS);
    let row_blocks: Vec<(usize, &mut [f32])> = out
        .chunks_mut(chunk * n)
        .enumerate()
        .map(|(ci, slab)| (ci * chunk, slab))
        .collect();
    crate::par::run_tasks(row_blocks, |_, (row0, slab)| {
        // k-outer so each RHS row block stays hot across every output row of
        // the slab; blocks of AXPY_K_UNROLL keep per-element accumulation in
        // ascending-k order while touching each out row once per block.
        let k8 = k - k % AXPY_K_UNROLL;
        let mut p0 = 0;
        while p0 < k8 {
            for (di, out_row) in slab.chunks_mut(n).enumerate() {
                let a8: [f32; AXPY_K_UNROLL] =
                    std::array::from_fn(|q| lhs[(p0 + q) * m + row0 + di]);
                axpy_k8(
                    out_row,
                    &a8,
                    std::array::from_fn(|q| &rhs[(p0 + q) * n..][..n]),
                );
            }
            p0 += AXPY_K_UNROLL;
        }
        while p0 < k {
            let a_row = &lhs[p0 * m..][..m];
            let b_row = &rhs[p0 * n..][..n];
            for (di, out_row) in slab.chunks_mut(n).enumerate() {
                axpy(out_row, a_row[row0 + di], b_row);
            }
            p0 += 1;
        }
    });
    Ok(())
}

/// `out = lhs × rhsᵀ` over raw row-major slices (`out` is
/// `lhs.rows × rhs.rows` and is **overwritten**: each element is a single
/// ascending-`k` dot product, exactly as [`Tensor2::matmul_t`] computes it —
/// this one must *not* be lane-split, because that would reorder the
/// reduction).
///
/// # Errors
///
/// Returns a [`ShapeError`] if `lhs_shape.cols != rhs_shape.cols` or any
/// slice length does not match its shape.
// lint:allow(P2) row indices bounded by chunks_mut geometry; j < n = rhs rows by the take(n)
pub fn matmul_t_into(
    lhs: &[f32],
    lhs_shape: Shape2,
    rhs: &[f32],
    rhs_shape: Shape2,
    out: &mut [f32],
) -> Result<(), ShapeError> {
    if lhs_shape.cols != rhs_shape.cols {
        return Err(ShapeError::new(format!(
            "matmul_t: {lhs_shape} × {rhs_shape}ᵀ"
        )));
    }
    let (m, k, n) = (lhs_shape.rows, lhs_shape.cols, rhs_shape.rows);
    check_slices(
        "matmul_t_into",
        lhs,
        lhs_shape,
        rhs,
        rhs_shape,
        out.len(),
        m * n,
    )?;
    if m == 0 || n == 0 {
        return Ok(());
    }
    // k·n MACs per output row (each element one k-long dot product).
    let chunk = crate::par::chunk_for(m, k * n, crate::par::GEMM_TASK_FLOOR_MACS);
    let row_blocks: Vec<(usize, &mut [f32])> = out
        .chunks_mut(chunk * n)
        .enumerate()
        .map(|(ci, slab)| (ci * chunk, slab))
        .collect();
    crate::par::run_tasks(row_blocks, |_, (row0, slab)| {
        for (di, out_row) in slab.chunks_mut(n).enumerate() {
            let a_row = &lhs[(row0 + di) * k..][..k];
            for (j, o) in out_row.iter_mut().enumerate().take(n) {
                let b_row = &rhs[j * k..][..k];
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
    });
    Ok(())
}

/// A dense, row-major `f32` matrix.
///
/// Used by fully-connected layers, the im2col convolution path, and the
/// softmax/loss computations.
///
/// ```
/// use snapea_tensor::{Shape2, Tensor2};
/// let a = Tensor2::from_fn(Shape2::new(2, 3), |r, c| (r * 3 + c) as f32);
/// let b = Tensor2::eye(3);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c, a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor2 {
    shape: Shape2,
    data: Vec<f32>,
}

impl Tensor2 {
    /// Creates a matrix filled with zeros.
    pub fn zeros(shape: Shape2) -> Self {
        Self {
            shape,
            data: vec![0.0; shape.len()],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn full(shape: Shape2, value: f32) -> Self {
        Self {
            shape,
            data: vec![value; shape.len()],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(Shape2::new(n, n));
        for i in 0..n {
            // lint:allow(P2) (i, i) with i < n indexes inside the freshly allocated n × n matrix
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` at every coordinate.
    pub fn from_fn(shape: Shape2, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(shape.len());
        for r in 0..shape.rows {
            for c in 0..shape.cols {
                data.push(f(r, c));
            }
        }
        Self { shape, data }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `data.len() != shape.len()`.
    pub fn from_vec(shape: Shape2, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != shape.len() {
            return Err(ShapeError::new(format!(
                "expected {} elements for shape {shape}, got {}",
                shape.len(),
                data.len()
            )));
        }
        Ok(Self { shape, data })
    }

    /// The matrix shape.
    pub fn shape(&self) -> Shape2 {
        self.shape
    }

    /// Borrow the flat row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        let start = self.shape.offset(r, 0);
        &self.data[start..start + self.shape.cols]
    }

    /// Mutably borrow row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let start = self.shape.offset(r, 0);
        let cols = self.shape.cols;
        &mut self.data[start..start + cols]
    }

    /// Matrix product `self × rhs`.
    ///
    /// Row-partitioned across the [`crate::par`] pool (each worker owns a
    /// disjoint block of output rows) with column tiling so the output tile
    /// stays cache-resident while `k` streams through, and the fixed-width
    /// axpy microkernel on the inner loop. Every output element accumulates
    /// in ascending-`k` order regardless of thread count, tiling, or lane
    /// width, so the result is bit-identical to the naive serial ikj loop.
    ///
    /// Delegates to [`matmul_into`]; use that directly to GEMM into a reused
    /// scratch buffer.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Tensor2) -> Result<Tensor2, ShapeError> {
        let mut out = Tensor2::zeros(Shape2::new(self.shape.rows, rhs.shape.cols));
        matmul_into(&self.data, self.shape, &rhs.data, rhs.shape, &mut out.data)?;
        Ok(out)
    }

    /// Matrix product `self × rhs` that skips zero entries of the LHS.
    ///
    /// For finite inputs this returns the same values as [`Tensor2::matmul`]
    /// (the skipped contributions are exact zeros). It shares the dense
    /// path's column tiling and single-`k` [`axpy`] loop; the per-`k` zero
    /// test means it cannot use the fused [`axpy_k8`] blocks the dense path
    /// runs, so the dense-vs-sparse crossover keeps moving as the dense
    /// kernel improves. The `gemm` section of `BENCH_parallel.json` records
    /// the current trade (re-measured after the lane engine, DESIGN.md §11):
    /// a half-zero, post-ReLU-style LHS still wins ~1.4×, but a
    /// mostly-dense LHS loses the k-blocking for nothing. The
    /// default [`matmul`] stays branch-free, parallel, and data-independent;
    /// reach for this variant explicitly where heavy sparsity is
    /// established — and remember that computation-skipping for the SnaPEA
    /// data path itself lives in the executor, not the tensor crate. Serial.
    ///
    /// [`matmul`]: Tensor2::matmul
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `self.cols != rhs.rows`.
    // lint:allow(P2) tile bounds j0..j1 clamp to n and p < k = rhs rows by the shape check above
    pub fn matmul_sparse_lhs(&self, rhs: &Tensor2) -> Result<Tensor2, ShapeError> {
        if self.shape.cols != rhs.shape.rows {
            return Err(ShapeError::new(format!(
                "matmul_sparse_lhs: {} × {}",
                self.shape, rhs.shape
            )));
        }
        let (m, k, n) = (self.shape.rows, self.shape.cols, rhs.shape.cols);
        let mut out = Tensor2::zeros(Shape2::new(m, n));
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for j0 in (0..n).step_by(GEMM_COL_TILE) {
                let j1 = (j0 + GEMM_COL_TILE).min(n);
                let out_tile = &mut out_row[j0..j1];
                for (p, &a) in a_row.iter().enumerate().take(k) {
                    if a == 0.0 {
                        continue;
                    }
                    axpy(out_tile, a, &rhs.row(p)[j0..j1]);
                }
            }
        }
        Ok(out)
    }

    /// Matrix product `selfᵀ × rhs` without materialising the transpose.
    ///
    /// Parallelised over blocks of output rows (columns of `self`) with the
    /// same axpy microkernel as [`Tensor2::matmul`]; each element accumulates
    /// in ascending-`k` order, so results are bit-identical for any thread
    /// count. Delegates to [`t_matmul_into`].
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `self.rows != rhs.rows`.
    pub fn t_matmul(&self, rhs: &Tensor2) -> Result<Tensor2, ShapeError> {
        let mut out = Tensor2::zeros(Shape2::new(self.shape.cols, rhs.shape.cols));
        t_matmul_into(&self.data, self.shape, &rhs.data, rhs.shape, &mut out.data)?;
        Ok(out)
    }

    /// Matrix product `self × rhsᵀ` without materialising the transpose.
    ///
    /// Parallelised over blocks of output rows; each element is a single
    /// ascending-`k` dot product, so results are bit-identical for any
    /// thread count. This kernel deliberately does **not** use the axpy
    /// microkernel: its per-element reduction runs over `k`, and lane-
    /// splitting it would reorder the floating-point sum. Delegates to
    /// [`matmul_t_into`].
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `self.cols != rhs.cols`.
    pub fn matmul_t(&self, rhs: &Tensor2) -> Result<Tensor2, ShapeError> {
        let mut out = Tensor2::zeros(Shape2::new(self.shape.rows, rhs.shape.rows));
        matmul_t_into(&self.data, self.shape, &rhs.data, rhs.shape, &mut out.data)?;
        Ok(out)
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Tensor2 {
        Tensor2::from_fn(Shape2::new(self.shape.cols, self.shape.rows), |r, c| {
            self[(c, r)]
        })
    }

    /// Adds `other` element-wise.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor2) -> Result<(), ShapeError> {
        if self.shape != other.shape {
            return Err(ShapeError::new(format!(
                "add: {} vs {}",
                self.shape, other.shape
            )));
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// Scales every element by `s`.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Iterate over all elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }
}

impl Index<(usize, usize)> for Tensor2 {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[self.shape.offset(r, c)]
    }
}

impl IndexMut<(usize, usize)> for Tensor2 {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[self.shape.offset(r, c)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, v: &[f32]) -> Tensor2 {
        Tensor2::from_vec(Shape2::new(rows, cols), v.to_vec()).unwrap()
    }

    #[test]
    fn matmul_small() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = mat(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, mat(2, 2, &[58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = mat(2, 3, &[0.0; 6]);
        let b = mat(2, 3, &[0.0; 6]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transposed_products_agree_with_explicit_transpose() {
        let a = mat(3, 2, &[1.0, -2.0, 0.5, 4.0, -1.0, 2.0]);
        let b = mat(
            3,
            4,
            &(0..12).map(|i| i as f32 * 0.25 - 1.0).collect::<Vec<_>>(),
        );
        let fast = a.t_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert_eq!(fast, slow);

        let c = mat(5, 2, &(0..10).map(|i| (i as f32).sin()).collect::<Vec<_>>());
        let fast = a.matmul_t(&c).unwrap();
        let slow = a.matmul(&c.transpose()).unwrap();
        for (x, y) in fast.iter().zip(slow.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    /// Naive triple loop accumulating in ascending-k order — the reference
    /// the parallel kernels must match bit-for-bit.
    fn naive_matmul(a: &Tensor2, b: &Tensor2) -> Tensor2 {
        let (m, k, n) = (a.shape().rows, a.shape().cols, b.shape().cols);
        let mut out = Tensor2::zeros(Shape2::new(m, n));
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[(i, p)] * b[(p, j)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    /// Deterministic pseudo-random matrix with a sprinkling of exact zeros.
    fn lcg_mat(rows: usize, cols: usize, seed: &mut u64) -> Tensor2 {
        Tensor2::from_fn(Shape2::new(rows, cols), |_, _| {
            *seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if (*seed >> 20).is_multiple_of(5) {
                0.0
            } else {
                ((*seed >> 33) as f32 / (1u64 << 31) as f32) * 4.0 - 2.0
            }
        })
    }

    #[test]
    fn matmul_is_bit_identical_across_thread_counts() {
        let prev = crate::par::threads();
        let mut seed = 0x5EED_0001_u64;
        // The last shape exceeds GEMM_COL_TILE to exercise multi-tile rows.
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 4), (17, 9, 23), (9, 8, GEMM_COL_TILE + 5)] {
            let a = lcg_mat(m, k, &mut seed);
            let b = lcg_mat(k, n, &mut seed);
            let reference = naive_matmul(&a, &b);
            for t in [1, 2, 4, 7] {
                crate::par::set_threads(t);
                assert_eq!(a.matmul(&b).unwrap(), reference, "m={m} k={k} n={n} t={t}");
            }
            assert_eq!(a.matmul_sparse_lhs(&b).unwrap(), reference);
        }
        crate::par::set_threads(prev);
    }

    #[test]
    fn transposed_products_are_bit_identical_across_thread_counts() {
        let prev = crate::par::threads();
        let mut seed = 0x5EED_0002_u64;
        for &(m, k, n) in &[(2, 3, 2), (19, 11, 13), (40, 24, 31)] {
            let a = lcg_mat(k, m, &mut seed); // for t_matmul: aᵀ is m×k
            let b = lcg_mat(k, n, &mut seed);
            let c = lcg_mat(n, k, &mut seed); // for matmul_t: a2 × cᵀ
            let a2 = lcg_mat(m, k, &mut seed);
            crate::par::set_threads(1);
            let serial_t = a.t_matmul(&b).unwrap();
            let serial_mt = a2.matmul_t(&c).unwrap();
            for t in [2, 4, 7] {
                crate::par::set_threads(t);
                assert_eq!(a.t_matmul(&b).unwrap(), serial_t, "t_matmul t={t}");
                assert_eq!(a2.matmul_t(&c).unwrap(), serial_mt, "matmul_t t={t}");
            }
        }
        crate::par::set_threads(prev);
    }

    proptest::proptest! {
        #[test]
        fn prop_parallel_matmul_equals_serial_reference(
            m in 1usize..8,
            // Past AXPY_K_UNROLL so the proptest exercises both the fused
            // k-blocks and the plain-axpy tail of the microkernel.
            k in 1usize..(3 * AXPY_K_UNROLL),
            n in 1usize..24,
            raw_seed in 0u64..1024,
        ) {
            let mut seed = raw_seed.wrapping_mul(0x9E37_79B9).wrapping_add(1);
            let a = lcg_mat(m, k, &mut seed);
            let b = lcg_mat(k, n, &mut seed);
            let prev = crate::par::threads();
            crate::par::set_threads(4);
            let got = a.matmul(&b).unwrap();
            crate::par::set_threads(prev);
            proptest::prop_assert_eq!(got, naive_matmul(&a, &b));
        }
    }

    #[test]
    fn axpy_k_unroll_boundaries_match_sequential_axpy() {
        // k straddling the microkernel block width: tail-only, exact blocks,
        // blocks + tail. The fused k-block path must reproduce the exact
        // bit pattern of k successive single-k axpy passes.
        for k in [0, 1, 7, 8, 9, 16, 17, 31] {
            let n = 13;
            let a: Vec<f32> = (0..k).map(|p| ((p * 7 + 3) as f32).sin()).collect();
            let b: Vec<f32> = (0..k * n).map(|i| (i as f32).cos()).collect();
            let mut fast: Vec<f32> = (0..n).map(|i| i as f32 * 0.5 - 3.0).collect();
            let mut slow = fast.clone();
            axpy_k_loop(&mut fast, &a, |p| &b[p * n..(p + 1) * n]);
            for (p, &av) in a.iter().enumerate() {
                axpy(&mut slow, av, &b[p * n..(p + 1) * n]);
            }
            assert_eq!(fast, slow, "k={k}");
        }
    }

    #[test]
    fn into_variants_accumulate_and_match_methods() {
        let mut seed = 0x5EED_0003_u64;
        let a = lcg_mat(4, 6, &mut seed);
        let b = lcg_mat(6, 9, &mut seed);
        let mut out = vec![0.0f32; 4 * 9];
        matmul_into(a.as_slice(), a.shape(), b.as_slice(), b.shape(), &mut out).unwrap();
        assert_eq!(out, a.matmul(&b).unwrap().into_vec());
        // Accumulate semantics: with k = 1 each element receives exactly one
        // product per call, so a second call doubles it bit-exactly.
        let ak = lcg_mat(4, 1, &mut seed);
        let bk = lcg_mat(1, 9, &mut seed);
        let mut out = vec![0.0f32; 4 * 9];
        matmul_into(
            ak.as_slice(),
            ak.shape(),
            bk.as_slice(),
            bk.shape(),
            &mut out,
        )
        .unwrap();
        let doubled: Vec<f32> = out.iter().map(|v| v + v).collect();
        matmul_into(
            ak.as_slice(),
            ak.shape(),
            bk.as_slice(),
            bk.shape(),
            &mut out,
        )
        .unwrap();
        assert_eq!(out, doubled);

        let at = lcg_mat(6, 4, &mut seed); // lhsᵀ is 4×6
        let mut out = vec![0.0f32; 4 * 9];
        t_matmul_into(at.as_slice(), at.shape(), b.as_slice(), b.shape(), &mut out).unwrap();
        assert_eq!(out, at.t_matmul(&b).unwrap().into_vec());

        let bt = lcg_mat(9, 6, &mut seed); // rhsᵀ is 6×9
        let mut out = vec![7.0f32; 4 * 9]; // matmul_t_into overwrites
        matmul_t_into(a.as_slice(), a.shape(), bt.as_slice(), bt.shape(), &mut out).unwrap();
        assert_eq!(out, a.matmul_t(&bt).unwrap().into_vec());
    }

    #[test]
    fn into_variants_reject_bad_lengths() {
        let a = mat(2, 3, &[0.0; 6]);
        let b = mat(3, 2, &[0.0; 6]);
        let mut short = vec![0.0f32; 3];
        assert!(matmul_into(a.as_slice(), a.shape(), b.as_slice(), b.shape(), &mut short).is_err());
        assert!(matmul_into(&[0.0; 5], a.shape(), b.as_slice(), b.shape(), &mut short).is_err());
    }

    #[test]
    fn eye_is_identity_for_matmul() {
        let a = mat(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.matmul(&Tensor2::eye(2)).unwrap(), a);
        assert_eq!(Tensor2::eye(2).matmul(&a).unwrap(), a);
    }

    #[test]
    fn rows_and_mutation() {
        let mut a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0]);
        a.row_mut(0)[2] = 9.0;
        assert_eq!(a[(0, 2)], 9.0);
        a.scale(2.0);
        assert_eq!(a.sum(), 2.0 * (1.0 + 2.0 + 9.0 + 4.0 + 5.0 + 6.0));
    }
}
