//! Dense 2-D matrix.

use crate::{Shape2, ShapeError};
use serde::{Deserialize, Serialize};
use std::ops::{Index, IndexMut};

/// A dense, row-major `f32` matrix.
///
/// Used by fully-connected layers, the im2col convolution path, and the
/// softmax/loss computations.
///
/// ```
/// use snapea_tensor::{Shape2, Tensor2};
/// let a = Tensor2::from_fn(Shape2::new(2, 3), |r, c| (r * 3 + c) as f32);
/// let b = Tensor2::eye(3);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c, a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor2 {
    shape: Shape2,
    data: Vec<f32>,
}

impl Tensor2 {
    /// Creates a matrix filled with zeros.
    pub fn zeros(shape: Shape2) -> Self {
        Self {
            shape,
            data: vec![0.0; shape.len()],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn full(shape: Shape2, value: f32) -> Self {
        Self {
            shape,
            data: vec![value; shape.len()],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(Shape2::new(n, n));
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` at every coordinate.
    pub fn from_fn(shape: Shape2, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(shape.len());
        for r in 0..shape.rows {
            for c in 0..shape.cols {
                data.push(f(r, c));
            }
        }
        Self { shape, data }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `data.len() != shape.len()`.
    pub fn from_vec(shape: Shape2, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != shape.len() {
            return Err(ShapeError::new(format!(
                "expected {} elements for shape {shape}, got {}",
                shape.len(),
                data.len()
            )));
        }
        Ok(Self { shape, data })
    }

    /// The matrix shape.
    pub fn shape(&self) -> Shape2 {
        self.shape
    }

    /// Borrow the flat row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        let start = self.shape.offset(r, 0);
        &self.data[start..start + self.shape.cols]
    }

    /// Mutably borrow row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let start = self.shape.offset(r, 0);
        let cols = self.shape.cols;
        &mut self.data[start..start + cols]
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Tensor2) -> Result<Tensor2, ShapeError> {
        if self.shape.cols != rhs.shape.rows {
            return Err(ShapeError::new(format!(
                "matmul: {} × {}",
                self.shape, rhs.shape
            )));
        }
        let (m, k, n) = (self.shape.rows, self.shape.cols, rhs.shape.cols);
        let mut out = Tensor2::zeros(Shape2::new(m, n));
        // ikj loop order keeps the inner loop contiguous over both rhs and out.
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (p, &a) in a_row.iter().enumerate().take(k) {
                if a == 0.0 {
                    continue;
                }
                let b_row = rhs.row(p);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product `selfᵀ × rhs` without materialising the transpose.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `self.rows != rhs.rows`.
    pub fn t_matmul(&self, rhs: &Tensor2) -> Result<Tensor2, ShapeError> {
        if self.shape.rows != rhs.shape.rows {
            return Err(ShapeError::new(format!(
                "t_matmul: {}ᵀ × {}",
                self.shape, rhs.shape
            )));
        }
        let (m, k, n) = (self.shape.cols, self.shape.rows, rhs.shape.cols);
        let mut out = Tensor2::zeros(Shape2::new(m, n));
        for p in 0..k {
            let a_row = self.row(p);
            let b_row = rhs.row(p);
            for (i, &a) in a_row.iter().enumerate().take(m) {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product `self × rhsᵀ` without materialising the transpose.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `self.cols != rhs.cols`.
    pub fn matmul_t(&self, rhs: &Tensor2) -> Result<Tensor2, ShapeError> {
        if self.shape.cols != rhs.shape.cols {
            return Err(ShapeError::new(format!(
                "matmul_t: {} × {}ᵀ",
                self.shape, rhs.shape
            )));
        }
        let (m, n) = (self.shape.rows, rhs.shape.rows);
        let mut out = Tensor2::zeros(Shape2::new(m, n));
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate().take(n) {
                let b_row = rhs.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        Ok(out)
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Tensor2 {
        Tensor2::from_fn(Shape2::new(self.shape.cols, self.shape.rows), |r, c| {
            self[(c, r)]
        })
    }

    /// Adds `other` element-wise.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor2) -> Result<(), ShapeError> {
        if self.shape != other.shape {
            return Err(ShapeError::new(format!(
                "add: {} vs {}",
                self.shape, other.shape
            )));
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// Scales every element by `s`.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Iterate over all elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }
}

impl Index<(usize, usize)> for Tensor2 {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[self.shape.offset(r, c)]
    }
}

impl IndexMut<(usize, usize)> for Tensor2 {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[self.shape.offset(r, c)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, v: &[f32]) -> Tensor2 {
        Tensor2::from_vec(Shape2::new(rows, cols), v.to_vec()).unwrap()
    }

    #[test]
    fn matmul_small() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = mat(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, mat(2, 2, &[58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = mat(2, 3, &[0.0; 6]);
        let b = mat(2, 3, &[0.0; 6]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transposed_products_agree_with_explicit_transpose() {
        let a = mat(3, 2, &[1.0, -2.0, 0.5, 4.0, -1.0, 2.0]);
        let b = mat(3, 4, &(0..12).map(|i| i as f32 * 0.25 - 1.0).collect::<Vec<_>>());
        let fast = a.t_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert_eq!(fast, slow);

        let c = mat(5, 2, &(0..10).map(|i| (i as f32).sin()).collect::<Vec<_>>());
        let fast = a.matmul_t(&c).unwrap();
        let slow = a.matmul(&c.transpose()).unwrap();
        for (x, y) in fast.iter().zip(slow.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn eye_is_identity_for_matmul() {
        let a = mat(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.matmul(&Tensor2::eye(2)).unwrap(), a);
        assert_eq!(Tensor2::eye(2).matmul(&a).unwrap(), a);
    }

    #[test]
    fn rows_and_mutation() {
        let mut a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0]);
        a.row_mut(0)[2] = 9.0;
        assert_eq!(a[(0, 2)], 9.0);
        a.scale(2.0);
        assert_eq!(a.sum(), 2.0 * (1.0 + 2.0 + 9.0 + 4.0 + 5.0 + 6.0));
    }
}
