//! Property-based tests of the tensor primitives.

use proptest::prelude::*;
use snapea_tensor::im2col::{col2im, im2col, ConvGeom};
use snapea_tensor::{Shape2, Shape4, Tensor2, Tensor4};

fn mat(rows: usize, cols: usize) -> impl Strategy<Value = Tensor2> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Tensor2::from_vec(Shape2::new(rows, cols), v).expect("sized"))
}

proptest! {
    /// (A·B)·C == A·(B·C) within float tolerance.
    #[test]
    fn matmul_is_associative(a in mat(3, 4), b in mat(4, 5), c in mat(5, 2)) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        for (x, y) in left.iter().zip(right.iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Transpose is an involution and transposed products match.
    #[test]
    fn transpose_involution(a in mat(4, 6)) {
        prop_assert_eq!(a.transpose().transpose(), a.clone());
    }

    /// `t_matmul` and `matmul_t` agree with explicit transposes.
    #[test]
    fn fused_transpose_products(a in mat(5, 3), b in mat(5, 4), c in mat(6, 3)) {
        let fused = a.t_matmul(&b).unwrap();
        let explicit = a.transpose().matmul(&b).unwrap();
        for (x, y) in fused.iter().zip(explicit.iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
        let fused = a.matmul_t(&c).unwrap();
        let explicit = a.matmul(&c.transpose()).unwrap();
        for (x, y) in fused.iter().zip(explicit.iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// im2col/col2im satisfy the adjoint identity
    /// `<im2col(x), y> == <x, col2im(y)>` for every geometry.
    #[test]
    fn im2col_adjoint_identity(
        xv in prop::collection::vec(-1.0f32..1.0, 2 * 6 * 6),
        k in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
    ) {
        let shape = Shape4::new(1, 2, 6, 6);
        let geom = ConvGeom::square(k, stride, pad);
        prop_assume!(geom.out_h(6) > 0 && geom.out_w(6) > 0);
        let x = Tensor4::from_vec(shape, xv).expect("sized");
        let cols = im2col(&x, 0, geom);
        let y = Tensor2::from_fn(cols.shape(), |r, c| ((r * 13 + c * 7) % 5) as f32 - 2.0);
        let lhs: f32 = cols.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
        let mut back = Tensor4::zeros(shape);
        col2im(&y, &mut back, 0, geom);
        let rhs: f32 = x.iter().zip(back.iter()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    /// `negative_fraction` is exactly the count of negatives over the size.
    #[test]
    fn negative_fraction_definition(v in prop::collection::vec(-1.0f32..1.0, 24)) {
        let t = Tensor4::from_vec(Shape4::new(1, 2, 3, 4), v.clone()).expect("sized");
        let expect = v.iter().filter(|x| **x < 0.0).count() as f64 / 24.0;
        prop_assert_eq!(t.negative_fraction(), expect);
    }
}
