//! Worker-lane trace events from the pool: with a sink installed and the
//! detail opt-in on, every multi-threaded `run_tasks` invocation emits one
//! `par/worker` event per worker, from the worker's own thread (so the
//! Chrome export gets one track per lane), and the lanes together account
//! for every task exactly once.
//!
//! Single test function on purpose: the sink and the pool's thread count
//! are process-wide globals, and this binary owning exactly one test is
//! what makes setting them race-free.

use snapea_obs::Json;
use snapea_tensor::par;

#[test]
fn worker_lanes_are_emitted_under_detail_tracing() {
    par::set_threads(3);
    let mem = snapea_obs::MemorySink::new();
    snapea_obs::sink::install(Box::new(mem.clone()));
    snapea_obs::set_detail_enabled(true);
    let out = par::run_tasks((0..64usize).collect::<Vec<_>>(), |i, t| {
        assert_eq!(i, t);
        t * 2
    });
    snapea_obs::set_detail_enabled(false);
    snapea_obs::sink::clear();

    // Tracing must not perturb results or ordering.
    assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());

    let lanes: Vec<Json> = mem
        .events()
        .into_iter()
        .filter(|e| e.get("kind").and_then(Json::as_str) == Some("par/worker"))
        .collect();
    assert_eq!(lanes.len(), 3, "one lane event per worker");

    let mut workers: Vec<u64> = lanes
        .iter()
        .map(|e| e.get("worker").and_then(Json::as_u64).expect("worker id"))
        .collect();
    workers.sort_unstable();
    assert_eq!(workers, vec![0, 1, 2]);

    let tasks: u64 = lanes
        .iter()
        .map(|e| e.get("tasks").and_then(Json::as_u64).expect("task count"))
        .sum();
    assert_eq!(tasks, 64, "every task charged to exactly one lane");

    let mut tids: Vec<u64> = lanes
        .iter()
        .map(|e| e.get("tid").and_then(Json::as_u64).expect("envelope tid"))
        .collect();
    tids.sort_unstable();
    tids.dedup();
    assert_eq!(tids.len(), 3, "each lane emitted from its own thread");

    for e in &lanes {
        let start = e.get("start_ms").and_then(Json::as_f64).expect("start_ms");
        let ms = e.get("ms").and_then(Json::as_f64).expect("ms");
        assert!(start >= 0.0 && ms >= 0.0 && start.is_finite() && ms.is_finite());
    }
}
