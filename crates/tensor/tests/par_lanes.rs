//! Worker-lane trace events from the persistent pool: with a sink installed
//! and the detail opt-in on, a multi-threaded `run_tasks` invocation emits
//! one `par/worker` event per *participant that ran at least one task*,
//! from that participant's own thread (so the Chrome export gets one track
//! per lane), and the lanes together account for every task exactly once.
//!
//! Unlike the old scoped pool — which always had exactly `threads()` lanes
//! because it spawned them per call — the persistent pool's parked workers
//! race the caller for claims: a short batch may drain before a slow-waking
//! worker joins, so the lane count is 1..=threads(), not a constant. The
//! tasks-sum invariant is what matters and is pinned exactly.
//!
//! Single test function on purpose: the sink and the pool's thread count
//! are process-wide globals, and this binary owning exactly one test is
//! what makes setting them race-free.

use snapea_obs::Json;
use snapea_tensor::par;

#[test]
fn worker_lanes_are_emitted_under_detail_tracing() {
    // Exercise real workers even on a single-core runner.
    par::set_oversubscribe(true);
    par::set_threads(3);
    let mem = snapea_obs::MemorySink::new();
    snapea_obs::sink::install(Box::new(mem.clone()));
    snapea_obs::set_detail_enabled(true);
    let out = par::run_tasks((0..64usize).collect::<Vec<_>>(), |i, t| {
        assert_eq!(i, t);
        // Enough work per task that parked workers get a chance to wake and
        // join before the batch drains (the assertions below still hold if
        // they don't — lane count is only bounded, not pinned).
        std::thread::sleep(std::time::Duration::from_micros(200));
        t * 2
    });
    snapea_obs::set_detail_enabled(false);
    snapea_obs::sink::clear();

    // Tracing must not perturb results or ordering.
    assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());

    let lanes: Vec<Json> = mem
        .events()
        .into_iter()
        .filter(|e| e.get("kind").and_then(Json::as_str) == Some("par/worker"))
        .collect();
    assert!(
        (1..=3).contains(&lanes.len()),
        "participants that ran tasks emit one lane each, got {}",
        lanes.len()
    );

    // Lane ids are the persistent pool's worker ids (0 = the dispatching
    // caller), distinct per lane, and bounded by the 3-participant cap.
    let mut workers: Vec<u64> = lanes
        .iter()
        .map(|e| e.get("worker").and_then(Json::as_u64).expect("worker id"))
        .collect();
    workers.sort_unstable();
    let mut distinct = workers.clone();
    distinct.dedup();
    assert_eq!(distinct, workers, "worker ids are distinct per lane");
    assert!(
        workers.iter().all(|&w| w <= 2),
        "ids within cap: {workers:?}"
    );

    let tasks: u64 = lanes
        .iter()
        .map(|e| e.get("tasks").and_then(Json::as_u64).expect("task count"))
        .sum();
    assert_eq!(tasks, 64, "every task charged to exactly one lane");

    let mut tids: Vec<u64> = lanes
        .iter()
        .map(|e| e.get("tid").and_then(Json::as_u64).expect("envelope tid"))
        .collect();
    tids.sort_unstable();
    tids.dedup();
    assert_eq!(
        tids.len(),
        lanes.len(),
        "each lane emitted from its own thread"
    );

    for e in &lanes {
        let start = e.get("start_ms").and_then(Json::as_f64).expect("start_ms");
        let ms = e.get("ms").and_then(Json::as_f64).expect("ms");
        assert!(start >= 0.0 && ms >= 0.0 && start.is_finite() && ms.is_finite());
    }
}
