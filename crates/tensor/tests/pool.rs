//! Behavioral contract of the persistent worker pool that the in-crate unit
//! tests cannot cover (they run at whatever `SNAPEA_THREADS` the harness
//! set): panic containment, reconfiguration after the pool has started,
//! nested flattening observed from inside pool tasks, and concurrent
//! dispatch from independent caller threads.
//!
//! `set_threads` is process-global, so every test takes the same mutex and
//! restores the previous count before releasing it.

use snapea_tensor::par;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Serialises tests that reconfigure the global thread count. Poisoning is
/// recovered on purpose: the panic-propagation test unwinds while holding
/// the guard, and later tests must still run.
fn thread_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs `f` with the pool at `n` threads, restoring the previous count even
/// if `f` panics. Oversubscription is enabled so these tests exercise real
/// worker concurrency even on a single-core runner (the pool otherwise
/// clamps participants to the machine's cores).
fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _g = thread_lock();
    par::set_oversubscribe(true);
    let prev = par::threads();
    par::set_threads(n);
    let restore = Restore(prev);
    let out = f();
    drop(restore);
    out
}

struct Restore(usize);
impl Drop for Restore {
    fn drop(&mut self) {
        par::set_threads(self.0);
    }
}

#[test]
fn panic_in_task_propagates_and_workers_survive() {
    with_threads(4, || {
        // A panicking task must not take the process down with it, must not
        // lose the other tasks (the batch drains fully before the caller
        // unwinds), and must surface its payload on the caller.
        let survivors = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par::run_tasks((0..32usize).collect::<Vec<_>>(), |_, t| {
                if t == 7 {
                    panic!("task 7 exploded");
                }
                survivors.fetch_add(1, Ordering::Relaxed);
                t
            })
        }));
        let payload = caught.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert_eq!(msg, "task 7 exploded");
        assert_eq!(
            survivors.load(Ordering::Relaxed),
            31,
            "the batch drains fully; only the panicking task is lost"
        );

        // The persistent workers must have survived: the very next dispatch
        // (same process, same pool) runs to completion with correct,
        // in-order results. Twice, to catch a worker dying on the second
        // wakeup rather than the first.
        for round in 0..2u64 {
            let out = par::run_tasks((0..64u64).collect::<Vec<_>>(), |i, t| {
                assert_eq!(i as u64, t);
                t * 3 + round
            });
            assert_eq!(out, (0..64).map(|t| t * 3 + round).collect::<Vec<_>>());
        }
    });
}

#[test]
fn set_threads_after_pool_start_is_safe_and_exact() {
    // Documented contract: the pool grows lazily and never shrinks; raising
    // the count spawns more workers on the next dispatch, lowering it caps
    // how many may join, and 1 restores the exact inline serial path. All
    // four transitions produce identical results.
    let _g = thread_lock();
    par::set_oversubscribe(true);
    let prev = par::threads();
    let restore = Restore(prev);

    let reference: Vec<u64> = (0..200).map(|i| i as u64 * 7 + 1).collect();
    let job = || par::run_tasks((0..200usize).collect::<Vec<_>>(), |_, t| t as u64 * 7 + 1);

    par::set_threads(2);
    assert_eq!(job(), reference, "grow 1→2 after process start");
    par::set_threads(8);
    assert_eq!(job(), reference, "grow 2→8 with the pool already running");
    par::set_threads(3);
    assert_eq!(job(), reference, "shrink 8→3: surplus workers stay parked");

    // set_threads(1) must be the pure inline path: every task runs on the
    // calling thread, even though 8 workers are parked in the pool.
    par::set_threads(1);
    let caller = std::thread::current().id();
    let out = par::run_tasks(vec![(); 16], |i, ()| {
        assert_eq!(std::thread::current().id(), caller, "inline at 1 thread");
        i
    });
    assert_eq!(out, (0..16).collect::<Vec<_>>());

    drop(restore);
}

#[test]
fn nested_call_from_inside_a_worker_runs_inline() {
    with_threads(4, || {
        // Each outer task records its own thread and asserts every inner
        // task ran on that same thread: whether the outer task landed on a
        // persistent worker or on the participating caller, the nested
        // dispatch must flatten to the inline serial loop.
        let out = par::run_tasks(vec![(); 16], |i, ()| {
            let outer = std::thread::current().id();
            let inner: Vec<usize> = par::run_tasks((0..8usize).collect::<Vec<_>>(), move |j, t| {
                assert_eq!(j, t);
                assert_eq!(
                    std::thread::current().id(),
                    outer,
                    "nested task escaped its worker"
                );
                i * 100 + j
            });
            assert_eq!(inner, (0..8).map(|j| i * 100 + j).collect::<Vec<_>>());
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    });
}

#[test]
fn concurrent_dispatches_from_independent_threads() {
    with_threads(4, || {
        // Several caller threads dispatching at once share the same
        // persistent pool; each batch must get its own results, in order,
        // with no cross-talk through the shared queue.
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4u64)
                .map(|c| {
                    s.spawn(move || {
                        for _ in 0..8 {
                            let out =
                                par::run_tasks((0..50u64).collect::<Vec<_>>(), move |_, t| {
                                    t * 1000 + c
                                });
                            let want: Vec<u64> = (0..50).map(|t| t * 1000 + c).collect();
                            assert_eq!(out, want);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("caller thread panicked");
            }
        });
    });
}
