//! The virtual-PE Chrome trace is a pure function of the simulated workload:
//! running the `petrace` experiment under different worker-pool sizes must
//! produce byte-identical `--pe-trace` output. Wall-clock timestamps and
//! thread ids differ between runs, but none of them reach the virtual
//! timebase (pid 2), which is sorted by `(start_cycle, pe, phase)`.

use std::path::{Path, PathBuf};
use std::process::Command;

/// Runs `repro petrace` in a fresh directory with the given thread count and
/// returns the virtual-PE trace rendered from its event log.
fn pe_trace_with_threads(threads: &str) -> String {
    let dir =
        std::env::temp_dir().join(format!("snapea-petrace-t{threads}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let status = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("petrace")
        .current_dir(&dir)
        .env("SNAPEA_LOG", "off")
        .env("SNAPEA_THREADS", threads)
        .status()
        .expect("spawn repro");
    assert!(
        status.success(),
        "repro petrace failed under SNAPEA_THREADS={threads}"
    );
    let events = find_events(&dir.join("repro-results")).expect("run wrote events.jsonl");
    let log = std::fs::read_to_string(&events).expect("read event log");
    let trace = snapea_obs::chrome_trace(&log, snapea_obs::Selection::VirtualPe)
        .expect("render virtual-PE trace");
    let _ = std::fs::remove_dir_all(&dir);
    trace
}

fn find_events(results: &Path) -> Option<PathBuf> {
    for entry in std::fs::read_dir(results).ok()? {
        let path = entry.ok()?.path().join("events.jsonl");
        if path.is_file() {
            return Some(path);
        }
    }
    None
}

#[test]
fn virtual_pe_trace_is_bit_identical_across_thread_counts() {
    let serial = pe_trace_with_threads("1");
    let parallel = pe_trace_with_threads("4");
    assert!(
        snapea_obs::validate_chrome_trace(&serial).expect("schema-valid") > 0,
        "trace carries PE events"
    );
    assert_eq!(
        serial, parallel,
        "virtual-PE timeline must not depend on the worker-pool size"
    );
}
