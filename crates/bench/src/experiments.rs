//! Regeneration of every table and figure in the paper's evaluation.
//!
//! Each `fig*`/`table*` function reproduces the corresponding artefact of
//! the paper on the mini workloads (see DESIGN.md §3 for the index and
//! EXPERIMENTS.md for recorded paper-vs-measured values). Shapes — who wins,
//! by roughly what factor, where trends bend — are the reproduction target;
//! absolute ImageNet numbers are not (the substrate is synthetic).

use crate::context::{Datasets, TrainedWorkload};
use crate::table::{geomean, pct, ratio, Table};
use serde_json::json;
use snapea::params::NetworkParams;
use snapea::spec_net::{profile_network, NetworkProfile};
use snapea_accel::area::area_of;
use snapea_accel::sim::{simulate, SimReport};
use snapea_accel::workload::network_workload;
use snapea_accel::{AccelConfig, EnergyModel};
use snapea_nn::data::{LabeledImage, SynthShapes};
use snapea_nn::stats;
use snapea_nn::zoo::Workload;
use snapea_tensor::Tensor4;

/// Images used when profiling op counts for the simulator.
pub const SIM_IMAGES: usize = 16;

/// One regenerated experiment: identifier, title, rendered text, and
/// machine-readable payload.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Short id (`fig8`, `table4`, …).
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Rendered output.
    pub text: String,
    /// JSON payload for EXPERIMENTS.md tooling.
    pub json: serde_json::Value,
}

fn sim_batch(data: &Datasets) -> Tensor4 {
    let refs: Vec<&LabeledImage> = data.eval.iter().take(SIM_IMAGES).collect();
    SynthShapes::batch_refs(&refs)
}

/// Simulates a network's profile on both machines, returning
/// `(snapea_report, eyeriss_report)`.
pub fn simulate_pair(
    trained: &TrainedWorkload,
    batch: &Tensor4,
    profile: &NetworkProfile,
    snapea_cfg: &AccelConfig,
) -> (SimReport, SimReport) {
    let model = EnergyModel::default();
    let wl = network_workload(trained.workload.name(), &trained.net, batch, profile);
    let sn = simulate(snapea_cfg, &model, &wl);
    let ey = simulate(&AccelConfig::eyeriss(), &model, &wl.to_dense());
    (sn, ey)
}

/// Figure 1: fraction of activation-layer inputs that are negative.
pub fn fig1(trained: &[TrainedWorkload], data: &Datasets) -> ExperimentResult {
    let batch = sim_batch(data);
    let mut t = Table::new(vec!["Network", "Negative inputs", "Paper"]);
    let mut vals = Vec::new();
    let paper = [
        (Workload::AlexNet, "~55%"),
        (Workload::GoogLeNet, "~60%"),
        (Workload::SqueezeNet, "~50%"),
        (Workload::VggNet, "~58%"),
    ];
    for tw in trained {
        let s = stats::negative_fraction(&tw.net, &batch);
        let paper_s = paper
            .iter()
            .find(|(w, _)| *w == tw.workload)
            .map(|(_, p)| *p)
            .unwrap_or("-");
        t.row(vec![
            tw.workload.name().to_string(),
            pct(s.overall),
            paper_s.to_string(),
        ]);
        vals.push(json!({"network": tw.workload.name(), "negative_fraction": s.overall}));
    }
    let avg: f64 = vals
        .iter()
        // lint:allow(P1) every vals entry was built with a numeric negative_fraction field above
        .map(|v| v["negative_fraction"].as_f64().expect("set above"))
        .sum::<f64>()
        / vals.len().max(1) as f64;
    t.row(vec!["Average".to_string(), pct(avg), "42-68%".to_string()]);
    ExperimentResult {
        id: "fig1",
        title: "Figure 1: fraction of negative activation-layer inputs".into(),
        text: t.render(),
        json: json!({"networks": vals, "average": avg}),
    }
}

/// Figure 2: spatial variation of zero activations across input images
/// (GoogLeNet's intermediate feature maps).
pub fn fig2(trained: &[TrainedWorkload], data: &Datasets) -> ExperimentResult {
    let tw = trained
        .iter()
        .find(|t| t.workload == Workload::GoogLeNet)
        // lint:allow(P1) the experiment driver always trains the full workload set, GoogLeNet included
        .expect("GoogLeNet trained");
    let refs: Vec<&LabeledImage> = data.eval.iter().take(2).collect();
    let batch = SynthShapes::batch_refs(&refs);
    let conv_ids = tw.net.conv_ids();
    let mut t = Table::new(vec![
        "Layer",
        "Zeros (img A)",
        "Zeros (img B)",
        "Jaccard overlap",
    ]);
    let mut rows = Vec::new();
    // A handful of intermediate layers across the depth of the network.
    for &idx in &[
        3usize,
        conv_ids.len() / 3,
        2 * conv_ids.len() / 3,
        conv_ids.len() - 2,
    ] {
        let id = conv_ids[idx.min(conv_ids.len() - 1)];
        let a = stats::zero_map(&tw.net, &batch, id, 0);
        let b = stats::zero_map(&tw.net, &batch, id, 1);
        let j = a.jaccard(&b);
        t.row(vec![
            tw.net.node(id).name.clone(),
            pct(a.zero_fraction()),
            pct(b.zero_fraction()),
            format!("{j:.3}"),
        ]);
        rows.push(json!({
            "layer": tw.net.node(id).name,
            "zero_fraction_a": a.zero_fraction(),
            "zero_fraction_b": b.zero_fraction(),
            "jaccard": j,
        }));
    }
    let note = "Jaccard < 1 at every depth: zero locations are input-dependent,\n\
                so a static pruning scheme cannot capture them (the paper's Figure 2 insight).";
    ExperimentResult {
        id: "fig2",
        title: "Figure 2: spatial variation of zero activations across inputs".into(),
        text: format!("{}\n{note}\n", t.render()),
        json: json!({"layers": rows}),
    }
}

/// Table I: workloads.
pub fn table1(trained: &[TrainedWorkload]) -> ExperimentResult {
    let mut t = Table::new(vec![
        "Network",
        "Year",
        "Mini size (KB)",
        "Paper size (MB)",
        "Conv",
        "FC",
        "Mini accuracy",
        "Paper accuracy",
    ]);
    let mut rows = Vec::new();
    for tw in trained {
        let w = tw.workload;
        let (conv, fc) = w.paper_layer_counts();
        assert_eq!(tw.net.conv_ids().len(), conv, "layer-count fidelity");
        assert_eq!(tw.net.linear_ids().len(), fc, "fc-count fidelity");
        t.row(vec![
            w.name().to_string(),
            w.year().to_string(),
            format!("{:.1}", tw.net.model_size_bytes() as f64 / 1024.0),
            format!("{:.0}", w.paper_model_size_mb()),
            conv.to_string(),
            fc.to_string(),
            pct(tw.eval_accuracy),
            pct(w.paper_accuracy()),
        ]);
        rows.push(json!({
            "network": w.name(),
            "model_size_bytes": tw.net.model_size_bytes(),
            "conv_layers": conv,
            "fc_layers": fc,
            "eval_accuracy": tw.eval_accuracy,
        }));
    }
    ExperimentResult {
        id: "table1",
        title: "Table I: workloads".into(),
        text: t.render(),
        json: json!({"workloads": rows}),
    }
}

/// Table II: design parameters and area.
pub fn table2() -> ExperimentResult {
    let mut t = Table::new(vec!["Design", "Component", "Size", "Area (mm^2)"]);
    let mut rows = Vec::new();
    for (name, cfg) in [
        ("SnaPEA", AccelConfig::snapea()),
        ("EYERISS", AccelConfig::eyeriss()),
    ] {
        let a = area_of(&cfg);
        for item in &a.items {
            t.row(vec![
                name.to_string(),
                item.name.clone(),
                item.size.clone(),
                format!("{:.2}", item.area_mm2),
            ]);
        }
        t.row(vec![
            name.to_string(),
            "TOTAL".to_string(),
            format!(
                "{} PEs x {} lanes @ {} MHz",
                cfg.pe_count(),
                cfg.lanes_per_pe,
                cfg.frequency_mhz
            ),
            format!("{:.1}", a.total_mm2),
        ]);
        rows.push(json!({"design": name, "total_mm2": a.total_mm2}));
    }
    ExperimentResult {
        id: "table2",
        title: "Table II: design parameters and area (paper: 18.6 vs 17.8 mm^2)".into(),
        text: t.render(),
        json: json!({"designs": rows}),
    }
}

/// Table III: energy costs.
pub fn table3() -> ExperimentResult {
    let m = EnergyModel::default();
    let mut t = Table::new(vec!["Operation", "Energy (pJ/bit)", "Relative cost"]);
    let per_bit = [
        m.register_pj_bit,
        m.pe_pj_bit,
        m.inter_pe_pj_bit,
        m.buffer_pj_bit,
        m.dram_pj_bit,
    ];
    let mut rows = Vec::new();
    for ((name, rel), pj) in m.relative_costs().iter().zip(per_bit) {
        t.row(vec![
            name.to_string(),
            format!("{pj:.2}"),
            format!("{rel:.1}"),
        ]);
        rows.push(json!({"operation": name, "pj_per_bit": pj, "relative": rel}));
    }
    ExperimentResult {
        id: "table3",
        title: "Table III: energy model".into(),
        text: t.render(),
        json: json!({"rows": rows}),
    }
}

/// `petrace`: cycle-accurate virtual PE timelines for a small deterministic
/// synthetic workload. The layer traces drive `sim/pe/phase` events through
/// the obs sinks (fill/compute/stall per PE on a shared virtual clock), so a
/// repro run's `events.jsonl` can be rendered with `snapea-tool trace
/// <events.jsonl> --pe-trace pe.json` and loaded in Perfetto. The workload
/// is synthetic and untrained — the artefact is the timeline itself, and the
/// experiment runs in milliseconds.
pub fn petrace() -> ExperimentResult {
    use snapea::exec::LayerProfile;
    use snapea_accel::trace::{emit_pe_timeline, trace_network};
    use snapea_accel::workload::{LayerWorkload, NetworkWorkload};

    // Deterministic per-window op counts with enough variance to exercise
    // early termination, stragglers, and the end-of-layer barrier.
    let mk = |name: &str, kernels: usize, windows: usize, wl: usize, stride: usize| {
        let ops: Vec<u32> = (0..2 * kernels * windows)
            .map(|i| ((i * stride) % wl) as u32 + 1)
            .collect();
        LayerWorkload::new(
            name,
            LayerProfile::from_ops(2, kernels, windows, wl, ops),
            (windows * 4) as u64,
        )
    };
    let net = NetworkWorkload {
        name: "petrace".into(),
        layers: vec![
            mk("conv1", 8, 64, 27, 13),
            mk("conv2", 16, 32, 36, 7),
            mk("conv3", 16, 16, 18, 5),
        ],
    };
    let cfg = AccelConfig::snapea();
    let traces = trace_network(&cfg, &net);
    for tr in &traces {
        tr.emit_events();
    }
    let total_cycles = emit_pe_timeline(&traces);

    let mut t = Table::new(vec!["Layer", "Cycles", "Units", "PEs", "Imbalance"]);
    let mut rows = Vec::new();
    for tr in &traces {
        let active = tr.per_pe.iter().filter(|p| p.units > 0).count();
        t.row(vec![
            tr.name.clone(),
            tr.cycles.to_string(),
            tr.units.len().to_string(),
            active.to_string(),
            pct(tr.imbalance()),
        ]);
        rows.push(json!({
            "layer": tr.name,
            "cycles": tr.cycles,
            "units": tr.units.len(),
            "active_pes": active,
            "imbalance": tr.imbalance(),
        }));
    }
    let mut text = t.render();
    text.push_str(&format!(
        "total: {total_cycles} cycles across {} layers; render the PE timeline with\n\
         `snapea-tool trace repro-results/<run>/events.jsonl --pe-trace pe-trace.json`\n",
        traces.len()
    ));
    ExperimentResult {
        id: "petrace",
        title: "PE timeline: cycle-accurate fill/compute/stall trace".into(),
        text,
        json: json!({"total_cycles": total_cycles, "layers": rows}),
    }
}

/// Shared engine for Figures 8 and 9: per-network speedup & energy reduction
/// of SnaPEA over the baseline under the given parameter source.
fn overall_benefit(
    id: &'static str,
    title: String,
    trained: &[TrainedWorkload],
    data: &Datasets,
    params_for: impl Fn(&TrainedWorkload) -> NetworkParams,
    paper: &[(Workload, f64, f64)],
) -> ExperimentResult {
    let batch = sim_batch(data);
    let mut t = Table::new(vec![
        "Network",
        "Speedup",
        "Paper speedup",
        "Energy reduction",
        "Paper energy",
        "Eval acc. drop",
    ]);
    let mut speedups = Vec::new();
    let mut energies = Vec::new();
    let mut rows = Vec::new();
    for tw in trained {
        let params = params_for(tw);
        let profile = profile_network(&tw.net, &params, &batch, false);
        if snapea_obs::enabled() {
            // Record which speculation mode each layer runs under for this
            // experiment — the per-layer decision trail of the run log.
            for (layer_id, name, p) in &profile.layers {
                snapea_obs::event!(
                    "optimizer/decision",
                    experiment = id,
                    workload = tw.workload.name(),
                    layer = name.clone(),
                    predictive = params
                        .get(*layer_id)
                        .map(|lp| lp.is_predictive())
                        .unwrap_or(false),
                    ops = p.total_ops(),
                    full_macs = p.full_macs(),
                );
            }
        }
        let (sn, ey) = simulate_pair(tw, &batch, &profile, &AccelConfig::snapea());
        let sp = sn.speedup_over(&ey);
        let er = sn.energy_reduction_over(&ey);
        // Held-out accuracy drop under the chosen parameters, measured
        // against the dense network on the same subset.
        let eval_subset = &data.eval[..data.eval.len().min(100)];
        let dense = NetworkParams::new();
        let base_acc = snapea::spec_net::SpecNet::new(&tw.net, &dense).accuracy(eval_subset);
        let spec = snapea::spec_net::SpecNet::new(&tw.net, &params);
        let spec_acc = spec.accuracy(eval_subset);
        let acc_drop = base_acc - spec_acc;
        let (psp, per) = paper
            .iter()
            .find(|(w, _, _)| *w == tw.workload)
            .map(|(_, s, e)| (*s, *e))
            .unwrap_or((f64::NAN, f64::NAN));
        t.row(vec![
            tw.workload.name().to_string(),
            ratio(sp),
            ratio(psp),
            ratio(er),
            ratio(per),
            format!("{:.1} pp", acc_drop * 100.0),
        ]);
        speedups.push(sp);
        energies.push(er);
        rows.push(json!({
            "network": tw.workload.name(),
            "speedup": sp,
            "energy_reduction": er,
            "snapea_cycles": sn.cycles,
            "eyeriss_cycles": ey.cycles,
            "snapea_pj": sn.total_pj(),
            "eyeriss_pj": ey.total_pj(),
            "eval_accuracy_drop": acc_drop,
        }));
    }
    let gs = geomean(&speedups);
    let ge = geomean(&energies);
    let paper_gs = geomean(&paper.iter().map(|(_, s, _)| *s).collect::<Vec<_>>());
    let paper_ge = geomean(&paper.iter().map(|(_, _, e)| *e).collect::<Vec<_>>());
    t.row(vec![
        "Geomean".to_string(),
        ratio(gs),
        ratio(paper_gs),
        ratio(ge),
        ratio(paper_ge),
        String::new(),
    ]);
    ExperimentResult {
        id,
        title,
        text: t.render(),
        json: json!({"networks": rows, "geomean_speedup": gs, "geomean_energy": ge}),
    }
}

/// Figure 8: exact-mode speedup and energy reduction over the baseline.
pub fn fig8(trained: &[TrainedWorkload], data: &Datasets) -> ExperimentResult {
    // Paper's per-network readings (Figure 8 bars, approximate).
    let paper = [
        (Workload::AlexNet, 1.26, 1.15),
        (Workload::GoogLeNet, 1.35, 1.18),
        (Workload::SqueezeNet, 1.30, 1.14),
        (Workload::VggNet, 1.26, 1.15),
    ];
    overall_benefit(
        "fig8",
        "Figure 8: exact mode vs EYERISS (paper avg 1.28x speedup, 1.16x energy)".into(),
        trained,
        data,
        |_| NetworkParams::new(),
        &paper,
    )
}

/// Figure 9: predictive-mode speedup and energy reduction at ≤3% accuracy
/// loss.
pub fn fig9(
    trained: &[TrainedWorkload],
    data: &Datasets,
    params3: &dyn Fn(&TrainedWorkload) -> NetworkParams,
) -> ExperimentResult {
    let paper = [
        (Workload::AlexNet, 1.85, 1.55),
        (Workload::GoogLeNet, 2.08, 1.63),
        (Workload::SqueezeNet, 1.80, 1.42),
        (Workload::VggNet, 1.90, 1.53),
    ];
    overall_benefit(
        "fig9",
        "Figure 9: predictive mode @ <=3% accuracy loss vs EYERISS (paper avg ~1.9x)".into(),
        trained,
        data,
        |tw| params3(tw),
        &paper,
    )
}

/// Figure 10: per-conv-layer speedup distribution in predictive mode.
pub fn fig10(
    trained: &[TrainedWorkload],
    data: &Datasets,
    params3: &dyn Fn(&TrainedWorkload) -> NetworkParams,
) -> ExperimentResult {
    let batch = sim_batch(data);
    let mut t = Table::new(vec![
        "Network",
        "Min layer",
        "Min",
        "Max layer",
        "Max",
        "Median",
    ]);
    let mut rows = Vec::new();
    for tw in trained {
        let params = params3(tw);
        let profile = profile_network(&tw.net, &params, &batch, false);
        let (sn, ey) = simulate_pair(tw, &batch, &profile, &AccelConfig::snapea());
        let mut per_layer: Vec<(String, f64)> = sn
            .per_layer
            .iter()
            .zip(&ey.per_layer)
            .map(|(s, e)| (s.name.clone(), e.cycles as f64 / s.cycles.max(1) as f64))
            .collect();
        per_layer.sort_by(|a, b| a.1.total_cmp(&b.1));
        // lint:allow(P1) every network has at least one simulated layer
        let (min_name, min_v) = per_layer.first().expect("layers exist").clone();
        // lint:allow(P1) every network has at least one simulated layer
        let (max_name, max_v) = per_layer.last().expect("layers exist").clone();
        let med = per_layer[per_layer.len() / 2].1;
        t.row(vec![
            tw.workload.name().to_string(),
            min_name.clone(),
            ratio(min_v),
            max_name.clone(),
            ratio(max_v),
            ratio(med),
        ]);
        rows.push(json!({
            "network": tw.workload.name(),
            "layers": per_layer.iter().map(|(n, v)| json!({"layer": n, "speedup": v})).collect::<Vec<_>>(),
        }));
    }
    let note =
        "Paper: max 3.59x (GoogLeNet inception_4e/1x1), min 1.17x (inception_4e/5x5_reduce).";
    ExperimentResult {
        id: "fig10",
        title: "Figure 10: per-layer speedup range in predictive mode".into(),
        text: format!("{}\n{note}\n", Table::render(&t)),
        json: json!({"networks": rows}),
    }
}

/// Table IV: fraction of conv layers in predictive mode and their average
/// speedup/energy reduction.
pub fn table4(
    trained: &[TrainedWorkload],
    data: &Datasets,
    params3: &dyn Fn(&TrainedWorkload) -> NetworkParams,
) -> ExperimentResult {
    let batch = sim_batch(data);
    let mut t = Table::new(vec![
        "Network",
        "% predictive layers",
        "Paper %",
        "Avg speedup",
        "Paper",
        "Avg energy red.",
        "Paper",
    ]);
    let paper = [
        (Workload::AlexNet, 60.0, 2.11, 1.97),
        (Workload::GoogLeNet, 84.21, 2.17, 2.04),
        (Workload::SqueezeNet, 65.38, 1.94, 1.84),
        (Workload::VggNet, 61.50, 1.87, 1.73),
    ];
    let mut rows = Vec::new();
    let mut fracs = Vec::new();
    for tw in trained {
        let params = params3(tw);
        let profile = profile_network(&tw.net, &params, &batch, false);
        let (sn, ey) = simulate_pair(tw, &batch, &profile, &AccelConfig::snapea());
        let conv_ids = tw.net.conv_ids();
        let predictive: Vec<usize> = conv_ids
            .iter()
            .enumerate()
            .filter(|(_, id)| params.get(**id).map(|p| p.is_predictive()).unwrap_or(false))
            .map(|(i, _)| i)
            .collect();
        let frac = predictive.len() as f64 / conv_ids.len() as f64;
        fracs.push(frac);
        let (speedups, energies): (Vec<f64>, Vec<f64>) = predictive
            .iter()
            .map(|&i| {
                let s = &sn.per_layer[i];
                let e = &ey.per_layer[i];
                (
                    e.cycles as f64 / s.cycles.max(1) as f64,
                    e.energy.total_pj() / s.energy.total_pj().max(f64::MIN_POSITIVE),
                )
            })
            .unzip();
        let avg_sp = if speedups.is_empty() {
            1.0
        } else {
            geomean(&speedups)
        };
        let avg_en = if energies.is_empty() {
            1.0
        } else {
            geomean(&energies)
        };
        let (pf, ps, pe) = paper
            .iter()
            .find(|(w, _, _, _)| *w == tw.workload)
            .map(|(_, f, s, e)| (*f, *s, *e))
            .unwrap_or((f64::NAN, f64::NAN, f64::NAN));
        t.row(vec![
            tw.workload.name().to_string(),
            pct(frac),
            format!("{pf:.1}%"),
            ratio(avg_sp),
            ratio(ps),
            ratio(avg_en),
            ratio(pe),
        ]);
        rows.push(json!({
            "network": tw.workload.name(),
            "predictive_fraction": frac,
            "avg_layer_speedup": avg_sp,
            "avg_layer_energy_reduction": avg_en,
        }));
    }
    let avg_frac = fracs.iter().sum::<f64>() / fracs.len().max(1) as f64;
    ExperimentResult {
        id: "table4",
        title: format!(
            "Table IV: predictive-mode layers @ <=3% loss (avg {} vs paper 67.8%)",
            pct(avg_frac)
        ),
        text: t.render(),
        json: json!({"networks": rows, "average_fraction": avg_frac}),
    }
}

/// Table V: true/false negative rates of the predictive mechanism.
pub fn table5(
    trained: &[TrainedWorkload],
    data: &Datasets,
    params3: &dyn Fn(&TrainedWorkload) -> NetworkParams,
) -> ExperimentResult {
    let batch = sim_batch(data);
    let mut t = Table::new(vec![
        "Network",
        "True negative rate",
        "Paper TN",
        "False negative rate",
        "Paper FN",
        "Squashed positive mass",
    ]);
    let paper = [
        (Workload::AlexNet, 61.84, 21.39),
        (Workload::GoogLeNet, 66.36, 28.37),
        (Workload::SqueezeNet, 49.32, 16.69),
        (Workload::VggNet, 47.54, 15.21),
    ];
    let mut rows = Vec::new();
    for tw in trained {
        let params = params3(tw);
        let profile = profile_network(&tw.net, &params, &batch, true);
        let s = profile.stats;
        let (ptn, pfn) = paper
            .iter()
            .find(|(w, _, _)| *w == tw.workload)
            .map(|(_, t, f)| (*t, *f))
            .unwrap_or((f64::NAN, f64::NAN));
        t.row(vec![
            tw.workload.name().to_string(),
            pct(s.true_negative_rate()),
            format!("{ptn:.1}%"),
            pct(s.false_negative_rate()),
            format!("{pfn:.1}%"),
            pct(s.squashed_mass_fraction()),
        ]);
        rows.push(json!({
            "network": tw.workload.name(),
            "true_negative_rate": s.true_negative_rate(),
            "false_negative_rate": s.false_negative_rate(),
            "squashed_mass_fraction": s.squashed_mass_fraction(),
        }));
    }
    ExperimentResult {
        id: "table5",
        title: "Table V: prediction accuracy in predictive mode (paper avg TN 56.3%, FN 20.4%)"
            .into(),
        text: t.render(),
        json: json!({"networks": rows}),
    }
}

/// Figure 11: speedup as the accuracy-loss knob sweeps 0–3%.
pub fn fig11(
    trained: &[TrainedWorkload],
    data: &Datasets,
    params_at: &dyn Fn(&TrainedWorkload, f64) -> NetworkParams,
) -> ExperimentResult {
    let batch = sim_batch(data);
    let epsilons = [0.0, 0.01, 0.02, 0.03];
    let mut header = vec!["Network".to_string()];
    header.extend(epsilons.iter().map(|e| format!("loss<={}", pct(*e))));
    let mut t = Table::new(header);
    let mut rows = Vec::new();
    let mut per_eps: Vec<Vec<f64>> = vec![Vec::new(); epsilons.len()];
    for tw in trained {
        let mut cells = vec![tw.workload.name().to_string()];
        let mut series = Vec::new();
        // The feasible sets nest: any parameters acceptable at budget ε are
        // acceptable at every ε' ≥ ε, so the knob's true value at ε is the
        // best solution found at any budget up to ε (running maximum). This
        // smooths the greedy optimizer's run-to-run noise.
        let mut best = 0.0f64;
        for (i, &eps) in epsilons.iter().enumerate() {
            let params = if eps == 0.0 {
                NetworkParams::new() // pure exact mode
            } else {
                params_at(tw, eps)
            };
            let profile = profile_network(&tw.net, &params, &batch, false);
            let (sn, ey) = simulate_pair(tw, &batch, &profile, &AccelConfig::snapea());
            best = best.max(sn.speedup_over(&ey));
            cells.push(ratio(best));
            per_eps[i].push(best);
            series.push(json!({"epsilon": eps, "speedup": best}));
        }
        t.row(cells);
        rows.push(json!({"network": tw.workload.name(), "series": series}));
    }
    let mut geo = vec!["Geomean".to_string()];
    for col in &per_eps {
        geo.push(ratio(geomean(col)));
    }
    t.row(geo);
    let note = "Paper geomeans: 1.28x / 1.38x / 1.63x / 1.90x at 0/1/2/3% loss.";
    ExperimentResult {
        id: "fig11",
        title: "Figure 11: speedup vs accuracy-loss knob".into(),
        text: format!("{}\n{note}\n", t.render()),
        json: json!({"networks": rows}),
    }
}

/// Figure 12: sensitivity to the number of compute lanes per PE.
pub fn fig12(
    trained: &[TrainedWorkload],
    data: &Datasets,
    params3: &dyn Fn(&TrainedWorkload) -> NetworkParams,
) -> ExperimentResult {
    let batch = sim_batch(data);
    let scales: [(usize, usize, &str); 4] = [
        (1, 2, "0.5x"),
        (1, 1, "default"),
        (2, 1, "2x"),
        (4, 1, "4x"),
    ];
    let mut header = vec!["Network".to_string()];
    header.extend(scales.iter().map(|(_, _, n)| format!("lanes {n}")));
    let mut t = Table::new(header);
    let mut rows = Vec::new();
    let mut per_scale: Vec<Vec<f64>> = vec![Vec::new(); scales.len()];
    for tw in trained {
        let params = params3(tw);
        let profile = profile_network(&tw.net, &params, &batch, false);
        let model = EnergyModel::default();
        let wl = network_workload(tw.workload.name(), &tw.net, &batch, &profile);
        let ey = simulate(&AccelConfig::eyeriss(), &model, &wl.to_dense());
        let mut cells = vec![tw.workload.name().to_string()];
        let mut series = Vec::new();
        for (i, (num, den, _label)) in scales.iter().enumerate() {
            let cfg = AccelConfig::snapea_lanes_scaled(*num, *den);
            let sn = simulate(&cfg, &model, &wl);
            let sp = sn.speedup_over(&ey);
            cells.push(ratio(sp));
            per_scale[i].push(sp);
            series.push(json!({"lanes": _label, "speedup": sp}));
        }
        t.row(cells);
        rows.push(json!({"network": tw.workload.name(), "series": series}));
    }
    let mut geo = vec!["Geomean".to_string()];
    for col in &per_scale {
        geo.push(ratio(geomean(col)));
    }
    t.row(geo);
    let note = "Paper: 0.5x lanes ~-26%, 2x ~-36%, 4x ~-45% vs the default 4-lane PEs.";
    ExperimentResult {
        id: "fig12",
        title: "Figure 12: speedup sensitivity to compute lanes per PE (@ <=3% loss)".into(),
        text: format!("{}\n{note}\n", t.render()),
        json: json!({"networks": rows}),
    }
}

/// Artifact cold start: one-time `compile` cost versus reloading the
/// serialized `.snapea` artifact, which replays neither Algorithm 1 nor
/// gather-plan construction. Bit-identity of the loaded model's forward
/// pass against the freshly-compiled one is asserted, not just reported.
pub fn artifact(
    trained: &[TrainedWorkload],
    data: &Datasets,
    params3: &dyn Fn(&TrainedWorkload) -> NetworkParams,
) -> ExperimentResult {
    use snapea::artifact::{fnv64, CompiledModel};
    use snapea_obs::span::Stopwatch;
    use snapea_tensor::q16::Q16Format;

    let batch = sim_batch(data);
    let shape = batch.shape();
    let dims = (shape.c, shape.h, shape.w);
    let mut t = Table::new(vec![
        "Network",
        "Compile ms",
        "Load ms",
        "Cold-start gain",
        "Bytes",
        "Pred. layers",
    ]);
    let mut rows = Vec::new();
    let mut gains = Vec::new();
    for tw in trained {
        let params = params3(tw);
        let sw = Stopwatch::start();
        let compiled = CompiledModel::compile(&tw.net, &params, dims, Q16Format::default());
        let compile_ms = sw.elapsed_ms();
        let (bytes, sizes) = compiled.to_bytes_sized();
        let sw = Stopwatch::start();
        let loaded = CompiledModel::from_bytes(&bytes)
            // lint:allow(P1) a freshly serialized artifact always loads
            .expect("freshly serialized artifact loads");
        let load_ms = sw.elapsed_ms();
        let fresh = compiled.forward(&batch);
        let reloaded = loaded.forward(&batch);
        assert_eq!(fresh.len(), reloaded.len(), "{}", tw.workload.name());
        for (i, (a, b)) in fresh.iter().zip(&reloaded).enumerate() {
            assert!(
                a.as_slice()
                    .iter()
                    .zip(b.as_slice())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "{}: activation {i} differs between fresh and loaded execution",
                tw.workload.name()
            );
        }
        let gain = compile_ms / load_ms.max(1e-6);
        gains.push(gain);
        let kernels: usize = compiled.layers().iter().map(|l| l.kernels().len()).sum();
        t.row(vec![
            tw.workload.name().to_string(),
            format!("{compile_ms:.2}"),
            format!("{load_ms:.2}"),
            ratio(gain),
            sizes.total().to_string(),
            compiled.layers().len().to_string(),
        ]);
        rows.push(json!({
            "network": tw.workload.name(),
            "compile_ms": compile_ms,
            "load_ms": load_ms,
            "bytes": sizes.total(),
            "digest": format!("{:#018x}", fnv64(&bytes)),
            "sections": {
                "header": sizes.header,
                "meta": sizes.meta,
                "graph": sizes.graph,
                "params": sizes.params,
                "layers": sizes.layers,
                "packed": sizes.packed,
            },
            "predictive_layers": compiled.layers().len(),
            "predictive_kernels": kernels,
            "bit_identical": true,
        }));
    }
    t.row(vec![
        "Geomean".to_string(),
        "-".to_string(),
        "-".to_string(),
        ratio(geomean(&gains)),
        "-".to_string(),
        "-".to_string(),
    ]);
    let note = "Loading skips Algorithm 1 and plan construction; timings are wall-clock and \
                machine-dependent, bit-identity is asserted.";
    ExperimentResult {
        id: "artifact",
        title: "Artifact cold start: compile once, reload bit-identically".into(),
        text: format!("{}\n{note}\n", t.render()),
        json: json!({"networks": rows}),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render() {
        let t2 = table2();
        assert!(t2.text.contains("SnaPEA"));
        assert!(t2.text.contains("EYERISS"));
        let t3 = table3();
        assert!(t3.text.contains("DDR4"));
        assert!(t3.json["rows"].as_array().expect("rows").len() == 5);
    }
}
