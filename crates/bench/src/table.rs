//! Minimal plain-text table rendering for the `repro` binary.

/// A printable table: header row plus data rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width disagrees with the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(c);
                for _ in c.len()..*w {
                    out.push(' ');
                }
            }
            out.push('\n');
        };
        line(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }
}

/// Formats a ratio as `1.23x`.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a fraction as `12.3%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Geometric mean of a non-empty slice.
///
/// # Panics
///
/// Panics if `xs` is empty or contains non-positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    assert!(xs.iter().all(|&x| x > 0.0), "geomean needs positive values");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["Net", "Speedup"]);
        t.row(vec!["AlexNet", "1.30x"]);
        t.row(vec!["GoogLeNet", "2.08x"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Net"));
        assert!(lines[2].starts_with("AlexNet"));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(1.2345), "1.23x");
        assert_eq!(pct(0.6789), "67.9%");
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }
}
