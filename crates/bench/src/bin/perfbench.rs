//! Wall-clock benchmark of the parallel execution layer.
//!
//! ```text
//! cargo run --release -p snapea-bench --bin perfbench                # full shapes
//! cargo run --release -p snapea-bench --bin perfbench -- --smoke    # tiny, seconds
//! cargo run --release -p snapea-bench --bin perfbench -- --scaling  # 1/2/4/8 curves
//! cargo run --release -p snapea-bench --bin perfbench -- --strict   # ≥3x gate at t4
//! ```
//!
//! Times the parallelised hot paths — conv forward/backward (full batch and
//! an `n=1` serving shape), executor exact/predictive/q16, and one optimizer
//! profiling pass — and writes a **scaling curve** per path into
//! `BENCH_parallel.json` (schema 2): serial wall time (min-of-reps after
//! warmup) plus one `{threads, ms, speedup, bit_identical}` point per thread
//! count in the grid. The default grid is `[1, --threads]`; `--scaling`
//! records the full `[1, 2, 4, 8]` grid. Every point's output is asserted
//! bit-identical to the serial run. A GEMM section compares the dense
//! `matmul` kernel against `matmul_sparse_lhs` on dense and half-zero LHS
//! matrices, which is the before/after number justifying the removal of the
//! zero-skip branch from the dense path.
//!
//! On a machine where `available_parallelism == 1` both reports carry a
//! top-level `"degraded": true`: the curves measure pool overhead under
//! oversubscription, not scaling, and `snapea-tool perf-diff` refuses to
//! compare a degraded file against a non-degraded one. `--strict` (or
//! `SNAPEA_BENCH_STRICT=1`) asserts conv-forward and executor reach ≥ 3× at
//! 4 threads — skipped with a notice on degraded machines, where the gate
//! cannot be meaningful.
//!
//! A second report, `BENCH_kernels.json` (`--kernels-out`), benchmarks the
//! **single-core kernel engine** at 1 thread: each entry warms up once,
//! reports the minimum of k reps (the right estimator for a fixed
//! single-thread workload under external interference), times the frozen
//! pre-plan implementation (`snapea::exec::baseline`,
//! `profile_layer_kernels_baseline`, scalar GEMM loops) against the current
//! kernels (resolved-tap window plans, batched walks, the k-blocked axpy
//! microkernel) and asserts the results are bit-identical. These are the
//! speedups that hold on a single core, independent of the pool.
//!
//! `--kernels-only` runs and writes *only* the kernels report: the scaling
//! curves, strict gate, and GEMM comparison are skipped, and `--out` is not
//! written — the quick loop for iterating on the single-core lane engine.
//!
//! Usually invoked through `scripts/bench.sh`.

use snapea::exec::{
    baseline, execute_conv, execute_conv_q16, execute_conv_stats, ExecResult, LayerConfig,
};
use snapea::optimizer::profiling::{profile_layer_kernels, profile_layer_kernels_baseline};
use snapea::KernelParams;
use snapea_nn::ops::Conv2d;
use snapea_obs::Json;
use snapea_tensor::im2col::ConvGeom;
use snapea_tensor::lane::{lane_axpy8, lane_dot, pinned_dot_ref, LANES};
use snapea_tensor::q16::Q16Format;
use snapea_tensor::{init, par, Shape2, Shape4, Tensor2, Tensor4};
use std::time::Instant;

/// `BENCH_parallel.json` / `BENCH_kernels.json` document version. Schema 2
/// adds `schema`, `degraded`, `thread_grid`, and per-bench `curve` arrays
/// (schema 1, implicit, had single `serial_ms`/`parallel_ms` pairs).
const SCHEMA: u64 = 2;

/// Thread counts recorded under `--scaling`.
const SCALING_GRID: [usize; 4] = [1, 2, 4, 8];

struct Args {
    smoke: bool,
    scaling: bool,
    strict: bool,
    kernels_only: bool,
    threads: usize,
    out: String,
    kernels_out: String,
}

fn parse_args() -> Args {
    #[allow(clippy::disallowed_methods)] // sanctioned config read (R1)
    let mut args = Args {
        smoke: false,
        scaling: false,
        strict: std::env::var("SNAPEA_BENCH_STRICT").is_ok_and(|v| v == "1"),
        kernels_only: false,
        threads: par::threads(),
        out: "BENCH_parallel.json".to_string(),
        kernels_out: "BENCH_kernels.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--scaling" => args.scaling = true,
            "--strict" => args.strict = true,
            "--kernels-only" => args.kernels_only = true,
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads takes a positive integer");
            }
            "--out" => args.out = it.next().expect("--out takes a path"),
            "--kernels-out" => {
                args.kernels_out = it.next().expect("--kernels-out takes a path");
            }
            other => {
                eprintln!("perfbench: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    args.threads = args.threads.max(1);
    args
}

/// Median wall time of `reps` runs of `f`, in milliseconds. The first result
/// is returned so callers can compare outputs across variants.
#[allow(clippy::disallowed_methods)] // benchmark timing is this binary's job
fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut out = None;
    let mut times: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        times.push(t0.elapsed().as_secs_f64() * 1e3);
        out.get_or_insert(r);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    (times[times.len() / 2], out.expect("at least one rep"))
}

fn exec_results_identical(a: &ExecResult, b: &ExecResult) -> bool {
    a.output.as_slice() == b.output.as_slice()
        && a.profile.ops_slice() == b.profile.ops_slice()
        && a.stats == b.stats
}

/// Times `f` at every thread count in `grid` (which must start with 1, the
/// serial baseline), checks each point's output against the serial run via
/// `same`, and returns the JSON record (`name`, `detail`, `serial_ms`,
/// `curve`) for the bench table.
///
/// Methodology: one untimed warmup, then `reps` *interleaved* rounds — each
/// round times every grid point once, and every point reports the minimum
/// across rounds. Min-of-reps because the fastest observed run is the best
/// estimate of the path's true cost at that thread count (slower reps are
/// outside interference a curve must not bake in); interleaved because
/// machine phases (frequency drift, noisy neighbours) then hit all points
/// alike instead of biasing whichever point owned that time window — on a
/// shared container, sequential per-point windows showed ±15% phantom
/// "speedups" between identical configurations. Each round also *rotates*
/// the grid's starting offset: within a round the points run sequentially,
/// so pressure that builds up as a round progresses (cache dilution, cgroup
/// quota throttling) would otherwise systematically tax whichever point
/// always ran last — with rotation every point occupies every position
/// across rounds.
///
/// Min (not median) because interference is one-sided — a noisy neighbour
/// or a throttle can only ever slow a run down, never speed it up — so the
/// minimum converges to the path's true cost as rounds accumulate, and is
/// the only estimator that keeps interference out of the curve entirely.
/// (A median-of-paired-ratios variant was tried and measured *wider* spread
/// on the same container: the median keeps residual noise in, and sharing
/// the t1 samples as denominator correlates the error across a bench's
/// points.)
///
/// Finally, grid points whose **effective participant count** coincides
/// (`par::effective_threads` — e.g. every point on a one-core machine, or
/// t8 alongside t4 on a four-core one) execute byte-identical code by
/// construction of the clamp, so their samples are exchangeable: they are
/// pooled, and the points report one shared min. Without pooling, identical
/// configurations would differ by container noise (±3% even at 32 rounds)
/// and the curve would fabricate overhead — or speedup — where the executed
/// code cannot have any.
#[allow(clippy::disallowed_methods)] // benchmark timing is this binary's job
fn bench_scaling<R>(
    name: &str,
    detail: &str,
    reps: usize,
    grid: &[usize],
    mut f: impl FnMut() -> R,
    same: impl Fn(&R, &R) -> bool,
) -> Json {
    assert_eq!(
        grid.first(),
        Some(&1),
        "grid must lead with the serial point"
    );
    par::set_threads(1);
    let serial_out = f();
    let mut times = vec![vec![f64::MAX; reps]; grid.len()];
    let mut identical = vec![true; grid.len()];
    // `rep` picks both the rotation offset and the per-point sample slot, so
    // the index form is clearer than an iterator chain here.
    #[allow(clippy::needless_range_loop)]
    for rep in 0..reps {
        for off in 0..grid.len() {
            let gi = (rep + off) % grid.len();
            let t = grid[gi];
            par::set_threads(t);
            let t0 = Instant::now();
            let out = f();
            times[gi][rep] = t0.elapsed().as_secs_f64() * 1e3;
            if t > 1 {
                identical[gi] = identical[gi] && same(&serial_out, &out);
            }
        }
    }
    // Pool samples across grid points that the clamp makes byte-identical
    // (same effective participant count — see the doc comment above).
    let effective: Vec<usize> = grid
        .iter()
        .map(|&t| {
            par::set_threads(t);
            par::effective_threads()
        })
        .collect();
    par::set_threads(1);
    let group_min = |gi: usize| {
        grid.iter()
            .enumerate()
            .filter(|&(gj, _)| effective[gj] == effective[gi])
            .flat_map(|(gj, _)| times[gj].iter().copied())
            .fold(f64::MAX, f64::min)
    };
    let serial_ms = group_min(0);
    let mut curve: Vec<Json> = Vec::new();
    let mut summary = String::new();
    for (gi, &t) in grid.iter().enumerate() {
        assert!(identical[gi], "{name}: outputs differ at {t} threads");
        let ms = group_min(gi);
        let speedup = serial_ms / ms;
        summary.push_str(&format!("  t{t} {speedup:4.2}x"));
        curve.push(Json::Obj(vec![
            ("label".to_string(), format!("t{t}").into()),
            ("threads".to_string(), (t as u64).into()),
            ("ms".to_string(), ms.into()),
            ("speedup".to_string(), speedup.into()),
            ("bit_identical".to_string(), identical[gi].into()),
        ]));
    }
    println!("{name:<22} {detail:<30} serial {serial_ms:8.2} ms {summary}");
    Json::Obj(vec![
        ("name".to_string(), name.into()),
        ("detail".to_string(), detail.into()),
        ("serial_ms".to_string(), serial_ms.into()),
        ("curve".to_string(), Json::Arr(curve)),
    ])
}

/// Minimum wall time of `reps` runs of `f` after one untimed warmup, in
/// milliseconds, with the last result (so curve points can be compared
/// against the serial output).
#[allow(clippy::disallowed_methods)] // benchmark timing is this binary's job
fn time_min<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut out = f();
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        out = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (best, out)
}

/// Times a frozen-baseline implementation against the current kernel at
/// **1 thread**, checks bit-identity via `same`, and returns the JSON record
/// for the kernels report.
fn bench_kernel<R>(
    name: &str,
    detail: &str,
    reps: usize,
    mut base: impl FnMut() -> R,
    mut new: impl FnMut() -> R,
    same: impl Fn(&R, &R) -> bool,
) -> Json {
    par::set_threads(1);
    let (baseline_ms, base_out) = time_min(reps, &mut base);
    let (kernel_ms, new_out) = time_min(reps, &mut new);
    let identical = same(&base_out, &new_out);
    let speedup = baseline_ms / kernel_ms;
    println!(
        "kernel {name:<22} {detail:<34} before {baseline_ms:8.2} ms   after {kernel_ms:8.2} ms   \
         speedup {speedup:4.2}x   bit-identical: {identical}"
    );
    assert!(identical, "{name}: optimised kernel deviates from baseline");
    Json::Obj(vec![
        ("name".to_string(), name.into()),
        ("detail".to_string(), detail.into()),
        ("baseline_ms".to_string(), baseline_ms.into()),
        ("kernel_ms".to_string(), kernel_ms.into()),
        ("speedup".to_string(), speedup.into()),
        ("bit_identical".to_string(), identical.into()),
    ])
}

/// The pre-microkernel scalar GEMM loop (`out[i,j] += lhs[i,p] * rhs[p,j]`,
/// ascending `p` per element — the same accumulation order as the `axpy`
/// path, so results must match bitwise).
fn matmul_scalar(lhs: &Tensor2, rhs: &Tensor2) -> Tensor2 {
    let (m, k, n) = (lhs.shape().rows, lhs.shape().cols, rhs.shape().cols);
    let mut out = Tensor2::zeros(Shape2::new(m, n));
    let (l, r, o) = (lhs.as_slice(), rhs.as_slice(), out.as_mut_slice());
    for i in 0..m {
        let out_row = &mut o[i * n..(i + 1) * n];
        for p in 0..k {
            let a = l[i * k + p];
            for (oj, &b) in out_row.iter_mut().zip(&r[p * n..(p + 1) * n]) {
                *oj += a * b;
            }
        }
    }
    out
}

/// The pre-microkernel scalar `lhsᵀ × rhs` loop.
fn t_matmul_scalar(lhs: &Tensor2, rhs: &Tensor2) -> Tensor2 {
    let (k, m, n) = (lhs.shape().rows, lhs.shape().cols, rhs.shape().cols);
    let mut out = Tensor2::zeros(Shape2::new(m, n));
    let (l, r, o) = (lhs.as_slice(), rhs.as_slice(), out.as_mut_slice());
    for p in 0..k {
        let a_row = &l[p * m..(p + 1) * m];
        let b_row = &r[p * n..(p + 1) * n];
        for (i, &a) in a_row.iter().enumerate() {
            let out_row = &mut o[i * n..(i + 1) * n];
            for (oj, &b) in out_row.iter_mut().zip(b_row) {
                *oj += a * b;
            }
        }
    }
    out
}

/// Signatures of the lane micro-kernels and their scalar references, so the
/// bench passes can take either side as a parameter.
type DotFn = dyn Fn(&[f32], &[f32], usize) -> f32;
type AxpyFn = dyn Fn(&mut [f32], &[f32; LANES], [&[f32]; LANES]);

/// Frozen baseline for [`lane_axpy8`]: eight separate rank-1 row updates —
/// the pre-microkernel GEMM structure, which streams `out` through the cache
/// once per row instead of once per block. Every output element still
/// receives its eight products in ascending `q` order, so the result is
/// bit-identical to the fused kernel and the bench isolates the memory
/// traffic the eight-row fusion removes.
fn axpy8_rowwise(out: &mut [f32], a: &[f32; LANES], b: [&[f32]; LANES]) {
    for (aq, bq) in a.iter().zip(b) {
        for (oj, &bv) in out.iter_mut().zip(bq.iter()) {
            *oj += aq * bv;
        }
    }
}

/// Deterministic LHS with `zero_frac` of its entries exactly zero —
/// post-ReLU-style sparsity for the GEMM branch comparison.
fn sparse_lhs(shape: Shape2, zero_frac: f64, seed: u64) -> Tensor2 {
    let mut state = seed;
    Tensor2::from_fn(shape, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (state >> 33) as f64 / (1u64 << 31) as f64;
        if u < zero_frac {
            0.0
        } else {
            (u * 2.0 - 1.0) as f32
        }
    })
}

/// The `speedup` recorded for `bench` at `threads`, if that curve point
/// exists.
fn curve_speedup(bench: &Json, threads: u64) -> Option<f64> {
    bench
        .get("curve")
        .and_then(Json::as_array)?
        .iter()
        .find(|p| p.get("threads").and_then(Json::as_u64) == Some(threads))
        .and_then(|p| p.get("speedup").and_then(Json::as_f64))
}

fn main() {
    let args = parse_args();
    // Full runs use a multiple of the grid length so rotation (see
    // `bench_scaling`) gives every grid point the same number of visits to
    // every within-round position. 32 rounds is what min-of-rounds needs to
    // reliably catch a clean window per point on a shared container; the
    // kernels section (which times the slow frozen baselines too) stays at a
    // smaller count via `kernel_reps`.
    let reps = if args.smoke { 4 } else { 32 };
    let kernel_reps = if args.smoke { 3 } else { 5 };
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let degraded = avail == 1;

    // Thread grid for the scaling curves: [1, --threads] by default (one
    // parallel point, like the schema-1 reports), the full grid plus
    // --threads under --scaling.
    let mut grid: Vec<usize> = if args.scaling {
        SCALING_GRID.to_vec()
    } else {
        vec![1]
    };
    if !grid.contains(&args.threads) {
        grid.push(args.threads);
    }
    grid.sort_unstable();

    println!(
        "perfbench: thread grid {grid:?} (available_parallelism {avail}), {} shapes, {reps} reps",
        if args.smoke { "smoke" } else { "full" },
    );
    if degraded {
        eprintln!(
            "perfbench: WARNING: available_parallelism is 1 — the scaling curves below \
             measure pool overhead under oversubscription, not scaling (reports carry \
             \"degraded\": true); trust the kernels section (single-thread before/after), \
             which is core-count independent"
        );
    }

    // Workload: one conv layer of VGG-ish proportions (smoke: tiny), plus an
    // n=1 view of the same layer — the serving shape whose scaling the
    // sub-batch (row-block / kernel-block) dispatch exists for.
    let (batch, c_in, c_out, hw) = if args.smoke {
        (2, 4, 8, 12)
    } else {
        (8, 16, 32, 32)
    };
    let mut rng = init::rng(7);
    let conv = Conv2d::new(c_in, c_out, ConvGeom::square(3, 1, 1), &mut rng);
    let input = init::uniform4(Shape4::new(batch, c_in, hw, hw), 1.0, &mut rng).map(f32::abs);
    let serve_input =
        init::uniform4(Shape4::new(1, c_in, hw, hw), 1.0, &mut init::rng(23)).map(f32::abs);
    let exact_cfg = LayerConfig::exact(&conv);
    let pred_cfg = LayerConfig::predictive_uniform(&conv, KernelParams::new(0.05, 4));
    // Profiling scans every (kernel, N, image, window) tuple; keep the image
    // set small so the full run stays minutes-not-hours at 1 thread.
    let prof_images = if args.smoke { 1 } else { 2 };
    let prof_input = init::uniform4(
        Shape4::new(prof_images, c_in, hw, hw),
        1.0,
        &mut init::rng(11),
    )
    .map(f32::abs);
    let detail = format!("n{batch} c{c_in}->{c_out} {hw}x{hw} k3");
    let serve_detail = format!("n1 c{c_in}->{c_out} {hw}x{hw} k3");
    let fmt = Q16Format::default();
    let git_rev = snapea_obs::run::git_rev(std::path::Path::new("."))
        .map(Json::from)
        .unwrap_or(Json::Null);

    let parallel_sections = if args.kernels_only {
        println!("kernels-only: skipping the scaling curves, strict gate, and GEMM comparison");
        None
    } else {
        let benches = vec![
            bench_scaling(
                "conv_forward",
                &detail,
                reps,
                &grid,
                || conv.forward(&input),
                |a: &Tensor4, b: &Tensor4| a.as_slice() == b.as_slice(),
            ),
            bench_scaling(
                "conv_forward_serve",
                &serve_detail,
                reps,
                &grid,
                || conv.forward(&serve_input),
                |a: &Tensor4, b: &Tensor4| a.as_slice() == b.as_slice(),
            ),
            bench_scaling(
                "conv_backward",
                &detail,
                reps,
                &grid,
                || {
                    let go = Tensor4::full(conv.out_shape(input.shape()), 0.5);
                    conv.backward(&input, &go)
                },
                |a, b| {
                    a.0.as_slice() == b.0.as_slice()
                        && a.1.as_slice() == b.1.as_slice()
                        && a.2 == b.2
                },
            ),
            bench_scaling(
                "executor_exact",
                &detail,
                reps,
                &grid,
                || execute_conv(&conv, &input, &exact_cfg),
                exec_results_identical,
            ),
            bench_scaling(
                "executor_exact_serve",
                &serve_detail,
                reps,
                &grid,
                || execute_conv(&conv, &serve_input, &exact_cfg),
                exec_results_identical,
            ),
            bench_scaling(
                "executor_predictive",
                &detail,
                reps,
                &grid,
                || execute_conv_stats(&conv, &input, &pred_cfg),
                exec_results_identical,
            ),
            bench_scaling(
                "executor_q16",
                &detail,
                reps,
                &grid,
                || execute_conv_q16(&conv, &input, &exact_cfg, fmt),
                exec_results_identical,
            ),
            bench_scaling(
                "optimizer_profiling",
                &format!("n{prof_images} c{c_in}->{c_out} {hw}x{hw} k3"),
                reps,
                &grid,
                || profile_layer_kernels(&conv, &prof_input, &[1, 2, 4, 8], &[0.25, 0.5, 0.9], 1.0),
                |a, b| a == b,
            ),
        ];

        // The ≥3x-at-4-threads gate (check.sh wires it behind
        // SNAPEA_BENCH_STRICT=1): meaningful only on a machine with real
        // parallelism and only when the t4 point was recorded.
        if args.strict {
            if degraded {
                eprintln!(
                    "perfbench: --strict requested but available_parallelism is 1; \
                 the >=3x scaling gate is skipped (degraded machine)"
                );
            } else {
                for b in &benches {
                    let name = b.get("name").and_then(Json::as_str).unwrap_or("");
                    if !matches!(
                        name,
                        "conv_forward" | "executor_exact" | "executor_predictive"
                    ) {
                        continue;
                    }
                    let Some(speedup) = curve_speedup(b, 4) else {
                        eprintln!("perfbench: --strict: {name} has no t4 point (run --scaling)");
                        std::process::exit(1);
                    };
                    if speedup < 3.0 {
                        eprintln!(
                            "perfbench: --strict: {name} reached only {speedup:.2}x at 4 threads \
                         (gate: >=3x)"
                        );
                        std::process::exit(1);
                    }
                }
                println!("strict gate: conv_forward + executor >=3x at 4 threads: ok");
            }
        }

        // GEMM branch comparison (serial, to isolate the per-element zero test
        // from scheduling effects): dense LHS and a half-zero LHS.
        par::set_threads(1);
        let (gm, gk, gn) = if args.smoke {
            (32, 64, 128)
        } else {
            (128, 288, 1024)
        };
        let rhs = sparse_lhs(Shape2::new(gk, gn), 0.0, 3);
        let mut gemm_rows: Vec<Json> = Vec::new();
        for (label, zero_frac) in [("dense_lhs", 0.0), ("half_zero_lhs", 0.5)] {
            let lhs = sparse_lhs(Shape2::new(gm, gk), zero_frac, 5);
            let (dense_ms, dense_out) = time_median(kernel_reps, || lhs.matmul(&rhs).unwrap());
            let (skip_ms, skip_out) =
                time_median(kernel_reps, || lhs.matmul_sparse_lhs(&rhs).unwrap());
            assert_eq!(dense_out, skip_out, "gemm variants disagree ({label})");
            println!(
            "gemm {label:<18} {gm}x{gk}x{gn}  dense {dense_ms:8.2} ms   zero-skip {skip_ms:8.2} ms"
        );
            gemm_rows.push(Json::Obj(vec![
                ("lhs".to_string(), label.into()),
                ("zero_frac".to_string(), zero_frac.into()),
                ("shape".to_string(), format!("{gm}x{gk}x{gn}").into()),
                ("matmul_ms".to_string(), dense_ms.into()),
                ("matmul_sparse_lhs_ms".to_string(), skip_ms.into()),
            ]));
        }
        Some((benches, gemm_rows))
    };

    // --- Kernels section: frozen pre-plan baselines vs the single-core
    // kernel engine, all at 1 thread, bit-identity asserted per entry. ---
    println!("kernels (1 thread, frozen scalar baseline vs current):");
    let (gm2, gk2, gn2) = if args.smoke {
        (32, 64, 128)
    } else {
        (96, 288, 768)
    };
    let mm_lhs = sparse_lhs(Shape2::new(gm2, gk2), 0.0, 13);
    let mm_rhs = sparse_lhs(Shape2::new(gk2, gn2), 0.0, 17);
    let tm_lhs = sparse_lhs(Shape2::new(gk2, gm2), 0.0, 19);
    let prof_detail = format!("n{prof_images} c{c_in}->{c_out} {hw}x{hw} k3");
    // Lane micro-kernels: the eight-wide primitives against their scalar
    // pinned-order references (same reduction tree, so identity is by
    // construction — the entries measure throughput; `scripts/asm_check.sh`
    // separately proves the vector bodies are actually vectorized).
    let (ld_win, ld_calls) = if args.smoke { (1024, 64) } else { (8192, 512) };
    let ld_n = ld_win * 4;
    let ld_vals = sparse_lhs(Shape2::new(1, ld_n), 0.0, 29);
    let ld_wts = sparse_lhs(Shape2::new(1, ld_n), 0.0, 31);
    let lane_dot_pass = |dot: &DotFn| -> Vec<f32> {
        let (v, w) = (ld_vals.as_slice(), ld_wts.as_slice());
        (0..ld_calls)
            .map(|c| {
                let off = (c * 64) % (ld_n - ld_win);
                dot(&v[off..off + ld_win], &w[off..off + ld_win], ld_win)
            })
            .collect()
    };
    let (ax_n, ax_calls) = if args.smoke { (4096, 32) } else { (32768, 128) };
    let ax_b = sparse_lhs(Shape2::new(LANES, ax_n), 0.0, 37);
    let ax_a: [f32; LANES] = [0.11, -0.07, 0.05, 0.21, -0.13, 0.02, 0.17, -0.19];
    let ax_rows: [&[f32]; LANES] =
        std::array::from_fn(|q| &ax_b.as_slice()[q * ax_n..(q + 1) * ax_n]);
    let lane_axpy_pass = |axpy: &AxpyFn| -> Vec<f32> {
        let mut out = vec![0.0f32; ax_n];
        for _ in 0..ax_calls {
            axpy(&mut out, &ax_a, ax_rows);
        }
        out
    };
    let f32_bits_eq =
        |a: &Vec<f32>, b: &Vec<f32>| a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits());
    let kernels = vec![
        bench_kernel(
            "lane_dot",
            &format!("{ld_calls} windows of {ld_win}"),
            kernel_reps,
            || lane_dot_pass(&pinned_dot_ref),
            || lane_dot_pass(&lane_dot),
            f32_bits_eq,
        ),
        bench_kernel(
            "lane_axpy8",
            &format!("8x{ax_n}, {ax_calls} passes"),
            kernel_reps,
            || lane_axpy_pass(&axpy8_rowwise),
            || lane_axpy_pass(&lane_axpy8),
            f32_bits_eq,
        ),
        bench_kernel(
            "executor_exact",
            &detail,
            kernel_reps,
            || baseline::execute_conv(&conv, &input, &exact_cfg, false),
            || execute_conv(&conv, &input, &exact_cfg),
            exec_results_identical,
        ),
        bench_kernel(
            "executor_predictive",
            &detail,
            kernel_reps,
            || baseline::execute_conv(&conv, &input, &pred_cfg, true),
            || execute_conv_stats(&conv, &input, &pred_cfg),
            exec_results_identical,
        ),
        bench_kernel(
            "executor_q16",
            &detail,
            kernel_reps,
            || baseline::execute_conv_q16(&conv, &input, &exact_cfg, fmt),
            || execute_conv_q16(&conv, &input, &exact_cfg, fmt),
            exec_results_identical,
        ),
        bench_kernel(
            "optimizer_profiling",
            &prof_detail,
            kernel_reps,
            || {
                profile_layer_kernels_baseline(
                    &conv,
                    &prof_input,
                    &[1, 2, 4, 8],
                    &[0.25, 0.5, 0.9],
                    1.0,
                )
            },
            || profile_layer_kernels(&conv, &prof_input, &[1, 2, 4, 8], &[0.25, 0.5, 0.9], 1.0),
            |a, b| a == b,
        ),
        bench_kernel(
            "matmul",
            &format!("{gm2}x{gk2}x{gn2}"),
            kernel_reps,
            || matmul_scalar(&mm_lhs, &mm_rhs),
            || mm_lhs.matmul(&mm_rhs).unwrap(),
            |a: &Tensor2, b: &Tensor2| a.as_slice() == b.as_slice(),
        ),
        bench_kernel(
            "t_matmul",
            &format!("{gk2}x{gm2}ᵀx{gn2}"),
            kernel_reps,
            || t_matmul_scalar(&tm_lhs, &mm_rhs),
            || tm_lhs.t_matmul(&mm_rhs).unwrap(),
            |a: &Tensor2, b: &Tensor2| a.as_slice() == b.as_slice(),
        ),
    ];
    par::set_threads(args.threads);

    if let Some((benches, gemm_rows)) = parallel_sections {
        let thread_grid = Json::Arr(grid.iter().map(|&t| Json::from(t as u64)).collect());
        let report = Json::Obj(vec![
            ("generated_by".to_string(), "perfbench".into()),
            ("schema".to_string(), SCHEMA.into()),
            ("git_rev".to_string(), git_rev.clone()),
            ("smoke".to_string(), args.smoke.into()),
            ("reps".to_string(), reps.into()),
            ("thread_grid".to_string(), thread_grid),
            ("available_parallelism".to_string(), avail.into()),
            ("degraded".to_string(), degraded.into()),
            ("benches".to_string(), Json::Arr(benches)),
            ("gemm".to_string(), Json::Arr(gemm_rows)),
        ]);
        if let Err(e) = std::fs::write(&args.out, format!("{report}\n")) {
            eprintln!("perfbench: cannot write {}: {e}", args.out);
            std::process::exit(1);
        }
        println!("wrote {}", args.out);
    }

    let kernels_report = Json::Obj(vec![
        ("generated_by".to_string(), "perfbench --kernels".into()),
        ("schema".to_string(), SCHEMA.into()),
        ("git_rev".to_string(), git_rev),
        ("smoke".to_string(), args.smoke.into()),
        ("reps".to_string(), kernel_reps.into()),
        ("threads".to_string(), 1u64.into()),
        ("available_parallelism".to_string(), avail.into()),
        ("degraded".to_string(), degraded.into()),
        ("kernels".to_string(), Json::Arr(kernels)),
    ]);
    if let Err(e) = std::fs::write(&args.kernels_out, format!("{kernels_report}\n")) {
        eprintln!("perfbench: cannot write {}: {e}", args.kernels_out);
        std::process::exit(1);
    }
    println!("wrote {}", args.kernels_out);
}
