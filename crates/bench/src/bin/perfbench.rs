//! Wall-clock benchmark of the parallel execution layer.
//!
//! ```text
//! cargo run --release -p snapea-bench --bin perfbench              # full shapes
//! cargo run --release -p snapea-bench --bin perfbench -- --smoke  # tiny, seconds
//! cargo run --release -p snapea-bench --bin perfbench -- --threads 8
//! ```
//!
//! Times the four parallelised hot paths — conv forward, executor exact,
//! executor predictive (with stats), and one optimizer profiling pass — at
//! `SNAPEA_THREADS=1` versus `--threads N` (default: the pool's resolved
//! thread count), verifies the outputs are **bit-identical** across thread
//! counts, and writes median-of-k wall times plus speedups to
//! `BENCH_parallel.json`. A GEMM section compares the dense `matmul` kernel
//! against `matmul_sparse_lhs` on dense and half-zero LHS matrices, which is
//! the before/after number justifying the removal of the zero-skip branch
//! from the dense path.
//!
//! A second report, `BENCH_kernels.json` (`--kernels-out`), benchmarks the
//! **single-core kernel engine** at 1 thread: each entry warms up once,
//! reports the minimum of k reps (the right estimator for a fixed
//! single-thread workload under external interference), times the frozen
//! pre-plan implementation (`snapea::exec::baseline`,
//! `profile_layer_kernels_baseline`, scalar GEMM loops) against the current
//! kernels (resolved-tap window plans, batched walks, the k-blocked axpy
//! microkernel) and asserts the results are bit-identical. These are the
//! speedups that hold on a single core, independent of the pool.
//!
//! Usually invoked through `scripts/bench.sh`.

use snapea::exec::{
    baseline, execute_conv, execute_conv_q16, execute_conv_stats, ExecResult, LayerConfig,
};
use snapea::optimizer::profiling::{profile_layer_kernels, profile_layer_kernels_baseline};
use snapea::KernelParams;
use snapea_nn::ops::Conv2d;
use snapea_obs::Json;
use snapea_tensor::im2col::ConvGeom;
use snapea_tensor::q16::Q16Format;
use snapea_tensor::{init, par, Shape2, Shape4, Tensor2, Tensor4};
use std::time::Instant;

struct Args {
    smoke: bool,
    threads: usize,
    out: String,
    kernels_out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        threads: par::threads(),
        out: "BENCH_parallel.json".to_string(),
        kernels_out: "BENCH_kernels.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads takes a positive integer");
            }
            "--out" => args.out = it.next().expect("--out takes a path"),
            "--kernels-out" => {
                args.kernels_out = it.next().expect("--kernels-out takes a path");
            }
            other => {
                eprintln!("perfbench: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    args.threads = args.threads.max(1);
    args
}

/// Median wall time of `reps` runs of `f`, in milliseconds. The first result
/// is returned so callers can compare outputs across thread counts.
#[allow(clippy::disallowed_methods)] // benchmark timing is this binary's job
fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut out = None;
    let mut times: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        times.push(t0.elapsed().as_secs_f64() * 1e3);
        out.get_or_insert(r);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    (times[times.len() / 2], out.expect("at least one rep"))
}

fn exec_results_identical(a: &ExecResult, b: &ExecResult) -> bool {
    a.output.as_slice() == b.output.as_slice()
        && a.profile.ops_slice() == b.profile.ops_slice()
        && a.stats == b.stats
}

/// Times `f` at 1 thread and at `threads`, checks the outputs agree via
/// `same`, and returns the JSON record for the bench table.
fn bench_pair<R>(
    name: &str,
    detail: &str,
    reps: usize,
    threads: usize,
    mut f: impl FnMut() -> R,
    same: impl Fn(&R, &R) -> bool,
) -> Json {
    par::set_threads(1);
    let (serial_ms, serial_out) = time_median(reps, &mut f);
    par::set_threads(threads);
    let (parallel_ms, parallel_out) = time_median(reps, &mut f);
    let identical = same(&serial_out, &parallel_out);
    let speedup = serial_ms / parallel_ms;
    println!(
        "{name:<22} {detail:<34} 1t {serial_ms:8.2} ms   {threads}t {parallel_ms:8.2} ms   \
         speedup {speedup:4.2}x   bit-identical: {identical}"
    );
    assert!(identical, "{name}: outputs differ across thread counts");
    Json::Obj(vec![
        ("name".to_string(), name.into()),
        ("detail".to_string(), detail.into()),
        ("serial_ms".to_string(), serial_ms.into()),
        ("parallel_ms".to_string(), parallel_ms.into()),
        ("speedup".to_string(), speedup.into()),
        ("bit_identical".to_string(), identical.into()),
    ])
}

/// Minimum wall time of `reps` runs of `f` after one untimed warmup, in
/// milliseconds. The kernels section uses min rather than median: these are
/// fixed single-thread workloads, so the fastest observed run is the best
/// estimate of the kernel's true cost and every slower rep is interference
/// from outside the process (the parallel section keeps the median, where
/// scheduler variation is part of what is being measured).
#[allow(clippy::disallowed_methods)] // benchmark timing is this binary's job
fn time_min<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut out = f();
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        out = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (best, out)
}

/// Times a frozen-baseline implementation against the current kernel at
/// **1 thread**, checks bit-identity via `same`, and returns the JSON record
/// for the kernels report.
fn bench_kernel<R>(
    name: &str,
    detail: &str,
    reps: usize,
    mut base: impl FnMut() -> R,
    mut new: impl FnMut() -> R,
    same: impl Fn(&R, &R) -> bool,
) -> Json {
    par::set_threads(1);
    let (baseline_ms, base_out) = time_min(reps, &mut base);
    let (kernel_ms, new_out) = time_min(reps, &mut new);
    let identical = same(&base_out, &new_out);
    let speedup = baseline_ms / kernel_ms;
    println!(
        "kernel {name:<22} {detail:<34} before {baseline_ms:8.2} ms   after {kernel_ms:8.2} ms   \
         speedup {speedup:4.2}x   bit-identical: {identical}"
    );
    assert!(identical, "{name}: optimised kernel deviates from baseline");
    Json::Obj(vec![
        ("name".to_string(), name.into()),
        ("detail".to_string(), detail.into()),
        ("baseline_ms".to_string(), baseline_ms.into()),
        ("kernel_ms".to_string(), kernel_ms.into()),
        ("speedup".to_string(), speedup.into()),
        ("bit_identical".to_string(), identical.into()),
    ])
}

/// The pre-microkernel scalar GEMM loop (`out[i,j] += lhs[i,p] * rhs[p,j]`,
/// ascending `p` per element — the same accumulation order as the `axpy`
/// path, so results must match bitwise).
fn matmul_scalar(lhs: &Tensor2, rhs: &Tensor2) -> Tensor2 {
    let (m, k, n) = (lhs.shape().rows, lhs.shape().cols, rhs.shape().cols);
    let mut out = Tensor2::zeros(Shape2::new(m, n));
    let (l, r, o) = (lhs.as_slice(), rhs.as_slice(), out.as_mut_slice());
    for i in 0..m {
        let out_row = &mut o[i * n..(i + 1) * n];
        for p in 0..k {
            let a = l[i * k + p];
            for (oj, &b) in out_row.iter_mut().zip(&r[p * n..(p + 1) * n]) {
                *oj += a * b;
            }
        }
    }
    out
}

/// The pre-microkernel scalar `lhsᵀ × rhs` loop.
fn t_matmul_scalar(lhs: &Tensor2, rhs: &Tensor2) -> Tensor2 {
    let (k, m, n) = (lhs.shape().rows, lhs.shape().cols, rhs.shape().cols);
    let mut out = Tensor2::zeros(Shape2::new(m, n));
    let (l, r, o) = (lhs.as_slice(), rhs.as_slice(), out.as_mut_slice());
    for p in 0..k {
        let a_row = &l[p * m..(p + 1) * m];
        let b_row = &r[p * n..(p + 1) * n];
        for (i, &a) in a_row.iter().enumerate() {
            let out_row = &mut o[i * n..(i + 1) * n];
            for (oj, &b) in out_row.iter_mut().zip(b_row) {
                *oj += a * b;
            }
        }
    }
    out
}

/// Deterministic LHS with `zero_frac` of its entries exactly zero —
/// post-ReLU-style sparsity for the GEMM branch comparison.
fn sparse_lhs(shape: Shape2, zero_frac: f64, seed: u64) -> Tensor2 {
    let mut state = seed;
    Tensor2::from_fn(shape, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (state >> 33) as f64 / (1u64 << 31) as f64;
        if u < zero_frac {
            0.0
        } else {
            (u * 2.0 - 1.0) as f32
        }
    })
}

fn main() {
    let args = parse_args();
    let reps = if args.smoke { 3 } else { 5 };
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "perfbench: threads 1 vs {} (available_parallelism {avail}), {} shapes, {reps} reps",
        args.threads,
        if args.smoke { "smoke" } else { "full" },
    );
    if avail == 1 {
        eprintln!(
            "perfbench: WARNING: available_parallelism is 1 — the parallel-section speedups \
             below measure pool overhead only, not scaling; trust the kernels section \
             (single-thread before/after), which is core-count independent"
        );
    }

    // Workload: one conv layer of VGG-ish proportions (smoke: tiny).
    let (batch, c_in, c_out, hw) = if args.smoke {
        (2, 4, 8, 12)
    } else {
        (8, 16, 32, 32)
    };
    let mut rng = init::rng(7);
    let conv = Conv2d::new(c_in, c_out, ConvGeom::square(3, 1, 1), &mut rng);
    let input = init::uniform4(Shape4::new(batch, c_in, hw, hw), 1.0, &mut rng).map(f32::abs);
    let exact_cfg = LayerConfig::exact(&conv);
    let pred_cfg = LayerConfig::predictive_uniform(&conv, KernelParams::new(0.05, 4));
    // Profiling scans every (kernel, N, image, window) tuple; keep the image
    // set small so the full run stays minutes-not-hours at 1 thread.
    let prof_images = if args.smoke { 1 } else { 2 };
    let prof_input = init::uniform4(
        Shape4::new(prof_images, c_in, hw, hw),
        1.0,
        &mut init::rng(11),
    )
    .map(f32::abs);
    let detail = format!("n{batch} c{c_in}->{c_out} {hw}x{hw} k3");

    let benches = vec![
        bench_pair(
            "conv_forward",
            &detail,
            reps,
            args.threads,
            || conv.forward(&input),
            |a: &Tensor4, b: &Tensor4| a.as_slice() == b.as_slice(),
        ),
        bench_pair(
            "conv_backward",
            &detail,
            reps,
            args.threads,
            || {
                let go = Tensor4::full(conv.out_shape(input.shape()), 0.5);
                conv.backward(&input, &go)
            },
            |a, b| {
                a.0.as_slice() == b.0.as_slice() && a.1.as_slice() == b.1.as_slice() && a.2 == b.2
            },
        ),
        bench_pair(
            "executor_exact",
            &detail,
            reps,
            args.threads,
            || execute_conv(&conv, &input, &exact_cfg),
            exec_results_identical,
        ),
        bench_pair(
            "executor_predictive",
            &detail,
            reps,
            args.threads,
            || execute_conv_stats(&conv, &input, &pred_cfg),
            exec_results_identical,
        ),
        bench_pair(
            "optimizer_profiling",
            &format!("n{prof_images} c{c_in}->{c_out} {hw}x{hw} k3"),
            reps,
            args.threads,
            || profile_layer_kernels(&conv, &prof_input, &[1, 2, 4, 8], &[0.25, 0.5, 0.9], 1.0),
            |a, b| a == b,
        ),
    ];

    // GEMM branch comparison (serial, to isolate the per-element zero test
    // from scheduling effects): dense LHS and a half-zero LHS.
    par::set_threads(1);
    let (gm, gk, gn) = if args.smoke {
        (32, 64, 128)
    } else {
        (128, 288, 1024)
    };
    let rhs = sparse_lhs(Shape2::new(gk, gn), 0.0, 3);
    let mut gemm_rows: Vec<Json> = Vec::new();
    for (label, zero_frac) in [("dense_lhs", 0.0), ("half_zero_lhs", 0.5)] {
        let lhs = sparse_lhs(Shape2::new(gm, gk), zero_frac, 5);
        let (dense_ms, dense_out) = time_median(reps, || lhs.matmul(&rhs).unwrap());
        let (skip_ms, skip_out) = time_median(reps, || lhs.matmul_sparse_lhs(&rhs).unwrap());
        assert_eq!(dense_out, skip_out, "gemm variants disagree ({label})");
        println!(
            "gemm {label:<18} {gm}x{gk}x{gn}  dense {dense_ms:8.2} ms   zero-skip {skip_ms:8.2} ms"
        );
        gemm_rows.push(Json::Obj(vec![
            ("lhs".to_string(), label.into()),
            ("zero_frac".to_string(), zero_frac.into()),
            ("shape".to_string(), format!("{gm}x{gk}x{gn}").into()),
            ("matmul_ms".to_string(), dense_ms.into()),
            ("matmul_sparse_lhs_ms".to_string(), skip_ms.into()),
        ]));
    }
    // --- Kernels section: frozen pre-plan baselines vs the single-core
    // kernel engine, all at 1 thread, bit-identity asserted per entry. ---
    println!("kernels (1 thread, frozen scalar baseline vs current):");
    let fmt = Q16Format::default();
    let (gm2, gk2, gn2) = if args.smoke {
        (32, 64, 128)
    } else {
        (96, 288, 768)
    };
    let mm_lhs = sparse_lhs(Shape2::new(gm2, gk2), 0.0, 13);
    let mm_rhs = sparse_lhs(Shape2::new(gk2, gn2), 0.0, 17);
    let tm_lhs = sparse_lhs(Shape2::new(gk2, gm2), 0.0, 19);
    let prof_detail = format!("n{prof_images} c{c_in}->{c_out} {hw}x{hw} k3");
    let kernels = vec![
        bench_kernel(
            "executor_exact",
            &detail,
            reps,
            || baseline::execute_conv(&conv, &input, &exact_cfg, false),
            || execute_conv(&conv, &input, &exact_cfg),
            exec_results_identical,
        ),
        bench_kernel(
            "executor_predictive",
            &detail,
            reps,
            || baseline::execute_conv(&conv, &input, &pred_cfg, true),
            || execute_conv_stats(&conv, &input, &pred_cfg),
            exec_results_identical,
        ),
        bench_kernel(
            "executor_q16",
            &detail,
            reps,
            || baseline::execute_conv_q16(&conv, &input, &exact_cfg, fmt),
            || execute_conv_q16(&conv, &input, &exact_cfg, fmt),
            exec_results_identical,
        ),
        bench_kernel(
            "optimizer_profiling",
            &prof_detail,
            reps,
            || {
                profile_layer_kernels_baseline(
                    &conv,
                    &prof_input,
                    &[1, 2, 4, 8],
                    &[0.25, 0.5, 0.9],
                    1.0,
                )
            },
            || profile_layer_kernels(&conv, &prof_input, &[1, 2, 4, 8], &[0.25, 0.5, 0.9], 1.0),
            |a, b| a == b,
        ),
        bench_kernel(
            "matmul",
            &format!("{gm2}x{gk2}x{gn2}"),
            reps,
            || matmul_scalar(&mm_lhs, &mm_rhs),
            || mm_lhs.matmul(&mm_rhs).unwrap(),
            |a: &Tensor2, b: &Tensor2| a.as_slice() == b.as_slice(),
        ),
        bench_kernel(
            "t_matmul",
            &format!("{gk2}x{gm2}ᵀx{gn2}"),
            reps,
            || t_matmul_scalar(&tm_lhs, &mm_rhs),
            || tm_lhs.t_matmul(&mm_rhs).unwrap(),
            |a: &Tensor2, b: &Tensor2| a.as_slice() == b.as_slice(),
        ),
    ];
    par::set_threads(args.threads);

    let git_rev = snapea_obs::run::git_rev(std::path::Path::new("."))
        .map(Json::from)
        .unwrap_or(Json::Null);
    let report = Json::Obj(vec![
        ("generated_by".to_string(), "perfbench".into()),
        ("git_rev".to_string(), git_rev.clone()),
        ("smoke".to_string(), args.smoke.into()),
        ("reps".to_string(), reps.into()),
        ("threads_serial".to_string(), 1u64.into()),
        ("threads_parallel".to_string(), args.threads.into()),
        ("available_parallelism".to_string(), avail.into()),
        ("benches".to_string(), Json::Arr(benches)),
        ("gemm".to_string(), Json::Arr(gemm_rows)),
    ]);
    if let Err(e) = std::fs::write(&args.out, format!("{report}\n")) {
        eprintln!("perfbench: cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("wrote {}", args.out);

    let kernels_report = Json::Obj(vec![
        ("generated_by".to_string(), "perfbench --kernels".into()),
        ("git_rev".to_string(), git_rev),
        ("smoke".to_string(), args.smoke.into()),
        ("reps".to_string(), reps.into()),
        ("threads".to_string(), 1u64.into()),
        ("available_parallelism".to_string(), avail.into()),
        ("kernels".to_string(), Json::Arr(kernels)),
    ]);
    if let Err(e) = std::fs::write(&args.kernels_out, format!("{kernels_report}\n")) {
        eprintln!("perfbench: cannot write {}: {e}", args.kernels_out);
        std::process::exit(1);
    }
    println!("wrote {}", args.kernels_out);
}
