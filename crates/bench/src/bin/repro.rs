//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p snapea-bench --bin repro            # everything
//! cargo run --release -p snapea-bench --bin repro -- fig8    # one experiment
//! ```
//!
//! Results are printed and also written as JSON under `repro-results/`.
//! Trained models and optimizer outputs are cached under `repro-cache/`.

use snapea_bench::context::{all_trained, datasets, optimized_params};
use snapea_bench::experiments::{
    self, ExperimentResult,
};
use std::io::Write;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = args.iter().map(String::as_str).collect();
    let all = wanted.is_empty() || wanted.contains(&"all");
    let want = |id: &str| all || wanted.contains(&id);

    let t0 = Instant::now();
    eprintln!("[repro] building datasets...");
    let data = datasets();
    eprintln!("[repro] training workloads (cached under repro-cache/)...");
    let trained = all_trained(&data);
    for tw in &trained {
        eprintln!(
            "[repro]   {} ready, eval accuracy {:.1}% ({:.1}s elapsed)",
            tw.workload.name(),
            tw.eval_accuracy * 100.0,
            t0.elapsed().as_secs_f64()
        );
    }

    let params_at = |tw: &snapea_bench::context::TrainedWorkload, eps: f64| {
        optimized_params(tw, &data, eps)
    };
    // Budget-3% parameters: the feasible sets nest (anything acceptable at
    // 1% or 2% is acceptable at 3%), so take the cheapest solution the
    // greedy optimizer found across the nested budgets.
    let params3 = |tw: &snapea_bench::context::TrainedWorkload| {
        let refs: Vec<&snapea_nn::data::LabeledImage> = data.opt.iter().take(12).collect();
        let batch = snapea_nn::data::SynthShapes::batch_refs(&refs);
        [0.01, 0.02, 0.03]
            .into_iter()
            .map(|eps| params_at(tw, eps))
            .min_by_key(|p| {
                snapea::spec_net::profile_network(&tw.net, p, &batch, false).total_ops()
            })
            .expect("non-empty candidate list")
    };

    let mut results: Vec<ExperimentResult> = Vec::new();
    if want("table1") {
        results.push(experiments::table1(&trained));
    }
    if want("table2") {
        results.push(experiments::table2());
    }
    if want("table3") {
        results.push(experiments::table3());
    }
    if want("fig1") {
        results.push(experiments::fig1(&trained, &data));
    }
    if want("fig2") {
        results.push(experiments::fig2(&trained, &data));
    }
    if want("fig8") {
        results.push(experiments::fig8(&trained, &data));
    }
    if want("fig9") {
        results.push(experiments::fig9(&trained, &data, &params3));
    }
    if want("fig10") {
        results.push(experiments::fig10(&trained, &data, &params3));
    }
    if want("table4") {
        results.push(experiments::table4(&trained, &data, &params3));
    }
    if want("table5") {
        results.push(experiments::table5(&trained, &data, &params3));
    }
    if want("fig11") {
        results.push(experiments::fig11(&trained, &data, &params_at));
    }
    if want("fig12") {
        results.push(experiments::fig12(&trained, &data, &params3));
    }
    if want("ablation_selection") {
        results.push(snapea_bench::ablation::ablation_selection(&trained, &data));
    }
    if want("sweep_pes") {
        results.push(snapea_bench::ablation::sweep_pe_array(&trained, &data));
    }
    if want("related_zeroskip") {
        results.push(snapea_bench::ablation::related_zeroskip(&trained, &data));
    }

    let _ = std::fs::create_dir_all("repro-results");
    for r in &results {
        println!("=== {} ===", r.title);
        println!("{}", r.text);
        let path = format!("repro-results/{}.json", r.id);
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = writeln!(
                f,
                "{}",
                serde_json::to_string_pretty(&r.json).expect("json serialises")
            );
        }
    }
    eprintln!(
        "[repro] done: {} experiment(s) in {:.1}s",
        results.len(),
        t0.elapsed().as_secs_f64()
    );
}
