//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p snapea-bench --bin repro            # everything
//! cargo run --release -p snapea-bench --bin repro -- fig8    # one experiment
//! cargo run --release -p snapea-bench --bin repro -- --quiet fig8
//! ```
//!
//! Results are printed and also written as JSON under `repro-results/`.
//! Trained models and optimizer outputs are cached under `repro-cache/`.
//!
//! Every invocation is stamped as a run: progress goes through the obs
//! stderr sink (silence it with `--quiet` or `SNAPEA_LOG=off`) and the full
//! event log plus a manifest (git rev, experiment ids, elapsed) land in
//! `repro-results/<run>/` — summarise with `snapea-tool report
//! repro-results/<run>/events.jsonl`.

use snapea_bench::context::{all_trained, datasets, optimized_params};
use snapea_bench::experiments::{self, ExperimentResult};
use std::io::Write;
use std::path::Path;
use std::time::Instant;

#[allow(clippy::disallowed_methods)] // top-level timing of a benchmark binary
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quiet = args.iter().any(|a| a == "--quiet" || a == "-q");
    let ids: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| !a.starts_with('-'))
        .collect();
    let all = ids.is_empty() || ids.contains(&"all");
    let want = |id: &str| all || ids.contains(&id);

    // Observability: interactive progress on stderr (unless silenced), the
    // full event log in a fresh run directory, plus any SNAPEA_LOG_FILE tee.
    if !quiet && snapea_obs::sink::stderr_wanted() {
        snapea_obs::sink::install(Box::new(snapea_obs::StderrSink));
    }
    #[allow(clippy::disallowed_methods)] // sanctioned config read (R1)
    if let Ok(path) = std::env::var("SNAPEA_LOG_FILE") {
        if let Ok(fs) = snapea_obs::FileSink::create(Path::new(&path)) {
            snapea_obs::sink::install(Box::new(fs));
        }
    }
    let run = snapea_obs::run::start(Path::new("repro-results"));

    let t0 = Instant::now();
    let data = {
        let _span = snapea_obs::span!("repro/datasets");
        snapea_obs::event!("run/phase", phase = "datasets");
        datasets()
    };
    // Training is by far the most expensive phase; skip it when every
    // requested experiment is model-free (hardware tables, PE timelines).
    let needs_train = all
        || ids
            .iter()
            .any(|id| !matches!(*id, "table2" | "table3" | "petrace"));
    let trained = if needs_train {
        let _span = snapea_obs::span!("repro/train");
        snapea_obs::event!("run/phase", phase = "train", cache = "repro-cache/");
        all_trained(&data)
    } else {
        Vec::new()
    };
    for tw in &trained {
        snapea_obs::event!(
            "run/workload",
            workload = tw.workload.name(),
            eval_accuracy = tw.eval_accuracy,
            elapsed_s = t0.elapsed().as_secs_f64(),
        );
    }

    let params_at =
        |tw: &snapea_bench::context::TrainedWorkload, eps: f64| optimized_params(tw, &data, eps);
    // Budget-3% parameters: the feasible sets nest (anything acceptable at
    // 1% or 2% is acceptable at 3%), so take the cheapest solution the
    // greedy optimizer found across the nested budgets.
    let params3 = |tw: &snapea_bench::context::TrainedWorkload| {
        let refs: Vec<&snapea_nn::data::LabeledImage> = data.opt.iter().take(12).collect();
        let batch = snapea_nn::data::SynthShapes::batch_refs(&refs);
        [0.01, 0.02, 0.03]
            .into_iter()
            .map(|eps| params_at(tw, eps))
            .min_by_key(|p| {
                snapea::spec_net::profile_network(&tw.net, p, &batch, false).total_ops()
            })
            .expect("non-empty candidate list")
    };

    let mut results: Vec<ExperimentResult> = Vec::new();
    let mut ran_ids: Vec<&'static str> = Vec::new();
    let mut run_exp = |id: &'static str, f: &dyn Fn() -> ExperimentResult| {
        if !want(id) {
            return;
        }
        let span = snapea_obs::span!("repro/experiment", id);
        let r = f();
        snapea_obs::event!("run/experiment", id = id, ms = span.elapsed_ms());
        drop(span);
        ran_ids.push(id);
        results.push(r);
    };
    run_exp("table1", &|| experiments::table1(&trained));
    run_exp("table2", &experiments::table2);
    run_exp("table3", &experiments::table3);
    run_exp("petrace", &experiments::petrace);
    run_exp("fig1", &|| experiments::fig1(&trained, &data));
    run_exp("fig2", &|| experiments::fig2(&trained, &data));
    run_exp("fig8", &|| experiments::fig8(&trained, &data));
    run_exp("fig9", &|| experiments::fig9(&trained, &data, &params3));
    run_exp("fig10", &|| experiments::fig10(&trained, &data, &params3));
    run_exp("table4", &|| experiments::table4(&trained, &data, &params3));
    run_exp("table5", &|| experiments::table5(&trained, &data, &params3));
    run_exp("fig11", &|| experiments::fig11(&trained, &data, &params_at));
    run_exp("fig12", &|| experiments::fig12(&trained, &data, &params3));
    run_exp("ablation_selection", &|| {
        snapea_bench::ablation::ablation_selection(&trained, &data)
    });
    run_exp("sweep_pes", &|| {
        snapea_bench::ablation::sweep_pe_array(&trained, &data)
    });
    run_exp("related_zeroskip", &|| {
        snapea_bench::ablation::related_zeroskip(&trained, &data)
    });
    run_exp("artifact", &|| {
        experiments::artifact(&trained, &data, &params3)
    });

    let _ = std::fs::create_dir_all("repro-results");
    for r in &results {
        println!("=== {} ===", r.title);
        println!("{}", r.text);
        let path = format!("repro-results/{}.json", r.id);
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = writeln!(
                f,
                "{}",
                serde_json::to_string_pretty(&r.json).expect("json serialises")
            );
        }
    }
    snapea_obs::event!(
        "run/done",
        experiments = results.len() as u64,
        elapsed_s = t0.elapsed().as_secs_f64(),
    );
    if let Some(mut run) = run {
        run.set(
            "experiments",
            snapea_obs::Json::Arr(ran_ids.iter().map(|&id| id.into()).collect()),
        );
        run.set("quiet", quiet.into());
        run.set("artifact_version", snapea::artifact::VERSION.into());
        run.set(
            "workloads",
            snapea_obs::Json::Arr(trained.iter().map(|tw| tw.workload.name().into()).collect()),
        );
        if let Some(path) = run.finish(Path::new(".")) {
            println!("run manifest: {}", path.display());
        }
    }
}
