//! Scratch probe for training hyper-parameter debugging (not part of the
//! documented surface; see `repro` for the real harness).

use snapea_nn::data::SynthShapes;
use snapea_nn::train::{evaluate, TrainConfig, Trainer};
use snapea_nn::zoo::{Workload, INPUT_SIZE};
use snapea_tensor::init;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("SqueezeNet");
    let lr: f32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.04);
    let epochs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(10);
    let w = Workload::ALL
        .into_iter()
        .find(|w| w.name() == which)
        .expect("workload name");
    let gen = SynthShapes::new(INPUT_SIZE, 10);
    let train = gen.generate(400, 0x7EA1);
    let eval = gen.generate(200, 0xE7A1);
    let mut net = w.build(10);
    let mut trainer = Trainer::new(TrainConfig {
        lr,
        momentum: 0.9,
        weight_decay: 1e-4,
        batch_size: 20,
    });
    let mut rng = init::rng(0xF00D);
    for e in 0..epochs {
        let s = trainer.epoch(&mut net, &train, &mut rng);
        println!(
            "epoch {e:2}  loss {:.4}  train-acc {:.3}",
            s.loss, s.accuracy
        );
    }
    println!("eval acc: {:.3}", evaluate(&net, &eval, 32));
}
