//! Scratch diagnostic: per-layer exact-mode savings and cycle breakdown.

use snapea::params::NetworkParams;
use snapea::spec_net::profile_network;
use snapea_accel::sim::simulate;
use snapea_accel::workload::network_workload;
use snapea_accel::{AccelConfig, EnergyModel};
use snapea_bench::context::{datasets, trained_workload};
use snapea_nn::data::{LabeledImage, SynthShapes};
use snapea_nn::zoo::Workload;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "AlexNet".into());
    let w = Workload::ALL
        .into_iter()
        .find(|w| w.name() == which)
        .expect("workload name");
    // Progress flows through the obs stderr sink (silenced by
    // `SNAPEA_LOG=off`, teed to a JSONL file by `SNAPEA_LOG_FILE`); the
    // tables below stay on stdout.
    snapea_obs::sink::init_from_env();
    let data = datasets();
    let tw = trained_workload(w, &data);
    let refs: Vec<&LabeledImage> = data.eval.iter().take(8).collect();
    let batch = SynthShapes::batch_refs(&refs);
    let profile = {
        let _span = snapea_obs::span!("diag/profile", w.name());
        profile_network(&tw.net, &NetworkParams::new(), &batch, false)
    };
    let model = EnergyModel::default();
    let wl = network_workload(w.name(), &tw.net, &batch, &profile);
    let (sn, ey) = {
        let _span = snapea_obs::span!("diag/simulate", w.name());
        let sn = simulate(&AccelConfig::snapea(), &model, &wl);
        let ey = simulate(&AccelConfig::eyeriss(), &model, &wl.to_dense());
        (sn, ey)
    };
    println!(
        "{:30} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "layer", "savings%", "sn_cyc", "ey_cyc", "speedup", "idle%", "wlen"
    );
    for (((id, name, p), s), e) in profile.layers.iter().zip(&sn.per_layer).zip(&ey.per_layer) {
        let _ = id;
        let idle = s.idle_lane_cycles as f64
            / (s.cycles as f64 * AccelConfig::snapea().total_macs() as f64);
        // Fraction of windows that run the full window length, and the mean
        // termination point of early-terminated windows.
        let mut full = 0u64;
        let mut early_ops = 0u64;
        let mut early_n = 0u64;
        for img in 0..p.images() {
            for k in 0..p.kernels() {
                for &o in p.kernel_ops(img, k) {
                    if o as usize >= p.window_len() {
                        full += 1;
                    } else {
                        early_ops += o as u64;
                        early_n += 1;
                    }
                }
            }
        }
        let total_w = (full + early_n).max(1);
        println!(
            "{:30} {:>8.1} {:>8} {:>8} {:>8.2} {:>8.1} {:>8} full%{:>5.1} term@{:>5.2}",
            name,
            p.savings() * 100.0,
            s.cycles,
            e.cycles,
            e.cycles as f64 / s.cycles.max(1) as f64,
            idle * 100.0,
            p.window_len(),
            full as f64 / total_w as f64 * 100.0,
            if early_n > 0 {
                early_ops as f64 / early_n as f64 / p.window_len() as f64
            } else {
                f64::NAN
            },
        );
    }
    println!(
        "TOTAL savings {:.1}%  sn {} ey {} speedup {:.2} energy {:.2}",
        profile.savings() * 100.0,
        sn.cycles,
        ey.cycles,
        sn.speedup_over(&ey),
        sn.energy_reduction_over(&ey)
    );
    snapea_obs::event!(
        "diag/summary",
        workload = w.name(),
        savings = profile.savings(),
        speedup = sn.speedup_over(&ey),
        energy_reduction = sn.energy_reduction_over(&ey),
    );
    snapea_obs::sink::flush();
}
