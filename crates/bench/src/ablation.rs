//! Ablation studies of SnaPEA's design choices (DESIGN.md §3):
//!
//! 1. **Speculative-weight selection** — the paper (§IV-A) argues that
//!    picking the `N` largest-magnitude weights outright "drastically
//!    declines" accuracy, because it ignores the data-dependent inputs the
//!    small weights multiply; group-based selection (ascending sort → `N`
//!    groups → one largest-magnitude representative each) keeps small weights
//!    in play. This experiment pits the two against each other at equal `N`
//!    and threshold-selection policy.
//! 2. **Sign reordering on/off** — exact mode with reordering vs a
//!    sign-check-only machine that keeps the original weight order (sound
//!    only once the remaining weights are all negative; here we emulate by
//!    disabling reordering, which collapses savings).

use crate::context::{Datasets, TrainedWorkload};
use crate::table::{pct, Table};
use serde_json::json;
use snapea::exec::{
    execute_conv_stats, layer_plan, GatherTable, KernelExec, LayerConfig, PredictionStats,
};
use snapea::params::KernelParams;
use snapea::pau::Pau;
use snapea::reorder::{magnitude_reorder, predictive_reorder, ReorderedKernel};
use snapea_nn::data::{LabeledImage, SynthShapes};
use snapea_nn::loss::argmax_rows;
use snapea_tensor::Tensor4;

use crate::experiments::ExperimentResult;

/// Threshold for one kernel/ordering: the `q`-quantile of the speculative
/// partial sums of truly-negative windows over `input`.
fn threshold_for(
    r: &ReorderedKernel,
    gather: &GatherTable,
    input: &Tensor4,
    bias: f32,
    q: f64,
) -> f32 {
    let mut neg_partials = Vec::new();
    for img in 0..input.shape().n {
        let item = input.item(img);
        for w in 0..gather.windows() {
            let taps = gather.window(w);
            let mut acc = bias;
            let mut spec = bias;
            for (p, (&wt, &idx)) in r.weights().iter().zip(r.order()).enumerate() {
                if p == r.spec_len() {
                    spec = acc;
                }
                let off = taps[idx as usize];
                if off >= 0 {
                    acc += item[off as usize] * wt;
                }
            }
            if r.spec_len() == r.len() {
                spec = acc;
            }
            if acc < 0.0 {
                neg_partials.push(spec);
            }
        }
    }
    if neg_partials.is_empty() {
        return f32::NEG_INFINITY; // never fires
    }
    neg_partials.sort_by(f32::total_cmp);
    let idx = ((neg_partials.len() as f64 - 1.0) * q).round() as usize;
    neg_partials[idx.min(neg_partials.len() - 1)]
}

/// Runs a whole network with every conv layer speculating through the given
/// reordering strategy; returns `(accuracy, executed_ops, full_macs)`.
fn run_with_strategy(
    tw: &TrainedWorkload,
    images: &[LabeledImage],
    n: usize,
    quantile: f64,
    strategy: impl Fn(&[f32], usize) -> ReorderedKernel,
) -> (f64, u64, u64, PredictionStats) {
    let refs: Vec<&LabeledImage> = images.iter().collect();
    let batch = SynthShapes::batch_refs(&refs);
    let acts = tw.net.forward(&batch);
    let mut ops = 0u64;
    let mut full = 0u64;
    let mut stats = PredictionStats::default();
    let spec_acts = tw.net.forward_with(&batch, &mut |id, conv, x| {
        // Served from the executor's memoised plan cache — the same layer
        // geometry recurs for every strategy/quantile combination.
        let plan = layer_plan(x.shape(), conv.geom(), conv.c_in());
        let gather = plan.gather();
        let kernels: Vec<KernelExec> = (0..conv.c_out())
            .map(|k| {
                let weights = conv.weight().item(k);
                let groups = n.min(weights.len());
                let r = strategy(weights, groups);
                let th = threshold_for(
                    &r,
                    gather,
                    &acts[tw.net.node(id).inputs[0]],
                    conv.bias()[k],
                    quantile,
                );
                let pau = Pau::predictive(&r, KernelParams::new(th, groups));
                KernelExec::new(r, pau)
            })
            .collect();
        let result = execute_conv_stats(conv, x, &LayerConfig::from_kernels(kernels));
        ops += result.profile.total_ops();
        full += result.profile.full_macs();
        stats.merge(&result.stats);
        Some(result.output)
    });
    // lint:allow(P1) forward returns one activation per node and the graph is non-empty by construction
    let logits = spec_acts.last().expect("non-empty graph").to_matrix();
    let preds = argmax_rows(&logits);
    let acc = preds
        .iter()
        .zip(images)
        .filter(|(p, d)| **p == d.label)
        .count() as f64
        / images.len() as f64;
    (acc, ops, full, stats)
}

/// Ablation: group-based vs magnitude-based speculative-weight selection.
pub fn ablation_selection(trained: &[TrainedWorkload], data: &Datasets) -> ExperimentResult {
    let images = &data.eval[..data.eval.len().min(64)];
    let mut t = Table::new(vec![
        "Network",
        "Strategy",
        "Accuracy",
        "Acc. drop",
        "MACs saved",
        "TN rate",
        "FN rate",
    ]);
    let mut rows = Vec::new();
    for tw in trained {
        let base = tw.eval_accuracy;
        for (label, strat) in [
            (
                "group (paper)",
                predictive_reorder as fn(&[f32], usize) -> ReorderedKernel,
            ),
            (
                "magnitude",
                magnitude_reorder as fn(&[f32], usize) -> ReorderedKernel,
            ),
        ] {
            let (acc, ops, full, stats) = run_with_strategy(tw, images, 8, 0.9, strat);
            let saved = 1.0 - ops as f64 / full as f64;
            t.row(vec![
                tw.workload.name().to_string(),
                label.to_string(),
                pct(acc),
                format!("{:.1} pp", (base - acc) * 100.0),
                pct(saved),
                pct(stats.true_negative_rate()),
                pct(stats.false_negative_rate()),
            ]);
            rows.push(json!({
                "network": tw.workload.name(),
                "strategy": label,
                "accuracy": acc,
                "accuracy_drop": base - acc,
                "mac_savings": saved,
                "true_negative_rate": stats.true_negative_rate(),
                "false_negative_rate": stats.false_negative_rate(),
            }));
        }
    }
    let note = "Paper §IV-A claims magnitude-only selection 'drastically declines' accuracy.\n\
                REPRODUCTION FINDING: with per-kernel conditional-quantile thresholds (both\n\
                strategies targeting the same true-negative coverage), magnitude selection\n\
                shows the LOWER false-negative rate on the mini workloads: at window lengths\n\
                of ~100-400 the few largest-magnitude weights carry most of the dot product's\n\
                variance, so their partial sum is the better sign predictor. The paper's claim\n\
                plausibly holds at ImageNet window lengths (1000+) and under its own threshold\n\
                procedure; see EXPERIMENTS.md for discussion.";
    ExperimentResult {
        id: "ablation_selection",
        title: "Ablation: speculative-weight selection strategy (N=8, q=0.9 thresholds)".into(),
        text: format!("{}\n{note}\n", t.render()),
        json: json!({"rows": rows}),
    }
}

/// Extension: PE-array scaling (paper §VI-A notes "the SnaPEA architecture
/// can be scaled up to larger numbers of PEs"). Sweeps the array dimension
/// at 4 lanes/PE and reports speedup over the 256-MAC baseline plus
/// utilisation — showing where mini-workload parallelism saturates.
pub fn sweep_pe_array(trained: &[TrainedWorkload], data: &Datasets) -> ExperimentResult {
    use snapea::params::NetworkParams;
    use snapea::spec_net::profile_network;
    use snapea_accel::sim::simulate;
    use snapea_accel::workload::network_workload;
    use snapea_accel::{AccelConfig, EnergyModel};

    let refs: Vec<&LabeledImage> = data.eval.iter().take(8).collect();
    let batch = SynthShapes::batch_refs(&refs);
    let model = EnergyModel::default();
    let dims = [4usize, 8, 12, 16];
    let mut header = vec!["Network".to_string()];
    for d in dims {
        header.push(format!("{d}x{d} ({} MACs)", d * d * 4));
    }
    let mut t = Table::new(header);
    let mut rows = Vec::new();
    for tw in trained {
        let profile = profile_network(&tw.net, &NetworkParams::new(), &batch, false);
        let wl = network_workload(tw.workload.name(), &tw.net, &batch, &profile);
        let ey = simulate(&AccelConfig::eyeriss(), &model, &wl.to_dense());
        let mut cells = vec![tw.workload.name().to_string()];
        let mut series = Vec::new();
        for d in dims {
            let cfg = AccelConfig {
                pe_rows: d,
                pe_cols: d,
                ..AccelConfig::snapea()
            };
            let sn = simulate(&cfg, &model, &wl);
            let sp = sn.speedup_over(&ey);
            cells.push(format!("{sp:.2}x @{:.0}%", sn.utilization() * 100.0));
            series.push(json!({"dim": d, "speedup": sp, "utilization": sn.utilization()}));
        }
        t.row(cells);
        rows.push(json!({"network": tw.workload.name(), "series": series}));
    }
    let note = "Exact mode, speedup vs the fixed 256-MAC baseline. Throughput grows with the\n\
                array until the mini workloads run out of parallel windows and utilisation\n\
                collapses — the scaling head-room the paper alludes to is workload-bound.";
    ExperimentResult {
        id: "sweep_pes",
        title: "Extension: PE-array scaling at 4 lanes/PE".into(),
        text: format!("{}\n{note}\n", t.render()),
        json: json!({"networks": rows}),
    }
}

/// Related-work comparison (paper §VII): Cnvlutin-style input-zero skipping
/// vs SnaPEA's exact early termination vs the two combined, as MAC-level
/// savings per network. The paper argues the approaches are orthogonal; the
/// combined column quantifies that.
pub fn related_zeroskip(trained: &[TrainedWorkload], data: &Datasets) -> ExperimentResult {
    use snapea::exec::{combined_profile, execute_conv, zero_skip_profile};
    use snapea_nn::graph::Op;

    let refs: Vec<&LabeledImage> = data.eval.iter().take(8).collect();
    let batch = SynthShapes::batch_refs(&refs);
    let mut t = Table::new(vec![
        "Network",
        "SnaPEA exact",
        "Zero-skip (Cnvlutin-like)",
        "Combined",
    ]);
    let mut rows = Vec::new();
    for tw in trained {
        let acts = tw.net.forward(&batch);
        let (mut sn, mut zs, mut co, mut full) = (0u64, 0u64, 0u64, 0u64);
        for id in tw.net.conv_ids() {
            if !tw.net.feeds_only_relu(id) {
                continue;
            }
            let Op::Conv(conv) = &tw.net.node(id).op else {
                // lint:allow(P1) conv_ids yields only nodes whose op is Op::Conv
                unreachable!("conv_ids returns conv nodes");
            };
            let input = &acts[tw.net.node(id).inputs[0]];
            let cfg = LayerConfig::exact(conv);
            let p_sn = execute_conv(conv, input, &cfg).profile;
            let p_zs = zero_skip_profile(conv, input);
            let p_co = combined_profile(conv, input, &cfg);
            sn += p_sn.total_ops();
            zs += p_zs.total_ops();
            co += p_co.total_ops();
            full += p_sn.full_macs();
        }
        let sav = |ops: u64| 1.0 - ops as f64 / full as f64;
        t.row(vec![
            tw.workload.name().to_string(),
            pct(sav(sn)),
            pct(sav(zs)),
            pct(sav(co)),
        ]);
        rows.push(json!({
            "network": tw.workload.name(),
            "snapea_savings": sav(sn),
            "zero_skip_savings": sav(zs),
            "combined_savings": sav(co),
        }));
    }
    let note = "MAC-level savings over the dense convolution (exact mode, no accuracy loss\n\
                anywhere). Zero-skipping exploits input sparsity, SnaPEA exploits output\n\
                negativity; combined > max(either) confirms the paper's orthogonality claim.";
    ExperimentResult {
        id: "related_zeroskip",
        title: "Related work: input-zero skipping vs early termination vs combined".into(),
        text: format!("{}\n{note}\n", t.render()),
        json: json!({"rows": rows}),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapea_nn::zoo::Workload;

    #[test]
    fn strategies_run_and_save_macs() {
        // Untrained net is fine for a smoke test of the machinery.
        let net = Workload::AlexNet.build(4);
        let tw = TrainedWorkload {
            workload: Workload::AlexNet,
            net,
            eval_accuracy: 0.25,
        };
        let images = SynthShapes::new(snapea_nn::zoo::INPUT_SIZE, 4).generate(4, 1);
        let (acc_g, ops_g, full, _) = run_with_strategy(&tw, &images, 4, 0.9, predictive_reorder);
        let (acc_m, ops_m, _, _) = run_with_strategy(&tw, &images, 4, 0.9, magnitude_reorder);
        assert!(ops_g < full && ops_m < full);
        assert!((0.0..=1.0).contains(&acc_g));
        assert!((0.0..=1.0).contains(&acc_m));
    }
}
