//! Experiment harness for the SnaPEA reproduction.
//!
//! The [`context`] module trains (and caches) the four mini workloads on
//! SynthShapes and runs (and caches) the Algorithm-1 optimizer per accuracy
//! budget; the [`experiments`] module regenerates every table and figure of
//! the paper's evaluation (see DESIGN.md §3 for the experiment index); the
//! `repro` binary prints them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod context;
pub mod experiments;
pub mod table;
