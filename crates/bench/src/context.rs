//! Trained models, datasets and optimizer outcomes, cached on disk.
//!
//! Training the four mini workloads and running the Algorithm-1 optimizer
//! are the expensive steps of the reproduction; both are deterministic, so
//! their results are cached as JSON under `repro-cache/` and reused across
//! `repro` invocations and bench runs.

use snapea::optimizer::{Optimizer, OptimizerConfig};
use snapea::params::NetworkParams;
use snapea_nn::data::{LabeledImage, SynthShapes};
use snapea_nn::graph::Graph;
use snapea_nn::train::{evaluate, TrainConfig, Trainer};
use snapea_nn::zoo::{Workload, INPUT_SIZE};
use snapea_tensor::init;
use std::fs;
use std::path::{Path, PathBuf};

/// Number of classes in all experiments.
pub const CLASSES: usize = 10;
/// Training-set size.
pub const TRAIN_IMAGES: usize = 400;
/// Evaluation-set size (plays the role of the ILSVRC validation set).
pub const EVAL_IMAGES: usize = 200;
/// Optimization-set size (Algorithm 1's input dataset `D`).
pub const OPT_IMAGES: usize = 100;
/// Training epochs.
pub const EPOCHS: usize = 30;

/// Deterministic dataset seeds (train / eval / opt are disjoint streams).
const SEED_TRAIN: u64 = 0x7EA1;
const SEED_EVAL: u64 = 0xE7A1;
const SEED_OPT: u64 = 0x0071;

/// The experiment datasets.
#[derive(Debug, Clone)]
pub struct Datasets {
    /// Training images.
    pub train: Vec<LabeledImage>,
    /// Held-out evaluation images.
    pub eval: Vec<LabeledImage>,
    /// Optimization dataset for Algorithm 1.
    pub opt: Vec<LabeledImage>,
}

/// Builds the shared datasets.
pub fn datasets() -> Datasets {
    let gen = SynthShapes::new(INPUT_SIZE, CLASSES);
    Datasets {
        train: gen.generate(TRAIN_IMAGES, SEED_TRAIN),
        eval: gen.generate(EVAL_IMAGES, SEED_EVAL),
        opt: gen.generate(OPT_IMAGES, SEED_OPT),
    }
}

/// A trained workload.
#[derive(Debug, Clone)]
pub struct TrainedWorkload {
    /// Which paper workload this is.
    pub workload: Workload,
    /// The trained network.
    pub net: Graph,
    /// Accuracy on the evaluation set.
    pub eval_accuracy: f64,
}

/// Where cache files live (workspace-relative, overridable for tests).
#[allow(clippy::disallowed_methods)] // sanctioned config read (R1)
pub fn cache_dir() -> PathBuf {
    std::env::var_os("SNAPEA_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("repro-cache"))
}

fn model_path(dir: &Path, w: Workload) -> PathBuf {
    dir.join(format!("{}.model.json", w.name().to_lowercase()))
}

fn params_path(dir: &Path, w: Workload, eps_milli: u32) -> PathBuf {
    dir.join(format!(
        "{}.params.eps{eps_milli}.json",
        w.name().to_lowercase()
    ))
}

/// Trains one workload (or loads it from cache). Deterministic in all inputs.
pub fn trained_workload(w: Workload, data: &Datasets) -> TrainedWorkload {
    let _span = snapea_obs::span!("train/workload", w.name());
    let dir = cache_dir();
    let path = model_path(&dir, w);
    if let Ok(text) = fs::read_to_string(&path) {
        if let Ok(net) = serde_json::from_str::<Graph>(&text) {
            let eval_accuracy = evaluate(&net, &data.eval, 32);
            snapea_obs::event!(
                "train/loaded",
                workload = w.name(),
                eval_accuracy = eval_accuracy,
                cache = path.display().to_string(),
            );
            return TrainedWorkload {
                workload: w,
                net,
                eval_accuracy,
            };
        }
    }
    let mut net = w.build(CLASSES);
    let mut trainer = Trainer::new(TrainConfig {
        lr: 0.01,
        momentum: 0.9,
        weight_decay: 1e-4,
        batch_size: 20,
    });
    let mut rng = init::rng(0xF00D ^ w.year() as u64);
    for epoch in 0..EPOCHS {
        // Step decay: halve the rate twice over the run.
        if epoch == 2 * EPOCHS / 3 || epoch == 5 * EPOCHS / 6 {
            trainer.set_lr(trainer.config().lr * 0.5);
        }
        let _ = trainer.epoch(&mut net, &data.train, &mut rng);
    }
    let eval_accuracy = evaluate(&net, &data.eval, 32);
    snapea_obs::event!(
        "train/done",
        workload = w.name(),
        epochs = EPOCHS as u64,
        eval_accuracy = eval_accuracy,
    );
    let _ = fs::create_dir_all(&dir);
    if let Ok(json) = serde_json::to_string(&net) {
        let _ = fs::write(&path, json);
    }
    TrainedWorkload {
        workload: w,
        net,
        eval_accuracy,
    }
}

/// Runs Algorithm 1 for `trained` at accuracy budget `epsilon` (or loads the
/// parameters from cache). Returns the chosen [`NetworkParams`].
pub fn optimized_params(trained: &TrainedWorkload, data: &Datasets, epsilon: f64) -> NetworkParams {
    let eps_milli = (epsilon * 1000.0).round() as u32;
    let dir = cache_dir();
    let path = params_path(&dir, trained.workload, eps_milli);
    if let Ok(text) = fs::read_to_string(&path) {
        if let Ok(p) = serde_json::from_str::<NetworkParams>(&text) {
            snapea_obs::event!(
                "optimizer/loaded",
                workload = trained.workload.name(),
                epsilon = epsilon,
                cache = path.display().to_string(),
            );
            return p;
        }
    }
    let _span = snapea_obs::span!("optimizer/workload", trained.workload.name());
    let cfg = OptimizerConfig::with_epsilon(epsilon);
    let out = Optimizer::new(&trained.net, &data.opt, cfg).run();
    let _ = fs::create_dir_all(&dir);
    if let Ok(json) = serde_json::to_string(&out.params) {
        let _ = fs::write(&path, json);
    }
    out.params
}

/// Trains all four workloads.
pub fn all_trained(data: &Datasets) -> Vec<TrainedWorkload> {
    Workload::ALL
        .iter()
        .map(|&w| trained_workload(w, data))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_are_disjoint_streams() {
        let d = datasets();
        assert_eq!(d.train.len(), TRAIN_IMAGES);
        assert_eq!(d.eval.len(), EVAL_IMAGES);
        assert_eq!(d.opt.len(), OPT_IMAGES);
        assert_ne!(d.train[0].image, d.eval[0].image);
        assert_ne!(d.train[0].image, d.opt[0].image);
    }
}
