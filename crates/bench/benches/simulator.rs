//! Microbenchmarks of the cycle-level simulator: analytic vs cycle-exact PE
//! engines, and whole-network simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use snapea::exec::LayerProfile;
use snapea_accel::engine::{cycle_exact_pe, run_pe};
use snapea_accel::sim::simulate;
use snapea_accel::workload::{LayerWorkload, NetworkWorkload};
use snapea_accel::{AccelConfig, EnergyModel};
use std::time::Duration;

fn bench_engines(c: &mut Criterion) {
    let ops: Vec<u32> = (0..256).map(|i| (i * 37 % 288) as u32 + 1).collect();
    let slices: Vec<&[u32]> = vec![&ops];
    let mut g = c.benchmark_group("pe_engine_256win_len288");
    g.bench_function("analytic", |b| b.iter(|| run_pe(&slices, 4, 288)));
    g.bench_function("cycle_exact", |b| {
        b.iter(|| cycle_exact_pe(&slices, 4, 288))
    });
    g.finish();
}

fn bench_network_sim(c: &mut Criterion) {
    // A synthetic 8-layer network, 16 kernels x 1024 windows each.
    let layers: Vec<LayerWorkload> = (0..8)
        .map(|l| {
            let wl = 72 + l * 24;
            let ops: Vec<u32> = (0..16 * 1024)
                .map(|i| ((i * 31 + l * 7) % wl) as u32 + 1)
                .collect();
            let p = LayerProfile::from_ops(1, 16, 1024, wl, ops);
            LayerWorkload::new(format!("l{l}"), p, 4096).with_spatial(32, 32)
        })
        .collect();
    let net = NetworkWorkload {
        name: "synthetic".into(),
        layers,
    };
    let model = EnergyModel::default();
    let mut g = c.benchmark_group("network_sim_8layers");
    g.bench_function("snapea", |b| {
        b.iter(|| simulate(&AccelConfig::snapea(), &model, &net))
    });
    g.bench_function("eyeriss_dense", |b| {
        let dense = net.to_dense();
        b.iter(|| simulate(&AccelConfig::eyeriss(), &model, &dense))
    });
    g.finish();
}

// The offline build patches criterion with a field-less stub, which trips
// this lint; the real crate constructs a configured struct here.
#[allow(clippy::default_constructed_unit_structs)]
fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_engines, bench_network_sim
}
criterion_main!(benches);
