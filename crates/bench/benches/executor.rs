//! Microbenchmarks of the SnaPEA software executor: dense im2col forward vs
//! exact-mode vs predictive-mode window walking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snapea::exec::{execute_conv, LayerConfig};
use snapea::params::KernelParams;
use snapea_nn::ops::Conv2d;
use snapea_tensor::{im2col::ConvGeom, init, Shape4};
use std::time::Duration;

fn bench_executor(c: &mut Criterion) {
    let mut rng = init::rng(7);
    let conv = Conv2d::new(16, 32, ConvGeom::square(3, 1, 1), &mut rng);
    let input = init::uniform4(Shape4::new(1, 16, 16, 16), 1.0, &mut rng).map(f32::abs);

    let mut g = c.benchmark_group("conv_16x32_3x3_16x16");
    g.bench_function("dense_im2col", |b| b.iter(|| conv.forward(&input)));
    let exact = LayerConfig::exact(&conv);
    g.bench_function("snapea_exact", |b| {
        b.iter(|| execute_conv(&conv, &input, &exact))
    });
    for n in [2usize, 8] {
        let cfg = LayerConfig::predictive_uniform(&conv, KernelParams::new(0.05, n));
        g.bench_with_input(BenchmarkId::new("snapea_predictive", n), &cfg, |b, cfg| {
            b.iter(|| execute_conv(&conv, &input, cfg))
        });
    }
    g.finish();
}

// The offline build patches criterion with a field-less stub, which trips
// this lint; the real crate constructs a configured struct here.
#[allow(clippy::default_constructed_unit_structs)]
fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_executor
}
criterion_main!(benches);
