//! Microbenchmarks of the Algorithm-1 passes: kernel profiling and an
//! end-to-end small optimization.

use criterion::{criterion_group, criterion_main, Criterion};
use snapea::optimizer::profiling::profile_layer_kernels;
use snapea::optimizer::{Optimizer, OptimizerConfig};
use snapea_nn::data::SynthShapes;
use snapea_nn::ops::Conv2d;
use snapea_nn::zoo;
use snapea_tensor::{im2col::ConvGeom, init, Shape4};
use std::time::Duration;

fn bench_profiling(c: &mut Criterion) {
    let mut rng = init::rng(13);
    let conv = Conv2d::new(16, 16, ConvGeom::square(3, 1, 1), &mut rng);
    let input = init::uniform4(Shape4::new(4, 16, 16, 16), 1.0, &mut rng).map(f32::abs);
    c.bench_function("kernel_profiling_16x16_3x3", |b| {
        b.iter(|| profile_layer_kernels(&conv, &input, &[1, 2, 4, 8], &[0.5, 0.9], 0.2))
    });
}

fn bench_optimizer(c: &mut Criterion) {
    let net = zoo::mini_alexnet(4);
    let data = SynthShapes::new(zoo::INPUT_SIZE, 4).generate(8, 3);
    let cfg = OptimizerConfig {
        group_candidates: vec![2, 8],
        threshold_quantiles: vec![0.5],
        local_configs: 2,
        ..OptimizerConfig::with_epsilon(0.1)
    };
    let mut g = c.benchmark_group("optimizer_mini_alexnet");
    g.sample_size(10);
    g.bench_function("algorithm1", |b| {
        b.iter(|| Optimizer::new(&net, &data, cfg.clone()).run())
    });
    g.finish();
}

// The offline build patches criterion with a field-less stub, which trips
// this lint; the real crate constructs a configured struct here.
#[allow(clippy::default_constructed_unit_structs)]
fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_profiling, bench_optimizer
}
criterion_main!(benches);
