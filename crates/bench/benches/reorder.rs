//! Microbenchmarks of the offline weight-reordering passes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use snapea::reorder::{magnitude_reorder, predictive_reorder, sign_reorder};
use snapea_tensor::init;
use std::time::Duration;

fn bench_reorder(c: &mut Criterion) {
    let mut rng = init::rng(11);
    for len in [27usize, 288, 1152] {
        let weights: Vec<f32> = (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut g = c.benchmark_group(format!("reorder_len{len}"));
        g.bench_function("sign", |b| b.iter(|| sign_reorder(&weights)));
        g.bench_with_input(BenchmarkId::new("predictive", 8), &weights, |b, w| {
            b.iter(|| predictive_reorder(w, 8))
        });
        g.bench_with_input(BenchmarkId::new("magnitude", 8), &weights, |b, w| {
            b.iter(|| magnitude_reorder(w, 8))
        });
        g.finish();
    }
}

// The offline build patches criterion with a field-less stub, which trips
// this lint; the real crate constructs a configured struct here.
#[allow(clippy::default_constructed_unit_structs)]
fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_reorder
}
criterion_main!(benches);
