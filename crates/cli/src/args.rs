//! A small, dependency-free argument parser: positional arguments plus
//! `--flag value` options and declared boolean `--flag` switches.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Parsed command line: a subcommand, positionals, `--key value` options,
/// and boolean flags declared up front via [`Args::parse_with_flags`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The subcommand (first argument).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` options.
    pub options: BTreeMap<String, String>,
    /// Boolean `--flag` switches that were present.
    pub flags: BTreeSet<String>,
}

/// Error produced when the command line is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError {
    what: String,
}

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid arguments: {}", self.what)
    }
}

impl std::error::Error for ParseArgsError {}

impl Args {
    /// Parses `argv` (without the program name).
    ///
    /// # Errors
    ///
    /// Returns an error when no subcommand is present or an option is
    /// missing its value.
    pub fn parse<I, S>(argv: I) -> Result<Self, ParseArgsError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::parse_with_flags(argv, &[])
    }

    /// Parses `argv` like [`Args::parse`], but treats every `--name` listed
    /// in `boolean_flags` as a valueless switch (recorded in [`Args::flags`])
    /// rather than a `--key value` option. Any other dangling `--option`
    /// still errors, so declared flags never swallow the next argument.
    ///
    /// # Errors
    ///
    /// Returns an error when no subcommand is present or an undeclared
    /// option is missing its value.
    pub fn parse_with_flags<I, S>(argv: I, boolean_flags: &[&str]) -> Result<Self, ParseArgsError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut it = argv.into_iter().map(Into::into);
        let command = it.next().ok_or_else(|| ParseArgsError {
            what: "missing subcommand".into(),
        })?;
        let mut positional = Vec::new();
        let mut options = BTreeMap::new();
        let mut flags = BTreeSet::new();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if boolean_flags.contains(&key) {
                    flags.insert(key.to_string());
                    continue;
                }
                let value = it.next().ok_or_else(|| ParseArgsError {
                    what: format!("option --{key} is missing its value"),
                })?;
                options.insert(key.to_string(), value);
            } else {
                positional.push(a);
            }
        }
        Ok(Self {
            command,
            positional,
            options,
            flags,
        })
    }

    /// Option value, if present.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Whether a declared boolean flag was present.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.contains(key)
    }

    /// Option parsed as `T`, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns an error when the value is present but unparsable.
    pub fn opt_parse<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
    ) -> Result<T, ParseArgsError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ParseArgsError {
                what: format!("option --{key}: cannot parse {v:?}"),
            }),
        }
    }

    /// The single required positional argument.
    ///
    /// # Errors
    ///
    /// Returns an error when it is missing.
    pub fn required_positional(&self, name: &str) -> Result<&str, ParseArgsError> {
        self.positional
            .first()
            .map(String::as_str)
            .ok_or_else(|| ParseArgsError {
                what: format!("missing required argument <{name}>"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_subcommand_positionals_and_options() {
        let a = Args::parse([
            "simulate",
            "model.json",
            "--images",
            "8",
            "--params",
            "p.json",
        ])
        .unwrap();
        assert_eq!(a.command, "simulate");
        assert_eq!(a.positional, vec!["model.json"]);
        assert_eq!(a.opt("images"), Some("8"));
        assert_eq!(a.opt_parse("images", 0usize).unwrap(), 8);
        assert_eq!(a.opt_parse("missing", 3usize).unwrap(), 3);
        assert_eq!(a.required_positional("model").unwrap(), "model.json");
    }

    #[test]
    fn rejects_missing_subcommand_and_dangling_option() {
        assert!(Args::parse(Vec::<String>::new()).is_err());
        assert!(Args::parse(["x", "--flag"]).is_err());
    }

    #[test]
    fn declared_boolean_flags_take_no_value() {
        let a = Args::parse_with_flags(
            ["simulate", "--json", "model.json", "--images", "2"],
            &["json"],
        )
        .unwrap();
        assert!(a.flag("json"));
        assert!(!a.flag("quiet"));
        assert_eq!(a.positional, vec!["model.json"]);
        assert_eq!(a.opt("images"), Some("2"));
        // An undeclared dangling option still errors even with flags declared.
        assert!(Args::parse_with_flags(["x", "--other"], &["json"]).is_err());
    }

    #[test]
    fn unparsable_option_value_errors() {
        let a = Args::parse(["x", "--n", "abc"]).unwrap();
        assert!(a.opt_parse("n", 0usize).is_err());
    }

    #[test]
    fn missing_positional_errors() {
        let a = Args::parse(["inspect"]).unwrap();
        assert!(a.required_positional("model").is_err());
    }
}
