//! The `snapea-tool` command-line entry point. See [`snapea_cli`] for the
//! subcommands.

use snapea_cli::args::Args;
use snapea_cli::commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        print!("{}", commands::usage());
        std::process::exit(2);
    }
    match Args::parse_with_flags(argv, &["json", "inject-bug", "artifact", "graph"])
        .map_err(|e| e.to_string())
        .and_then(|a| commands::run(&a).map_err(|e| e.to_string()))
    {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
