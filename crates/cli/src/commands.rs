//! Subcommand implementations. Each returns its output as a `String` so it
//! can be unit-tested without capturing stdout.
//!
//! Every subcommand honours the boolean `--json` flag (declared through
//! [`Args::parse_with_flags`]): with it, the result is a single JSON
//! document on stdout instead of the human-readable text.

use crate::args::Args;
use snapea::artifact::{fnv64, CompiledModel};
use snapea::exec::LayerConfig;
use snapea::optimizer::{Optimizer, OptimizerConfig};
use snapea::params::NetworkParams;
use snapea::reorder::sign_reorder;
use snapea::spec_net::profile_network;
use snapea_accel::sim::simulate;
use snapea_accel::workload::network_workload;
use snapea_accel::{AccelConfig, EnergyModel};
use snapea_nn::data::{LabeledImage, SynthShapes};
use snapea_nn::graph::{Graph, Op};
use snapea_nn::train::{evaluate, TrainConfig, Trainer};
use snapea_nn::zoo::{Workload, INPUT_SIZE};
use snapea_obs::{Json, Report, Selection};
use snapea_oracle::{
    run_artifact_case, run_artifact_check, run_case, run_selfcheck, ArtifactCheckOptions,
    ArtifactCheckReport, HarnessOptions, SelfCheckReport,
};
use snapea_tensor::init;
use snapea_tensor::q16::Q16Format;
use std::error::Error;
use std::fmt::Write as _;
use std::fs;

/// Boxed error alias for command results.
pub type CmdResult = Result<String, Box<dyn Error>>;

fn load_model(path: &str) -> Result<Graph, Box<dyn Error>> {
    let text = fs::read_to_string(path)?;
    Ok(serde_json::from_str(&text)?)
}

fn synth_batch(images: usize, seed: u64) -> (Vec<LabeledImage>, snapea_tensor::Tensor4) {
    let data = SynthShapes::new(INPUT_SIZE, 10).generate(images, seed);
    let batch = SynthShapes::batch(&data);
    (data, batch)
}

/// `train --workload <name> [--epochs N] [--out file]`
pub fn train(args: &Args) -> CmdResult {
    let name = args.opt("workload").unwrap_or("AlexNet");
    let w = Workload::ALL
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            format!("unknown workload {name:?} (try AlexNet, GoogLeNet, SqueezeNet, VGGNet)")
        })?;
    let epochs: usize = args.opt_parse("epochs", 12)?;
    let train_set = SynthShapes::new(INPUT_SIZE, 10).generate(300, 0x7EA1);
    let eval_set = SynthShapes::new(INPUT_SIZE, 10).generate(100, 0xE7A1);
    let mut net = w.build(10);
    let mut trainer = Trainer::new(TrainConfig {
        lr: 0.01,
        ..TrainConfig::default()
    });
    let mut rng = init::rng(0xF00D);
    let mut out = String::new();
    let mut epoch_rows = Vec::new();
    for e in 0..epochs {
        let s = trainer.epoch(&mut net, &train_set, &mut rng);
        if args.flag("json") {
            epoch_rows.push(Json::obj(vec![
                ("epoch", Json::from(e as u64)),
                ("loss", Json::from(s.loss)),
                ("accuracy", Json::from(s.accuracy)),
            ]));
        } else {
            writeln!(
                out,
                "epoch {e:2}: loss {:.4}, train acc {:.1}%",
                s.loss,
                s.accuracy * 100.0
            )?;
        }
    }
    let eval_accuracy = evaluate(&net, &eval_set, 32);
    let written = if let Some(path) = args.opt("out") {
        fs::write(path, serde_json::to_string(&net)?)?;
        Some(path.to_string())
    } else {
        None
    };
    if args.flag("json") {
        let mut fields = vec![
            ("workload", Json::from(w.name())),
            ("epochs", Json::from(epochs as u64)),
            ("history", Json::Arr(epoch_rows)),
            ("eval_accuracy", Json::from(eval_accuracy)),
        ];
        if let Some(path) = &written {
            fields.push(("out", Json::from(path.as_str())));
        }
        return Ok(format!("{}\n", Json::obj(fields)));
    }
    writeln!(out, "eval accuracy: {:.1}%", eval_accuracy * 100.0)?;
    if let Some(path) = written {
        writeln!(out, "model written to {path}")?;
    }
    Ok(out)
}

/// `inspect <model.json>`
pub fn inspect(args: &Args) -> CmdResult {
    let net = load_model(args.required_positional("model.json")?)?;
    if args.flag("json") {
        let layers: Vec<Json> = net
            .nodes()
            .iter()
            .enumerate()
            .map(|(id, node)| {
                let (kind, kernels, window_len) = match &node.op {
                    Op::Conv(c) => ("conv", Some(c.c_out() as u64), Some(c.window_len() as u64)),
                    Op::Linear(l) => ("fc", Some(l.c_out() as u64), Some(l.c_in() as u64)),
                    other => (other.kind(), None, None),
                };
                let mut fields = vec![
                    ("name", Json::from(node.name.as_str())),
                    ("kind", Json::from(kind)),
                ];
                if let (Some(k), Some(wl)) = (kernels, window_len) {
                    fields.push(("kernels", Json::from(k)));
                    fields.push(("window_len", Json::from(wl)));
                }
                fields.push(("feeds_only_relu", Json::from(net.feeds_only_relu(id))));
                Json::obj(fields)
            })
            .collect();
        let doc = Json::obj(vec![
            ("nodes", Json::from(net.len() as u64)),
            ("conv", Json::from(net.conv_ids().len() as u64)),
            ("fc", Json::from(net.linear_ids().len() as u64)),
            ("parameters", Json::from(net.param_count() as u64)),
            (
                "model_size_bytes",
                Json::from(net.model_size_bytes() as u64),
            ),
            ("layers", Json::Arr(layers)),
        ]);
        return Ok(format!("{doc}\n"));
    }
    let mut out = String::new();
    writeln!(
        out,
        "{} nodes, {} conv, {} fc, {} parameters ({} bytes)",
        net.len(),
        net.conv_ids().len(),
        net.linear_ids().len(),
        net.param_count(),
        net.model_size_bytes()
    )?;
    writeln!(
        out,
        "{:<28} {:>8} {:>10} {:>12} {:>8}",
        "layer", "kind", "kernels", "window_len", "ReLU?"
    )?;
    for (id, node) in net.nodes().iter().enumerate() {
        match &node.op {
            Op::Conv(c) => writeln!(
                out,
                "{:<28} {:>8} {:>10} {:>12} {:>8}",
                node.name,
                "conv",
                c.c_out(),
                c.window_len(),
                if net.feeds_only_relu(id) { "yes" } else { "no" }
            )?,
            Op::Linear(l) => writeln!(
                out,
                "{:<28} {:>8} {:>10} {:>12} {:>8}",
                node.name,
                "fc",
                l.c_out(),
                l.c_in(),
                if net.feeds_only_relu(id) { "yes" } else { "no" }
            )?,
            other => writeln!(
                out,
                "{:<28} {:>8} {:>10} {:>12} {:>8}",
                node.name,
                other.kind(),
                "-",
                "-",
                "-"
            )?,
        }
    }
    Ok(out)
}

/// `reorder <model.json> --layer <name> [--kernel K]`
pub fn reorder(args: &Args) -> CmdResult {
    let net = load_model(args.required_positional("model.json")?)?;
    let layer = args.opt("layer").ok_or("missing --layer <name>")?;
    let kernel: usize = args.opt_parse("kernel", 0)?;
    let id = net
        .nodes()
        .iter()
        .position(|n| n.name == layer)
        .ok_or_else(|| format!("no layer named {layer:?}"))?;
    let Op::Conv(conv) = &net.node(id).op else {
        return Err(format!("layer {layer:?} is not a convolution").into());
    };
    if kernel >= conv.c_out() {
        return Err(format!("kernel {kernel} out of range ({} kernels)", conv.c_out()).into());
    }
    let weights = conv.weight().item(kernel);
    let r = sign_reorder(weights);
    if args.flag("json") {
        let entries: Vec<Json> = r
            .weights()
            .iter()
            .zip(r.order())
            .map(|(&w, &i)| {
                Json::obj(vec![
                    ("weight", Json::from(f64::from(w))),
                    ("index", Json::from(i as u64)),
                ])
            })
            .collect();
        let doc = Json::obj(vec![
            ("layer", Json::from(layer)),
            ("kernel", Json::from(kernel as u64)),
            ("weights", Json::from(r.len() as u64)),
            ("neg_start", Json::from(r.neg_start() as u64)),
            ("entries", Json::Arr(entries)),
        ]);
        return Ok(format!("{doc}\n"));
    }
    let mut out = String::new();
    writeln!(
        out,
        "layer {layer}, kernel {kernel}: {} weights, negative region starts at {}",
        r.len(),
        r.neg_start()
    )?;
    writeln!(
        out,
        "first 16 entries of the weight buffer (value) / index buffer (original idx):"
    )?;
    for (p, (&w, &i)) in r.weights().iter().zip(r.order()).take(16).enumerate() {
        writeln!(out, "  [{p:3}] w = {w:+.4}   idx = {i}")?;
    }
    Ok(out)
}

/// `optimize <model.json> --epsilon 0.03 [--images N] [--out file]`
pub fn optimize(args: &Args) -> CmdResult {
    let net = load_model(args.required_positional("model.json")?)?;
    let epsilon: f64 = args.opt_parse("epsilon", 0.03)?;
    let images: usize = args.opt_parse("images", 40)?;
    let (data, _) = synth_batch(images, 0x0071);
    let cfg = OptimizerConfig::with_epsilon(epsilon);
    let outcome = Optimizer::new(&net, &data, cfg).run();
    let written = if let Some(path) = args.opt("out") {
        fs::write(path, serde_json::to_string(&outcome.params)?)?;
        Some(path.to_string())
    } else {
        None
    };
    if args.flag("json") {
        let per_layer: Vec<Json> = outcome
            .per_layer
            .iter()
            .map(|l| {
                Json::obj(vec![
                    ("layer", Json::from(l.name.as_str())),
                    ("predictive", Json::from(l.predictive)),
                    ("ops", Json::from(l.ops)),
                    ("full_macs", Json::from(l.full_macs)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("epsilon", Json::from(epsilon)),
            ("baseline_accuracy", Json::from(outcome.baseline_accuracy)),
            ("final_accuracy", Json::from(outcome.final_accuracy)),
            ("exact_ops", Json::from(outcome.exact_ops)),
            ("final_ops", Json::from(outcome.final_ops)),
            ("full_macs", Json::from(outcome.full_macs)),
            ("per_layer", Json::Arr(per_layer)),
        ];
        if let Some(path) = &written {
            fields.push(("out", Json::from(path.as_str())));
        }
        return Ok(format!("{}\n", Json::obj(fields)));
    }
    let mut out = String::new();
    writeln!(
        out,
        "accuracy {:.1}% -> {:.1}% (budget {:.1}%), conv MACs {} -> {} (dense {})",
        outcome.baseline_accuracy * 100.0,
        outcome.final_accuracy * 100.0,
        epsilon * 100.0,
        outcome.exact_ops,
        outcome.final_ops,
        outcome.full_macs
    )?;
    writeln!(
        out,
        "{}/{} layers predictive",
        outcome.per_layer.iter().filter(|l| l.predictive).count(),
        outcome.per_layer.len()
    )?;
    if let Some(path) = written {
        writeln!(out, "parameters written to {path}")?;
    }
    Ok(out)
}

/// `simulate <model.json> [--params params.json] [--images N]`
pub fn simulate_cmd(args: &Args) -> CmdResult {
    let net = load_model(args.required_positional("model.json")?)?;
    let images: usize = args.opt_parse("images", 4)?;
    let params: NetworkParams = match args.opt("params") {
        Some(p) => serde_json::from_str(&fs::read_to_string(p)?)?,
        None => NetworkParams::new(),
    };
    let (_, batch) = synth_batch(images, 0xE7A1);
    let profile = profile_network(&net, &params, &batch, false);
    let model = EnergyModel::default();
    let wl = network_workload("model", &net, &batch, &profile);
    let sn = simulate(&AccelConfig::snapea(), &model, &wl);
    let ey = simulate(&AccelConfig::eyeriss(), &model, &wl.to_dense());
    if args.flag("json") {
        let side = |r: &snapea_accel::sim::SimReport| {
            Json::obj(vec![
                ("cycles", Json::from(r.cycles)),
                ("energy_uj", Json::from(r.total_pj() / 1e6)),
                ("utilization", Json::from(r.utilization())),
            ])
        };
        let doc = Json::obj(vec![
            ("images", Json::from(images as u64)),
            ("macs_eliminated", Json::from(profile.savings())),
            ("snapea", side(&sn)),
            ("eyeriss", side(&ey)),
            ("speedup", Json::from(sn.speedup_over(&ey))),
            (
                "energy_reduction",
                Json::from(sn.energy_reduction_over(&ey)),
            ),
        ]);
        return Ok(format!("{doc}\n"));
    }
    let mut out = String::new();
    writeln!(
        out,
        "conv MACs eliminated: {:.1}%",
        profile.savings() * 100.0
    )?;
    writeln!(
        out,
        "SnaPEA : {:>12} cycles  {:>10.3} uJ  util {:>5.1}%",
        sn.cycles,
        sn.total_pj() / 1e6,
        sn.utilization() * 100.0
    )?;
    writeln!(
        out,
        "EYERISS: {:>12} cycles  {:>10.3} uJ  util {:>5.1}%",
        ey.cycles,
        ey.total_pj() / 1e6,
        ey.utilization() * 100.0
    )?;
    writeln!(
        out,
        "speedup {:.2}x, energy reduction {:.2}x",
        sn.speedup_over(&ey),
        sn.energy_reduction_over(&ey)
    )?;
    Ok(out)
}

/// Synthetic input dimensions every model of the zoo pipeline runs on.
const SYNTH_DIMS: (usize, usize, usize) = (3, INPUT_SIZE, INPUT_SIZE);

/// Loads speculation parameters from `--params`, or an empty (all-exact)
/// set when the option is absent.
fn load_params(args: &Args) -> Result<NetworkParams, Box<dyn Error>> {
    Ok(match args.opt("params") {
        Some(p) => serde_json::from_str(&fs::read_to_string(p)?)?,
        None => NetworkParams::new(),
    })
}

/// FNV-1a-64 digest over the bit patterns of every activation element — the
/// bit-identity fingerprint `run` prints so artifact-loaded and
/// freshly-compiled executions can be compared across processes.
fn activations_digest(acts: &[snapea_tensor::Tensor4]) -> u64 {
    let mut bytes = Vec::new();
    for t in acts {
        for &v in t.as_slice() {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    fnv64(&bytes)
}

/// `compile <model.json> <out.snapea> [--params params.json]`: compiles a
/// model under its speculation parameters into the versioned on-disk
/// artifact — reordered kernels, PAU configurations, pre-quantized q16
/// weights, and resolved window plans — so `run --artifact` can execute
/// without re-running the optimizer or any plan construction. With
/// `--json`, reports the artifact digest and per-section size breakdown.
pub fn compile(args: &Args) -> CmdResult {
    let net = load_model(args.required_positional("model.json")?)?;
    let out_path = args
        .positional
        .get(1)
        .ok_or("missing output path (snapea-tool compile <model.json> <out.snapea>)")?;
    let params = load_params(args)?;
    let compiled = CompiledModel::compile(&net, &params, SYNTH_DIMS, Q16Format::default());
    let (bytes, sizes) = compiled.to_bytes_sized();
    let digest = fnv64(&bytes);
    fs::write(out_path, &bytes)?;
    if args.flag("json") {
        let doc = Json::obj(vec![
            ("out", Json::from(out_path.as_str())),
            ("digest", Json::Str(format!("{digest:#018x}"))),
            ("bytes", Json::from(sizes.total() as u64)),
            (
                "sections",
                Json::obj(vec![
                    ("header", Json::from(sizes.header as u64)),
                    ("meta", Json::from(sizes.meta as u64)),
                    ("graph", Json::from(sizes.graph as u64)),
                    ("params", Json::from(sizes.params as u64)),
                    ("layers", Json::from(sizes.layers as u64)),
                    ("packed", Json::from(sizes.packed as u64)),
                ]),
            ),
            ("layers", Json::from(compiled.layers().len() as u64)),
            (
                "predictive_kernels",
                Json::from(
                    compiled
                        .layers()
                        .iter()
                        .flat_map(|l| l.kernels())
                        .filter(|k| k.pau.is_predictive())
                        .count() as u64,
                ),
            ),
        ]);
        return Ok(format!("{doc}\n"));
    }
    let mut out = String::new();
    writeln!(
        out,
        "compiled {} layer(s) -> {out_path} ({} bytes, digest {digest:#018x})",
        compiled.layers().len(),
        sizes.total()
    )?;
    writeln!(
        out,
        "sections: header {} meta {} graph {} params {} layers {} packed {}",
        sizes.header, sizes.meta, sizes.graph, sizes.params, sizes.layers, sizes.packed
    )?;
    Ok(out)
}

/// `run <model.json> [--params params.json]` or `run --artifact <x.snapea>`:
/// executes the speculative network on a synthetic batch and prints the
/// accuracy plus a bit-identity digest over every activation. The two forms
/// must print the same digest for the same model/parameters — loading an
/// artifact is bit-faithful to compiling fresh.
pub fn run_model(args: &Args) -> CmdResult {
    let images: usize = args.opt_parse("images", 4)?;
    let seed: u64 = args.opt_parse("seed", 0xE7A1)?;
    let (compiled, source) = if args.flag("artifact") {
        let path = args.required_positional("artifact.snapea")?;
        (
            CompiledModel::read_file(std::path::Path::new(path))?,
            "artifact",
        )
    } else {
        let net = load_model(args.required_positional("model.json")?)?;
        let params = load_params(args)?;
        (
            CompiledModel::compile(&net, &params, SYNTH_DIMS, Q16Format::default()),
            "fresh",
        )
    };
    let (data, batch) = synth_batch(images, seed);
    let acts = compiled.forward(&batch);
    let digest = activations_digest(&acts);
    let accuracy = compiled.accuracy(&data);
    if args.flag("json") {
        let doc = Json::obj(vec![
            ("source", Json::from(source)),
            ("images", Json::from(images as u64)),
            ("seed", Json::from(seed)),
            ("accuracy", Json::from(accuracy)),
            ("output_digest", Json::Str(format!("{digest:#018x}"))),
            ("layers", Json::from(compiled.layers().len() as u64)),
        ]);
        return Ok(format!("{doc}\n"));
    }
    Ok(format!(
        "{source}: {images} image(s), accuracy {:.1}%, output_digest {digest:#018x}\n",
        accuracy * 100.0
    ))
}

/// `selfcheck [--cases N] [--seed S] [--replay <seed>] [--inject-bug]
/// [--artifact]`: differential fuzzing of the executor, kernels, and cycle
/// simulator against the `snapea-oracle` reference models. Exits non-zero
/// when any check fails, printing each failing case's seed, config, and a
/// replay command. `--replay` re-runs one case from a seed printed by a
/// previous failure (decimal or `0x`-hex); `--inject-bug` deliberately
/// corrupts one exact-mode output element to prove the harness reports
/// failures. With `--artifact`, runs the compiled-artifact battery instead:
/// per case, a compile→serialize→load round trip must re-serialize
/// byte-exactly and execute bit-identically, and every byte-level corruption
/// of the artifact must be rejected with a typed error (`--inject-bug` then
/// plants a loader bug — a skipped section checksum — that the battery must
/// catch).
pub fn selfcheck(args: &Args) -> CmdResult {
    if args.flag("artifact") {
        return selfcheck_artifact(args);
    }
    let opts = HarnessOptions {
        inject_exact_bug: args.flag("inject-bug"),
    };
    let report = if let Some(spec) = args.opt("replay") {
        let seed = parse_seed(spec)?;
        let outcome = run_case(seed, &opts);
        SelfCheckReport {
            run_seed: seed,
            cases: 1,
            checks: outcome.checks,
            exec_macs: outcome.exec_macs,
            dense_macs: outcome.dense_macs,
            failures: outcome.failure.into_iter().collect(),
        }
    } else {
        let cases: usize = args.opt_parse("cases", 100)?;
        let seed: u64 = args.opt_parse("seed", 1)?;
        run_selfcheck(cases, seed, &opts)
    };
    let body = if args.flag("json") {
        format!("{}\n", report.to_json())
    } else {
        format!("{}\n", report.render_text())
    };
    if report.passed() {
        Ok(body)
    } else {
        Err(body.into())
    }
}

/// The `selfcheck --artifact` branch: the round-trip/corruption battery.
fn selfcheck_artifact(args: &Args) -> CmdResult {
    let opts = ArtifactCheckOptions {
        inject_load_bug: args.flag("inject-bug"),
    };
    let report = if let Some(spec) = args.opt("replay") {
        let seed = parse_seed(spec)?;
        let outcome = run_artifact_case(seed, &opts);
        ArtifactCheckReport {
            run_seed: seed,
            cases: 1,
            checks: outcome.checks,
            mutations: outcome.mutations,
            rejections: outcome.rejections,
            failures: outcome.failure.into_iter().collect(),
        }
    } else {
        let cases: usize = args.opt_parse("cases", 100)?;
        let seed: u64 = args.opt_parse("seed", 1)?;
        run_artifact_check(cases, seed, &opts)
    };
    let body = if args.flag("json") {
        format!("{}\n", report.to_json())
    } else {
        format!("{}\n", report.render_text())
    };
    if report.passed() {
        Ok(body)
    } else {
        Err(body.into())
    }
}

fn parse_seed(spec: &str) -> Result<u64, Box<dyn Error>> {
    let t = spec.trim();
    let parsed = match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => t.parse(),
    };
    parsed.map_err(|_| format!("cannot parse seed {spec:?} (decimal or 0x-hex)").into())
}

/// `lint [--graph] [--rule <id>] [--explain <id>] [--root <dir>]`: runs
/// the `snapea-lint` static analysis over the workspace sources. Prints
/// each finding (or, with `--json`, the full machine-readable report) and
/// exits non-zero when any finding survives. `--graph` additionally runs
/// the transitive call-graph rules (R1 determinism-reachability, R2
/// panic-reachability, R3 parallel-capture), whose findings carry the
/// full evidence chain with a file:line span per edge. `--rule` restricts
/// the output — human and JSON alike — to one rule id
/// (`D1 D2 P1 P2 N1 S1 A1 R1 R2 R3`); `--explain` prints a rule's
/// long-form documentation and exits; `--root` overrides workspace-root
/// discovery (useful for linting a fixture tree in tests).
pub fn lint(args: &Args) -> CmdResult {
    if let Some(spec) = args.opt("explain") {
        let id = spec.to_ascii_uppercase();
        let rule = snapea_lint::RuleId::ALL
            .into_iter()
            .find(|r| r.as_str() == id)
            .ok_or_else(|| format!("unknown rule {spec:?} (known: {})", known_rules()))?;
        return Ok(format!(
            "{} ({})\n\n{}\n",
            rule.as_str(),
            rule.name(),
            rule.explain()
        ));
    }
    let root = match args.opt("root") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => {
            let cwd = std::env::current_dir()?;
            snapea_lint::find_workspace_root(&cwd)
                .ok_or("cannot find workspace root (no Cargo.toml with [workspace] above cwd); pass --root")?
        }
    };
    let opts = snapea_lint::LintOptions {
        graph: args.flag("graph"),
    };
    let mut report = snapea_lint::lint_workspace_opts(&root, &opts)?;
    if let Some(spec) = args.opt("rule") {
        let want = spec.to_ascii_uppercase();
        if !snapea_lint::RuleId::ALL.iter().any(|r| r.as_str() == want) {
            return Err(format!("unknown rule {spec:?} (known: {})", known_rules()).into());
        }
        report.findings.retain(|f| f.rule.as_str() == want);
    }
    snapea_obs::event!(
        "lint/report",
        files_scanned = report.files_scanned as u64,
        findings = report.findings.len() as u64,
        graph = report.graph,
        passed = report.passed(),
    );
    let body = if args.flag("json") {
        format!("{}\n", report.to_json_string())
    } else {
        report.render_text()
    };
    if report.passed() {
        Ok(body)
    } else {
        Err(body.into())
    }
}

/// The known rule ids, space-separated (for error messages).
fn known_rules() -> String {
    snapea_lint::RuleId::ALL
        .iter()
        .map(|r| r.as_str())
        .collect::<Vec<_>>()
        .join(" ")
}

/// `report <events.jsonl>`: summarises a structured run-event log written by
/// the obs layer (e.g. `repro-results/<run>/events.jsonl`).
pub fn report(args: &Args) -> CmdResult {
    let path = args.required_positional("events.jsonl")?;
    let text = fs::read_to_string(path)?;
    let r = Report::from_jsonl(&text)?;
    if args.flag("json") {
        return Ok(format!("{}\n", r.to_json()));
    }
    Ok(r.render_text())
}

/// `trace <events.jsonl> [--chrome out.json] [--pe-trace out.json]`:
/// converts a structured run-event log into the Chrome trace-event format
/// loadable in `chrome://tracing` or <https://ui.perfetto.dev>. `--chrome`
/// writes the full trace (wall-clock spans plus the simulator's virtual-time
/// PE timelines); `--pe-trace` writes only the PE timelines. With neither
/// flag, the full trace is printed to stdout. Every written document is
/// schema-validated before it leaves the process.
pub fn trace(args: &Args) -> CmdResult {
    let path = args.required_positional("events.jsonl")?;
    let text = fs::read_to_string(path)?;
    let mut outputs: Vec<(&str, &str, Selection)> = Vec::new();
    if let Some(out) = args.opt("chrome") {
        outputs.push(("chrome", out, Selection::All));
    }
    if let Some(out) = args.opt("pe-trace") {
        outputs.push(("pe-trace", out, Selection::VirtualPe));
    }
    if outputs.is_empty() {
        let doc = snapea_obs::chrome_trace(&text, Selection::All)?;
        snapea_obs::validate_chrome_trace(&doc)?;
        return Ok(format!("{doc}\n"));
    }
    let mut rows = Vec::new();
    for (what, out, selection) in outputs {
        let doc = snapea_obs::chrome_trace(&text, selection)?;
        let events = snapea_obs::validate_chrome_trace(&doc)?;
        fs::write(out, &doc)?;
        rows.push((what, out.to_string(), events));
    }
    if args.flag("json") {
        let written: Vec<Json> = rows
            .iter()
            .map(|(what, out, events)| {
                Json::obj(vec![
                    ("kind", Json::from(*what)),
                    ("path", Json::from(out.as_str())),
                    ("events", Json::from(*events as u64)),
                ])
            })
            .collect();
        let doc = Json::obj(vec![
            ("input", Json::from(path)),
            ("written", Json::Arr(written)),
        ]);
        return Ok(format!("{doc}\n"));
    }
    let mut out = String::new();
    for (what, file, events) in rows {
        writeln!(out, "{what}: {events} trace event(s) -> {file}")?;
    }
    Ok(out)
}

/// `perf-diff <old.json> <new.json> [--max-regress pct]`: compares two
/// benchmark documents (`BENCH_*.json` or `perfbench --json` output) field
/// by field and exits non-zero when any timing regressed by more than the
/// threshold percentage (default 10). The check script uses this as its
/// perf regression gate.
pub fn perf_diff(args: &Args) -> CmdResult {
    let old_path = args.required_positional("old.json")?;
    let new_path = args
        .positional
        .get(1)
        .map(String::as_str)
        .ok_or("missing required argument <new.json>")?;
    let max_regress: f64 = args.opt_parse("max-regress", 10.0)?;
    if !max_regress.is_finite() || max_regress < 0.0 {
        return Err(
            format!("--max-regress must be a non-negative percentage, got {max_regress}").into(),
        );
    }
    let old = snapea_obs::parse(&fs::read_to_string(old_path)?)?;
    let new = snapea_obs::parse(&fs::read_to_string(new_path)?)?;
    let d = snapea_obs::perfdiff::diff(&old, &new);
    let body = if args.flag("json") {
        format!("{}\n", d.to_json(max_regress))
    } else {
        d.render_text(max_regress)
    };
    if d.passed(max_regress) {
        Ok(body)
    } else {
        Err(body.into())
    }
}

/// Usage text.
pub fn usage() -> String {
    "snapea-tool <command> [args] [--json]\n\
     commands:\n\
       train     --workload <name> [--epochs N] [--out model.json]\n\
       inspect   <model.json>\n\
       reorder   <model.json> --layer <name> [--kernel K]\n\
       optimize  <model.json> [--epsilon 0.03] [--images N] [--out params.json]\n\
       compile   <model.json> <out.snapea> [--params params.json]\n\
       run       <model.json> [--params params.json] [--images N] [--seed S]\n\
       run       --artifact <model.snapea> [--images N] [--seed S]\n\
       simulate  <model.json> [--params params.json] [--images N]\n\
       selfcheck [--cases N] [--seed S] [--replay seed] [--inject-bug] [--artifact]\n\
       lint      [--graph] [--rule <id>] [--explain <id>] [--root <dir>]\n\
       report    <events.jsonl>\n\
       trace     <events.jsonl> [--chrome out.json] [--pe-trace out.json]\n\
       perf-diff <old.json> <new.json> [--max-regress pct]\n\
     every command accepts --json to emit machine-readable output\n"
        .to_string()
}

/// Dispatches a parsed command line.
pub fn run(args: &Args) -> CmdResult {
    match args.command.as_str() {
        "train" => train(args),
        "inspect" => inspect(args),
        "reorder" => reorder(args),
        "optimize" => optimize(args),
        "compile" => compile(args),
        "run" => run_model(args),
        "simulate" => simulate_cmd(args),
        "selfcheck" => selfcheck(args),
        "lint" => lint(args),
        "report" => report(args),
        "trace" => trace(args),
        "perf-diff" => perf_diff(args),
        "help" | "--help" => Ok(usage()),
        other => Err(format!("unknown command {other:?}\n{}", usage()).into()),
    }
}

/// Executes an exact-mode sanity pass over a model (used by tests).
pub fn exact_sanity(net: &Graph, images: usize) -> bool {
    let (_, batch) = synth_batch(images, 1);
    let acts = net.forward(&batch);
    net.conv_ids().iter().all(|&id| {
        let Op::Conv(conv) = &net.node(id).op else {
            return false;
        };
        let input = &acts[net.node(id).inputs[0]];
        let r = snapea::exec::execute_conv(conv, input, &LayerConfig::exact(conv));
        r.profile.total_ops() <= r.profile.full_macs()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_model() -> (tempdir::TempDirLike, String) {
        // Minimal home-grown temp dir (std only).
        let dir = std::env::temp_dir().join(format!("snapea-cli-test-{}", std::process::id()));
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("model.json").to_string_lossy().into_owned();
        let net = Workload::SqueezeNet.build(10);
        fs::write(&path, serde_json::to_string(&net).unwrap()).unwrap();
        (tempdir::TempDirLike(dir), path)
    }

    mod tempdir {
        pub struct TempDirLike(pub std::path::PathBuf);
        impl Drop for TempDirLike {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.0);
            }
        }
    }

    // Commands that round-trip a model file go through the vendored
    // `serde_json` (a full Content-model JSON implementation), so they run
    // in the offline build like everything else.

    #[test]
    fn inspect_lists_layers() {
        let (_guard, path) = temp_model();
        let args = Args::parse(["inspect", path.as_str()]).unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("26 conv"));
        assert!(out.contains("fire2/squeeze1x1"));
    }

    #[test]
    fn reorder_dumps_index_buffer() {
        let (_guard, path) = temp_model();
        let args = Args::parse([
            "reorder",
            path.as_str(),
            "--layer",
            "conv1",
            "--kernel",
            "1",
        ])
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("negative region starts"));
        assert!(out.contains("idx ="));
    }

    #[test]
    fn reorder_rejects_bad_layer_and_kernel() {
        let (_guard, path) = temp_model();
        let args = Args::parse(["reorder", path.as_str(), "--layer", "nope"]).unwrap();
        assert!(run(&args).is_err());
        let args = Args::parse([
            "reorder",
            path.as_str(),
            "--layer",
            "conv1",
            "--kernel",
            "999",
        ])
        .unwrap();
        assert!(run(&args).is_err());
    }

    #[test]
    fn simulate_reports_speedup_line() {
        let (_guard, path) = temp_model();
        let args = Args::parse(["simulate", path.as_str(), "--images", "2"]).unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("speedup"));
        assert!(out.contains("SnaPEA"));
    }

    #[test]
    fn simulate_json_mode_is_parsable() {
        let (_guard, path) = temp_model();
        let args = Args::parse_with_flags(
            ["simulate", path.as_str(), "--images", "1", "--json"],
            &["json"],
        )
        .unwrap();
        let out = run(&args).unwrap();
        let doc = snapea_obs::parse(&out).expect("valid json");
        assert!(doc.get("speedup").and_then(Json::as_f64).is_some());
        assert!(doc.get("snapea").and_then(|s| s.get("cycles")).is_some());
    }

    #[test]
    fn inspect_json_mode_lists_layers() {
        let (_guard, path) = temp_model();
        let args = Args::parse_with_flags(["inspect", path.as_str(), "--json"], &["json"]).unwrap();
        let out = run(&args).unwrap();
        let doc = snapea_obs::parse(&out).expect("valid json");
        assert_eq!(doc.get("conv").and_then(Json::as_u64), Some(26));
        assert!(!doc
            .get("layers")
            .and_then(Json::as_array)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn report_summarises_event_log() {
        let dir = std::env::temp_dir().join(format!("snapea-cli-report-{}", std::process::id()));
        let _guard = tempdir::TempDirLike(dir.clone());
        fs::create_dir_all(&dir).unwrap();
        let log = dir.join("events.jsonl");
        fs::write(
            &log,
            concat!(
                "{\"seq\":0,\"t_ms\":0.1,\"kind\":\"exec/layer\",\"full_macs\":100,\"performed_macs\":40}\n",
                "{\"seq\":1,\"t_ms\":0.2,\"kind\":\"span\",\"path\":\"repro/train\",\"ms\":3.0}\n",
            ),
        )
        .unwrap();
        let path = log.to_string_lossy().into_owned();
        let args = Args::parse(["report", path.as_str()]).unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("events: 2"));
        assert!(out.contains("60.0% saved"));
        let args = Args::parse_with_flags(["report", path.as_str(), "--json"], &["json"]).unwrap();
        let doc = snapea_obs::parse(&run(&args).unwrap()).expect("valid json");
        assert_eq!(doc.get("events").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn trace_exports_chrome_and_pe_documents() {
        let dir = std::env::temp_dir().join(format!("snapea-cli-trace-{}", std::process::id()));
        let _guard = tempdir::TempDirLike(dir.clone());
        fs::create_dir_all(&dir).unwrap();
        let log = dir.join("events.jsonl");
        fs::write(
            &log,
            concat!(
                "{\"seq\":0,\"t_ms\":0.1,\"kind\":\"sim/pe/phase\",\"tid\":0,\"layer\":\"conv1\",\"pe\":0,\"phase\":\"compute\",\"start_cycle\":0,\"cycles\":12}\n",
                "{\"seq\":1,\"t_ms\":0.2,\"kind\":\"span\",\"tid\":0,\"span_id\":1,\"parent_id\":0,\"name\":\"optimizer\",\"path\":\"optimizer\",\"depth\":1,\"start_ms\":0.0,\"ms\":10.0}\n",
            ),
        )
        .unwrap();
        let log_path = log.to_string_lossy().into_owned();
        let chrome = dir.join("chrome.json").to_string_lossy().into_owned();
        let pe = dir.join("pe.json").to_string_lossy().into_owned();

        // Stdout mode: the full trace is printed and schema-valid.
        let args = Args::parse(["trace", log_path.as_str()]).unwrap();
        let out = run(&args).unwrap();
        assert!(snapea_obs::validate_chrome_trace(out.trim()).unwrap() >= 2);

        // File mode with --json summary.
        let args = Args::parse_with_flags(
            [
                "trace",
                log_path.as_str(),
                "--chrome",
                chrome.as_str(),
                "--pe-trace",
                pe.as_str(),
                "--json",
            ],
            &["json"],
        )
        .unwrap();
        let doc = snapea_obs::parse(&run(&args).unwrap()).expect("valid json");
        let written = doc.get("written").and_then(Json::as_array).unwrap();
        assert_eq!(written.len(), 2);
        let chrome_doc = fs::read_to_string(&chrome).unwrap();
        let pe_doc = fs::read_to_string(&pe).unwrap();
        assert!(chrome_doc.contains("\"optimizer\""));
        assert!(pe_doc.contains("\"compute\"") && !pe_doc.contains("\"optimizer\""));
    }

    #[test]
    fn perf_diff_gates_regressions() {
        let dir = std::env::temp_dir().join(format!("snapea-cli-pdiff-{}", std::process::id()));
        let _guard = tempdir::TempDirLike(dir.clone());
        fs::create_dir_all(&dir).unwrap();
        let old = dir.join("old.json");
        let new_ok = dir.join("new_ok.json");
        let new_bad = dir.join("new_bad.json");
        fs::write(&old, r#"{"kernels":[{"name":"k","kernel_ms":10.0}]}"#).unwrap();
        fs::write(&new_ok, r#"{"kernels":[{"name":"k","kernel_ms":10.5}]}"#).unwrap();
        fs::write(&new_bad, r#"{"kernels":[{"name":"k","kernel_ms":12.0}]}"#).unwrap();
        let p = |x: &std::path::Path| x.to_string_lossy().into_owned();

        let args = Args::parse(["perf-diff", p(&old).as_str(), p(&new_ok).as_str()]).unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("PASS"), "{out}");

        // A planted 20% regression must fail the default 10% gate...
        let args = Args::parse(["perf-diff", p(&old).as_str(), p(&new_bad).as_str()]).unwrap();
        let err = run(&args).unwrap_err().to_string();
        assert!(err.contains("REGRESSION") && err.contains("FAIL"), "{err}");

        // ...and pass an explicitly loosened one.
        let args = Args::parse([
            "perf-diff",
            p(&old).as_str(),
            p(&new_bad).as_str(),
            "--max-regress",
            "25",
        ])
        .unwrap();
        assert!(run(&args).is_ok());

        // JSON mode carries the verdict.
        let args = Args::parse_with_flags(
            [
                "perf-diff",
                p(&old).as_str(),
                p(&new_bad).as_str(),
                "--json",
            ],
            &["json"],
        )
        .unwrap();
        let doc = snapea_obs::parse(&run(&args).unwrap_err().to_string()).expect("valid json");
        assert_eq!(doc.get("passed").and_then(Json::as_bool), Some(false));

        // Missing second positional and bad thresholds are rejected.
        let args = Args::parse(["perf-diff", p(&old).as_str()]).unwrap();
        assert!(run(&args).is_err());
        let args = Args::parse([
            "perf-diff",
            p(&old).as_str(),
            p(&new_ok).as_str(),
            "--max-regress",
            "-5",
        ])
        .unwrap();
        assert!(run(&args).is_err());
    }

    #[test]
    fn lint_fixture_fails_and_json_round_trips() {
        let dir = std::env::temp_dir().join(format!("snapea-cli-lint-{}", std::process::id()));
        let _guard = tempdir::TempDirLike(dir.clone());
        let src = dir.join("crates").join("core").join("src");
        fs::create_dir_all(&src).unwrap();
        fs::write(dir.join("Cargo.toml"), "[workspace]\n").unwrap();
        fs::write(
            src.join("lib.rs"),
            "#![forbid(unsafe_code)]\nuse std::collections::HashMap;\n",
        )
        .unwrap();
        let root = dir.to_string_lossy().into_owned();

        // Human-readable mode: the D1 finding makes the command fail.
        let args = Args::parse(["lint", "--root", root.as_str()]).unwrap();
        let err = run(&args).unwrap_err().to_string();
        assert!(err.contains("[D1/hash-collections]"), "{err}");
        assert!(err.contains("1 finding(s)"), "{err}");

        // JSON mode round-trips through the obs parser.
        let args =
            Args::parse_with_flags(["lint", "--root", root.as_str(), "--json"], &["json"]).unwrap();
        let doc = snapea_obs::parse(&run(&args).unwrap_err().to_string()).expect("valid json");
        assert_eq!(doc.get("passed").and_then(Json::as_bool), Some(false));
        let findings = doc.get("findings").and_then(Json::as_array).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].get("rule").and_then(Json::as_str), Some("D1"));
        assert_eq!(findings[0].get("line").and_then(Json::as_u64), Some(2));

        // --rule filters: the fixture has no P1 finding, so that view passes.
        let args = Args::parse(["lint", "--root", root.as_str(), "--rule", "p1"]).unwrap();
        assert!(run(&args).is_ok());

        // Unknown rule ids are rejected up front.
        let args = Args::parse(["lint", "--root", root.as_str(), "--rule", "Z9"]).unwrap();
        let err = run(&args).unwrap_err().to_string();
        assert!(err.contains("unknown rule"), "{err}");
    }

    #[test]
    fn lint_graph_fixture_fails_naming_the_chain() {
        let dir = std::env::temp_dir().join(format!("snapea-cli-graph-{}", std::process::id()));
        let _guard = tempdir::TempDirLike(dir.clone());
        let src = dir.join("crates").join("core").join("src");
        fs::create_dir_all(&src).unwrap();
        fs::write(dir.join("Cargo.toml"), "[workspace]\n").unwrap();
        fs::write(src.join("lib.rs"), "#![forbid(unsafe_code)]\n").unwrap();
        // A result-path fn reaching an env read two calls away.
        fs::write(
            src.join("exec.rs"),
            "pub fn walk() {\n    helper()\n}\n\
             fn helper() {\n    let v = std::env::var(\"X\");\n}\n",
        )
        .unwrap();
        let root = dir.to_string_lossy().into_owned();

        // Without --graph the tree is clean…
        let args = Args::parse(["lint", "--root", root.as_str()]).unwrap();
        assert!(run(&args).is_ok());

        // …with --graph the R1 chain is reported, naming every link.
        let args = Args::parse_with_flags(
            ["lint", "--root", root.as_str(), "--graph"],
            &["json", "graph"],
        )
        .unwrap();
        let err = run(&args).unwrap_err().to_string();
        assert!(err.contains("[R1/determinism-reachability]"), "{err}");
        assert!(
            err.contains("chain: walk() \u{2192} helper() \u{2192} std::env::var"),
            "{err}"
        );
        // Per-edge spans: the call link and the sink link.
        assert!(
            err.contains("crates/core/src/exec.rs:2 core::walk \u{2192} core::helper"),
            "{err}"
        );
        assert!(
            err.contains("crates/core/src/exec.rs:5 core::helper \u{2192} std::env::var"),
            "{err}"
        );
    }

    #[test]
    fn lint_rule_filter_applies_to_json_payload() {
        // Two rules fire in this fixture; `--rule D1 --json` must narrow
        // the JSON findings array exactly like the human output.
        let dir = std::env::temp_dir().join(format!("snapea-cli-rulejson-{}", std::process::id()));
        let _guard = tempdir::TempDirLike(dir.clone());
        let src = dir.join("crates").join("core").join("src");
        fs::create_dir_all(&src).unwrap();
        fs::write(dir.join("Cargo.toml"), "[workspace]\n").unwrap();
        fs::write(
            src.join("lib.rs"),
            "#![forbid(unsafe_code)]\nuse std::collections::HashMap;\n\
             pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
        )
        .unwrap();
        let root = dir.to_string_lossy().into_owned();

        // Unfiltered: both findings.
        let args =
            Args::parse_with_flags(["lint", "--root", root.as_str(), "--json"], &["json"]).unwrap();
        let doc = snapea_obs::parse(&run(&args).unwrap_err().to_string()).expect("valid json");
        assert_eq!(
            doc.get("findings").and_then(Json::as_array).unwrap().len(),
            2
        );

        // Filtered: the JSON payload narrows to the one D1 finding.
        let args = Args::parse_with_flags(
            ["lint", "--root", root.as_str(), "--rule", "D1", "--json"],
            &["json"],
        )
        .unwrap();
        let doc = snapea_obs::parse(&run(&args).unwrap_err().to_string()).expect("valid json");
        let findings = doc.get("findings").and_then(Json::as_array).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].get("rule").and_then(Json::as_str), Some("D1"));

        // Graph findings live in the same findings vec, so `--rule R2
        // --json` shows exactly the panic chain.
        let args = Args::parse_with_flags(
            [
                "lint",
                "--root",
                root.as_str(),
                "--graph",
                "--rule",
                "R2",
                "--json",
            ],
            &["json", "graph"],
        )
        .unwrap();
        let doc = snapea_obs::parse(&run(&args).unwrap_err().to_string()).expect("valid json");
        assert_eq!(doc.get("graph").and_then(Json::as_bool), Some(true));
        let findings = doc.get("findings").and_then(Json::as_array).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].get("rule").and_then(Json::as_str), Some("R2"));
        let chain = findings[0].get("chain").and_then(Json::as_array).unwrap();
        assert_eq!(chain.len(), 1);
        assert_eq!(chain[0].get("to").and_then(Json::as_str), Some(".unwrap()"));
        assert_eq!(chain[0].get("line").and_then(Json::as_u64), Some(4));
    }

    #[test]
    fn lint_explain_prints_rule_docs() {
        let args = Args::parse(["lint", "--explain", "r3"]).unwrap();
        let out = run(&args).unwrap();
        assert!(out.starts_with("R3 (parallel-capture)"), "{out}");
        assert!(out.contains("bit-identity"), "{out}");

        let args = Args::parse(["lint", "--explain", "Z9"]).unwrap();
        let err = run(&args).unwrap_err().to_string();
        assert!(err.contains("unknown rule"), "{err}");
    }

    const SELFCHECK_FLAGS: &[&str] = &["json", "inject-bug"];

    #[test]
    fn selfcheck_small_budget_passes() {
        let args = Args::parse_with_flags(
            ["selfcheck", "--cases", "10", "--seed", "1"],
            SELFCHECK_FLAGS,
        )
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("0 failure(s)"), "{out}");
        assert!(out.contains("10 cases"), "{out}");
    }

    #[test]
    fn selfcheck_json_mode_is_parsable() {
        let args = Args::parse_with_flags(
            ["selfcheck", "--cases", "3", "--seed", "2", "--json"],
            SELFCHECK_FLAGS,
        )
        .unwrap();
        let doc = snapea_obs::parse(&run(&args).unwrap()).expect("valid json");
        assert_eq!(doc.get("cases").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("failed").and_then(Json::as_u64), Some(0));
        assert_eq!(doc.get("passed").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn selfcheck_injected_bug_fails_with_replayable_seed() {
        let args = Args::parse_with_flags(
            ["selfcheck", "--cases", "2", "--seed", "1", "--inject-bug"],
            SELFCHECK_FLAGS,
        )
        .unwrap();
        let err = run(&args).unwrap_err().to_string();
        assert!(err.contains("config:"), "{err}");
        let seed = err
            .split("--replay ")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .expect("failure output must carry a replay seed");
        // Replaying that single case with the bug still fails...
        let args = Args::parse_with_flags(
            ["selfcheck", "--replay", seed, "--inject-bug"],
            SELFCHECK_FLAGS,
        )
        .unwrap();
        assert!(run(&args).is_err());
        // ...and without it, the same case is clean.
        let args =
            Args::parse_with_flags(["selfcheck", "--replay", seed], SELFCHECK_FLAGS).unwrap();
        assert!(run(&args).is_ok());
    }

    #[test]
    fn selfcheck_rejects_bad_replay_seed() {
        let args =
            Args::parse_with_flags(["selfcheck", "--replay", "zzz"], SELFCHECK_FLAGS).unwrap();
        assert!(run(&args).is_err());
    }

    const ARTIFACT_FLAGS: &[&str] = &["json", "inject-bug", "artifact"];

    #[test]
    fn compile_and_run_artifact_is_bit_identical_to_fresh() {
        let dir = std::env::temp_dir().join(format!("snapea-cli-artifact-{}", std::process::id()));
        let _ = fs::create_dir_all(&dir);
        let _guard = tempdir::TempDirLike(dir.clone());
        let net = Workload::SqueezeNet.build(10);
        let model = dir.join("model.json").to_string_lossy().into_owned();
        fs::write(&model, serde_json::to_string(&net).unwrap()).unwrap();
        // Hand-built speculation parameters: first two convs predictive.
        let mut params = NetworkParams::new();
        for &id in net.conv_ids().iter().take(2) {
            let Op::Conv(c) = &net.node(id).op else {
                unreachable!("conv_ids points at convs")
            };
            params.set(
                id,
                snapea::params::LayerParams::uniform(
                    c.c_out(),
                    snapea::params::KernelParams::new(0.05, 4),
                ),
            );
        }
        let pfile = dir.join("params.json").to_string_lossy().into_owned();
        fs::write(&pfile, serde_json::to_string(&params).unwrap()).unwrap();
        let art = dir.join("m.snapea").to_string_lossy().into_owned();

        // compile --json reports the digest and per-section size breakdown.
        let args = Args::parse_with_flags(
            [
                "compile",
                model.as_str(),
                art.as_str(),
                "--params",
                pfile.as_str(),
                "--json",
            ],
            ARTIFACT_FLAGS,
        )
        .unwrap();
        let doc = snapea_obs::parse(&run(&args).unwrap()).expect("valid json");
        assert!(doc.get("digest").and_then(Json::as_str).is_some());
        assert_eq!(doc.get("layers").and_then(Json::as_u64), Some(2));
        let sections = doc.get("sections").expect("section breakdown");
        for key in ["header", "meta", "graph", "params", "layers"] {
            assert!(sections.get(key).and_then(Json::as_u64).is_some(), "{key}");
        }

        // A fresh compile-and-run and an artifact-loaded run print the same
        // bit-identity digest.
        let fresh = Args::parse_with_flags(
            [
                "run",
                model.as_str(),
                "--params",
                pfile.as_str(),
                "--images",
                "3",
                "--seed",
                "5",
                "--json",
            ],
            ARTIFACT_FLAGS,
        )
        .unwrap();
        let fresh_doc = snapea_obs::parse(&run(&fresh).unwrap()).expect("valid json");
        let loaded = Args::parse_with_flags(
            [
                "run",
                "--artifact",
                art.as_str(),
                "--images",
                "3",
                "--seed",
                "5",
                "--json",
            ],
            ARTIFACT_FLAGS,
        )
        .unwrap();
        let loaded_doc = snapea_obs::parse(&run(&loaded).unwrap()).expect("valid json");
        let digest = fresh_doc.get("output_digest").and_then(Json::as_str);
        assert!(digest.is_some());
        assert_eq!(
            digest,
            loaded_doc.get("output_digest").and_then(Json::as_str),
            "artifact-loaded execution must be bit-identical to fresh"
        );
        assert_eq!(
            fresh_doc.get("accuracy"),
            loaded_doc.get("accuracy"),
            "accuracy must agree"
        );

        // A corrupted artifact is rejected with a typed error, not executed.
        let mut bytes = fs::read(&art).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        fs::write(&art, &bytes).unwrap();
        let corrupt =
            Args::parse_with_flags(["run", "--artifact", art.as_str()], ARTIFACT_FLAGS).unwrap();
        let err = run(&corrupt).unwrap_err().to_string();
        assert!(
            err.contains("checksum") || err.contains("invalid") || err.contains("truncated"),
            "typed rejection expected, got: {err}"
        );
    }

    #[test]
    fn selfcheck_artifact_battery_passes_and_catches_planted_bug() {
        let args = Args::parse_with_flags(
            [
                "selfcheck",
                "--artifact",
                "--cases",
                "10",
                "--seed",
                "3",
                "--json",
            ],
            ARTIFACT_FLAGS,
        )
        .unwrap();
        let doc = snapea_obs::parse(&run(&args).unwrap()).expect("valid json");
        assert_eq!(doc.get("passed").and_then(Json::as_bool), Some(true));
        assert!(doc.get("mutations").and_then(Json::as_u64).unwrap_or(0) > 0);

        // The planted loader bug (skipped LAYERS checksum) must be caught,
        // and the failure must carry an artifact replay line.
        let args = Args::parse_with_flags(
            [
                "selfcheck",
                "--artifact",
                "--cases",
                "200",
                "--seed",
                "3",
                "--inject-bug",
            ],
            ARTIFACT_FLAGS,
        )
        .unwrap();
        let err = run(&args).unwrap_err().to_string();
        assert!(
            err.contains("replay: snapea-tool selfcheck --artifact --replay 0x"),
            "{err}"
        );
    }

    #[test]
    fn unknown_command_shows_usage() {
        let args = Args::parse(["bogus"]).unwrap();
        let err = run(&args).unwrap_err().to_string();
        assert!(err.contains("snapea-tool <command>"));
    }

    #[test]
    fn exact_sanity_runs() {
        let net = Workload::AlexNet.build(10);
        assert!(exact_sanity(&net, 1));
    }
}
