//! Command-line tooling for the SnaPEA reproduction.
//!
//! The `snapea` binary (see `src/bin/snapea-tool.rs`) exposes the library's
//! workflow to the shell:
//!
//! ```text
//! snapea-tool train      --workload SqueezeNet --out model.json
//! snapea-tool inspect    model.json
//! snapea-tool reorder    model.json --layer conv1 --kernel 0
//! snapea-tool optimize   model.json --epsilon 0.03 --out params.json
//! snapea-tool simulate   model.json [--params params.json] [--images 8]
//! snapea-tool report     repro-results/<run>/events.jsonl
//! ```
//!
//! Every subcommand accepts `--json` for machine-readable output.
//!
//! This module holds the (dependency-free) argument parser and the
//! subcommand implementations, kept as a library so they are unit-testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
