//! Cycle-level simulator of the SnaPEA accelerator (paper §V–VI) and the
//! EYERISS-style dense baseline it is evaluated against.
//!
//! The simulated machine is the paper's Table II configuration: an 8×8 array
//! of Processing Engines, four compute lanes per PE (256 MAC units total),
//! per-PE weight/index buffers (0.5 KB each) and a 20 KB input/output buffer,
//! 500 MHz. The baseline is configured as 256 single-lane PEs with the same
//! peak throughput and the same 1.25 MB of on-chip storage, as in the paper.
//!
//! Both machines run through the *same* engine ([`engine`]): the baseline is
//! simply the degenerate configuration with one lane per PE, no index buffer,
//! and dense (full-window) op counts. What makes SnaPEA SnaPEA is the
//! per-window early-termination op counts produced by the `snapea` crate's
//! executor, plus the index-buffer traffic its reordering requires.
//!
//! Timing model (validated against a literal cycle-stepped PE in tests):
//!
//! * lanes of a PE process consecutive windows of one kernel in lockstep
//!   behind a single broadcast weight stream → a lane group costs
//!   `max(ops)` cycles and early-terminated lanes sit data-gated (idle);
//! * each kernel's weights+indices must be filled into the PE's buffers
//!   (`window_len` cycles) before its windows run;
//! * PEs proceed independently and synchronise at input-portion boundaries →
//!   a layer costs `max` over PEs per image (the paper's horizontal-group
//!   synchronisation);
//! * energy follows Table III event costs: MACs, register accesses, weight /
//!   index fetches, input/output buffer traffic and DRAM (including
//!   activation spills when a layer's footprint exceeds on-chip capacity).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod config;
pub mod energy;
pub mod engine;
pub mod sim;
pub mod trace;
pub mod workload;

pub use config::AccelConfig;
pub use energy::{EnergyBreakdown, EnergyModel};
pub use sim::{simulate, LayerReport, SimReport};
pub use workload::{LayerWorkload, NetworkWorkload};
