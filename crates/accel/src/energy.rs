//! Energy model — the paper's Table III event costs.

use serde::{Deserialize, Serialize};

/// Data word width of the PEs (16-bit fixed point, Table II).
pub const WORD_BITS: u64 = 16;

/// Per-bit energy of each event class (paper Table III).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Register file access (pJ/bit).
    pub register_pj_bit: f64,
    /// 16-bit fixed-point PE operation (pJ/bit) — includes the PAU for
    /// SnaPEA per the paper.
    pub pe_pj_bit: f64,
    /// Inter-PE communication (pJ/bit).
    pub inter_pe_pj_bit: f64,
    /// Global/on-chip buffer access (pJ/bit).
    pub buffer_pj_bit: f64,
    /// DDR4 access (pJ/bit).
    pub dram_pj_bit: f64,
}

impl Default for EnergyModel {
    /// The Table III numbers: 0.20 / 0.30 / 0.40 / 1.20 / 15.00 pJ/bit
    /// (relative 1.0 / 1.5 / 2.0 / 6.0 / 75.0).
    fn default() -> Self {
        Self {
            register_pj_bit: 0.20,
            pe_pj_bit: 0.30,
            inter_pe_pj_bit: 0.40,
            buffer_pj_bit: 1.20,
            dram_pj_bit: 15.00,
        }
    }
}

impl EnergyModel {
    /// Relative cost table (normalised to a register access), as printed in
    /// Table III.
    pub fn relative_costs(&self) -> [(&'static str, f64); 5] {
        let r = self.register_pj_bit;
        [
            ("Register File Access", self.register_pj_bit / r),
            ("16-bit Fixed Point PE", self.pe_pj_bit / r),
            ("Inter-PE Communication", self.inter_pe_pj_bit / r),
            ("Global Buffer Access", self.buffer_pj_bit / r),
            ("DDR4 Memory Access", self.dram_pj_bit / r),
        ]
    }
}

/// Event counts accumulated by the simulator for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyEvents {
    /// Executed MAC operations.
    pub macs: u64,
    /// Register file accesses (operand reads/writes around each MAC).
    pub register_accesses: u64,
    /// On-chip buffer accesses (weight fetches, input reads, output writes,
    /// buffer fills).
    pub buffer_accesses: u64,
    /// Index-buffer reads (SnaPEA's reordering overhead; 0 on the dense
    /// baseline).
    pub index_accesses: u64,
    /// Words broadcast between PEs (input/kernel distribution).
    pub inter_pe_words: u64,
    /// Words moved to/from DRAM.
    pub dram_words: u64,
}

impl EnergyEvents {
    /// Accumulates another event block.
    pub fn merge(&mut self, other: &EnergyEvents) {
        self.macs += other.macs;
        self.register_accesses += other.register_accesses;
        self.buffer_accesses += other.buffer_accesses;
        self.index_accesses += other.index_accesses;
        self.inter_pe_words += other.inter_pe_words;
        self.dram_words += other.dram_words;
    }
}

/// Energy totals in pJ, broken down by event class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// MAC (PE) energy.
    pub mac_pj: f64,
    /// Register file energy.
    pub register_pj: f64,
    /// On-chip buffer energy.
    pub buffer_pj: f64,
    /// Index-buffer energy.
    pub index_pj: f64,
    /// Inter-PE communication energy.
    pub inter_pe_pj: f64,
    /// DRAM energy.
    pub dram_pj: f64,
}

impl EnergyBreakdown {
    /// Computes the breakdown from event counts under a model.
    ///
    /// The per-PE weight and index buffers are 0.5 KB SRAMs (Table II) —
    /// register-file-class accesses, priced accordingly; `buffer_accesses`
    /// covers the larger input/output RAMs / global buffer. Index entries
    /// are narrower than data words (`ceil(log2(window_len))` bits) and are
    /// charged at half a word, a conservative upper bound the tests pin.
    pub fn from_events(model: &EnergyModel, ev: &EnergyEvents) -> Self {
        let w = WORD_BITS as f64;
        Self {
            mac_pj: ev.macs as f64 * w * model.pe_pj_bit,
            register_pj: ev.register_accesses as f64 * w * model.register_pj_bit,
            buffer_pj: ev.buffer_accesses as f64 * w * model.buffer_pj_bit,
            index_pj: ev.index_accesses as f64 * (w / 2.0) * model.register_pj_bit,
            inter_pe_pj: ev.inter_pe_words as f64 * w * model.inter_pe_pj_bit,
            dram_pj: ev.dram_words as f64 * w * model.dram_pj_bit,
        }
    }

    /// Total energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.mac_pj
            + self.register_pj
            + self.buffer_pj
            + self.index_pj
            + self.inter_pe_pj
            + self.dram_pj
    }

    /// Accumulates another breakdown.
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        self.mac_pj += other.mac_pj;
        self.register_pj += other.register_pj;
        self.buffer_pj += other.buffer_pj;
        self.index_pj += other.index_pj;
        self.inter_pe_pj += other.inter_pe_pj;
        self.dram_pj += other.dram_pj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_iii_relative_costs() {
        let m = EnergyModel::default();
        let rel = m.relative_costs();
        assert_eq!(rel[0].1, 1.0);
        assert!((rel[1].1 - 1.5).abs() < 1e-9);
        assert!((rel[2].1 - 2.0).abs() < 1e-9);
        assert!((rel[3].1 - 6.0).abs() < 1e-9);
        assert!((rel[4].1 - 75.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_scales_linearly_with_events() {
        let m = EnergyModel::default();
        let ev = EnergyEvents {
            macs: 100,
            register_accesses: 200,
            buffer_accesses: 50,
            index_accesses: 50,
            inter_pe_words: 10,
            dram_words: 4,
        };
        let b = EnergyBreakdown::from_events(&m, &ev);
        assert!((b.mac_pj - 100.0 * 16.0 * 0.30).abs() < 1e-9);
        assert!((b.dram_pj - 4.0 * 16.0 * 15.0).abs() < 1e-9);
        // Index entries are half-width, register-class (0.5 KB SRAM).
        assert!((b.index_pj - 50.0 * 8.0 * 0.20).abs() < 1e-9);
        let mut doubled = ev;
        doubled.merge(&ev);
        let b2 = EnergyBreakdown::from_events(&m, &doubled);
        assert!((b2.total_pj() - 2.0 * b.total_pj()).abs() < 1e-6);
    }

    #[test]
    fn dram_dominates_per_word() {
        let m = EnergyModel::default();
        let one_dram = EnergyEvents {
            dram_words: 1,
            ..Default::default()
        };
        let one_mac = EnergyEvents {
            macs: 1,
            ..Default::default()
        };
        let e_dram = EnergyBreakdown::from_events(&m, &one_dram).total_pj();
        let e_mac = EnergyBreakdown::from_events(&m, &one_mac).total_pj();
        assert!(e_dram / e_mac >= 49.0, "DRAM should dwarf a MAC");
    }
}
