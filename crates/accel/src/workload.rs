//! Workload descriptions consumed by the simulator.
//!
//! A [`LayerWorkload`] couples the per-window op counts produced by the
//! `snapea` executor with the data-movement footprint of the layer (input,
//! weight and output word counts). [`network_workload`] builds the full
//! description straight from a network, a batch, and a
//! [`snapea::spec_net::NetworkProfile`].

use serde::{Deserialize, Serialize};
use snapea::exec::LayerProfile;
use snapea::spec_net::NetworkProfile;
use snapea_nn::graph::Graph;
use snapea_tensor::Tensor4;

/// One convolution layer's workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerWorkload {
    /// Layer name (for reports).
    pub name: String,
    /// Per-window op counts (and geometry).
    pub profile: LayerProfile,
    /// Input words per image (`c_in × h × w`).
    pub input_words: u64,
    /// Output words per image (`kernels × windows`).
    pub output_words: u64,
    /// Weight words (`kernels × window_len`).
    pub weight_words: u64,
    /// Output spatial extent `(out_h, out_w)`; `(windows, 1)` when the
    /// spatial layout is unknown. Lets the simulator hand lanes spatially
    /// adjacent 2×2 window tiles.
    pub spatial: (usize, usize),
}

impl LayerWorkload {
    /// Builds a workload from a profile plus the input footprint.
    pub fn new(name: impl Into<String>, profile: LayerProfile, input_words: u64) -> Self {
        let output_words = (profile.kernels() * profile.windows()) as u64;
        let weight_words = (profile.kernels() * profile.window_len()) as u64;
        let spatial = (profile.windows(), 1);
        Self {
            name: name.into(),
            profile,
            input_words,
            output_words,
            weight_words,
            spatial,
        }
    }

    /// Sets the output spatial extent (must multiply to the window count).
    ///
    /// # Panics
    ///
    /// Panics if `h * w != profile.windows()`.
    pub fn with_spatial(mut self, h: usize, w: usize) -> Self {
        assert_eq!(h * w, self.profile.windows(), "spatial extent");
        self.spatial = (h, w);
        self
    }

    /// The same workload with dense (full-window) op counts — what the
    /// baseline accelerator executes.
    pub fn to_dense(&self) -> Self {
        Self {
            name: self.name.clone(),
            profile: self.profile.to_dense(),
            input_words: self.input_words,
            output_words: self.output_words,
            weight_words: self.weight_words,
            spatial: self.spatial,
        }
    }
}

/// A whole network's workload, in layer order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkWorkload {
    /// Network name.
    pub name: String,
    /// Conv layers in topological order.
    pub layers: Vec<LayerWorkload>,
}

impl NetworkWorkload {
    /// Dense variant of every layer (the baseline's workload).
    pub fn to_dense(&self) -> Self {
        Self {
            name: self.name.clone(),
            layers: self.layers.iter().map(LayerWorkload::to_dense).collect(),
        }
    }

    /// Total executed MACs.
    pub fn total_ops(&self) -> u64 {
        self.layers.iter().map(|l| l.profile.total_ops()).sum()
    }

    /// Total dense MACs.
    pub fn full_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.profile.full_macs()).sum()
    }
}

/// Builds the network workload for `net` under the op counts of `profile`,
/// using `batch` to recover each conv layer's input footprint.
///
/// # Panics
///
/// Panics if `profile` does not match `net`'s conv layers.
pub fn network_workload(
    name: impl Into<String>,
    net: &Graph,
    batch: &Tensor4,
    profile: &NetworkProfile,
) -> NetworkWorkload {
    let acts = net.forward(batch);
    let layers = profile
        .layers
        .iter()
        .map(|(id, lname, p)| {
            let input_id = net.node(*id).inputs[0];
            let input_words = acts[input_id].shape().item_len() as u64;
            let out = acts[*id].shape();
            LayerWorkload::new(lname.clone(), p.clone(), input_words).with_spatial(out.h, out.w)
        })
        .collect();
    NetworkWorkload {
        name: name.into(),
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapea::params::NetworkParams;
    use snapea::spec_net::profile_network;
    use snapea_nn::data::SynthShapes;
    use snapea_nn::zoo;

    #[test]
    fn workload_footprints_are_consistent() {
        let net = zoo::mini_alexnet(4);
        let data = SynthShapes::new(zoo::INPUT_SIZE, 4).generate(2, 5);
        let batch = SynthShapes::batch(&data);
        let prof = profile_network(&net, &NetworkParams::new(), &batch, false);
        let w = network_workload("alex", &net, &batch, &prof);
        assert_eq!(w.layers.len(), net.conv_ids().len());
        // First conv consumes the full input image.
        assert_eq!(
            w.layers[0].input_words,
            (3 * zoo::INPUT_SIZE * zoo::INPUT_SIZE) as u64
        );
        for l in &w.layers {
            assert_eq!(
                l.output_words,
                (l.profile.kernels() * l.profile.windows()) as u64
            );
            assert!(l.profile.total_ops() <= l.profile.full_macs());
        }
        // Dense variant restores full MACs.
        let dense = w.to_dense();
        assert_eq!(dense.total_ops(), w.full_macs());
        assert!(w.total_ops() < w.full_macs());
    }
}
