//! Accelerator configuration (paper Table II).

use serde::{Deserialize, Serialize};

/// Configuration of a PE-array accelerator.
///
/// The two presets mirror the paper's Table II: [`AccelConfig::snapea`]
/// (8×8 PEs × 4 lanes, index buffers, distributed 20 KB I/O buffers) and
/// [`AccelConfig::eyeriss`] (256 single-lane PEs, shared 1.25 MB global
/// buffer, no index buffer). Both run 256 MAC units at 500 MHz.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AccelConfig {
    /// PE-array rows (kernels are partitioned across rows).
    pub pe_rows: usize,
    /// PE-array columns (input windows are partitioned across columns).
    pub pe_cols: usize,
    /// Compute lanes (MAC units) per PE.
    pub lanes_per_pe: usize,
    /// Clock frequency in MHz.
    pub frequency_mhz: u64,
    /// Per-PE weight buffer capacity in bytes.
    pub weight_buffer_bytes: usize,
    /// Per-PE index buffer capacity in bytes (0 = no index buffer, dense
    /// baseline).
    pub index_buffer_bytes: usize,
    /// Total on-chip input/output storage in bytes (distributed per-PE for
    /// SnaPEA, one global buffer for the baseline).
    pub io_buffer_bytes: usize,
    /// Whether the PEs carry Predictive Activation Units.
    pub has_pau: bool,
    /// Register-level input-operand reuse factor of the dataflow: on
    /// average, one on-chip-buffer read feeds this many MACs. The baseline's
    /// row-stationary dataflow reuses aggressively; SnaPEA's index-directed
    /// gather reuses less (each lane fetches the input its reordered index
    /// points at).
    pub input_reuse: usize,
    /// Weight-operand reuse factor: how many MACs one weight fetch feeds
    /// beyond the PE-internal lane broadcast. The baseline's row-stationary
    /// dataflow forwards each weight along a PE row; SnaPEA fetches from its
    /// per-PE weight buffer every broadcast cycle.
    pub weight_reuse: usize,
}

impl AccelConfig {
    /// The paper's SnaPEA configuration (Table II).
    pub fn snapea() -> Self {
        Self {
            pe_rows: 8,
            pe_cols: 8,
            lanes_per_pe: 4,
            frequency_mhz: 500,
            weight_buffer_bytes: 512,
            index_buffer_bytes: 512,
            io_buffer_bytes: 64 * 20 * 1024, // 20 KB per PE × 64 PEs = 1.25 MB
            has_pau: true,
            input_reuse: 4,
            weight_reuse: 1,
        }
    }

    /// The paper's EYERISS baseline configuration (Table II): same 256 MACs
    /// and 1.25 MB on-chip storage, one lane per PE, no index buffer.
    pub fn eyeriss() -> Self {
        Self {
            pe_rows: 16,
            pe_cols: 16,
            lanes_per_pe: 1,
            frequency_mhz: 500,
            weight_buffer_bytes: 512,
            index_buffer_bytes: 0,
            io_buffer_bytes: 1_310_720, // 1.25 MB global buffer
            has_pau: false,
            input_reuse: 8,
            weight_reuse: 4,
        }
    }

    /// SnaPEA with the lane count scaled by `num/den` while holding the
    /// total MAC count constant (the paper's Figure 12 sweep). Lanes scale
    /// by the factor; PE count scales inversely via the column dimension.
    ///
    /// # Panics
    ///
    /// Panics if the factor does not divide evenly.
    pub fn snapea_lanes_scaled(num: usize, den: usize) -> Self {
        let base = Self::snapea();
        let lanes = base.lanes_per_pe * num / den;
        assert!(lanes >= 1, "lane scaling produced zero lanes");
        assert_eq!(
            base.lanes_per_pe * num % den,
            0,
            "lane scaling must be exact"
        );
        // Keep rows fixed (kernel partitioning), rescale columns so that
        // rows × cols × lanes stays 256.
        let total = base.total_macs();
        let cols = total / (base.pe_rows * lanes);
        assert!(cols >= 1, "too many lanes per PE for the array");
        assert_eq!(
            base.pe_rows * cols * lanes,
            total,
            "MAC total must be preserved"
        );
        Self {
            pe_cols: cols,
            lanes_per_pe: lanes,
            ..base
        }
    }

    /// Number of PEs.
    pub fn pe_count(&self) -> usize {
        self.pe_rows * self.pe_cols
    }

    /// Total MAC units (`rows × cols × lanes`).
    pub fn total_macs(&self) -> usize {
        self.pe_count() * self.lanes_per_pe
    }

    /// Seconds per cycle.
    pub fn cycle_seconds(&self) -> f64 {
        1.0 / (self.frequency_mhz as f64 * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_equal_peak_throughput() {
        let s = AccelConfig::snapea();
        let e = AccelConfig::eyeriss();
        assert_eq!(s.total_macs(), 256);
        assert_eq!(e.total_macs(), 256);
        assert_eq!(s.frequency_mhz, e.frequency_mhz);
        // ~1.25 MB on-chip storage each.
        assert_eq!(s.io_buffer_bytes, 64 * 20 * 1024);
        assert_eq!(e.io_buffer_bytes, 1_310_720);
    }

    #[test]
    fn lane_scaling_preserves_macs() {
        for (num, den) in [(1, 2), (1, 1), (2, 1), (4, 1)] {
            let c = AccelConfig::snapea_lanes_scaled(num, den);
            assert_eq!(c.total_macs(), 256, "{num}/{den}");
            assert_eq!(c.lanes_per_pe, 4 * num / den);
        }
    }

    #[test]
    fn cycle_time() {
        let s = AccelConfig::snapea();
        assert!((s.cycle_seconds() - 2e-9).abs() < 1e-15);
    }
}
